// The AB Inc motivating example from the paper's synopsis: an
// e-commerce platform releases a new recommendation feature with a
// multi-phase live testing strategy — canary release, dark launch, A/B
// test, gradual rollout — enacted automatically by Bifrost on the
// simulated microservice shop (the case-study application of Fig 4.5).
//
// The example runs the strategy twice: once against a healthy
// candidate (ends in promotion) and once against a candidate with an
// injected latency regression (the canary check trips and the engine
// rolls every user back to the stable version).
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"os"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/clock"
	"contexp/internal/loadgen"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/stats"
	"contexp/internal/tracing"
)

const recommendationStrategy = `
strategy "recommendation-v2" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"

    # 1. Confirm basic health on 5% of the users.
    phase "canary" {
        practice    = canary
        traffic     = 5%
        duration    = 5m
        min-samples = 50
        check "latency" {
            metric    = response_time
            aggregate = p95
            scope     = relative
            max       = 1.6
            interval  = 30s
            window    = 3m
            failures  = 2
        }
        on success      -> phase "dark"
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 2
    }

    # 2. Assess scalability under full production load, invisibly.
    phase "dark" {
        practice = dark-launch
        duration = 5m
        check "latency-under-load" {
            metric    = response_time
            aggregate = p95
            max       = 120
            interval  = 30s
            window    = 3m
        }
        on success -> phase "ab"
        on failure -> rollback
    }

    # 3. Measure user acceptance on a 50/50 split.
    phase "ab" {
        practice    = ab-test
        traffic     = 50%
        duration    = 10m
        min-samples = 500
        check "latency" {
            metric    = response_time
            aggregate = p95
            scope     = relative
            max       = 1.6
            interval  = 1m
            window    = 5m
        }
        on success -> phase "rollout"
        on failure -> rollback
    }

    # 4. Expose the winner to everyone, step by step. The check uses an
    # absolute bound: once 100% of traffic is on the candidate there is
    # no baseline population left to compare against.
    phase "rollout" {
        practice      = gradual-rollout
        steps         = 25%, 50%, 75%, 100%
        step-duration = 2m
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 120
            interval  = 30s
            window    = 2m
        }
        on success -> promote
        on failure -> rollback
    }
}
`

func main() {
	if err := scenario("healthy candidate", false); err != nil {
		fmt.Fprintln(os.Stderr, "ecommerce:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := scenario("degraded candidate (injected 6x latency regression)", true); err != nil {
		fmt.Fprintln(os.Stderr, "ecommerce:", err)
		os.Exit(1)
	}
}

func scenario(title string, degraded bool) error {
	fmt.Printf("=== %s ===\n", title)
	app, err := microsim.ShopApplication()
	if err != nil {
		return err
	}
	if degraded {
		sv, err := app.Lookup("recommendation", "v2")
		if err != nil {
			return err
		}
		sv.Endpoints["GET /recommendations"].Latency = stats.LogNormalFromMeanP95(80, 200)
	}

	table := router.NewTable()
	if err := microsim.InstallBaselineRoutes(app, table); err != nil {
		return err
	}
	store := metrics.NewStore(0)
	traces := tracing.NewCollector()
	sim := microsim.NewSim(app, table, traces, store, 7)

	start := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	simClock := clock.NewSim(start)
	engine, err := bifrost.NewEngine(bifrost.Config{Clock: simClock, Table: table, Store: store})
	if err != nil {
		return err
	}
	strategy, err := bifrost.ParseStrategy(recommendationStrategy)
	if err != nil {
		return err
	}
	run, err := engine.Launch(strategy)
	if err != nil {
		return err
	}

	pop, err := loadgen.NewPopulation(loadgen.PopulationConfig{Size: 5000, Seed: 2})
	if err != nil {
		return err
	}
	// 40 requests per virtual second until the strategy concludes
	// (bounded at 90 virtual minutes as a safety net).
	for elapsed := time.Duration(0); elapsed < 90*time.Minute; elapsed += time.Second {
		now := simClock.Now()
		for i := 0; i < 40; i++ {
			if _, err := sim.Execute(pop.Sample(), now); err != nil {
				return err
			}
		}
		simClock.Advance(time.Second)
		select {
		case <-run.Done():
			elapsed = 90 * time.Minute
		default:
		}
	}

	fmt.Print(run.BuildReport().Render())
	fmt.Printf("virtual time elapsed: %v\n", simClock.Now().Sub(start))
	for _, ev := range run.Events() {
		switch ev.Type {
		case bifrost.EventPhaseEntered:
			fmt.Printf("  %s entered %q\n", ev.At.Format("15:04:05"), ev.Phase)
		case bifrost.EventRolloutStep:
			fmt.Printf("  %s rollout %s\n", ev.At.Format("15:04:05"), ev.Detail)
		case bifrost.EventPhaseOutcome:
			fmt.Printf("  %s phase %q: %s\n", ev.At.Format("15:04:05"), ev.Phase, ev.Outcome)
		}
	}
	route, err := table.Route("recommendation")
	if err != nil {
		return err
	}
	fmt.Print("final routing for recommendation:\n")
	for _, b := range route.Backends {
		if b.Weight > 0 {
			fmt.Printf("  %3.0f%% -> %s\n", b.Weight*100, b.Version)
		}
	}
	// Variant-level latency report from the collected traces.
	for _, variant := range []tracing.Variant{tracing.VariantBaseline, tracing.VariantExperiment} {
		trs := traces.Traces(variant)
		if len(trs) == 0 {
			continue
		}
		ms := make([]float64, len(trs))
		for i, tr := range trs {
			ms[i] = float64(tr.Duration()) / float64(time.Millisecond)
		}
		s := stats.Summarize(ms)
		fmt.Printf("end-user latency (%s): n=%d mean=%.1fms p95=%.1fms\n",
			variant, s.N, s.Mean, s.P95)
	}
	return nil
}
