// Verification example: static conflict detection across experiments —
// the paper's Section 1.6.4 future-work direction ("identify upfront
// whether a defined experiment could negatively interfere with other
// planned or currently running experiments"), implemented as
// bifrost.Verify and Engine.LaunchVerified.
//
//	go run ./examples/verification
package main

import (
	"fmt"
	"os"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/clock"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

const checkoutStrategy = `
strategy "checkout-canary" {
    service   = "checkout"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 10%
        duration = 10m
        check "latency" { metric = response_time  aggregate = p95  max = 200  interval = 30s }
        on success -> promote
    }
}
`

const conflictingStrategy = `
strategy "checkout-redesign-ab" {
    service   = "checkout"
    baseline  = "v1"
    candidate = "v3"
    phase "ab" {
        practice = ab-test
        traffic  = 50%
        duration = 1h
        check "conversion" { metric = conversion  aggregate = mean  min = 0.02  interval = 5m }
        on success -> promote
    }
}
`

const groupClashStrategy = `
strategy "search-beta" {
    service   = "search"
    baseline  = "v1"
    candidate = "v2"
    phase "beta" {
        practice = canary
        traffic  = 0%
        groups   = beta
        duration = 30m
        check "latency" { metric = response_time  aggregate = p95  max = 300  interval = 1m }
        on success -> promote
    }
}
`

const independentStrategy = `
strategy "cart-canary" {
    service   = "cart"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 5%
        duration = 10m
        check "latency" { metric = response_time  aggregate = p95  max = 150  interval = 30s }
        on success -> promote
    }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verification:", err)
		os.Exit(1)
	}
}

func run() error {
	parse := func(src string) *bifrost.Strategy {
		s, err := bifrost.ParseStrategy(src)
		if err != nil {
			panic(err)
		}
		return s
	}
	checkout := parse(checkoutStrategy)
	redesign := parse(conflictingStrategy)
	searchBeta := parse(groupClashStrategy)
	cart := parse(independentStrategy)

	// Add a beta-group phase to the checkout canary so the group clash
	// with search-beta is visible.
	checkout.Phases[0].Traffic.Groups = append(checkout.Phases[0].Traffic.Groups, "beta")

	fmt.Println("static verification of the planned experiment portfolio:")
	conflicts, err := bifrost.Verify([]*bifrost.Strategy{checkout, redesign, searchBeta, cart})
	if err != nil {
		return err
	}
	if len(conflicts) == 0 {
		fmt.Println("  no conflicts")
	}
	for _, c := range conflicts {
		fmt.Printf("  ! %s\n", c)
	}

	// At launch time the engine enforces the same rules against the
	// live set.
	table := router.NewTable()
	engine, err := bifrost.NewEngine(bifrost.Config{
		Clock: clock.NewSim(time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)),
		Table: table,
		Store: metrics.NewStore(0),
	})
	if err != nil {
		return err
	}
	fmt.Println("\nlaunching with verification:")
	for _, s := range []*bifrost.Strategy{checkout, redesign, cart} {
		_, cs, err := engine.LaunchVerified(s)
		switch {
		case err == nil:
			fmt.Printf("  launched  %q\n", s.Name)
		case len(cs) > 0:
			fmt.Printf("  refused   %q: %s\n", s.Name, cs[0])
		default:
			return err
		}
	}
	return nil
}
