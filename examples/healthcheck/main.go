// Health-assessment example: the topology-aware analysis of Chapter 5
// running live. The simulated shop is deployed as real HTTP servers
// behind routing proxies, spans stream through the bounded live
// collector, and a strategy gating on `kind = topology` is submitted to
// the control-plane API. The candidate recommender (v2) secretly calls
// the users service — a structural change its latency does not reveal —
// so the topology check trips and the engine rolls the release back.
// The live assessment is then read back from GET /v1/runs/{name}/health,
// exactly as `expctl health` would.
//
//	go run ./examples/healthcheck
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/server"
	"contexp/internal/tracing"
)

const strategyDSL = `
strategy "rec-v2-structural" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice    = canary
        traffic     = 50%
        duration    = 30s
        check "structure" {
            kind       = topology
            heuristic  = "subtree-weighted"
            min-traces = 10
            allow      = updated-callee-version, updated-caller-version, updated-version
            interval   = 250ms
        }
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 5
    }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healthcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	// The live pipeline: routing table, metric store, bounded span
	// collector, and the monitor folding settled traces into per-run
	// interaction graphs.
	table := router.NewTable()
	store := metrics.NewStore(0)
	collector := tracing.NewLiveCollector(50_000)
	monitor := health.NewMonitor(collector, 100*time.Millisecond)

	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Topology: monitor,
		DefaultCheckInterval: 250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Engine: engine, Table: table, Store: store,
		Traces: collector, Health: monitor,
	})
	if err != nil {
		return err
	}
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	// Deploy the shop as real HTTP servers emitting spans.
	app, err := microsim.ShopApplication()
	if err != nil {
		return err
	}
	if err := microsim.InstallBaselineRoutes(app, table); err != nil {
		return err
	}
	shop, err := microsim.StartHTTP(app, table, store, microsim.HTTPConfig{
		LatencyScale: 0.02, Seed: 1, Traces: collector,
	})
	if err != nil {
		return err
	}
	defer shop.Close()

	// Drive user traffic at the entry proxy in the background; stop the
	// driver (and wait for its in-flight request) before the shop closes.
	stop := make(chan struct{})
	done := make(chan struct{})
	go driveUsers(shop.EntryURL(), collector, stop, done)
	defer func() { close(stop); <-done }()

	// Submit the structural-gate strategy over the live API.
	resp, err := http.Post(api.URL+"/v1/strategies", "text/plain", strings.NewReader(strategyDSL))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	fmt.Println("submitted strategy \"rec-v2-structural\" (canary gated on check kind = topology)")

	// Wait for the engine's verdict.
	run, _ := engine.Get("rec-v2-structural")
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		return fmt.Errorf("strategy did not conclude in time")
	}
	fmt.Printf("run concluded: %s\n\n", run.Status())

	// Read the live assessment back from the API.
	hr, err := http.Get(api.URL + "/v1/runs/rec-v2-structural/health")
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	var view health.AssessmentView
	if err := json.NewDecoder(hr.Body).Decode(&view); err != nil {
		return err
	}
	fmt.Printf("live assessment: %d baseline traces, %d candidate traces\n",
		view.BaselineTraces, view.CandidateTraces)
	fmt.Printf("baseline graph: %d nodes / %d edges; candidate graph: %d nodes / %d edges\n\n",
		view.BaselineGraph.Nodes, view.BaselineGraph.Edges,
		view.CandidateGraph.Nodes, view.CandidateGraph.Edges)
	fmt.Println(view.Report)

	for _, ev := range run.Events() {
		if ev.Type == bifrost.EventTopologyVerdict && ev.Outcome == bifrost.OutcomeFail {
			fmt.Printf("tripping verdict: %s\n", ev.Detail)
			break
		}
	}
	return nil
}

// driveUsers plays a small user population against the entry proxy,
// minting one trace per request like a browser's traceparent.
func driveUsers(entryURL string, collector *tracing.LiveCollector, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		req, err := http.NewRequest(http.MethodGet, entryURL, nil)
		if err != nil {
			return
		}
		req.Header.Set("X-User-ID", fmt.Sprintf("user-%04d", i%200))
		req.Header.Set(router.HeaderTraceID,
			strconv.FormatUint(uint64(collector.NextTraceID()), 16))
		resp, err := client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond)
	}
}
