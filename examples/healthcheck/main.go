// Health-assessment example: the topology-aware analysis of Chapter 5
// applied to a release of the simulated shop. Traces of the baseline
// and experimental user populations are turned into interaction
// graphs, diffed, and the identified changes are ranked by all six
// heuristics.
//
//	go run ./examples/healthcheck
package main

import (
	"fmt"
	"os"
	"time"

	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/stats"
	"contexp/internal/topology"
	"contexp/internal/tracing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healthcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	app, err := microsim.ShopApplication()
	if err != nil {
		return err
	}
	// Inject a latency regression into the new recommender so the
	// response-time heuristics have something to find.
	sv, err := app.Lookup("recommendation", "v2")
	if err != nil {
		return err
	}
	sv.Endpoints["GET /recommendations"].Latency = stats.LogNormalFromMeanP95(60, 150)

	collect := func(useV2 bool, variant tracing.Variant) (*topology.Graph, error) {
		table := router.NewTable()
		if err := microsim.InstallBaselineRoutes(app, table); err != nil {
			return nil, err
		}
		if useV2 {
			if err := table.SetWeights("recommendation", []router.Backend{
				{Version: "v2", Weight: 1},
			}); err != nil {
				return nil, err
			}
		}
		collector := tracing.NewCollector()
		sim := microsim.NewSim(app, table, collector, metrics.NewStore(1024), 1)
		start := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
		for i := 0; i < 500; i++ {
			req := &router.Request{UserID: fmt.Sprintf("user-%04d", i)}
			if _, err := sim.Execute(req, start.Add(time.Duration(i)*time.Second)); err != nil {
				return nil, err
			}
		}
		return topology.Build(variant, collector.Traces("")), nil
	}

	base, err := collect(false, tracing.VariantBaseline)
	if err != nil {
		return err
	}
	exp, err := collect(true, tracing.VariantExperiment)
	if err != nil {
		return err
	}
	fmt.Printf("baseline:     %s\n", base)
	fmt.Printf("experimental: %s\n\n", exp)

	diff := health.Compare(base, exp)
	fmt.Println(diff.Render())

	for _, h := range health.AllHeuristics() {
		ranked := health.Rank(h, diff)
		fmt.Printf("%-18s top changes:\n", h.Name())
		for i, c := range ranked {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d. %s\n", i+1, c)
		}
	}
	return nil
}
