// Quickstart: run an A/B test on a two-service application, fully
// simulated, in a few hundred milliseconds of wall time.
//
// It shows the three moving parts of the framework working together:
// a strategy written in the DSL, the Bifrost engine enacting it through
// runtime traffic routing, and the simulated microservice application
// producing the telemetry the engine's checks consume.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/clock"
	"contexp/internal/loadgen"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/stats"
	"contexp/internal/tracing"
)

const strategySrc = `
strategy "checkout-ab" {
    service   = "checkout"
    baseline  = "v1"
    candidate = "v2"

    phase "ab" {
        practice = ab-test
        traffic  = 50%
        duration = 10m
        check "latency-regression" {
            metric    = response_time
            aggregate = p95
            scope     = relative
            max       = 1.3      # candidate p95 may be at most 1.3x baseline
            interval  = 30s
            window    = 2m
        }
        on success -> promote
        on failure -> rollback
    }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A tiny application: frontend -> checkout, with a v2 of checkout
	// that is slightly faster.
	app := microsim.NewApplication("frontend", "GET /")
	if err := app.AddService("frontend", "v1").
		Endpoint("GET /", 5, 12).
		Calls("checkout", "POST /order").Err(); err != nil {
		return err
	}
	if err := app.AddService("checkout", "v1").
		Endpoint("POST /order", 20, 50).Err(); err != nil {
		return err
	}
	if err := app.AddService("checkout", "v2").
		Endpoint("POST /order", 16, 40).Err(); err != nil {
		return err
	}
	if err := app.Validate(); err != nil {
		return err
	}

	// Wire the substrate: routing table, metrics, traces, simulation.
	table := router.NewTable()
	if err := microsim.InstallBaselineRoutes(app, table); err != nil {
		return err
	}
	store := metrics.NewStore(0)
	traces := tracing.NewCollector()
	sim := microsim.NewSim(app, table, traces, store, 1)

	// The engine runs on a simulated clock: ten virtual minutes of
	// A/B testing finish instantly.
	start := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	simClock := clock.NewSim(start)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Clock: simClock, Table: table, Store: store,
	})
	if err != nil {
		return err
	}

	strategy, err := bifrost.ParseStrategy(strategySrc)
	if err != nil {
		return err
	}
	fmt.Println(strategy.StateMachine())

	run, err := engine.Launch(strategy)
	if err != nil {
		return err
	}

	// Drive load and virtual time together: 50 requests per virtual
	// second, advancing the clock between batches so checks fire.
	pop, err := loadgen.NewPopulation(loadgen.PopulationConfig{Size: 2000, Seed: 1})
	if err != nil {
		return err
	}
	for done := false; !done; {
		now := simClock.Now()
		for i := 0; i < 50; i++ {
			req := pop.Sample()
			if _, err := sim.Execute(req, now); err != nil {
				return err
			}
		}
		simClock.Advance(time.Second)
		select {
		case <-run.Done():
			done = true
		default:
		}
	}

	fmt.Printf("strategy finished: %s after %v of virtual time\n",
		run.Status(), simClock.Now().Sub(start))
	for _, ev := range run.Events() {
		switch ev.Type {
		case bifrost.EventPhaseOutcome:
			fmt.Printf("  %s %-14s %s: %s\n", ev.At.Format("15:04:05"), ev.Type, ev.Phase, ev.Outcome)
		case bifrost.EventRunFinished:
			fmt.Printf("  %s %-14s %s\n", ev.At.Format("15:04:05"), ev.Type, ev.Detail)
		}
	}

	// Compare the variants the way a release engineer would.
	since := start
	v1 := store.Values("response_time", metrics.Scope{Service: "checkout", Version: "v1"}, since)
	v2 := store.Values("response_time", metrics.Scope{Service: "checkout", Version: "v2"}, since)
	res, err := stats.WelchT(v1, v2, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("checkout v1: mean %.1f ms (n=%d)\n", stats.Mean(v1), len(v1))
	fmt.Printf("checkout v2: mean %.1f ms (n=%d)\n", stats.Mean(v2), len(v2))
	fmt.Printf("Welch t-test: p = %.4g, significant = %v\n", res.PValue, res.Significant)

	route, err := table.Route("checkout")
	if err != nil {
		return err
	}
	fmt.Printf("final routing: %d%% -> %s\n",
		int(route.Backends[0].Weight*100), route.Backends[0].Version)
	return nil
}
