// Scenario grading example: the chaos/traffic scenario matrix from
// internal/scenario run end to end. Every builtin scenario — steady
// traffic, a linear ramp, a flash crowd, a diurnal swing, a candidate
// error storm, a candidate latency spike, a partial dependency
// blackout, and a slow dependency restart — is executed against both a
// metric-gated and a topology-gated canary strategy on the simulated
// clock, and the outcome is graded: the engine must roll back the two
// scenarios where the candidate release is genuinely bad, and must
// promote in every ambient-trouble scenario it did not cause.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"contexp/internal/bifrost"
	"contexp/internal/scenario/suite"
)

func main() {
	fmt.Println("Scenario grading matrix")
	fmt.Println("=======================")
	fmt.Println()
	fmt.Printf("target: service=%s candidate=%s dependency=%s\n\n",
		suite.SuiteTarget.Service, suite.SuiteTarget.Candidate, suite.SuiteTarget.Dependency)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SCENARIO\tKIND\tWANT\tGOT\tREQS\tFAILED\tGRADE")

	mismatches := 0
	for _, exp := range suite.Matrix() {
		for _, kind := range suite.Kinds() {
			want := exp.Want[kind]
			res, err := suite.RunScenario(exp.Spec, kind, suite.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", exp.Spec.Name, kind, err)
				os.Exit(1)
			}
			grade := "ok"
			if res.Status != want {
				grade = "MISMATCH"
				mismatches++
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				exp.Spec.Name, kind, statusWord(want), statusWord(res.Status),
				res.Requests, res.Failures, grade)
		}
	}
	w.Flush()
	fmt.Println()

	if mismatches > 0 {
		fmt.Printf("FAIL: %d graded outcome(s) did not match\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("All graded outcomes match: real regressions rolled back, ambient trouble survived.")
}

func statusWord(s bifrost.RunStatus) string {
	switch s {
	case bifrost.StatusSucceeded:
		return "promote"
	case bifrost.StatusRolledBack:
		return "rollback"
	default:
		return s.String()
	}
}
