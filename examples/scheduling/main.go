// Scheduling example: Fenrir plans 15 continuous experiments against a
// two-week production traffic profile, then reevaluates the schedule
// mid-execution after two experiments are canceled and three new ones
// arrive — the uncertainty-driven workflow of Chapter 3.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"os"
	"time"

	"contexp/internal/fenrir"
	"contexp/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduling:", err)
		os.Exit(1)
	}
}

func run() error {
	start := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC) // a Monday
	profile, err := traffic.Generate(start, 14, traffic.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	fmt.Println("traffic profile (14 days, hourly):")
	fmt.Println("  " + profile.Sparkline(112))

	experiments, err := fenrir.GenerateExperiments(fenrir.GeneratorConfig{
		N: 15, Class: fenrir.SamplesMedium, Seed: 1, Horizon: profile.NumSlots(),
	})
	if err != nil {
		return err
	}
	problem := &fenrir.Problem{
		Experiments: experiments,
		Profile:     profile,
		Capacity:    0.8, // keep >= 20% of users out of all experiments
	}
	if err := problem.Validate(); err != nil {
		return err
	}

	ga := &fenrir.GeneticAlgorithm{}
	schedule, stats := ga.Optimize(problem, 4000, 1, nil)
	fmt.Printf("\nGA: %d fitness evaluations in %v, fitness %.1f%% of max, valid=%v\n",
		stats.Evaluations, stats.Elapsed.Round(time.Millisecond),
		100*stats.BestFitness/problem.MaxFitness(), problem.Valid(schedule))
	fmt.Println(problem.FormatSchedule(schedule))
	fmt.Println(problem.Gantt(schedule, 96))
	peak, at := problem.PeakUtilization(schedule)
	fmt.Printf("peak traffic allocation: %.0f%% of users at slot %d (capacity %.0f%%)\n\n",
		peak*100, at, problem.Capacity*100)

	// A week in: exp-03 and exp-07 were canceled, three new experiments
	// arrived. Running experiments are frozen; the rest is re-planned.
	now := 7 * 24
	added, err := fenrir.GenerateExperiments(fenrir.GeneratorConfig{
		N: 3, Class: fenrir.SamplesMedium, Seed: 99, Horizon: profile.NumSlots(),
	})
	if err != nil {
		return err
	}
	for i := range added {
		added[i].ID = fmt.Sprintf("new-%02d", i+1)
		added[i].EarliestStart = now
	}
	reeval, err := fenrir.Reevaluate(problem, schedule, fenrir.ReevalInput{
		Now:      now,
		Canceled: []string{"exp-03", "exp-07"},
		Added:    added,
	})
	if err != nil {
		return err
	}
	fmt.Printf("reevaluation at slot %d (day 7): %d finished, %d canceled, %d frozen, %d added\n",
		now, len(reeval.Finished), len(reeval.Dropped), fenrir.FrozenCount(reeval.Seed), len(added))

	schedule2, stats2 := ga.Optimize(reeval.Problem, 4000, 2, reeval.Seed)
	fmt.Printf("re-optimized: fitness %.1f%% of max, valid=%v\n",
		100*stats2.BestFitness/reeval.Problem.MaxFitness(), reeval.Problem.Valid(schedule2))
	fmt.Println(reeval.Problem.FormatSchedule(schedule2))
	return nil
}
