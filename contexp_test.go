package contexp_test

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"contexp"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
)

// TestFullStackCanaryOverHTTP is the end-to-end integration test: a
// real HTTP microservice application behind routing proxies, a
// DSL-defined canary strategy executed by the engine on the real
// clock, live traffic, and an automatic outcome — promotion for a
// healthy candidate, rollback for a degraded one.
func TestFullStackCanaryOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock end-to-end run")
	}
	for _, tc := range []struct {
		name       string
		v2MeanMs   float64
		wantStatus string
		wantArm    string // version serving traffic afterwards
	}{
		{"healthy candidate promotes", 2, "succeeded", "v2"},
		{"degraded candidate rolls back", 80, "rolled-back", "v1"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			app := microsim.NewApplication("api", "GET /")
			if err := app.AddService("api", "v1").
				Endpoint("GET /", 2, 5).Err(); err != nil {
				t.Fatal(err)
			}
			if err := app.AddService("api", "v2").
				Endpoint("GET /", tc.v2MeanMs, tc.v2MeanMs*2.5).Err(); err != nil {
				t.Fatal(err)
			}

			table := contexp.NewRoutingTable()
			if err := microsim.InstallBaselineRoutes(app, table); err != nil {
				t.Fatal(err)
			}
			store := contexp.NewMetricStore(0)
			httpApp, err := microsim.StartHTTP(app, table, store, microsim.HTTPConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer httpApp.Close()

			engine, err := contexp.NewEngine(contexp.EngineConfig{
				Table: table, Store: store,
				DefaultCheckInterval: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			strategy, err := contexp.ParseStrategy(`
strategy "api-canary" {
    service   = "api"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 30%
        duration = 1200ms
        check "latency" {
            metric    = response_time
            aggregate = mean
            max       = 20
            interval  = 150ms
            window    = 1s
            failures  = 2
        }
        on success -> promote
        on failure -> rollback
    }
}`)
			if err != nil {
				t.Fatal(err)
			}
			run, err := engine.Launch(strategy)
			if err != nil {
				t.Fatal(err)
			}

			// Drive real traffic until the strategy concludes.
			deadline := time.Now().Add(15 * time.Second)
			i := 0
			for {
				select {
				case <-run.Done():
					goto done
				default:
				}
				if time.Now().After(deadline) {
					t.Fatalf("strategy never concluded; phase %q", run.CurrentPhase())
				}
				req, _ := http.NewRequest(http.MethodGet, httpApp.EntryURL(), nil)
				req.Header.Set("X-User-ID", fmt.Sprintf("user-%d", i%200))
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				i++
			}
		done:
			if got := run.Status().String(); got != tc.wantStatus {
				t.Fatalf("status = %s, want %s (events: %+v)", got, tc.wantStatus, run.Events())
			}
			route, err := table.Route("api")
			if err != nil {
				t.Fatal(err)
			}
			var serving string
			for _, b := range route.Backends {
				if b.Weight > 0.99 {
					serving = b.Version
				}
			}
			if serving != tc.wantArm {
				t.Errorf("final arm = %q, want %q (%+v)", serving, tc.wantArm, route.Backends)
			}
			// Telemetry flowed for the candidate during the canary.
			scope := metrics.Scope{Service: "api", Version: "v2"}
			if n, err := store.Query("requests", scope, time.Time{}, metrics.AggCount); err != nil || n == 0 {
				t.Errorf("candidate saw no traffic: %v, %v", n, err)
			}
		})
	}
}

// TestFacadeSchedulingRoundTrip exercises the planning surface of the
// public API.
func TestFacadeSchedulingRoundTrip(t *testing.T) {
	// The facade re-exports fenrir types; build a tiny problem through it.
	profile := &contexp.TrafficProfile{
		Start:      time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC),
		SlotLength: time.Hour,
		Slots:      make([]float64, 96),
	}
	for i := range profile.Slots {
		profile.Slots[i] = 10000
	}
	problem := &contexp.SchedulingProblem{
		Profile:  profile,
		Capacity: 0.8,
		Experiments: []contexp.PlannedExperiment{{
			ID: "exp-1", Practice: contexp.PracticeCanary,
			RequiredSamples: 5000, MinDuration: 2, MaxDuration: 24,
			MinShare: 0.05, MaxShare: 0.3,
			CandidateGroups: []contexp.UserGroup{"eu"},
			Priority:        1,
		}},
	}
	if err := problem.Validate(); err != nil {
		t.Fatal(err)
	}
	ga := &contexp.GeneticAlgorithm{}
	schedule, stats := ga.Optimize(problem, 500, 1, nil)
	if !problem.Valid(schedule) {
		t.Fatalf("invalid schedule: %v", problem.Check(schedule))
	}
	if stats.BestFitness <= 0 {
		t.Errorf("fitness = %v", stats.BestFitness)
	}
	// Reevaluate mid-run through the facade.
	res, err := contexp.Reevaluate(problem, schedule, contexp.ReevalInput{Now: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Problem == nil || res.Seed == nil {
		t.Fatal("reevaluation returned empty result")
	}
	s2, _ := ga.Optimize(res.Problem, 500, 2, res.Seed)
	if !res.Problem.Valid(s2) {
		t.Errorf("re-optimized schedule invalid: %v", res.Problem.Check(s2))
	}
}
