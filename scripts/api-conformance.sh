#!/usr/bin/env bash
# api-conformance.sh — black-box conformance gate for the /v1 API.
#
# Boots a real contexpd with token auth and a per-tenant rate limit,
# then asserts the API contract documented in docs/API.md:
#
#   1. every non-2xx response is a typed {"error": {code, message}}
#      envelope with the documented stable code — including the mux's
#      own 404/405;
#   2. auth: guarded routes reject missing/unknown tokens with 401 +
#      WWW-Authenticate, /healthz stays open;
#   3. tenancy: two tenants run the same-named strategy on the
#      same-named service without contact, lists are scoped, and the
#      same-tenant service conflict is code "busy";
#   4. the per-tenant limiter returns 429 "rate_limited" + Retry-After;
#   5. request IDs echo through; paginated lists use {items}.
#
# Needs: go, curl, jq. Exits non-zero on the first failed assertion.
set -euo pipefail

PORT=${PORT:-18090}
BASE=http://127.0.0.1:$PORT

workdir=$(mktemp -d)
pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- contexpd log ---" >&2
    cat "$workdir/contexpd.log" >&2 || true
    exit 1
}

poll() {
    local deadline=$1 what=$2
    shift 2
    local end=$((SECONDS + deadline))
    while ((SECONDS < end)); do
        if "$@" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    fail "timed out after ${deadline}s waiting for: $what"
}

# req <token> <method> <path> [curl args...] — status into $status,
# body into $workdir/body, response headers into $workdir/headers.
# (Never call from a subshell: $status must reach the caller.)
status=
req() {
    local token=$1 method=$2 path=$3
    shift 3
    local auth=()
    [[ -n $token ]] && auth=(-H "Authorization: Bearer $token")
    status=$(curl -sS -o "$workdir/body" -D "$workdir/headers" \
        -w '%{http_code}' -X "$method" "${auth[@]}" "$@" "$BASE$path")
}

body() { cat "$workdir/body"; }

# expect <what> <got> <want>
expect() {
    [[ $2 == "$3" ]] || fail "$1: got $2, want $3"
}

# expect_error <what> <token> <method> <path> <status> <code>
expect_error() {
    local what=$1 token=$2 method=$3 path=$4 wantStatus=$5 wantCode=$6
    local code
    req "$token" "$method" "$path"
    expect "$what status" "$status" "$wantStatus"
    code=$(jq -er '.error.code' <"$workdir/body" 2>/dev/null) \
        || fail "$what: body is not a typed envelope: $(body)"
    expect "$what code" "$code" "$wantCode"
}

echo "== building contexpd"
go build -o "$workdir/contexpd" ./cmd/contexpd

echo "== starting contexpd with auth + rate limit on :$PORT"
"$workdir/contexpd" --addr ":$PORT" --data-dir "$workdir/data" \
    --auth-tokens 'acme=tok-a,beta=tok-b,ops=tok-o' \
    --rate-limit 50 --rate-burst 3 --http-log \
    >"$workdir/contexpd.log" 2>&1 &
pids+=($!)
poll 15 "contexpd /healthz" curl -fsS "$BASE/healthz"

echo "== auth: /healthz open, guarded routes reject bad credentials"
req "" GET /healthz
expect "open /healthz" "$status" 200
expect_error "missing token" ""      GET /v1/runs 401 unauthorized
grep -qi '^www-authenticate: bearer' "$workdir/headers" \
    || fail "401 should carry a WWW-Authenticate: Bearer challenge"
expect_error "unknown token" "nope"  GET /v1/runs 401 unauthorized

echo "== mux errors are typed envelopes"
expect_error "unknown route" tok-a GET    /v1/definitely-not-a-route 404 not_found
grep -qi '^content-type: application/json' "$workdir/headers" \
    || fail "mux 404 should be application/json"
expect_error "wrong method"  tok-a DELETE /v1/runs 405 method_not_allowed
expect_error "missing run"   tok-a GET    /v1/runs/absent 404 not_found
expect_error "bad cursor"    tok-a GET    '/v1/runs?cursor=banana' 400 invalid_request

echo "== tenancy: same strategy + service under two tenants, no contact"
dsl='strategy "conf" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 60s
        on success -> promote
    }
}'
req tok-a POST /v1/strategies --data-binary "$dsl"
expect "acme submit" "$status" 201
req tok-b POST /v1/strategies --data-binary "$dsl"
expect "beta submit (same name, same service)" "$status" 201

req tok-a GET /v1/runs
jq -e '(.items | length) == 1 and .items[0].tenant == "acme"' <"$workdir/body" >/dev/null \
    || fail "acme should list exactly its own run: $(body)"

# The daemon runs a scheduler, so a same-tenant service conflict
# queues (202 + queue entry) rather than erroring; withdrawing the
# queued submission is a 202 dequeue. (The schedulerless engine path
# returns 409 "busy"; internal/server's tests cover that.)
req tok-b POST /v1/strategies --data-binary "${dsl/conf/conf2}"
expect "same-tenant service conflict queues" "$status" 202
req tok-b DELETE /v1/runs/conf2
expect "withdraw queued submission" "$status" 202
jq -e '.status == "dequeued"' <"$workdir/body" >/dev/null \
    || fail "withdrawing a queued submission should dequeue: $(body)"

echo "== per-tenant rate limit: burst exhausts into 429 rate_limited"
throttled=0
for _ in $(seq 1 20); do
    req tok-o GET /v1/runs || true
    if [[ $status == 429 ]]; then throttled=1; break; fi
done
[[ $throttled == 1 ]] || fail "20 rapid requests never throttled"
jq -e '.error.code == "rate_limited"' <"$workdir/body" >/dev/null \
    || fail "429 body should carry code rate_limited: $(body)"
grep -qi '^retry-after:' "$workdir/headers" \
    || fail "429 should carry Retry-After"
# acme is untouched by ops' throttling.
req tok-a GET /v1/runs
expect "other tenant after ops throttle" "$status" 200

echo "== request IDs echo through"
req tok-a GET /v1/runs -H 'X-Request-Id: conformance-1'
grep -qi '^x-request-id: conformance-1' "$workdir/headers" \
    || fail "inbound X-Request-Id should echo on the response"

echo "== admin surface"
req tok-b GET /v1/admin/tenants
expect "admin tenants" "$status" 200
jq -e '[.items[].name] | index("acme") != null' <"$workdir/body" >/dev/null \
    || fail "admin tenants should list acme: $(body)"

echo "PASS: API conformance (envelopes, auth, tenancy, rate limit, request IDs)"
