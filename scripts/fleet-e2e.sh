#!/usr/bin/env bash
# fleet-e2e.sh — end-to-end gate for the distributed data plane.
#
# Boots a real contexpd control plane plus three contexp-agent edge
# processes, enacts a canary -> promote strategy over HTTP, and asserts:
#
#   1. all three agents connect and converge on the initial snapshot;
#   2. the phase transitions propagate: after the run succeeds, every
#      agent's applied version equals the control plane's current
#      version, and a local /v1/resolve answers with the promoted
#      candidate version;
#   3. fail-static: with the control plane killed, agents keep
#      resolving from their last snapshot and report themselves stale
#      after the lease expires.
#
# Needs: go, curl, jq. Exits non-zero on the first failed assertion.
set -euo pipefail

CP_PORT=${CP_PORT:-18080}
AGENT_PORTS=(17081 17082 17083)
CP=http://127.0.0.1:$CP_PORT

workdir=$(mktemp -d)
pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- control plane log ---" >&2
    cat "$workdir/contexpd.log" >&2 || true
    echo "--- agent logs ---" >&2
    cat "$workdir"/agent-*.log >&2 || true
    exit 1
}

# poll <deadline-seconds> <description> <cmd...> — retry cmd until it
# succeeds (exit 0) or the deadline passes.
poll() {
    local deadline=$1 what=$2
    shift 2
    local end=$((SECONDS + deadline))
    while ((SECONDS < end)); do
        if "$@" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    fail "timed out after ${deadline}s waiting for: $what"
}

echo "== building binaries"
go build -o "$workdir/contexpd" ./cmd/contexpd
go build -o "$workdir/contexp-agent" ./cmd/contexp-agent

echo "== starting control plane on :$CP_PORT"
"$workdir/contexpd" --addr ":$CP_PORT" --check-interval 250ms \
    --fleet-heartbeat 500ms >"$workdir/contexpd.log" 2>&1 &
pids+=($!)
poll 15 "control plane /healthz" curl -fsS "$CP/healthz"

echo "== starting 3 agents"
for i in 0 1 2; do
    port=${AGENT_PORTS[$i]}
    "$workdir/contexp-agent" --control "$CP" --addr "127.0.0.1:$port" \
        --id "e2e-agent-$i" --heartbeat 300ms --lease 2s \
        >"$workdir/agent-$i.log" 2>&1 &
    pids+=($!)
done

agents_converged() {
    curl -fsS "$CP/v1/agents" | jq -e '
        (.items | length) == 3
        and ([.items[] | select(.connected)] | length) == 3
        and ([.items[].appliedVersion] | min) == .currentVersion'
}
poll 15 "3 agents connected and converged" agents_converged
echo "   fleet converged on version $(curl -fsS "$CP/v1/agents" | jq .currentVersion)"

echo "== seeding metrics and launching a canary -> promote strategy"
obs='{"metric":"response_time","service":"svc","version":"VER","value":40}'
batch=$(jq -n --argjson o "${obs/VER/v1}" --argjson p "${obs/VER/v2}" \
    '{observations: [$o,$p,$o,$p,$o,$p,$o,$p,$o,$p]}')
curl -fsS -X POST "$CP/v1/metrics" -d "$batch" >/dev/null

curl -fsS -X POST "$CP/v1/strategies" --data-binary @- <<'EOF' >/dev/null
strategy "fleet-e2e" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 50%
        duration = 1s
        check "latency" {
            metric    = response_time
            aggregate = mean
            max       = 100
            interval  = 250ms
        }
        on success -> promote
        on failure -> rollback
    }
}
EOF

run_succeeded() {
    curl -fsS "$CP/v1/runs/fleet-e2e" | jq -e '.status == "succeeded"'
}
poll 30 "run fleet-e2e to succeed" run_succeeded
echo "   run succeeded (candidate promoted)"

poll 15 "agents to converge on the promoted table" agents_converged
ver=$(curl -fsS "$CP/v1/agents" | jq .currentVersion)
echo "   fleet converged on version $ver"

for port in "${AGENT_PORTS[@]}"; do
    got=$(curl -fsS "http://127.0.0.1:$port/v1/resolve?service=svc&user=u1" | jq -r .version)
    [[ $got == v2 ]] || fail "agent :$port resolves svc -> $got, want promoted v2"
done
echo "   all agents resolve svc -> v2 locally"

echo "== killing the control plane; agents must fail static"
kill "${pids[0]}"
wait "${pids[0]}" 2>/dev/null || true
sleep 2.5 # past the 2s lease

for port in "${AGENT_PORTS[@]}"; do
    curl -fsS "http://127.0.0.1:$port/healthz" | jq -e '.stale == true' >/dev/null \
        || fail "agent :$port not stale after control plane death + lease expiry"
    got=$(curl -fsS "http://127.0.0.1:$port/v1/resolve?service=svc&user=u1" | jq -r .version)
    [[ $got == v2 ]] || fail "agent :$port stopped serving after control plane death (got $got)"
done
echo "   agents serve the last snapshot and report stale"

echo "PASS: fleet e2e (3 agents: converge, propagate, fail static)"
