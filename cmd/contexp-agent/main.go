// Command contexp-agent is an edge data-plane node: it joins a
// contexpd control plane, mirrors the routing table over the streamed
// snapshot/delta protocol, and serves routing decisions (and optional
// reverse-proxied traffic) locally. Many agents against one contexpd
// form the distributed deployment the paper's middleware assumes:
// lightweight proxies at the edges, one experimentation brain.
//
// Usage:
//
//	contexp-agent [flags]
//
//	--control http://localhost:8080  contexpd base URL
//	--addr :7080                     local listen address
//	--id ""                          agent identity; default host-pid
//	--heartbeat 5s                   fleet heartbeat interval
//	--lease 15s                      staleness lease: no routing frame
//	                                 within this window marks the agent
//	                                 stale on /healthz (it keeps serving
//	                                 its last snapshot either way)
//	--proxy ""                       mount a reverse proxy, repeatable:
//	                                 service=version@url[,version@url...]
//	--telemetry-batch 256            batch size of the binary telemetry
//	                                 client posting to the control plane;
//	                                 0 disables telemetry
//	--token ""                       bearer token for a control plane
//	                                 running with --auth-tokens; defaults
//	                                 to the CONTEXP_TOKEN environment
//	                                 variable
//
// The agent fails static: when the control plane is unreachable it
// serves the last-applied routing snapshot indefinitely, surfaces
// `"stale": true` on its own /healthz, and reconnects with backoff,
// catching up from its last version (delta chain when the control
// plane retains it, full snapshot otherwise).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"contexp/internal/agent"
	"contexp/internal/wire"
)

type proxyFlag struct {
	service   string
	upstreams map[string]string
}

type proxyList []proxyFlag

func (p *proxyList) String() string { return fmt.Sprintf("%d proxies", len(*p)) }

// Set parses service=version@url[,version@url...].
func (p *proxyList) Set(v string) error {
	service, rest, ok := strings.Cut(v, "=")
	if !ok || service == "" || rest == "" {
		return errors.New("want service=version@url[,version@url...]")
	}
	pf := proxyFlag{service: service, upstreams: make(map[string]string)}
	for _, part := range strings.Split(rest, ",") {
		version, target, ok := strings.Cut(part, "@")
		if !ok || version == "" || target == "" {
			return fmt.Errorf("bad upstream %q: want version@url", part)
		}
		pf.upstreams[version] = target
	}
	*p = append(*p, pf)
	return nil
}

type options struct {
	control    string
	addr       string
	id         string
	heartbeat  time.Duration
	lease      time.Duration
	proxies    proxyList
	telemBatch int
	token      string
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("contexp-agent", flag.ContinueOnError)
	opt := &options{}
	fs.StringVar(&opt.control, "control", "http://localhost:8080", "contexpd base URL")
	fs.StringVar(&opt.addr, "addr", ":7080", "local listen address")
	fs.StringVar(&opt.id, "id", "", "agent identity; empty derives host-pid")
	fs.DurationVar(&opt.heartbeat, "heartbeat", 5*time.Second, "fleet heartbeat interval")
	fs.DurationVar(&opt.lease, "lease", 15*time.Second,
		"staleness lease; the agent reports stale after this long without a routing frame")
	fs.Var(&opt.proxies, "proxy",
		"mount a reverse proxy (repeatable): service=version@url[,version@url...]")
	fs.IntVar(&opt.telemBatch, "telemetry-batch", 256,
		"binary telemetry batch size; 0 disables the telemetry client")
	fs.StringVar(&opt.token, "token", os.Getenv("CONTEXP_TOKEN"),
		"bearer token for a control plane running with --auth-tokens (env CONTEXP_TOKEN)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opt.control == "" {
		return nil, errors.New("--control is required")
	}
	if opt.heartbeat <= 0 || opt.lease <= 0 {
		return nil, errors.New("--heartbeat and --lease must be positive")
	}
	if opt.telemBatch < 0 {
		return nil, errors.New("--telemetry-batch must be >= 0")
	}
	if opt.id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "agent"
		}
		opt.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return opt, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "contexp-agent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	opt, err := parseFlags(args)
	if err != nil {
		return err
	}

	// Bind first so the advertised address carries the resolved port
	// (":0" becomes a concrete one).
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}

	cfg := agent.Config{
		ID:                opt.id,
		ControlPlane:      strings.TrimRight(opt.control, "/"),
		AdvertiseAddr:     ln.Addr().String(),
		HeartbeatInterval: opt.heartbeat,
		LeaseTTL:          opt.lease,
		Token:             opt.token,
		Logf: func(format string, args ...any) {
			fmt.Printf("agent: "+format+"\n", args...)
		},
	}
	if opt.telemBatch > 0 {
		cfg.Telemetry = wire.NewClient(cfg.ControlPlane, nil, opt.telemBatch)
		cfg.Telemetry.SetToken(opt.token)
	}
	a, err := agent.New(cfg)
	if err != nil {
		return err
	}
	for _, pf := range opt.proxies {
		if _, err := a.RegisterProxy(pf.service, pf.upstreams); err != nil {
			return fmt.Errorf("mounting proxy for %s: %w", pf.service, err)
		}
		fmt.Printf("agent: proxying %s via /proxy/%s/ (%d upstreams)\n",
			pf.service, pf.service, len(pf.upstreams))
	}
	a.Start()
	defer func() {
		if err := a.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "contexp-agent: closing:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Handler:     a.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("contexp-agent %s serving on %s, watching %s\n",
			opt.id, ln.Addr(), cfg.ControlPlane)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("contexp-agent: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}
