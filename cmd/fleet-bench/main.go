// Command fleet-bench measures the distributed data plane at fleet
// scale and gates its three acceptance properties:
//
//  1. Propagation: a phase-transition-shaped routing change must reach
//     every agent in the fleet fast (p95 end-to-end below --p95-max).
//  2. Scaling: aggregate Resolve throughput across --scale-agents
//     agents must exceed a single agent's by --scale-min, because each
//     agent resolves from its own local snapshot (no shared state, no
//     network hop — the whole point of distributing the table).
//  3. Fail-static: with the control plane dead, every agent keeps
//     answering Resolve from its last-applied snapshot and reports
//     itself stale.
//
// The control plane is real (contexpd's server over HTTP on loopback);
// the agents are real agent.Agent instances with live watch streams.
// Only their placement is simulated: they share this process, so the
// scaling measurement runs agents SEQUENTIALLY and sums their rates —
// modeling one agent per machine — instead of racing goroutines over
// this machine's cores, which would measure the container, not the
// architecture.
//
//	fleet-bench [--agents 50] [--rounds 20] [--p95-max 250ms]
//	            [--scale-agents 16] [--scale-min 10]
//	            [--resolve-window 100ms] [--json]
//
// Exit status 1 when any gate fails.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"contexp/internal/agent"
	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/server"
)

type options struct {
	agents        int
	rounds        int
	p95Max        time.Duration
	scaleAgents   int
	scaleMin      float64
	resolveWindow time.Duration
	jsonOut       bool
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("fleet-bench", flag.ContinueOnError)
	opt := &options{}
	fs.IntVar(&opt.agents, "agents", 50, "fleet size for the propagation measurement")
	fs.IntVar(&opt.rounds, "rounds", 20, "phase transitions to measure")
	fs.DurationVar(&opt.p95Max, "p95-max", 250*time.Millisecond,
		"gate: p95 propagation latency ceiling")
	fs.IntVar(&opt.scaleAgents, "scale-agents", 16, "fleet size for the scaling measurement")
	fs.Float64Var(&opt.scaleMin, "scale-min", 10,
		"gate: minimum aggregate/single Resolve throughput ratio")
	fs.DurationVar(&opt.resolveWindow, "resolve-window", 100*time.Millisecond,
		"per-agent Resolve measurement window")
	fs.BoolVar(&opt.jsonOut, "json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opt.agents <= 0 || opt.rounds <= 0 || opt.scaleAgents <= 1 {
		return nil, errors.New("--agents and --rounds must be positive, --scale-agents > 1")
	}
	return opt, nil
}

// Report is the machine-readable result.
type Report struct {
	Agents           int     `json:"agents"`
	Rounds           int     `json:"rounds"`
	PropagationP50Ms float64 `json:"propagationP50Ms"`
	PropagationP95Ms float64 `json:"propagationP95Ms"`
	PropagationMaxMs float64 `json:"propagationMaxMs"`

	ScaleAgents  int     `json:"scaleAgents"`
	SingleRPS    float64 `json:"singleRPS"`
	AggregateRPS float64 `json:"aggregateRPS"`
	ScaleRatio   float64 `json:"scaleRatio"`

	FailStaticServed bool `json:"failStaticServed"`
	FailStaticStale  bool `json:"failStaticStale"`

	Pass bool `json:"pass"`
}

// plane is an in-process control plane on a real loopback listener.
type plane struct {
	url   string
	table *router.Table
	hub   *fleet.Hub
	srv   *http.Server
	ln    net.Listener
}

func startPlane() (*plane, error) {
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, DefaultCheckInterval: time.Second,
	})
	if err != nil {
		return nil, err
	}
	hub := fleet.New(fleet.Config{Table: table, HeartbeatInterval: time.Second})
	s, err := server.New(server.Config{Engine: engine, Table: table, Store: store, Fleet: hub})
	if err != nil {
		hub.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &plane{
		url:   "http://" + ln.Addr().String(),
		table: table,
		hub:   hub,
		srv:   srv,
		ln:    ln,
	}, nil
}

func (p *plane) stop() {
	p.hub.Close()
	_ = p.srv.Close()
}

func spawnAgents(p *plane, n int) ([]*agent.Agent, error) {
	agents := make([]*agent.Agent, 0, n)
	for i := 0; i < n; i++ {
		a, err := agent.New(agent.Config{
			ID:                fmt.Sprintf("bench-%03d", i),
			ControlPlane:      p.url,
			HeartbeatInterval: time.Second,
			LeaseTTL:          500 * time.Millisecond,
			ReconnectMin:      10 * time.Millisecond,
			ReconnectMax:      100 * time.Millisecond,
		})
		if err != nil {
			return agents, err
		}
		a.Start()
		agents = append(agents, a)
	}
	return agents, nil
}

func waitConverged(agents []*agent.Agent, version uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		for _, a := range agents {
			if a.Version() != version {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not converge to version %d within %s", version, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// measureResolveRPS runs a tight Resolve loop against one agent's local
// table for the window and returns the rate.
func measureResolveRPS(a *agent.Agent, window time.Duration) float64 {
	req := &router.Request{UserID: "bench-user"}
	count := 0
	start := time.Now()
	for time.Since(start) < window {
		for i := 0; i < 1024; i++ {
			if _, err := a.Table().Resolve("svc", req); err != nil {
				return 0
			}
			count++
		}
	}
	return float64(count) / time.Since(start).Seconds()
}

func run(opt *options) (*Report, error) {
	rep := &Report{Agents: opt.agents, Rounds: opt.rounds, ScaleAgents: opt.scaleAgents}

	p, err := startPlane()
	if err != nil {
		return nil, err
	}
	defer p.stop()
	if err := p.table.Set(router.Route{
		Service:  "svc",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}); err != nil {
		return nil, err
	}

	agents, err := spawnAgents(p, opt.agents)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	if err != nil {
		return nil, err
	}
	if err := waitConverged(agents, p.table.Version(), 10*time.Second); err != nil {
		return nil, fmt.Errorf("initial sync: %w", err)
	}

	// --- propagation: phase-transition-shaped weight shifts ---
	latencies := make([]time.Duration, 0, opt.rounds)
	for round := 0; round < opt.rounds; round++ {
		w := float64(round%10+1) / 20 // 0.05 .. 0.50 candidate share
		start := time.Now()
		if err := p.table.SetWeights("svc", []router.Backend{
			{Version: "v1", Weight: 1 - w}, {Version: "v2", Weight: w},
		}); err != nil {
			return nil, err
		}
		if err := waitConverged(agents, p.table.Version(), 10*time.Second); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		latencies = append(latencies, time.Since(start))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.PropagationP50Ms = percentileMs(latencies, 0.50)
	rep.PropagationP95Ms = percentileMs(latencies, 0.95)
	rep.PropagationMaxMs = percentileMs(latencies, 1)

	// --- scaling: sum of sequential per-agent rates vs one agent ---
	// Sequential on purpose: each agent models its own machine, so the
	// aggregate is the sum of independent local rates, not a contended
	// parallel run on this container's cores.
	scale := agents[:opt.scaleAgents]
	rep.SingleRPS = measureResolveRPS(scale[0], opt.resolveWindow)
	for _, a := range scale {
		rep.AggregateRPS += measureResolveRPS(a, opt.resolveWindow)
	}
	if rep.SingleRPS > 0 {
		rep.ScaleRatio = rep.AggregateRPS / rep.SingleRPS
	}

	// --- fail-static: kill the brain, the edges keep serving ---
	wantVersion := p.table.Version()
	p.stop()
	time.Sleep(600 * time.Millisecond) // past every agent's lease
	rep.FailStaticServed = true
	rep.FailStaticStale = true
	req := &router.Request{UserID: "partitioned-user"}
	for _, a := range agents {
		if d, err := a.Table().Resolve("svc", req); err != nil || d.Version == "" {
			rep.FailStaticServed = false
		}
		if a.Version() != wantVersion {
			rep.FailStaticServed = false
		}
		if !a.Stale() {
			rep.FailStaticStale = false
		}
	}

	rep.Pass = rep.PropagationP95Ms <= float64(opt.p95Max)/float64(time.Millisecond) &&
		rep.ScaleRatio >= opt.scaleMin &&
		rep.FailStaticServed && rep.FailStaticStale
	return rep, nil
}

func main() {
	opt, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-bench:", err)
		os.Exit(2)
	}
	rep, err := run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-bench:", err)
		os.Exit(1)
	}
	if opt.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Printf("fleet-bench: %d agents, %d transitions\n", rep.Agents, rep.Rounds)
		fmt.Printf("  propagation  p50 %.2fms  p95 %.2fms  max %.2fms  (gate p95 <= %s)\n",
			rep.PropagationP50Ms, rep.PropagationP95Ms, rep.PropagationMaxMs, opt.p95Max)
		fmt.Printf("  resolve rate single %.0f/s  aggregate(%d) %.0f/s  ratio %.1fx  (gate >= %.0fx)\n",
			rep.SingleRPS, rep.ScaleAgents, rep.AggregateRPS, rep.ScaleRatio, opt.scaleMin)
		fmt.Printf("  fail-static  served=%v stale=%v\n", rep.FailStaticServed, rep.FailStaticStale)
	}
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "fleet-bench: GATE FAILED")
		os.Exit(1)
	}
	fmt.Println("fleet-bench: all gates passed")
}
