// Command bifrost-bench regenerates the Chapter 4 evaluation
// artifacts: the end-user overhead measurement (Fig 4.6 / Table 4.1)
// over real HTTP, and the engine-performance sweeps over parallel
// strategies (Figs 4.7/4.8) and check counts (Figs 4.9/4.10).
//
// Usage:
//
//	bifrost-bench -artifact all
//	bifrost-bench -artifact 4.6 -requests 3000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"contexp/internal/bifrost"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bifrost-bench", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "which artifact: 4.6, 4.7, 4.9, or all")
	requests := fs.Int("requests", 1500, "requests per arm for the overhead measurement")
	serviceMs := fs.Float64("service-ms", 5, "mean backend service time (ms)")
	phase := fs.Duration("phase", 2*time.Second, "duration of each strategy phase")
	runDur := fs.Duration("run", 2*time.Second, "duration of each scaling measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := func(id string) bool { return *artifact == "all" || *artifact == id }

	if want("4.6") {
		cfg := bifrost.OverheadConfig{
			Requests:      *requests,
			ServiceTimeMs: *serviceMs,
			PhaseDuration: *phase,
			Seed:          1,
		}
		fig, err := bifrost.EvalFigure4_6(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("4.7") || want("4.8") {
		cfg := bifrost.DefaultParallelConfig()
		cfg.RunDuration = *runDur
		res, err := bifrost.EvalFigure4_7And4_8(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if want("4.9") || want("4.10") {
		cfg := bifrost.DefaultChecksConfig()
		cfg.RunDuration = *runDur
		res, err := bifrost.EvalFigure4_9And4_10(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	return nil
}
