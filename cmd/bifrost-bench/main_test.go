package main

import (
	"strings"
	"testing"
)

func TestRunScalingArtifacts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-artifact", "4.7", "-run", "200ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figures 4.7 / 4.8") {
		t.Errorf("output missing scaling table:\n%s", out.String())
	}
}

func TestRunOverheadArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("real HTTP measurement")
	}
	var out strings.Builder
	err := run([]string{"-artifact", "4.6", "-requests", "100", "-service-ms", "1", "-phase", "200ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 4.1", "overhead"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", "many"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
