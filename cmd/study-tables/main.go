// Command study-tables regenerates the Chapter 2 survey tables
// (Tables 2.2–2.8 and the Fig 2.3 demographics) from a synthesized
// respondent population fitted to every published per-stratum marginal.
//
// Usage:
//
//	study-tables            # all tables
//	study-tables -seed 42   # same marginals, different individuals
package main

import (
	"flag"
	"fmt"
	"os"

	"contexp/internal/study"
)

func main() {
	seed := flag.Int64("seed", 1, "population shuffle seed (marginals are seed-independent)")
	flag.Parse()
	pop := study.Generate(*seed)
	fmt.Fprint(os.Stdout, pop.AllTables())
}
