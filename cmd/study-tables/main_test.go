package main

import (
	"strings"
	"testing"

	"contexp/internal/study"
)

func TestTablesOutput(t *testing.T) {
	out := study.Generate(1).AllTables()
	for _, want := range []string{
		"Table 2.1", "Figure 2.3", "Table 2.2", "Table 2.8", "Table 2.9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
