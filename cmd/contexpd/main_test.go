package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

func TestParseFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		opt, err := parseFlags(nil)
		if err != nil {
			t.Fatal(err)
		}
		if opt.addr != ":8080" || opt.demo || !opt.demoEnact {
			t.Errorf("defaults = %+v", opt)
		}
		if opt.checkInterval != 5*time.Second {
			t.Errorf("check interval = %v", opt.checkInterval)
		}
	})

	t.Run("demo flags", func(t *testing.T) {
		opt, err := parseFlags([]string{
			"--addr", "127.0.0.1:9999", "--demo",
			"--demo-rps", "50", "--demo-latency-scale", "0.05",
			"--demo-population", "100", "--demo-seed", "9",
			"--demo-enact=false", "--check-interval", "1s",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.demo || opt.demoEnact || opt.demoRPS != 50 ||
			opt.demoScale != 0.05 || opt.demoPop != 100 || opt.demoSeed != 9 {
			t.Errorf("opt = %+v", opt)
		}
		if opt.addr != "127.0.0.1:9999" || opt.checkInterval != time.Second {
			t.Errorf("opt = %+v", opt)
		}
	})

	t.Run("unknown flag", func(t *testing.T) {
		if _, err := parseFlags([]string{"--wibble"}); err == nil {
			t.Error("expected error for unknown flag")
		}
	})

	t.Run("positional arguments rejected", func(t *testing.T) {
		_, err := parseFlags([]string{"serve"})
		if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("nonpositive check interval rejected", func(t *testing.T) {
		if _, err := parseFlags([]string{"--check-interval", "0s"}); err == nil {
			t.Error("expected error for zero check interval")
		}
	})

	t.Run("scheduler flags", func(t *testing.T) {
		opt, err := parseFlags([]string{"--max-concurrent", "8", "--capacity", "0.5"})
		if err != nil {
			t.Fatal(err)
		}
		if opt.maxConcurrent != 8 || opt.capacity != 0.5 {
			t.Errorf("opt = %+v", opt)
		}
		if opt, _ := parseFlags(nil); opt.maxConcurrent != 4 || opt.capacity != 0.8 {
			t.Errorf("defaults = %+v", opt)
		}
		if _, err := parseFlags([]string{"--max-concurrent", "0"}); err == nil {
			t.Error("expected error for zero max-concurrent")
		}
		if _, err := parseFlags([]string{"--capacity", "1.5"}); err == nil {
			t.Error("expected error for capacity above 1")
		}
	})
}

func TestParseDataDirFlag(t *testing.T) {
	opt, err := parseFlags([]string{"--data-dir", "/tmp/contexp-journal"})
	if err != nil {
		t.Fatal(err)
	}
	if opt.dataDir != "/tmp/contexp-journal" {
		t.Errorf("dataDir = %q", opt.dataDir)
	}
	if opt, _ := parseFlags(nil); opt.dataDir != "" {
		t.Errorf("default dataDir = %q, want empty (in-memory)", opt.dataDir)
	}
}

// TestDataDirRecoveryOverHTTP is the daemon-level acceptance flow: a
// previous process journaled a run and died mid-phase; contexpd booted
// on the same --data-dir serves the run's full pre-crash event history
// over /v1/runs/{name} and settles it without manual intervention.
func TestDataDirRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: enact a strategy against a file journal and die
	// mid-phase (abandoned, journal synced — the kill -9 moment).
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Journal: log1,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := bifrost.ParseStrategy(`
strategy "crashy" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on inconclusive -> rollback
        on success -> promote
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	liveRun, err := engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(liveRun.Events()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("run produced no events")
		}
		time.Sleep(10 * time.Millisecond)
	}
	preEvents := len(liveRun.Events())
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Release the directory flock as process death would; the on-disk
	// journal is exactly what the Sync left.
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process two: the real daemon on the same data dir.
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"--addr", addr, "--data-dir", dir})
	}()

	base := "http://" + addr
	var detail struct {
		Status    string `json:"status"`
		Recovered bool   `json:"recovered"`
		EventLog  []any  `json:"eventLog"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/crashy")
		if err == nil {
			body := json.NewDecoder(resp.Body)
			decodeErr := body.Decode(&detail)
			resp.Body.Close()
			if decodeErr == nil && resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never served the recovered run")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !detail.Recovered {
		t.Error("run not marked recovered")
	}
	// "on inconclusive -> rollback" means the interrupted phase settles
	// the run to rolled-back at boot, with the pre-crash history intact.
	if detail.Status != "rolled-back" {
		t.Errorf("status = %q, want rolled-back (settled at boot)", detail.Status)
	}
	if len(detail.EventLog) < preEvents {
		t.Errorf("served %d events, pre-crash history had %d", len(detail.EventLog), preEvents)
	}

	// Shut the daemon down via its signal path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDataDirQueueRecoveryOverHTTP is the scheduling acceptance flow:
// a previous process had one strategy running and a same-service
// strategy queued behind it, then died. The daemon booted on the same
// --data-dir restores the still-queued submission — visible in
// /v1/schedule — behind the resumed blocker.
func TestDataDirQueueRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: a blocker run plus a queued submission, then death.
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Journal: log1,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bifrost.NewScheduler(bifrost.SchedulerConfig{Engine: engine, Journal: log1})
	if err != nil {
		t.Fatal(err)
	}
	holdDSL := func(name string) string {
		return `
strategy "` + name + `" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on inconclusive -> retry
        max-retries = 10
        on success -> promote
    }
}
`
	}
	blocker, err := bifrost.ParseStrategy(holdDSL("blocker"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sched.Submit(blocker); err != nil || res.Queued {
		t.Fatalf("blocker: %+v, %v", res, err)
	}
	pending, err := bifrost.ParseStrategy(holdDSL("pending"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sched.Submit(pending); err != nil || !res.Queued {
		t.Fatalf("pending: %+v, %v", res, err)
	}
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process two: the real daemon on the same data dir.
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"--addr", addr, "--data-dir", dir})
	}()

	base := "http://" + addr
	var snap struct {
		Running []struct {
			Name string `json:"name"`
		} `json:"running"`
		Queue []struct {
			Name      string `json:"name"`
			Recovered bool   `json:"recovered"`
		} `json:"queue"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/schedule")
		if err == nil {
			decodeErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if decodeErr == nil && resp.StatusCode == http.StatusOK && len(snap.Running) > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never served the schedule")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The blocker resumed (on inconclusive -> retry re-enters the
	// interrupted phase), so the restored submission waits behind it.
	if len(snap.Running) != 1 || snap.Running[0].Name != "blocker" {
		t.Errorf("running = %+v, want the resumed blocker", snap.Running)
	}
	if len(snap.Queue) != 1 || snap.Queue[0].Name != "pending" || !snap.Queue[0].Recovered {
		t.Errorf("queue = %+v, want the recovered pending submission", snap.Queue)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestCurlHost(t *testing.T) {
	if got := curlHost(":8080"); got != "localhost:8080" {
		t.Errorf("curlHost(:8080) = %q", got)
	}
	if got := curlHost("10.0.0.1:80"); got != "10.0.0.1:80" {
		t.Errorf("curlHost(10.0.0.1:80) = %q", got)
	}
}
