package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/health"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

func TestParseFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		opt, err := parseFlags(nil)
		if err != nil {
			t.Fatal(err)
		}
		if opt.addr != ":8080" || opt.demo || !opt.demoEnact {
			t.Errorf("defaults = %+v", opt)
		}
		if opt.checkInterval != 5*time.Second {
			t.Errorf("check interval = %v", opt.checkInterval)
		}
	})

	t.Run("demo flags", func(t *testing.T) {
		opt, err := parseFlags([]string{
			"--addr", "127.0.0.1:9999", "--demo",
			"--demo-rps", "50", "--demo-latency-scale", "0.05",
			"--demo-population", "100", "--demo-seed", "9",
			"--demo-enact=false", "--check-interval", "1s",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.demo || opt.demoEnact || opt.demoRPS != 50 ||
			opt.demoScale != 0.05 || opt.demoPop != 100 || opt.demoSeed != 9 {
			t.Errorf("opt = %+v", opt)
		}
		if opt.addr != "127.0.0.1:9999" || opt.checkInterval != time.Second {
			t.Errorf("opt = %+v", opt)
		}
	})

	t.Run("unknown flag", func(t *testing.T) {
		if _, err := parseFlags([]string{"--wibble"}); err == nil {
			t.Error("expected error for unknown flag")
		}
	})

	t.Run("positional arguments rejected", func(t *testing.T) {
		_, err := parseFlags([]string{"serve"})
		if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("nonpositive check interval rejected", func(t *testing.T) {
		if _, err := parseFlags([]string{"--check-interval", "0s"}); err == nil {
			t.Error("expected error for zero check interval")
		}
	})

	t.Run("trace buffer", func(t *testing.T) {
		opt, err := parseFlags(nil)
		if err != nil || opt.traceBuffer != 100_000 {
			t.Errorf("default trace buffer = %d, %v", opt.traceBuffer, err)
		}
		if opt, _ := parseFlags([]string{"--trace-buffer", "0"}); opt.traceBuffer != 0 {
			t.Errorf("trace buffer = %d, want 0 (disabled)", opt.traceBuffer)
		}
		if _, err := parseFlags([]string{"--trace-buffer", "-1"}); err == nil {
			t.Error("expected error for negative trace buffer")
		}
	})

	t.Run("eval plane flags", func(t *testing.T) {
		opt, err := parseFlags(nil)
		if err != nil || opt.evalWorkers != 0 || opt.pprofAddr != "" {
			t.Errorf("defaults = %+v, %v", opt, err)
		}
		opt, err = parseFlags([]string{"--eval-workers", "8", "--pprof", "localhost:6060"})
		if err != nil {
			t.Fatal(err)
		}
		if opt.evalWorkers != 8 || opt.pprofAddr != "localhost:6060" {
			t.Errorf("opt = %+v", opt)
		}
		if _, err := parseFlags([]string{"--eval-workers", "-1"}); err == nil {
			t.Error("expected error for negative eval-workers")
		}
	})

	t.Run("scheduler flags", func(t *testing.T) {
		opt, err := parseFlags([]string{"--max-concurrent", "8", "--capacity", "0.5"})
		if err != nil {
			t.Fatal(err)
		}
		if opt.maxConcurrent != 8 || opt.capacity != 0.5 {
			t.Errorf("opt = %+v", opt)
		}
		if opt, _ := parseFlags(nil); opt.maxConcurrent != 4 || opt.capacity != 0.8 {
			t.Errorf("defaults = %+v", opt)
		}
		if _, err := parseFlags([]string{"--max-concurrent", "0"}); err == nil {
			t.Error("expected error for zero max-concurrent")
		}
		if _, err := parseFlags([]string{"--capacity", "1.5"}); err == nil {
			t.Error("expected error for capacity above 1")
		}
	})
}

func TestParseDataDirFlag(t *testing.T) {
	opt, err := parseFlags([]string{"--data-dir", "/tmp/contexp-journal"})
	if err != nil {
		t.Fatal(err)
	}
	if opt.dataDir != "/tmp/contexp-journal" {
		t.Errorf("dataDir = %q", opt.dataDir)
	}
	if opt, _ := parseFlags(nil); opt.dataDir != "" {
		t.Errorf("default dataDir = %q, want empty (in-memory)", opt.dataDir)
	}
}

// TestDataDirRecoveryOverHTTP is the daemon-level acceptance flow: a
// previous process journaled a run and died mid-phase; contexpd booted
// on the same --data-dir serves the run's full pre-crash event history
// over /v1/runs/{name} and settles it without manual intervention.
func TestDataDirRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: enact a strategy against a file journal and die
	// mid-phase (abandoned, journal synced — the kill -9 moment).
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Journal: log1,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := bifrost.ParseStrategy(`
strategy "crashy" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on inconclusive -> rollback
        on success -> promote
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	liveRun, err := engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(liveRun.Events()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("run produced no events")
		}
		time.Sleep(10 * time.Millisecond)
	}
	preEvents := len(liveRun.Events())
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Release the directory flock as process death would; the on-disk
	// journal is exactly what the Sync left.
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process two: the real daemon on the same data dir.
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"--addr", addr, "--data-dir", dir})
	}()

	base := "http://" + addr
	var detail struct {
		Status    string `json:"status"`
		Recovered bool   `json:"recovered"`
		EventLog  []any  `json:"eventLog"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/crashy")
		if err == nil {
			body := json.NewDecoder(resp.Body)
			decodeErr := body.Decode(&detail)
			resp.Body.Close()
			if decodeErr == nil && resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never served the recovered run")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !detail.Recovered {
		t.Error("run not marked recovered")
	}
	// "on inconclusive -> rollback" means the interrupted phase settles
	// the run to rolled-back at boot, with the pre-crash history intact.
	if detail.Status != "rolled-back" {
		t.Errorf("status = %q, want rolled-back (settled at boot)", detail.Status)
	}
	if len(detail.EventLog) < preEvents {
		t.Errorf("served %d events, pre-crash history had %d", len(detail.EventLog), preEvents)
	}

	// Shut the daemon down via its signal path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDataDirQueueRecoveryOverHTTP is the scheduling acceptance flow:
// a previous process had one strategy running and a same-service
// strategy queued behind it, then died. The daemon booted on the same
// --data-dir restores the still-queued submission — visible in
// /v1/schedule — behind the resumed blocker.
func TestDataDirQueueRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: a blocker run plus a queued submission, then death.
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Journal: log1,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bifrost.NewScheduler(bifrost.SchedulerConfig{Engine: engine, Journal: log1})
	if err != nil {
		t.Fatal(err)
	}
	holdDSL := func(name string) string {
		return `
strategy "` + name + `" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on inconclusive -> retry
        max-retries = 10
        on success -> promote
    }
}
`
	}
	blocker, err := bifrost.ParseStrategy(holdDSL("blocker"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sched.Submit(blocker); err != nil || res.Queued {
		t.Fatalf("blocker: %+v, %v", res, err)
	}
	pending, err := bifrost.ParseStrategy(holdDSL("pending"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sched.Submit(pending); err != nil || !res.Queued {
		t.Fatalf("pending: %+v, %v", res, err)
	}
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process two: the real daemon on the same data dir.
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"--addr", addr, "--data-dir", dir})
	}()

	base := "http://" + addr
	var snap struct {
		Running []struct {
			Name string `json:"name"`
		} `json:"running"`
		Queue []struct {
			Name      string `json:"name"`
			Recovered bool   `json:"recovered"`
		} `json:"queue"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/schedule")
		if err == nil {
			decodeErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if decodeErr == nil && resp.StatusCode == http.StatusOK && len(snap.Running) > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never served the schedule")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The blocker resumed (on inconclusive -> retry re-enters the
	// interrupted phase), so the restored submission waits behind it.
	if len(snap.Running) != 1 || snap.Running[0].Name != "blocker" {
		t.Errorf("running = %+v, want the resumed blocker", snap.Running)
	}
	if len(snap.Queue) != 1 || snap.Queue[0].Name != "pending" || !snap.Queue[0].Recovered {
		t.Errorf("queue = %+v, want the recovered pending submission", snap.Queue)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDataDirTopologyVerdictRecoveryOverHTTP is the topology-gate
// crash-recovery flow: process one journals a topology verdict (the
// structural check trips, failing the phase into a goto'd hold phase),
// then dies mid-hold. The daemon booted on the same --data-dir replays
// the verdict from the journal instead of re-evaluating it — the traces
// that produced it died with the old process — and resumes the run in
// the hold phase without re-entering the concluded one.
func TestDataDirTopologyVerdictRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: engine with a live topology pipeline and a file
	// journal.
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	collector := tracing.NewLiveCollector(10_000)
	monitor := health.NewMonitor(collector, -1) // harvest immediately
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table: table, Store: store, Journal: log1, Topology: monitor,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := bifrost.ParseStrategy(`
strategy "topo-crashy" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "gate" {
        practice = canary
        traffic  = 50%
        duration = 30s
        check "structure" {
            kind       = topology
            min-traces = 1
            interval   = 50ms
        }
        on failure -> phase "hold"
    }
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on inconclusive -> retry
        max-retries = 10
        on success -> promote
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	liveRun, err := engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	// Feed one baseline trace and one candidate trace whose topology
	// shows a disallowed structural change (a new dependency), so the
	// gate phase's check fails and the run transitions to "hold".
	mkSpan := func(trace, span, parent uint64, svc, ver, ep string) tracing.Span {
		return tracing.Span{
			TraceID: tracing.TraceID(trace), SpanID: tracing.SpanID(span),
			ParentID: tracing.SpanID(parent), Service: svc, Version: ver,
			Endpoint: ep, Start: time.Now(), Duration: time.Millisecond,
		}
	}
	collector.Record(mkSpan(1, 1, 0, "svc", "v1", "GET /x"))
	collector.Record(mkSpan(2, 2, 0, "svc", "v2", "GET /x"))
	collector.Record(mkSpan(2, 3, 2, "billing", "v1", "POST /charge"))

	// Wait until the verdict concluded the gate phase and the run sits
	// in the hold phase, then "die" mid-phase.
	deadline := time.Now().Add(5 * time.Second)
	verdicts := func(events []bifrost.Event) int {
		n := 0
		for _, ev := range events {
			if ev.Type == bifrost.EventTopologyVerdict {
				n++
			}
		}
		return n
	}
	for {
		if liveRun.CurrentPhase() == "hold" && verdicts(liveRun.Events()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached the hold phase (phase %q, events %d)",
				liveRun.CurrentPhase(), len(liveRun.Events()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	preVerdicts := verdicts(liveRun.Events())
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process two: the real daemon on the same data dir. Its collector
	// is empty — if recovery re-evaluated the gate's topology check it
	// could never reproduce the verdict.
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"--addr", addr, "--data-dir", dir})
	}()

	base := "http://" + addr
	var detail struct {
		Status    string `json:"status"`
		Phase     string `json:"phase"`
		Recovered bool   `json:"recovered"`
		EventLog  []struct {
			Type  string `json:"type"`
			Phase string `json:"phase"`
		} `json:"eventLog"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/topo-crashy")
		if err == nil {
			decodeErr := json.NewDecoder(resp.Body).Decode(&detail)
			resp.Body.Close()
			if decodeErr == nil && resp.StatusCode == http.StatusOK && detail.Status == "running" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never served the recovered run")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !detail.Recovered {
		t.Error("run not marked recovered")
	}
	// The run resumed in the hold phase: the gate phase's journaled
	// outcome (decided by the topology verdict) was honored, not
	// re-evaluated.
	if detail.Phase != "hold" {
		t.Errorf("resumed phase = %q, want hold", detail.Phase)
	}
	var postVerdicts, gateEntries int
	for _, ev := range detail.EventLog {
		if ev.Type == string(bifrost.EventTopologyVerdict) {
			postVerdicts++
		}
		if ev.Type == string(bifrost.EventPhaseEntered) && ev.Phase == "gate" {
			gateEntries++
		}
	}
	if postVerdicts != preVerdicts {
		t.Errorf("verdicts after recovery = %d, want %d (the journaled verdict, not a re-evaluation)",
			postVerdicts, preVerdicts)
	}
	if gateEntries != 1 {
		t.Errorf("gate phase entered %d times, want 1 (concluded phase must not re-run)", gateEntries)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestCurlHost(t *testing.T) {
	if got := curlHost(":8080"); got != "localhost:8080" {
		t.Errorf("curlHost(:8080) = %q", got)
	}
	if got := curlHost("10.0.0.1:80"); got != "10.0.0.1:80" {
		t.Errorf("curlHost(10.0.0.1:80) = %q", got)
	}
}
