package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		opt, err := parseFlags(nil)
		if err != nil {
			t.Fatal(err)
		}
		if opt.addr != ":8080" || opt.demo || !opt.demoEnact {
			t.Errorf("defaults = %+v", opt)
		}
		if opt.checkInterval != 5*time.Second {
			t.Errorf("check interval = %v", opt.checkInterval)
		}
	})

	t.Run("demo flags", func(t *testing.T) {
		opt, err := parseFlags([]string{
			"--addr", "127.0.0.1:9999", "--demo",
			"--demo-rps", "50", "--demo-latency-scale", "0.05",
			"--demo-population", "100", "--demo-seed", "9",
			"--demo-enact=false", "--check-interval", "1s",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.demo || opt.demoEnact || opt.demoRPS != 50 ||
			opt.demoScale != 0.05 || opt.demoPop != 100 || opt.demoSeed != 9 {
			t.Errorf("opt = %+v", opt)
		}
		if opt.addr != "127.0.0.1:9999" || opt.checkInterval != time.Second {
			t.Errorf("opt = %+v", opt)
		}
	})

	t.Run("unknown flag", func(t *testing.T) {
		if _, err := parseFlags([]string{"--wibble"}); err == nil {
			t.Error("expected error for unknown flag")
		}
	})

	t.Run("positional arguments rejected", func(t *testing.T) {
		_, err := parseFlags([]string{"serve"})
		if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("nonpositive check interval rejected", func(t *testing.T) {
		if _, err := parseFlags([]string{"--check-interval", "0s"}); err == nil {
			t.Error("expected error for zero check interval")
		}
	})
}

func TestCurlHost(t *testing.T) {
	if got := curlHost(":8080"); got != "localhost:8080" {
		t.Errorf("curlHost(:8080) = %q", got)
	}
	if got := curlHost("10.0.0.1:80"); got != "10.0.0.1:80" {
		t.Errorf("curlHost(10.0.0.1:80) = %q", got)
	}
}
