// Command contexpd is the continuous-experimentation control plane: a
// long-running daemon that accepts experimentation-as-code strategies
// over HTTP, enacts them with the Bifrost engine against the shared
// routing table, and reports runs, routes, and component health.
//
// Usage:
//
//	contexpd [flags]
//
//	--addr :8080             listen address
//	--data-dir ""            run-state journal directory; empty keeps
//	                         runs in memory only (no crash recovery)
//	--check-interval 5s      default check interval for strategies
//	--eval-workers 0         bounded pool fanning each run's due checks
//	                         out in parallel; 0 sizes it to GOMAXPROCS,
//	                         1 evaluates serially. Event trails are
//	                         byte-identical at any setting
//	--pprof ""               serve net/http/pprof on this separate,
//	                         private address (e.g. localhost:6060);
//	                         empty disables profiling
//	--max-concurrent 4       concurrently enacting strategies ceiling
//	--capacity 0.8           aggregate candidate-traffic share ceiling
//	--trace-buffer 100000    span cap of the live trace collector;
//	                         0 disables the topology pipeline
//	--fleet-heartbeat 5s     heartbeat interval of the agent watch
//	                         streams (see cmd/contexp-agent)
//	--auth-tokens ""         comma-separated tenant=token pairs; when
//	                         set, every /v1/* request must present one
//	                         of the tokens as a bearer token and runs
//	                         under that tenant's namespace. Empty keeps
//	                         the API open (single default tenant), the
//	                         pre-tenancy and --demo posture
//	--rate-limit 0           per-tenant request budget (requests/second
//	                         against /v1/*); 0 disables throttling
//	--rate-burst 0           per-tenant burst on top of --rate-limit
//	                         (default: one second's worth)
//	--metrics-retention 24h  evict metric series idle longer than this;
//	                         0 keeps every series forever
//	--http-log               log one structured line per API request
//	                         (method, path, status, tenant, request ID)
//	--demo                   boot the simulated shop and drive traffic
//	--demo-rps 25            demo request rate
//	--demo-latency-scale 0.1 demo latency compression factor
//	--demo-population 500    demo user population size
//	--demo-seed 1            demo determinism seed
//	--demo-enact             auto-submit the demo canary→rollout strategy
//	--demo-faults ""         inject a builtin chaos scenario's fault
//	                         schedule into the demo shop (error-storm,
//	                         dependency-blackout, flash-crowd, ...);
//	                         /healthz reports the live fault state
//	--demo-wire              ship the demo's telemetry to the daemon's
//	                         own /v1/metrics and /v1/spans as binary
//	                         batch frames instead of recording
//	                         in-process (exercises the wire codec)
//
// With --demo the daemon is a self-contained system: the microservice
// shop runs as real HTTP servers behind per-service routing proxies, a
// load generator plays the user population, and (unless --demo-enact
// is disabled) a canary → gradual-rollout strategy is enacted so phase
// transitions are immediately observable:
//
//	go run ./cmd/contexpd --demo
//	curl localhost:8080/v1/runs
//	curl -N localhost:8080/v1/runs/demo-canary-rollout/events
//
// With --data-dir the daemon journals every run event to a segmented
// write-ahead log before applying it, and replays the log at boot:
// finished runs come back with their full audit trails, runs a crash
// interrupted are deterministically resumed or rolled back (see
// docs/PERSISTENCE.md), and strategies that were queued but not yet
// launched are restored to the queue (see docs/SCHEDULING.md).
//
// With --trace-buffer > 0 (the default) the daemon runs the live
// topology pipeline of docs/HEALTH.md: spans stream in from the demo
// backends or POST /v1/spans, a bounded collector assembles them into
// traces, and per-run baseline/candidate interaction graphs answer
// `kind = topology` checks and GET /v1/runs/{name}/health.
//
// Every submission goes through the live scheduler: strategies whose
// conflict footprint (service, user groups, capacity, max-concurrency)
// is clear launch immediately, the rest queue and are placed on the
// planning horizon by the Fenrir genetic optimizer. The queue is
// observable at /v1/schedule (add ?format=gantt for the ASCII chart)
// and /v1/schedule/events.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/health"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/scenario"
	"contexp/internal/server"
	"contexp/internal/tenancy"
	"contexp/internal/tracing"
)

type options struct {
	addr           string
	dataDir        string
	checkInterval  time.Duration
	evalWorkers    int
	pprofAddr      string
	maxConcurrent  int
	capacity       float64
	traceBuffer    int
	fleetHeartbeat time.Duration
	authTokens     string
	rateLimit      float64
	rateBurst      int
	retention      time.Duration
	httpLog        bool
	demo           bool
	demoRPS        float64
	demoScale      float64
	demoPop        int
	demoSeed       int64
	demoEnact      bool
	demoFaults     string
	demoWire       bool
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("contexpd", flag.ContinueOnError)
	opt := &options{}
	fs.StringVar(&opt.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opt.dataDir, "data-dir", "",
		"directory for the run-state journal; empty keeps run state in memory only")
	fs.DurationVar(&opt.checkInterval, "check-interval", 5*time.Second,
		"default interval for checks that do not declare one")
	fs.IntVar(&opt.evalWorkers, "eval-workers", 0,
		"bounded evaluation pool size; 0 sizes it to GOMAXPROCS, 1 evaluates checks serially")
	fs.StringVar(&opt.pprofAddr, "pprof", "",
		"serve net/http/pprof on this separate private address (e.g. localhost:6060); empty disables")
	fs.IntVar(&opt.maxConcurrent, "max-concurrent", 4,
		"maximum number of concurrently enacting strategies")
	fs.Float64Var(&opt.capacity, "capacity", 0.8,
		"aggregate candidate-traffic share ceiling across concurrent runs (0,1]")
	fs.IntVar(&opt.traceBuffer, "trace-buffer", 100_000,
		"span cap of the live trace collector feeding topology checks; 0 disables live tracing")
	fs.DurationVar(&opt.fleetHeartbeat, "fleet-heartbeat", 5*time.Second,
		"heartbeat interval of the agent watch streams (/v1/routing/watch)")
	fs.StringVar(&opt.authTokens, "auth-tokens", "",
		"comma-separated tenant=token pairs; non-empty requires a bearer token on every /v1/* request")
	fs.Float64Var(&opt.rateLimit, "rate-limit", 0,
		"per-tenant API request budget in requests/second; 0 disables throttling")
	fs.IntVar(&opt.rateBurst, "rate-burst", 0,
		"per-tenant burst above --rate-limit (default: one second's worth)")
	fs.DurationVar(&opt.retention, "metrics-retention", 24*time.Hour,
		"evict metric series idle longer than this; 0 keeps every series forever")
	fs.BoolVar(&opt.httpLog, "http-log", false,
		"log one structured line per API request")
	fs.BoolVar(&opt.demo, "demo", false,
		"boot the simulated shop behind routing proxies and drive traffic")
	fs.Float64Var(&opt.demoRPS, "demo-rps", 25, "demo request rate (requests/second)")
	fs.Float64Var(&opt.demoScale, "demo-latency-scale", 0.1,
		"demo latency compression (0.1 runs a 20ms endpoint in 2ms)")
	fs.IntVar(&opt.demoPop, "demo-population", 500, "demo user population size")
	fs.Int64Var(&opt.demoSeed, "demo-seed", 1, "demo determinism seed")
	fs.BoolVar(&opt.demoEnact, "demo-enact", true,
		"with --demo, auto-submit the demo canary→rollout strategy")
	fs.StringVar(&opt.demoFaults, "demo-faults", "",
		fmt.Sprintf("with --demo, inject the named chaos scenario's fault schedule (one of %v)",
			scenario.Names()))
	fs.BoolVar(&opt.demoWire, "demo-wire", false,
		"with --demo, post the shop's telemetry to the daemon's own ingestion "+
			"endpoints as binary batch frames instead of recording in-process")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opt.checkInterval <= 0 {
		return nil, errors.New("--check-interval must be positive")
	}
	if opt.evalWorkers < 0 {
		return nil, errors.New("--eval-workers must be >= 0")
	}
	if opt.maxConcurrent <= 0 {
		return nil, errors.New("--max-concurrent must be positive")
	}
	if opt.capacity <= 0 || opt.capacity > 1 {
		return nil, errors.New("--capacity must be in (0,1]")
	}
	if opt.traceBuffer < 0 {
		return nil, errors.New("--trace-buffer must be >= 0")
	}
	if opt.fleetHeartbeat <= 0 {
		return nil, errors.New("--fleet-heartbeat must be positive")
	}
	if opt.rateLimit < 0 {
		return nil, errors.New("--rate-limit must be >= 0")
	}
	if opt.rateBurst < 0 {
		return nil, errors.New("--rate-burst must be >= 0")
	}
	if opt.retention < 0 {
		return nil, errors.New("--metrics-retention must be >= 0")
	}
	if opt.demoFaults != "" && !opt.demo {
		return nil, errors.New("--demo-faults requires --demo")
	}
	if opt.demoWire && !opt.demo {
		return nil, errors.New("--demo-wire requires --demo")
	}
	return opt, nil
}

// demoScenarioTarget aims builtin chaos scenarios at the demo shop:
// candidate-targeted faults hit the experimental recommender, ambient
// faults hit the catalog service both recommender versions depend on.
var demoScenarioTarget = scenario.Target{
	Service: "recommendation", Candidate: "v2", Dependency: "catalog",
}

// demoInjector resolves --demo-faults into a fault injector anchored at
// now. Scenarios without faults (steady, ramp, diurnal) yield nil.
func demoInjector(name string, seed int64, now time.Time) (*microsim.Injector, error) {
	spec, err := scenario.ByName(demoScenarioTarget, name)
	if err != nil {
		return nil, err
	}
	sc, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	sc.Seed = seed
	return sc.Injector(now)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "contexpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	opt, err := parseFlags(args)
	if err != nil {
		return err
	}

	table := router.NewTable()
	store := metrics.NewStore(0)

	// Tenancy plane: token → tenant resolution and per-tenant request
	// budgets. Both are optional and independent; absent, every caller
	// is the default tenant with no throttling.
	var resolver *tenancy.Resolver
	if opt.authTokens != "" {
		resolver, err = tenancy.ParseTokens(opt.authTokens)
		if err != nil {
			return err
		}
		fmt.Printf("auth: %d tenant(s) configured: %v\n", len(resolver.Tenants()), resolver.Tenants())
	}
	var limiter *tenancy.Limiter
	if opt.rateLimit > 0 {
		limiter = tenancy.NewLimiter(opt.rateLimit, opt.rateBurst)
	}

	// Durable windowed metrics: reload the rollup tiers saved by the
	// previous process, then periodically persist them and evict idle
	// series (the maintenance loop below).
	rollupPath := ""
	if opt.dataDir != "" {
		rollupPath = filepath.Join(opt.dataDir, "metrics-rollups.json")
		if err := store.LoadSnapshot(rollupPath); err != nil {
			fmt.Printf("metrics: ignoring rollup snapshot: %v\n", err)
		}
	}

	// Live topology pipeline: a bounded span collector plus the monitor
	// folding settled traces into per-run interaction graphs. Disabled
	// entirely with --trace-buffer 0, in which case strategies with
	// topology checks are rejected at launch.
	var collector *tracing.LiveCollector
	var monitor *health.Monitor
	if opt.traceBuffer > 0 {
		collector = tracing.NewLiveCollector(opt.traceBuffer)
		monitor = health.NewMonitor(collector, 0)
	}

	// Run state: durable (file journal + crash recovery) with
	// --data-dir; without it runs live in process memory only, with no
	// journal copy to maintain.
	var jnl journal.Journal
	if opt.dataDir != "" {
		fileLog, err := journal.Open(opt.dataDir, journal.Options{})
		if err != nil {
			return err
		}
		defer fileLog.Close()
		jnl = fileLog
	}

	engineCfg := bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: opt.checkInterval,
		Journal:              jnl,
		EvalWorkers:          opt.evalWorkers,
	}
	if monitor != nil {
		// Assign through a typed check so a nil *health.Monitor never
		// becomes a non-nil interface.
		engineCfg.Topology = monitor
	}
	engine, err := bifrost.NewEngine(engineCfg)
	if err != nil {
		return err
	}
	if jnl != nil {
		report, err := engine.Recover(jnl)
		if err != nil {
			return fmt.Errorf("recovering runs from %s: %w", opt.dataDir, err)
		}
		if len(report.Runs) > 0 || report.DecodeErrors > 0 {
			fmt.Printf("journal %s: %s\n", opt.dataDir, report)
			for _, rr := range report.Runs {
				fmt.Printf("  run %q: %s\n", rr.Name, rr.Action)
			}
		}
		// Retention: drop generations superseded by name reuse. Runs
		// before the HTTP server accepts new launches (and before the
		// scheduler can relaunch restored entries), so the census cannot
		// race a relaunch.
		if err := bifrost.CompactJournal(jnl); err != nil {
			return fmt.Errorf("compacting journal %s: %w", opt.dataDir, err)
		}
	}

	sched, err := bifrost.NewScheduler(bifrost.SchedulerConfig{
		Engine:        engine,
		Journal:       jnl,
		MaxConcurrent: opt.maxConcurrent,
		Capacity:      opt.capacity,
	})
	if err != nil {
		return err
	}
	if jnl != nil {
		// Strategies queued before the crash re-enter the queue; their
		// queued records are already in the journal. Entries whose
		// conflicts cleared (the blocking run settled during recovery)
		// launch right here.
		pending, qerrs := bifrost.RecoverQueue(jnl)
		for _, qe := range qerrs {
			fmt.Printf("journal %s: %v\n", opt.dataDir, qe)
		}
		if len(pending) > 0 {
			names := make([]string, len(pending))
			for i, p := range pending {
				names[i] = p.Name
			}
			fmt.Printf("journal %s: restoring %d queued strategies: %v\n", opt.dataDir, len(pending), names)
			sched.Restore(pending)
		}
	}

	// Fleet hub: every contexpd distributes its routing table to edge
	// agents over /v1/routing/watch; the flag only tunes the heartbeat.
	hub := fleet.New(fleet.Config{Table: table, HeartbeatInterval: opt.fleetHeartbeat})
	defer hub.Close()

	srvCfg := server.Config{
		Engine: engine, Table: table, Store: store, Journal: jnl, Scheduler: sched,
		Traces: collector, Health: monitor, Fleet: hub,
		Auth: resolver, RateLimit: limiter,
	}
	if opt.httpLog {
		srvCfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Maintenance loop: bound store memory by evicting idle series and
	// keep the on-disk rollup snapshot fresh. Final snapshot on
	// shutdown, so a clean restart loses at most nothing.
	if opt.retention > 0 || rollupPath != "" {
		maintDone := make(chan struct{})
		go func() {
			defer close(maintDone)
			ticker := time.NewTicker(time.Minute)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if opt.retention > 0 {
						if n := store.Maintain(time.Now(), opt.retention); n > 0 {
							fmt.Printf("metrics: evicted %d idle series\n", n)
						}
					}
					if rollupPath != "" {
						if err := store.SaveSnapshot(rollupPath, time.Now()); err != nil {
							fmt.Printf("metrics: saving rollup snapshot: %v\n", err)
						}
					}
				}
			}
		}()
		defer func() {
			<-maintDone
			if rollupPath != "" {
				if err := store.SaveSnapshot(rollupPath, time.Now()); err != nil {
					fmt.Printf("metrics: final rollup snapshot: %v\n", err)
				}
			}
		}()
	}

	// Profiling plane: pprof gets its own listener so profiles stay off
	// the public API address — the API's auth and rate limiting never
	// apply here, and deployments bind it to loopback or a management
	// network.
	if opt.pprofAddr != "" {
		pln, err := net.Listen("tcp", opt.pprofAddr)
		if err != nil {
			return fmt.Errorf("binding --pprof address: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pmux}
		defer pprofSrv.Close()
		go func() {
			if err := pprofSrv.Serve(pln); !errors.Is(err, http.ErrServerClosed) {
				fmt.Printf("pprof: server stopped: %v\n", err)
			}
		}()
		fmt.Printf("pprof: profiling on http://%s/debug/pprof/ (keep this address private)\n", pln.Addr())
	}

	// Bind the listener before the demo boots: with --demo-wire the shop
	// posts its telemetry to the daemon's own ingestion endpoints, so the
	// address must be live (accepting connections) from the first request.
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}

	if opt.demo {
		var faults *microsim.Injector
		if opt.demoFaults != "" {
			faults, err = demoInjector(opt.demoFaults, opt.demoSeed, time.Now())
			if err != nil {
				return err
			}
		}
		demoCfg := server.DemoConfig{
			RPS:            opt.demoRPS,
			LatencyScale:   opt.demoScale,
			PopulationSize: opt.demoPop,
			Seed:           opt.demoSeed,
			Enact:          opt.demoEnact,
			Traces:         collector,
			Faults:         faults,
			Logf: func(format string, args ...any) {
				fmt.Printf("demo: "+format+"\n", args...)
			},
		}
		if opt.demoWire {
			demoCfg.TelemetryURL = selfURL(ln.Addr())
		}
		demo, err := server.StartDemo(engine, table, store, demoCfg)
		if err != nil {
			return err
		}
		defer demo.Stop()
		srv.SetDemo(demo)
		fmt.Printf("demo: shop entry at %s, %.0f rps, latency scale %g\n",
			demo.EntryURL(), opt.demoRPS, opt.demoScale)
		if opt.demoEnact {
			fmt.Println("demo: enacted strategy \"demo-canary-rollout\" (canary → gradual rollout)")
		}
		if faults != nil {
			fmt.Printf("demo: chaos scenario %q armed: %d fault(s), live state at /healthz\n",
				opt.demoFaults, len(faults.Snapshot(time.Now())))
		} else if opt.demoFaults != "" {
			fmt.Printf("demo: scenario %q has no faults (traffic-shape only)\n", opt.demoFaults)
		}
		if opt.demoWire {
			fmt.Printf("demo: telemetry over the wire: binary batch frames to %s\n",
				demoCfg.TelemetryURL)
		}
	}

	httpSrv := &http.Server{
		Addr:    opt.addr,
		Handler: srv.Handler(),
		// Derive request contexts from the signal context so long-lived
		// SSE streams end on shutdown instead of stalling Shutdown.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("contexpd listening on %s\n", opt.addr)
		fmt.Printf("  curl %s/healthz\n", curlHost(opt.addr))
		fmt.Printf("  curl %s/v1/runs\n", curlHost(opt.addr))
		fmt.Printf("  curl %s/v1/schedule\n", curlHost(opt.addr))
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("contexpd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// curlHost renders a listen address as something curl accepts.
func curlHost(addr string) string {
	if len(addr) > 0 && addr[0] == ':' {
		return "localhost" + addr
	}
	return addr
}

// selfURL renders the bound listener address as a base URL the demo's
// wire-telemetry client can post to: an unspecified host (":8080",
// "[::]:8080") becomes loopback.
func selfURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if host == "" {
		host = "127.0.0.1"
	} else if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
