package main

import (
	"strings"
	"testing"
)

func TestRunAllArtifactsSmall(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-artifact", "all", "-budget", "300", "-runs", "1", "-ns", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 3.1", "Figure 3.3", "Figure 3.4", "Figure 3.5", "Table 3.3", "Figure 3.6",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleArtifact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-artifact", "3.3", "-budget", "300", "-runs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Figure 3.4") {
		t.Error("single-artifact run produced other artifacts")
	}
	if !strings.Contains(out.String(), "Figure 3.3") {
		t.Error("requested artifact missing")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-budget", "nope"}, &out); err == nil {
		t.Error("bad flag value should fail")
	}
	if err := run([]string{"-artifact", "3.5", "-ns", "10,x"}, &out); err == nil {
		t.Error("bad ns list should fail")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 10, 20 ,30,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("a"); err == nil {
		t.Error("expected error")
	}
}
