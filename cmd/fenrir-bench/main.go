// Command fenrir-bench regenerates the Chapter 3 evaluation artifacts:
// the traffic profile and consumption view (Fig 3.3), the fitness
// comparison for 15 experiments (Fig 3.4 / Table 3.2), the scaling
// study (Fig 3.5 / Table 3.3), the reevaluation study (Fig 3.6), and
// the experiment input table (Table 3.1).
//
// Usage:
//
//	fenrir-bench -artifact all -budget 3000 -runs 5
//	fenrir-bench -artifact 3.5 -ns 10,20,30,40
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"contexp/internal/fenrir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fenrir-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fenrir-bench", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "which artifact to regenerate: 3.1, 3.3, 3.4, 3.5, 3.6, or all")
	budget := fs.Int("budget", 3000, "fitness evaluations per optimizer run")
	runs := fs.Int("runs", 5, "independent seeds per configuration")
	days := fs.Int("days", 14, "traffic profile length in days")
	seed := fs.Int64("seed", 1, "base random seed")
	ns := fs.String("ns", "10,20,30,40", "experiment counts for the scaling study")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fenrir.EvalConfig{Budget: *budget, Runs: *runs, Days: *days, Seed: *seed}

	want := func(id string) bool { return *artifact == "all" || *artifact == id }

	if want("3.1") {
		tbl, err := fenrir.Table3_1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tbl)
	}
	if want("3.3") {
		fig, err := fenrir.EvalFigure3_3(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("3.4") {
		fig, err := fenrir.EvalFigure3_4(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("3.5") {
		sizes, err := parseInts(*ns)
		if err != nil {
			return err
		}
		fig, err := fenrir.EvalFigure3_5(cfg, sizes)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
		fmt.Fprintln(out, fig.RenderTable3_3())
	}
	if want("3.6") {
		fig, err := fenrir.EvalFigure3_6(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
