// Command benchgate is the CI benchmark-regression gate. It parses
// `go test -bench` output (several -count repetitions per benchmark),
// reduces each benchmark to its p50 (median) ns/op, and compares the
// result against a committed JSON baseline, failing when any benchmark
// regresses beyond the threshold.
//
//	# seed (or refresh) the baseline from a bench run
//	go test -bench ... -count=5 ./... | tee bench.txt
//	benchgate -current bench.txt -out BENCH_baseline.json
//
//	# gate a PR: >20% p50 regression on any benchmark fails
//	benchgate -current bench.txt -baseline BENCH_baseline.json -out bench.json
//
//	# additionally gate allocations: any allocs/op increase over the
//	# baseline fails (run the benches with -benchmem)
//	benchgate -current bench.txt -baseline BENCH_baseline.json -gate-allocs
//
// benchstat remains the human-readable comparison; benchgate is the
// machine check (benchstat does not exit non-zero on thresholds).
// Medians, not means, so one noisy repetition cannot mask or fake a
// regression; the baseline additionally records each benchmark's p75
// and the gate fires on p50 > p75 × (1 + threshold), so a benchmark's
// own measured run-to-run spread (seed the baseline from several
// pooled runs) widens its envelope instead of tripping the gate.
//
// Allocation counts, unlike timings, are deterministic for the paths
// that matter: the baseline records the worst allocs/op seen across
// repetitions, and -gate-allocs fails on ANY increase for benchmarks
// whose baseline is zero — the zero-alloc tag. That is what keeps the
// zero-alloc hot paths (wire decoding, batch recording, harvest) at
// exactly zero: one new allocation fails CI. Benchmarks with nonzero
// baselines (e.g. whole-HTTP-stack benches, where transport internals
// add run-to-run jitter) have their counts recorded for visibility but
// are gated on timing only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark trajectory file.
type Baseline struct {
	Schema     int                  `json:"schema"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's reduced timing. P75 captures the
// benchmark's own run-to-run spread at baseline time: the gate fails
// when the current p50 exceeds the baseline p75 by the threshold, so a
// benchmark's measured noise envelope does not trip the gate while
// stable benchmarks keep a tight one.
type Benchmark struct {
	P50NsPerOp float64 `json:"p50NsPerOp"`
	P75NsPerOp float64 `json:"p75NsPerOp,omitempty"`
	Samples    int     `json:"samples"`
	// AllocsPerOp is the worst allocs/op observed across repetitions,
	// present only when the bench ran with -benchmem. A pointer so a
	// recorded zero (the zero-alloc benches) survives the JSON
	// round-trip distinguishably from "not measured".
	AllocsPerOp *int64 `json:"allocsPerOp,omitempty"`
}

// bound is the value regressions are measured against: the baseline's
// p75 when recorded (older baselines carry only p50).
func (b Benchmark) bound() float64 {
	if b.P75NsPerOp > b.P50NsPerOp {
		return b.P75NsPerOp
	}
	return b.P50NsPerOp
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkResolveParallel-8   	12345678	        95.20 ns/op	       0 B/op	       2 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines compare across
// machine shapes (the timing still differs, the name must not). The
// -benchmem columns are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op(?:\s+[0-9.]+ B/op\s+(\d+) allocs/op)?`)

// parseBench reduces bench output to per-benchmark p50 ns/op plus, for
// runs with -benchmem, the worst allocs/op across repetitions.
func parseBench(r io.Reader) (map[string]Benchmark, error) {
	samples := make(map[string][]float64)
	allocs := make(map[string]int64)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		m := benchLine.FindStringSubmatch(scanner.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
		if m[3] != "" {
			if a, err := strconv.ParseInt(m[3], 10, 64); err == nil {
				if have, ok := allocs[m[1]]; !ok || a > have {
					allocs[m[1]] = a
				}
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Benchmark, len(samples))
	for name, vals := range samples {
		sort.Float64s(vals)
		b := Benchmark{
			P50NsPerOp: quantile(vals, 0.50),
			P75NsPerOp: quantile(vals, 0.75),
			Samples:    len(vals),
		}
		if a, ok := allocs[name]; ok {
			b.AllocsPerOp = &a
		}
		out[name] = b
	}
	return out, nil
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errw)
	current := fs.String("current", "", "bench output file to parse (required)")
	baselinePath := fs.String("baseline", "", "committed baseline JSON to compare against")
	outPath := fs.String("out", "", "write the parsed current results as baseline JSON")
	threshold := fs.Float64("threshold", 0.20, "relative p50 regression that fails the gate")
	minSamples := fs.Int("min-samples", 3, "fewest repetitions per benchmark for a meaningful median")
	gateAllocs := fs.Bool("gate-allocs", false,
		"fail on ANY allocs/op on benches whose baseline recorded 0 allocs/op (requires -benchmem output)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(errw, "benchgate: -current is required")
		return 2
	}
	f, err := os.Open(*current)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	defer f.Close()
	parsed, err := parseBench(f)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	if len(parsed) == 0 {
		fmt.Fprintln(errw, "benchgate: no benchmark results in", *current)
		return 2
	}
	for name, b := range parsed {
		if b.Samples < *minSamples {
			fmt.Fprintf(errw, "benchgate: %s has only %d samples (want >= %d); run with -count\n",
				name, b.Samples, *minSamples)
			return 2
		}
	}

	if *outPath != "" {
		blob, err := json.MarshalIndent(Baseline{Schema: 2, Benchmarks: parsed}, "", "  ")
		if err != nil {
			fmt.Fprintln(errw, "benchgate:", err)
			return 2
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(errw, "benchgate:", err)
			return 2
		}
		fmt.Fprintf(out, "benchgate: wrote %d benchmarks to %s\n", len(parsed), *outPath)
	}

	if *baselinePath == "" {
		return 0
	}
	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(errw, "benchgate: parsing %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := parsed[name]
		if !ok {
			// A vanished benchmark is a warning, not a failure: renames
			// and removals are legitimate, and the baseline refresh that
			// accompanies them makes the gap visible in review.
			fmt.Fprintf(out, "benchgate: WARN %s: in baseline but not in current run\n", name)
			continue
		}
		delta := (got.P50NsPerOp - want.P50NsPerOp) / want.P50NsPerOp
		status := "ok"
		if got.P50NsPerOp > want.bound()*(1+*threshold) {
			status = "FAIL"
			failed = true
		}
		allocNote := ""
		if *gateAllocs && want.AllocsPerOp != nil && *want.AllocsPerOp == 0 {
			// The zero-alloc tag: a baseline of 0 allocs/op is a claim
			// the path makes no allocations at steady state, enforced
			// exactly — no threshold, no envelope.
			switch {
			case got.AllocsPerOp == nil:
				status = "FAIL"
				failed = true
				allocNote = "  allocs 0 -> ??? (rerun with -benchmem)"
			case *got.AllocsPerOp > 0:
				status = "FAIL"
				failed = true
				allocNote = fmt.Sprintf("  allocs 0 -> %d", *got.AllocsPerOp)
			default:
				allocNote = "  allocs 0 -> 0"
			}
		}
		fmt.Fprintf(out, "benchgate: %-4s %-40s p50 %10.1f -> %10.1f ns/op (%+.1f%%)%s\n",
			status, name, want.P50NsPerOp, got.P50NsPerOp, delta*100, allocNote)
	}
	for name := range parsed {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(out, "benchgate: NEW  %s: not in baseline (refresh %s)\n", name, *baselinePath)
		}
	}
	if failed {
		fmt.Fprintf(errw, "benchgate: p50 regression beyond %.0f%% (or an allocs/op increase) — if intentional, refresh the baseline in the same PR\n",
			*threshold*100)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
