package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `
goos: linux
goarch: amd64
pkg: contexp/internal/router
cpu: Example CPU
BenchmarkResolveWeighted-8   	35819650	        29.61 ns/op	       0 B/op	       0 allocs/op
BenchmarkResolveWeighted-8   	39569零	        31.00 ns/op
BenchmarkResolveWeighted-8   	35819650	        30.10 ns/op	       0 B/op
BenchmarkResolveWeighted-8   	35819650	        28.90 ns/op	       0 B/op
BenchmarkResolveWeighted-8   	35819650	        33.50 ns/op	       0 B/op
BenchmarkResolveWeighted-8   	35819650	        29.90 ns/op	       0 B/op
BenchmarkQueryP95/cold-16    	    1000	    105000 ns/op
BenchmarkQueryP95/cold-16    	    1000	    101000 ns/op
BenchmarkQueryP95/cold-16    	    1000	    99000 ns/op
PASS
`

func TestParseBenchMedians(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	// The malformed iteration-count line is skipped: 5 valid samples.
	rw, ok := parsed["BenchmarkResolveWeighted"]
	if !ok {
		t.Fatalf("missing BenchmarkResolveWeighted in %v", parsed)
	}
	if rw.Samples != 5 || rw.P50NsPerOp != 29.90 {
		t.Errorf("ResolveWeighted = %+v, want 5 samples with p50 29.90", rw)
	}
	// Sub-benchmark names keep their slash, lose the GOMAXPROCS suffix.
	q, ok := parsed["BenchmarkQueryP95/cold"]
	if !ok {
		t.Fatalf("missing BenchmarkQueryP95/cold in %v", parsed)
	}
	if q.Samples != 3 || q.P50NsPerOp != 101000 {
		t.Errorf("QueryP95/cold = %+v, want 3 samples with p50 101000", q)
	}
}

// gate runs the tool against a current bench file and a baseline blob.
func gate(t *testing.T, current, baseline string, extra ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	cur := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(cur, []byte(current), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-current", cur}
	if baseline != "" {
		base := filepath.Join(dir, "baseline.json")
		if err := os.WriteFile(base, []byte(baseline), 0o644); err != nil {
			t.Fatal(err)
		}
		args = append(args, "-baseline", base)
	}
	args = append(args, extra...)
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

const baselineJSON = `{
  "schema": 1,
  "benchmarks": {
    "BenchmarkResolveWeighted": {"p50NsPerOp": 30.0, "samples": 5},
    "BenchmarkQueryP95/cold": {"p50NsPerOp": 100000, "samples": 5},
    "BenchmarkGone": {"p50NsPerOp": 12.0, "samples": 5}
  }
}`

func TestGatePassesWithinThreshold(t *testing.T) {
	code, out, errw := gate(t, benchOut, baselineJSON)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	// ~0% and +1% deltas pass; the vanished benchmark warns.
	if !strings.Contains(out, "WARN BenchmarkGone") {
		t.Errorf("missing vanished-benchmark warning:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	tight := `{"schema":1,"benchmarks":{"BenchmarkResolveWeighted":{"p50NsPerOp":20.0,"samples":5}}}`
	code, out, errw := gate(t, benchOut, tight)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (29.90 vs 20.0 is ~+50%%)\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	if !strings.Contains(out, "FAIL BenchmarkResolveWeighted") {
		t.Errorf("missing FAIL line:\n%s", out)
	}
	// A looser threshold lets the same delta through.
	if code, _, _ := gate(t, benchOut, tight, "-threshold", "0.6"); code != 0 {
		t.Errorf("60%% threshold should pass a +50%% delta, got exit %d", code)
	}
}

func TestGateUsesNoiseEnvelope(t *testing.T) {
	// Baseline p50 20 but p75 28 (a noisy benchmark): a current p50 of
	// 29.90 is within 28 × 1.2 = 33.6, so the gate holds; with a tight
	// p75 of 21 it fires.
	noisy := `{"schema":1,"benchmarks":{"BenchmarkResolveWeighted":{"p50NsPerOp":20.0,"p75NsPerOp":28.0,"samples":15}}}`
	if code, out, _ := gate(t, benchOut, noisy); code != 0 {
		t.Errorf("p75 envelope should absorb the spread, exit %d:\n%s", code, out)
	}
	tight := `{"schema":1,"benchmarks":{"BenchmarkResolveWeighted":{"p50NsPerOp":20.0,"p75NsPerOp":21.0,"samples":15}}}`
	if code, _, _ := gate(t, benchOut, tight); code != 1 {
		t.Errorf("tight p75 should still gate, exit %d", code)
	}
}

func TestGateRequiresSamples(t *testing.T) {
	one := "BenchmarkResolveWeighted-8 100 30.0 ns/op\n"
	if code, _, errw := gate(t, one, ""); code != 2 || !strings.Contains(errw, "samples") {
		t.Errorf("single-sample input should be rejected, exit %d, stderr %q", code, errw)
	}
}

func TestSeedBaseline(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(cur, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "BENCH_baseline.json")
	var out, errw bytes.Buffer
	if code := run([]string{"-current", cur, "-out", outJSON}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	// The written file gates its own source run cleanly.
	var o2, e2 bytes.Buffer
	if code := run([]string{"-current", cur, "-baseline", outJSON}, &o2, &e2); code != 0 {
		t.Fatalf("self-comparison failed: exit %d\n%s%s", code, o2.String(), e2.String())
	}
}

func TestParseBenchAllocs(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	// Lines with -benchmem columns record the worst allocs/op; lines
	// without leave the benchmark timing-only.
	rw := parsed["BenchmarkResolveWeighted"]
	if rw.AllocsPerOp == nil || *rw.AllocsPerOp != 0 {
		t.Errorf("ResolveWeighted.AllocsPerOp = %v, want 0", rw.AllocsPerOp)
	}
	q := parsed["BenchmarkQueryP95/cold"]
	if q.AllocsPerOp != nil {
		t.Errorf("QueryP95/cold.AllocsPerOp = %d, want absent (no -benchmem columns)", *q.AllocsPerOp)
	}
}

func TestGateAllocs(t *testing.T) {
	zeroBase := `{"schema":2,"benchmarks":{"BenchmarkResolveWeighted":{"p50NsPerOp":30.0,"samples":5,"allocsPerOp":0}}}`

	// Current run holds at 0 allocs/op: passes.
	if code, out, errw := gate(t, benchOut, zeroBase, "-gate-allocs"); code != 0 {
		t.Fatalf("zero-alloc bench holding at zero should pass, exit %d\n%s%s", code, out, errw)
	}

	// One new allocation on a zero-alloc-tagged bench: fails with no
	// threshold, even though the timing is fine.
	leaky := strings.ReplaceAll(benchOut, "0 B/op", "48 B/op")
	leaky = strings.ReplaceAll(leaky, "0 allocs/op", "1 allocs/op")
	code, out, _ := gate(t, leaky, zeroBase, "-gate-allocs")
	if code != 1 {
		t.Fatalf("allocs 0 -> 1 must fail the gate, exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "allocs 0 -> 1") {
		t.Errorf("missing allocs delta in output:\n%s", out)
	}

	// Without -gate-allocs the same run passes: timing-only gating.
	if code, _, _ := gate(t, leaky, zeroBase); code != 0 {
		t.Errorf("allocs increase without -gate-allocs should pass, exit %d", code)
	}

	// A gated bench missing -benchmem data in the current run fails
	// loudly rather than silently skipping the check.
	noMem := strings.NewReplacer(
		"0 B/op", "", "48 B/op", "", "0 allocs/op", "", "1 allocs/op", "").Replace(benchOut)
	if code, out, _ := gate(t, noMem, zeroBase, "-gate-allocs"); code != 1 || !strings.Contains(out, "-benchmem") {
		t.Errorf("missing benchmem data should fail the allocs gate, exit %d\n%s", code, out)
	}
}

func TestGateAllocsSkipsNonzeroBaselines(t *testing.T) {
	// A nonzero baseline (e.g. an HTTP-stack bench) records allocs for
	// visibility but gates on timing only: jitter in transport
	// internals must not flake CI.
	base := `{"schema":2,"benchmarks":{"BenchmarkResolveWeighted":{"p50NsPerOp":30.0,"samples":5,"allocsPerOp":3}}}`
	grown := strings.ReplaceAll(benchOut, "0 allocs/op", "5 allocs/op")
	if code, out, errw := gate(t, grown, base, "-gate-allocs"); code != 0 {
		t.Errorf("allocs 3 -> 5 on a nonzero baseline should pass, exit %d\n%s%s", code, out, errw)
	}
}
