// Command expctl is the operator utility for experimentation-as-code.
// It works on strategy files locally and on a running contexpd over
// HTTP:
//
//	expctl validate strategy.exp     # parse + semantic checks
//	expctl show strategy.exp         # print the state machine
//	expctl fmt strategy.exp          # print the canonical DSL form
//	expctl runs [--addr URL]         # list runs on a daemon, launch order
//	expctl events <run> [--addr URL] # print a run's full event history
//
// The runs and events commands read the same durable state the daemon
// recovers from its journal, so a run's pre-crash history is readable
// after a restart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"contexp/internal/bifrost"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "expctl:", err)
		os.Exit(1)
	}
}

const usage = "usage: expctl <validate|show|fmt> <file.exp> | expctl runs [--addr URL] | expctl events <run> [--addr URL]"

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("%s", usage)
	}
	switch cmd := args[0]; cmd {
	case "validate", "show", "fmt":
		if len(args) < 2 {
			return fmt.Errorf("%s", usage)
		}
		return runFile(cmd, args[1], out)
	case "runs":
		addr, rest, err := parseHTTPFlags("runs", args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("runs takes no arguments")
		}
		return listRuns(addr, out)
	case "events":
		addr, rest, err := parseHTTPFlags("events", args[1:])
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: expctl events <run> [--addr URL]")
		}
		return showEvents(addr, rest[0], out)
	default:
		return fmt.Errorf("unknown command %q (%s)", cmd, usage)
	}
}

func runFile(cmd, path string, out io.Writer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	strategy, err := bifrost.ParseStrategy(string(src))
	if err != nil {
		return err
	}
	switch cmd {
	case "validate":
		fmt.Fprintf(out, "%s: strategy %q is valid (%d phases)\n", path, strategy.Name, len(strategy.Phases))
	case "show":
		fmt.Fprint(out, strategy.StateMachine())
	case "fmt":
		fmt.Fprint(out, bifrost.WriteDSL(strategy))
	}
	return nil
}

// parseHTTPFlags handles the flags shared by the daemon-facing
// subcommands. Flags may come before or after positional arguments.
func parseHTTPFlags(cmd string, args []string) (addr string, rest []string, err error) {
	fs := flag.NewFlagSet("expctl "+cmd, flag.ContinueOnError)
	fs.StringVar(&addr, "addr", "http://localhost:8080", "contexpd base URL")
	// Split positionals out so "expctl events myrun --addr URL" works,
	// in both the space-separated and --addr=URL forms.
	var flags []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--addr" || a == "-addr" {
			flags = append(flags, args[i:min(i+2, len(args))]...)
			i++
			continue
		}
		if strings.HasPrefix(a, "--addr=") || strings.HasPrefix(a, "-addr=") {
			flags = append(flags, a)
			continue
		}
		rest = append(rest, a)
	}
	if err := fs.Parse(flags); err != nil {
		return "", nil, err
	}
	return addr, rest, nil
}

// getJSON fetches one API resource into v.
func getJSON(base, path string, v any) error {
	u, err := url.JoinPath(base, path)
	if err != nil {
		return fmt.Errorf("bad --addr: %w", err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runView mirrors the server's RunSummary.
type runView struct {
	Name      string `json:"name"`
	Service   string `json:"service"`
	Baseline  string `json:"baseline"`
	Candidate string `json:"candidate"`
	Status    string `json:"status"`
	Phase     string `json:"phase"`
	Events    int    `json:"events"`
	Recovered bool   `json:"recovered"`
}

// eventView mirrors the server's EventView.
type eventView struct {
	At      time.Time `json:"at"`
	Type    string    `json:"type"`
	Phase   string    `json:"phase"`
	Check   string    `json:"check"`
	Outcome string    `json:"outcome"`
	Detail  string    `json:"detail"`
}

func listRuns(addr string, out io.Writer) error {
	var resp struct {
		Runs []runView `json:"runs"`
	}
	if err := getJSON(addr, "/v1/runs", &resp); err != nil {
		return err
	}
	if len(resp.Runs) == 0 {
		fmt.Fprintln(out, "no runs")
		return nil
	}
	fmt.Fprintf(out, "%-28s %-12s %-14s %-20s %7s\n", "NAME", "STATUS", "PHASE", "SERVICE", "EVENTS")
	for _, r := range resp.Runs {
		name := r.Name
		if r.Recovered {
			name += " (recovered)"
		}
		fmt.Fprintf(out, "%-28s %-12s %-14s %-20s %7d\n",
			name, r.Status, r.Phase, fmt.Sprintf("%s %s->%s", r.Service, r.Baseline, r.Candidate), r.Events)
	}
	return nil
}

func showEvents(addr, name string, out io.Writer) error {
	var detail struct {
		runView
		EventLog []eventView `json:"eventLog"`
	}
	if err := getJSON(addr, "/v1/runs/"+url.PathEscape(name), &detail); err != nil {
		return err
	}
	fmt.Fprintf(out, "run %q (%s) — %d events\n", detail.Name, detail.Status, len(detail.EventLog))
	for _, ev := range detail.EventLog {
		line := fmt.Sprintf("%s  %-16s", ev.At.Format(time.RFC3339), ev.Type)
		if ev.Phase != "" {
			line += " phase=" + ev.Phase
		}
		if ev.Check != "" {
			line += " check=" + ev.Check
		}
		if ev.Outcome != "" {
			line += " outcome=" + ev.Outcome
		}
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Fprintln(out, line)
	}
	return nil
}
