// Command expctl is the operator utility for experimentation-as-code:
// it parses and validates strategy DSL files and prints the resulting
// state machine (the textual Fig 4.2).
//
// Usage:
//
//	expctl validate strategy.exp   # parse + semantic checks
//	expctl show strategy.exp       # print the state machine
//	expctl fmt strategy.exp        # print the canonical DSL form
package main

import (
	"fmt"
	"os"

	"contexp/internal/bifrost"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "expctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: expctl <validate|show> <file.exp>")
	}
	cmd, path := args[0], args[1]
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	strategy, err := bifrost.ParseStrategy(string(src))
	if err != nil {
		return err
	}
	switch cmd {
	case "validate":
		fmt.Printf("%s: strategy %q is valid (%d phases)\n", path, strategy.Name, len(strategy.Phases))
	case "show":
		fmt.Print(strategy.StateMachine())
	case "fmt":
		fmt.Print(bifrost.WriteDSL(strategy))
	default:
		return fmt.Errorf("unknown command %q (want validate, show, or fmt)", cmd)
	}
	return nil
}
