// Command expctl is the operator utility for experimentation-as-code.
// It works on strategy files locally and on a running contexpd over
// HTTP:
//
//	expctl validate strategy.exp     # parse + semantic checks
//	expctl show strategy.exp         # print the state machine
//	expctl fmt strategy.exp          # print the canonical DSL form
//	expctl runs [--addr URL]         # list runs on a daemon, launch order
//	expctl events <run> [--addr URL] # print a run's full event history
//	expctl health <run> [--addr URL] # live topology assessment of a run
//	expctl schedule [--addr URL]     # live schedule: running, queue, Gantt
//	expctl queue [--addr URL]        # queued submissions only
//	expctl agents [--addr URL]       # edge-agent fleet: applied versions, lag
//	expctl tenants [--addr URL]      # per-tenant usage: runs, series, budget
//
// Daemon-facing subcommands share three flags: --addr (base URL),
// --token (bearer token for a daemon running with --auth-tokens;
// defaults to the CONTEXP_TOKEN environment variable), and --tenant
// (filter listings by tenant — meaningful against an auth-free daemon,
// where the caller sees every tenant's runs).
//
// The runs and events commands read the same durable state the daemon
// recovers from its journal, so a run's pre-crash history is readable
// after a restart; schedule and queue read the live scheduler, whose
// pending submissions equally survive a restart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"contexp/internal/bifrost"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "expctl:", err)
		os.Exit(1)
	}
}

const usage = "usage: expctl <validate|show|fmt> <file.exp> | expctl <runs|schedule|queue|agents|tenants> [--addr URL] [--token T] | expctl <events|health> <run> [--addr URL] [--token T]"

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("%s", usage)
	}
	switch cmd := args[0]; cmd {
	case "validate", "show", "fmt":
		if len(args) < 2 {
			return fmt.Errorf("%s", usage)
		}
		return runFile(cmd, args[1], out)
	case "runs":
		c, rest, err := parseHTTPFlags("runs", args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("runs takes no arguments")
		}
		return listRuns(c, out)
	case "events":
		c, rest, err := parseHTTPFlags("events", args[1:])
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: expctl events <run> [--addr URL]")
		}
		return showEvents(c, rest[0], out)
	case "health":
		c, rest, err := parseHTTPFlags("health", args[1:])
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: expctl health <run> [--addr URL]")
		}
		return showHealth(c, rest[0], out)
	case "agents":
		c, rest, err := parseHTTPFlags("agents", args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("agents takes no arguments")
		}
		return listAgents(c, out)
	case "tenants":
		c, rest, err := parseHTTPFlags("tenants", args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("tenants takes no arguments")
		}
		return listTenants(c, out)
	case "schedule", "queue":
		c, rest, err := parseHTTPFlags(cmd, args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("%s takes no arguments", cmd)
		}
		if cmd == "queue" {
			return showQueue(c, out)
		}
		return showSchedule(c, out)
	default:
		return fmt.Errorf("unknown command %q (%s)", cmd, usage)
	}
}

func runFile(cmd, path string, out io.Writer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	strategy, err := bifrost.ParseStrategy(string(src))
	if err != nil {
		return err
	}
	switch cmd {
	case "validate":
		fmt.Fprintf(out, "%s: strategy %q is valid (%d phases)\n", path, strategy.Name, len(strategy.Phases))
	case "show":
		fmt.Fprint(out, strategy.StateMachine())
	case "fmt":
		fmt.Fprint(out, bifrost.WriteDSL(strategy))
	}
	return nil
}

// apiClient carries the daemon connection settings shared by all
// HTTP-facing subcommands.
type apiClient struct {
	addr   string
	token  string
	tenant string
}

// parseHTTPFlags handles the flags shared by the daemon-facing
// subcommands. Flags may come before or after positional arguments.
func parseHTTPFlags(cmd string, args []string) (*apiClient, []string, error) {
	fs := flag.NewFlagSet("expctl "+cmd, flag.ContinueOnError)
	c := &apiClient{}
	fs.StringVar(&c.addr, "addr", "http://localhost:8080", "contexpd base URL")
	fs.StringVar(&c.token, "token", os.Getenv("CONTEXP_TOKEN"),
		"bearer token for a daemon running with --auth-tokens (env CONTEXP_TOKEN)")
	fs.StringVar(&c.tenant, "tenant", "",
		"filter listings by tenant (against an auth-free daemon)")
	// Split positionals out so "expctl events myrun --addr URL" works,
	// in both the space-separated and --addr=URL forms.
	var flags, rest []string
	valueFlags := []string{"addr", "token", "tenant"}
	for i := 0; i < len(args); i++ {
		a := args[i]
		matched := false
		for _, name := range valueFlags {
			switch {
			case a == "--"+name || a == "-"+name:
				flags = append(flags, args[i:min(i+2, len(args))]...)
				i++
				matched = true
			case strings.HasPrefix(a, "--"+name+"=") || strings.HasPrefix(a, "-"+name+"="):
				flags = append(flags, a)
				matched = true
			}
			if matched {
				break
			}
		}
		if !matched {
			rest = append(rest, a)
		}
	}
	if err := fs.Parse(flags); err != nil {
		return nil, nil, err
	}
	return c, rest, nil
}

// get issues an authenticated GET against the daemon. path may carry a
// query string, so it is appended verbatim, not URL-joined.
func (c *apiClient) get(path string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(c.addr, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	return client.Do(req)
}

// getJSON fetches one API resource into v, surfacing the API's typed
// error envelope (code + message) on non-200s.
func (c *apiClient) getJSON(path string, v any) error {
	resp, err := c.get(path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// apiError renders a non-200 response, preferring the typed envelope.
func apiError(resp *http.Response) error {
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error.Message != "" {
		if envelope.Error.Code != "" {
			return fmt.Errorf("%s [%s]: %s", resp.Status, envelope.Error.Code, envelope.Error.Message)
		}
		return fmt.Errorf("%s: %s", resp.Status, envelope.Error.Message)
	}
	return fmt.Errorf("%s: %s", resp.Request.URL, resp.Status)
}

// runView mirrors the server's RunSummary.
type runView struct {
	Name      string `json:"name"`
	Tenant    string `json:"tenant"`
	Service   string `json:"service"`
	Baseline  string `json:"baseline"`
	Candidate string `json:"candidate"`
	Status    string `json:"status"`
	Phase     string `json:"phase"`
	Events    int    `json:"events"`
	Recovered bool   `json:"recovered"`
}

// eventView mirrors the server's EventView.
type eventView struct {
	At      time.Time `json:"at"`
	Type    string    `json:"type"`
	Phase   string    `json:"phase"`
	Check   string    `json:"check"`
	Outcome string    `json:"outcome"`
	Detail  string    `json:"detail"`
}

// listRuns pages through GET /v1/runs ({items, nextCursor}) until the
// listing is exhausted.
func listRuns(c *apiClient, out io.Writer) error {
	base := "/v1/runs?limit=100"
	if c.tenant != "" {
		base += "&tenant=" + url.QueryEscape(c.tenant)
	}
	var runs []runView
	cursor := ""
	for {
		path := base
		if cursor != "" {
			path += "&cursor=" + url.QueryEscape(cursor)
		}
		var resp struct {
			Items      []runView `json:"items"`
			NextCursor string    `json:"nextCursor"`
		}
		if err := c.getJSON(path, &resp); err != nil {
			return err
		}
		runs = append(runs, resp.Items...)
		if resp.NextCursor == "" {
			break
		}
		cursor = resp.NextCursor
	}
	if len(runs) == 0 {
		fmt.Fprintln(out, "no runs")
		return nil
	}
	fmt.Fprintf(out, "%-28s %-10s %-12s %-14s %-20s %7s\n", "NAME", "TENANT", "STATUS", "PHASE", "SERVICE", "EVENTS")
	for _, r := range runs {
		name := r.Name
		if r.Recovered {
			name += " (recovered)"
		}
		tenant := r.Tenant
		if tenant == "" {
			tenant = "default"
		}
		fmt.Fprintf(out, "%-28s %-10s %-12s %-14s %-20s %7d\n",
			name, tenant, r.Status, r.Phase, fmt.Sprintf("%s %s->%s", r.Service, r.Baseline, r.Candidate), r.Events)
	}
	return nil
}

// listTenants prints per-tenant usage from GET /v1/admin/tenants.
func listTenants(c *apiClient, out io.Writer) error {
	var resp struct {
		Items []struct {
			Name      string `json:"name"`
			Runs      int    `json:"runs"`
			LiveRuns  int    `json:"liveRuns"`
			Series    int    `json:"series"`
			Requests  uint64 `json:"requests"`
			Throttled uint64 `json:"throttled"`
		} `json:"items"`
	}
	if err := c.getJSON("/v1/admin/tenants", &resp); err != nil {
		return err
	}
	if len(resp.Items) == 0 {
		fmt.Fprintln(out, "no tenants")
		return nil
	}
	fmt.Fprintf(out, "%-16s %6s %6s %8s %10s %10s\n", "TENANT", "RUNS", "LIVE", "SERIES", "REQUESTS", "THROTTLED")
	for _, t := range resp.Items {
		fmt.Fprintf(out, "%-16s %6d %6d %8d %10d %10d\n",
			t.Name, t.Runs, t.LiveRuns, t.Series, t.Requests, t.Throttled)
	}
	return nil
}

// scheduleView mirrors the scheduler's ScheduleSnapshot.
type scheduleView struct {
	Slot          int     `json:"slot"`
	SlotDuration  string  `json:"slotDuration"`
	Capacity      float64 `json:"capacity"`
	MaxConcurrent int     `json:"maxConcurrent"`
	PlanFitness   float64 `json:"planFitness"`
	PlanValid     bool    `json:"planValid"`
	Running       []struct {
		Name      string    `json:"name"`
		Service   string    `json:"service"`
		Share     float64   `json:"share"`
		EstEnd    time.Time `json:"estEnd"`
		StartedAt time.Time `json:"startedAt"`
	} `json:"running"`
	Queue []queueView `json:"queue"`
}

// queueView mirrors the scheduler's QueueEntryView.
type queueView struct {
	Name         string    `json:"name"`
	Service      string    `json:"service"`
	Groups       []string  `json:"groups"`
	Share        float64   `json:"share"`
	Position     int       `json:"position"`
	QueuedAt     time.Time `json:"queuedAt"`
	PlannedStart time.Time `json:"plannedStart"`
	EstDuration  string    `json:"estDuration"`
	Reason       string    `json:"reason"`
	Recovered    bool      `json:"recovered"`
}

func getSchedule(c *apiClient) (*scheduleView, error) {
	var view scheduleView
	if err := c.getJSON("/v1/schedule", &view); err != nil {
		return nil, err
	}
	return &view, nil
}

func printQueue(entries []queueView, out io.Writer) {
	if len(entries) == 0 {
		fmt.Fprintln(out, "queue is empty")
		return
	}
	fmt.Fprintf(out, "%-4s %-24s %-16s %6s %-20s %s\n", "POS", "NAME", "SERVICE", "SHARE", "PLANNED-START", "WAITING-ON")
	for _, q := range entries {
		name := q.Name
		if q.Recovered {
			name += " (recovered)"
		}
		planned := "-"
		if !q.PlannedStart.IsZero() {
			planned = q.PlannedStart.Format(time.RFC3339)
		}
		fmt.Fprintf(out, "%-4d %-24s %-16s %5.0f%% %-20s %s\n",
			q.Position, name, q.Service, q.Share*100, planned, q.Reason)
	}
}

// showSchedule prints the live schedule: running runs, the queue, and
// the optimizer's ASCII Gantt chart.
func showSchedule(c *apiClient, out io.Writer) error {
	view, err := getSchedule(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "slot %d (%s per slot), capacity %.0f%%, max-concurrent %d\n",
		view.Slot, view.SlotDuration, view.Capacity*100, view.MaxConcurrent)
	if view.PlanFitness > 0 {
		fmt.Fprintf(out, "plan fitness: %.0f%% of maximum (valid: %v)\n", view.PlanFitness*100, view.PlanValid)
	}
	fmt.Fprintf(out, "\nrunning (%d):\n", len(view.Running))
	for _, r := range view.Running {
		fmt.Fprintf(out, "  %-24s %-16s %5.0f%%  est-end %s\n",
			r.Name, r.Service, r.Share*100, r.EstEnd.Format(time.RFC3339))
	}
	fmt.Fprintf(out, "\nqueued (%d):\n", len(view.Queue))
	printQueue(view.Queue, out)

	// The Gantt chart comes pre-rendered from the daemon.
	resp, err := c.get("/v1/schedule?format=gantt")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	gantt, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(gantt)))
	}
	fmt.Fprintf(out, "\n%s", gantt)
	return nil
}

// showQueue prints only the queued submissions.
func showQueue(c *apiClient, out io.Writer) error {
	view, err := getSchedule(c)
	if err != nil {
		return err
	}
	printQueue(view.Queue, out)
	return nil
}

// agentView mirrors the server's fleet.AgentState.
type agentView struct {
	ID             string    `json:"id"`
	Addr           string    `json:"addr"`
	Connected      bool      `json:"connected"`
	SentVersion    uint64    `json:"sentVersion"`
	AppliedVersion uint64    `json:"appliedVersion"`
	Lag            uint64    `json:"lag"`
	LastAck        time.Time `json:"lastAck"`
	Resolves       uint64    `json:"resolves"`
	Stale          bool      `json:"stale"`
}

// listAgents prints the edge-agent fleet: who is connected, which
// routing snapshot version each agent has applied, and how far behind
// the control plane's published version it is.
func listAgents(c *apiClient, out io.Writer) error {
	var resp struct {
		CurrentVersion uint64      `json:"currentVersion"`
		Agents         []agentView `json:"items"`
	}
	if err := c.getJSON("/v1/agents", &resp); err != nil {
		return err
	}
	fmt.Fprintf(out, "routing snapshot version %d, %d agents\n", resp.CurrentVersion, len(resp.Agents))
	if len(resp.Agents) == 0 {
		return nil
	}
	fmt.Fprintf(out, "%-20s %-22s %-10s %8s %5s %10s %-10s\n",
		"ID", "ADDR", "STATE", "APPLIED", "LAG", "RESOLVES", "LAST-ACK")
	for _, a := range resp.Agents {
		state := "offline"
		switch {
		case a.Connected && a.Stale:
			state = "stale" // connected but self-reporting an expired lease
		case a.Connected:
			state = "live"
		case a.Stale:
			state = "stale"
		}
		lastAck := "-"
		if !a.LastAck.IsZero() {
			lastAck = time.Since(a.LastAck).Round(time.Second).String() + " ago"
		}
		fmt.Fprintf(out, "%-20s %-22s %-10s %8d %5d %10d %-10s\n",
			a.ID, a.Addr, state, a.AppliedVersion, a.Lag, a.Resolves, lastAck)
	}
	return nil
}

// showHealth prints a run's live topology assessment: the evidence
// base, then the daemon-rendered report (diff + heuristic rankings).
func showHealth(c *apiClient, name string, out io.Writer) error {
	var view struct {
		Run             string `json:"run"`
		Service         string `json:"service"`
		Baseline        string `json:"baseline"`
		Candidate       string `json:"candidate"`
		Frozen          bool   `json:"frozen"`
		BaselineTraces  int    `json:"baselineTraces"`
		CandidateTraces int    `json:"candidateTraces"`
		SkippedTraces   int    `json:"skippedTraces"`
		Report          string `json:"report"`
	}
	if err := c.getJSON("/v1/runs/"+url.PathEscape(name)+"/health", &view); err != nil {
		return err
	}
	state := "live"
	if view.Frozen {
		state = "frozen"
	}
	fmt.Fprintf(out, "run %q — topology assessment (%s)\n", view.Run, state)
	fmt.Fprintf(out, "service %s (%s -> %s): %d baseline traces, %d candidate traces, %d without signal\n\n",
		view.Service, view.Baseline, view.Candidate,
		view.BaselineTraces, view.CandidateTraces, view.SkippedTraces)
	fmt.Fprint(out, view.Report)
	return nil
}

func showEvents(c *apiClient, name string, out io.Writer) error {
	var detail struct {
		runView
		EventLog []eventView `json:"eventLog"`
	}
	if err := c.getJSON("/v1/runs/"+url.PathEscape(name), &detail); err != nil {
		return err
	}
	fmt.Fprintf(out, "run %q (%s) — %d events\n", detail.Name, detail.Status, len(detail.EventLog))
	for _, ev := range detail.EventLog {
		line := fmt.Sprintf("%s  %-16s", ev.At.Format(time.RFC3339), ev.Type)
		if ev.Phase != "" {
			line += " phase=" + ev.Phase
		}
		if ev.Check != "" {
			line += " check=" + ev.Check
		}
		if ev.Outcome != "" {
			line += " outcome=" + ev.Outcome
		}
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Fprintln(out, line)
	}
	return nil
}
