package main

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/server"
)

const validStrategy = `
strategy "demo" {
    service = "svc"
    baseline = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic = 5%
        duration = 5m
        on success -> promote
    }
}
`

func writeStrategy(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.exp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateAndShow(t *testing.T) {
	path := writeStrategy(t, validStrategy)
	if err := run([]string{"validate", path}, io.Discard); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := run([]string{"show", path}, io.Discard); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := run([]string{"fmt", path}, io.Discard); err != nil {
		t.Errorf("fmt: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("missing args should fail")
	}
	if err := run([]string{"validate", "/nonexistent/file.exp"}, io.Discard); err == nil {
		t.Error("missing file should fail")
	}
	bad := writeStrategy(t, `strategy "x" {`)
	if err := run([]string{"validate", bad}, io.Discard); err == nil {
		t.Error("invalid DSL should fail")
	}
	good := writeStrategy(t, validStrategy)
	if err := run([]string{"frobnicate", good}, io.Discard); err == nil {
		t.Error("unknown command should fail")
	}
	if err := run([]string{"events"}, io.Discard); err == nil {
		t.Error("events without a run name should fail")
	}
	if err := run([]string{"runs", "extra"}, io.Discard); err == nil {
		t.Error("runs with positional arguments should fail")
	}
}

// startDaemon boots an in-process control plane with one finished run
// and returns its base URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	jnl := journal.NewMemory()
	engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store, Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bifrost.NewScheduler(bifrost.SchedulerConfig{Engine: engine, Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine: engine, Table: table, Store: store, Journal: jnl, Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := bifrost.ParseStrategy(validStrategy)
	if err != nil {
		t.Fatal(err)
	}
	run, err := engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	run.Abort()
	<-run.Done()
	// One live run and one queued submission behind it, so the schedule
	// and queue subcommands have something to show.
	holding := func(name string) *bifrost.Strategy {
		s, err := bifrost.ParseStrategy(strings.Replace(validStrategy,
			`strategy "demo"`, fmt.Sprintf("strategy %q", name), 1))
		if err != nil {
			t.Fatal(err)
		}
		s.Phases[0].Duration = time.Hour
		return s
	}
	if res, err := sched.Submit(holding("live")); err != nil || res.Queued {
		t.Fatalf("submit live: %+v, %v", res, err)
	}
	if res, err := sched.Submit(holding("waiting")); err != nil || !res.Queued {
		t.Fatalf("submit waiting: %+v, %v", res, err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunsAndEventsOverHTTP(t *testing.T) {
	url := startDaemon(t)

	var runsOut strings.Builder
	if err := run([]string{"runs", "--addr", url}, &runsOut); err != nil {
		t.Fatalf("runs: %v", err)
	}
	if !strings.Contains(runsOut.String(), "demo") || !strings.Contains(runsOut.String(), "aborted") {
		t.Errorf("runs output missing run row:\n%s", runsOut.String())
	}

	// The --addr=URL form must work too.
	if err := run([]string{"runs", "--addr=" + url}, io.Discard); err != nil {
		t.Errorf("runs with --addr= form: %v", err)
	}

	var eventsOut strings.Builder
	if err := run([]string{"events", "demo", "--addr=" + url}, &eventsOut); err != nil {
		t.Fatalf("events: %v", err)
	}
	for _, want := range []string{"run-launched", "traffic-applied", "run-finished"} {
		if !strings.Contains(eventsOut.String(), want) {
			t.Errorf("events output missing %q:\n%s", want, eventsOut.String())
		}
	}

	if err := run([]string{"events", "ghost", "--addr", url}, io.Discard); err == nil {
		t.Error("events for unknown run should fail")
	}
	if err := run([]string{"runs", "--addr", "http://127.0.0.1:1"}, io.Discard); err == nil {
		t.Error("unreachable daemon should fail")
	}
}

func TestScheduleAndQueueOverHTTP(t *testing.T) {
	url := startDaemon(t)

	var schedOut strings.Builder
	if err := run([]string{"schedule", "--addr", url}, &schedOut); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	for _, want := range []string{"running (1)", "live", "queued (1)", "waiting", "svc"} {
		if !strings.Contains(schedOut.String(), want) {
			t.Errorf("schedule output missing %q:\n%s", want, schedOut.String())
		}
	}
	// The Gantt chart section charts both experiments.
	if !strings.Contains(schedOut.String(), "|") {
		t.Errorf("schedule output missing the Gantt chart:\n%s", schedOut.String())
	}

	var queueOut strings.Builder
	if err := run([]string{"queue", "--addr=" + url}, &queueOut); err != nil {
		t.Fatalf("queue: %v", err)
	}
	if !strings.Contains(queueOut.String(), "waiting") || !strings.Contains(queueOut.String(), "service") {
		t.Errorf("queue output missing the waiting entry or its reason:\n%s", queueOut.String())
	}
	if err := run([]string{"queue", "extra"}, io.Discard); err == nil {
		t.Error("queue with positional arguments should fail")
	}
	if err := run([]string{"schedule", "--addr", "http://127.0.0.1:1"}, io.Discard); err == nil {
		t.Error("unreachable daemon should fail")
	}
}

func TestAgentsOverHTTP(t *testing.T) {
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Set(router.Route{
		Service:  "svc",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	hub := fleet.New(fleet.Config{Table: table, HeartbeatInterval: time.Hour})
	t.Cleanup(hub.Close)
	srv, err := server.New(server.Config{Engine: engine, Table: table, Store: store, Fleet: hub})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// One current agent, one lagging stale one.
	hub.Ack("edge-1", "10.0.0.1:7080", table.Version(), 1234, false)
	hub.Ack("edge-2", "10.0.0.2:7080", 0, 7, true)

	var out strings.Builder
	if err := run([]string{"agents", "--addr", ts.URL}, &out); err != nil {
		t.Fatalf("agents: %v", err)
	}
	got := out.String()
	for _, want := range []string{"routing snapshot version 1, 2 agents", "edge-1", "edge-2", "1234", "stale"} {
		if !strings.Contains(got, want) {
			t.Errorf("agents output missing %q:\n%s", want, got)
		}
	}

	if err := run([]string{"agents", "extra"}, io.Discard); err == nil {
		t.Error("agents with positional arguments should fail")
	}
	if err := run([]string{"agents", "--addr", "http://127.0.0.1:1"}, io.Discard); err == nil {
		t.Error("unreachable daemon should fail")
	}
}
