package main

import (
	"os"
	"path/filepath"
	"testing"
)

const validStrategy = `
strategy "demo" {
    service = "svc"
    baseline = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic = 5%
        duration = 5m
        on success -> promote
    }
}
`

func writeStrategy(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.exp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateAndShow(t *testing.T) {
	path := writeStrategy(t, validStrategy)
	if err := run([]string{"validate", path}); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := run([]string{"show", path}); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := run([]string{"fmt", path}); err != nil {
		t.Errorf("fmt: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing args should fail")
	}
	if err := run([]string{"validate", "/nonexistent/file.exp"}); err == nil {
		t.Error("missing file should fail")
	}
	bad := writeStrategy(t, `strategy "x" {`)
	if err := run([]string{"validate", bad}); err == nil {
		t.Error("invalid DSL should fail")
	}
	good := writeStrategy(t, validStrategy)
	if err := run([]string{"frobnicate", good}); err == nil {
		t.Error("unknown command should fail")
	}
}
