package main

import (
	"strings"
	"testing"
)

func TestRunAllArtifactsSmall(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-artifact", "all", "-traces", "100",
		"-sizes", "200,400", "-endpoints", "400", "-diff",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Figure 5.6", "Figure 5.8", "Figure 5.9", "Figure 5.10",
		"nDCG5", "topological difference",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunScenarioOnly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-artifact", "5.6", "-traces", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Figure 5.9") {
		t.Error("unexpected artifact in output")
	}
}

func TestRunBadSizes(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-artifact", "5.9", "-sizes", "bad"}, &out); err == nil {
		t.Error("expected error for bad sizes")
	}
}

func TestRunIncremental(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-incremental", "-endpoints", "300", "-folds", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"incremental diff vs full Compare", "p50 speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run([]string{"-incremental", "-folds", "0"}, &out); err == nil {
		t.Error("expected error for -folds 0")
	}
}
