// Command topo-bench regenerates the Chapter 5 evaluation artifacts:
// ranking quality on the two release scenarios (Figs 5.6 and 5.8) and
// heuristic performance on synthetic graphs (Figs 5.9 and 5.10).
//
// Usage:
//
//	topo-bench -artifact all
//	topo-bench -artifact 5.9 -sizes 500,1000,2000,4000,10000
//
// With -incremental it instead measures the live-assessment hot path:
// full Compare versus the incrementally maintained diff, side by side
// on the same trace stream folding into the same graphs.
//
//	topo-bench -incremental -endpoints 2000 -folds 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"contexp/internal/health"
	"contexp/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topo-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topo-bench", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "which artifact: 5.6, 5.8, 5.9, 5.10, or all")
	traces := fs.Int("traces", 500, "traces per variant for the ranking scenarios")
	sizes := fs.String("sizes", "500,1000,2000,4000,10000", "graph sizes (endpoints) for Fig 5.9")
	endpoints := fs.Int("endpoints", 4000, "graph size for Fig 5.10")
	seed := fs.Int64("seed", 1, "random seed")
	diff := fs.Bool("diff", false, "also print the topological difference of each scenario")
	incremental := fs.Bool("incremental", false,
		"benchmark full Compare vs the incremental diff on a live trace stream (uses -endpoints, -folds, -seed)")
	folds := fs.Int("folds", 200, "with -incremental, how many traces to fold into the candidate graph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *incremental {
		return runIncremental(out, *endpoints, *folds, *seed)
	}
	want := func(id string) bool { return *artifact == "all" || *artifact == id }

	if want("5.6") {
		fig, err := health.EvalFigure5_6(*traces, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
		if *diff {
			for _, r := range fig.Results {
				fmt.Fprintln(out, r.Diff.Render())
			}
		}
	}
	if want("5.8") {
		fig, err := health.EvalFigure5_8(*traces, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
		if *diff {
			for _, r := range fig.Results {
				fmt.Fprintln(out, r.Diff.Render())
			}
		}
	}
	if want("5.9") {
		ns, err := parseInts(*sizes)
		if err != nil {
			return err
		}
		fig, err := health.EvalFigure5_9(ns, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("5.10") {
		fig, err := health.EvalFigure5_10(*endpoints, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	return nil
}

// runIncremental folds a stream of fresh traces into the candidate
// graph of a generated pair and measures, after every fold, how long
// re-deriving the full diff takes via (a) the reference Compare walk
// and (b) the incrementally maintained diff. Both see the identical
// graph state, and their outputs are cross-checked every fold.
func runIncremental(out io.Writer, endpoints, folds int, seed int64) error {
	if folds <= 0 {
		return fmt.Errorf("-folds must be positive")
	}
	base, exp, err := health.GenerateGraphPair(health.GraphGenConfig{
		Endpoints: endpoints, ChangeFraction: 0.1, Seed: seed,
	})
	if err != nil {
		return err
	}
	inc := health.NewIncrementalDiff(base, exp)
	root := tracing.NodeKey{Service: "frontend", Version: "v1", Endpoint: "GET /"}

	fullNs := make([]float64, 0, folds)
	incNs := make([]float64, 0, folds)
	for i := 0; i < folds; i++ {
		id := tracing.TraceID(1_000_000 + i)
		child := tracing.NodeKey{
			Service: "svc-live", Version: "v2",
			Endpoint: fmt.Sprintf("GET /op-%d", i),
		}
		start := time.Unix(int64(id), 0)
		tr := tracing.Trace{ID: id, Spans: []tracing.Span{
			{TraceID: id, SpanID: 1, Service: root.Service, Version: root.Version,
				Endpoint: root.Endpoint, Start: start, Duration: time.Millisecond},
			{TraceID: id, SpanID: 2, ParentID: 1, Service: child.Service,
				Version: child.Version, Endpoint: child.Endpoint,
				Start: start, Duration: time.Millisecond},
		}}
		if err := exp.AddTrace(&tr); err != nil {
			return err
		}

		t0 := time.Now()
		full := health.Compare(base, exp)
		t1 := time.Now()
		fast := inc.Diff()
		t2 := time.Now()
		fullNs = append(fullNs, float64(t1.Sub(t0)))
		incNs = append(incNs, float64(t2.Sub(t1)))
		if len(full.Changes) != len(fast.Changes) {
			return fmt.Errorf("fold %d: incremental diff diverged: %d changes vs Compare's %d",
				i, len(fast.Changes), len(full.Changes))
		}
	}

	sort.Float64s(fullNs)
	sort.Float64s(incNs)
	q := func(sorted []float64, p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return time.Duration(sorted[idx])
	}
	fmt.Fprintf(out, "incremental diff vs full Compare: %d endpoints, %d trace folds\n", endpoints, folds)
	fmt.Fprintf(out, "  %-12s p50 %12s   p95 %12s   max %12s\n", "full", q(fullNs, 0.50), q(fullNs, 0.95), q(fullNs, 1))
	fmt.Fprintf(out, "  %-12s p50 %12s   p95 %12s   max %12s\n", "incremental", q(incNs, 0.50), q(incNs, 0.95), q(incNs, 1))
	if inc50 := q(incNs, 0.50); inc50 > 0 {
		fmt.Fprintf(out, "  p50 speedup: %.1fx\n", float64(q(fullNs, 0.50))/float64(inc50))
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
