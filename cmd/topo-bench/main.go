// Command topo-bench regenerates the Chapter 5 evaluation artifacts:
// ranking quality on the two release scenarios (Figs 5.6 and 5.8) and
// heuristic performance on synthetic graphs (Figs 5.9 and 5.10).
//
// Usage:
//
//	topo-bench -artifact all
//	topo-bench -artifact 5.9 -sizes 500,1000,2000,4000,10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"contexp/internal/health"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topo-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topo-bench", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "which artifact: 5.6, 5.8, 5.9, 5.10, or all")
	traces := fs.Int("traces", 500, "traces per variant for the ranking scenarios")
	sizes := fs.String("sizes", "500,1000,2000,4000,10000", "graph sizes (endpoints) for Fig 5.9")
	endpoints := fs.Int("endpoints", 4000, "graph size for Fig 5.10")
	seed := fs.Int64("seed", 1, "random seed")
	diff := fs.Bool("diff", false, "also print the topological difference of each scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := func(id string) bool { return *artifact == "all" || *artifact == id }

	if want("5.6") {
		fig, err := health.EvalFigure5_6(*traces, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
		if *diff {
			for _, r := range fig.Results {
				fmt.Fprintln(out, r.Diff.Render())
			}
		}
	}
	if want("5.8") {
		fig, err := health.EvalFigure5_8(*traces, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
		if *diff {
			for _, r := range fig.Results {
				fmt.Fprintln(out, r.Diff.Render())
			}
		}
	}
	if want("5.9") {
		ns, err := parseInts(*sizes)
		if err != nil {
			return err
		}
		fig, err := health.EvalFigure5_9(ns, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("5.10") {
		fig, err := health.EvalFigure5_10(*endpoints, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
