// Package contexp is a framework for continuous experimentation in
// microservice-based applications, reproducing the systems of
// "Continuous Experimentation for Software Developers" (Schermann,
// MIDDLEWARE 2017 / University of Zurich 2019):
//
//   - Planning — Fenrir: search-based scheduling of experiments under
//     traffic, sample-size, and user-group-overlap constraints
//     (Chapter 3).
//   - Execution — Bifrost: automated enactment of multi-phase live
//     testing strategies (canary → dark launch → A/B test → gradual
//     rollout) written in an experimentation-as-code DSL, on top of
//     runtime traffic routing (Chapter 4).
//   - Analysis — topology-aware health assessment: change detection
//     and impact ranking from distributed traces (Chapter 5).
//
// This package is the public facade: it re-exports the stable surface
// of the internal packages so downstream users have one import. The
// substrates (metrics store, tracing collector, routing table,
// microservice simulator, load generator) are re-exported where a user
// composes them; everything else stays internal.
package contexp

import (
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/expmodel"
	"contexp/internal/fenrir"
	"contexp/internal/health"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
	"contexp/internal/traffic"
)

// --- Execution (Bifrost) ---

type (
	// Strategy is a multi-phase live testing strategy.
	Strategy = bifrost.Strategy
	// Phase is one state of a strategy's state machine.
	Phase = bifrost.Phase
	// Check is a timed health criterion.
	Check = bifrost.Check
	// Engine executes strategies concurrently.
	Engine = bifrost.Engine
	// EngineConfig parameterizes NewEngine.
	EngineConfig = bifrost.Config
	// Run is one executing or finished strategy.
	Run = bifrost.Run
	// MetricQuerier is the narrow metric-query interface the engine's
	// check evaluation depends on; any telemetry backend can satisfy it.
	MetricQuerier = bifrost.Querier
)

// ParseStrategy parses the experimentation-as-code DSL.
func ParseStrategy(src string) (*Strategy, error) { return bifrost.ParseStrategy(src) }

// NewEngine creates a strategy execution engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return bifrost.NewEngine(cfg) }

// --- Durability (run journal) ---

type (
	// RunJournal is the write-ahead log run events flow through before
	// their side effects apply (EngineConfig.Journal).
	RunJournal = journal.Journal
	// FileJournalOptions parameterizes OpenFileJournal.
	FileJournalOptions = journal.Options
	// RecoveryReport summarizes an Engine.Recover pass.
	RecoveryReport = bifrost.RecoveryReport
)

// NewMemoryJournal creates an in-process journal (no durability).
func NewMemoryJournal() RunJournal { return journal.NewMemory() }

// OpenFileJournal opens a segmented append-only file journal in dir;
// pair it with Engine.Recover at startup for crash recovery (see
// docs/PERSISTENCE.md).
func OpenFileJournal(dir string, opts FileJournalOptions) (RunJournal, error) {
	return journal.Open(dir, opts)
}

// --- Planning (Fenrir) ---

type (
	// SchedulingProblem bundles experiments, traffic, and constraints.
	SchedulingProblem = fenrir.Problem
	// PlannedExperiment is the planning-phase experiment definition.
	PlannedExperiment = fenrir.Experiment
	// Schedule assigns an execution plan to every experiment.
	Schedule = fenrir.Schedule
	// Optimizer searches for high-fitness schedules.
	Optimizer = fenrir.Optimizer
	// GeneticAlgorithm is the recommended optimizer.
	GeneticAlgorithm = fenrir.GeneticAlgorithm
	// ReevalInput describes a schedule reevaluation request.
	ReevalInput = fenrir.ReevalInput
	// ReevalResult is the reduced problem plus its seed schedule.
	ReevalResult = fenrir.ReevalResult
)

// Reevaluate re-plans an existing schedule after cancellations and
// arrivals.
func Reevaluate(p *SchedulingProblem, s *Schedule, in ReevalInput) (*ReevalResult, error) {
	return fenrir.Reevaluate(p, s, in)
}

// --- Analysis (health assessment) ---

type (
	// TopologyDiff is the topological difference of two variants.
	TopologyDiff = health.Diff
	// TopologyChange is one classified change.
	TopologyChange = health.Change
	// RankingHeuristic orders changes by potential impact.
	RankingHeuristic = health.Heuristic
)

// CompareTopologies diffs baseline and experimental interaction graphs.
var CompareTopologies = health.Compare

// RankChanges orders a diff's changes with a heuristic.
var RankChanges = health.Rank

// AllRankingHeuristics returns the six heuristic variations.
var AllRankingHeuristics = health.AllHeuristics

// --- Live analysis (topology-aware health, docs/HEALTH.md) ---

type (
	// LiveSpanCollector is the bounded, sharded span sink of the live
	// data plane.
	LiveSpanCollector = tracing.LiveCollector
	// HealthMonitor folds settled traces into per-run interaction
	// graphs and answers topology checks; it satisfies the engine's
	// TopologyAssessor (EngineConfig.Topology).
	HealthMonitor = health.Monitor
	// TopologyAssessor is the engine's seam for structural verdicts.
	TopologyAssessor = bifrost.TopologyAssessor
	// TopologyVerdict is one live structural verdict.
	TopologyVerdict = health.LiveVerdict
)

// NewLiveSpanCollector creates a span collector bounded to cap spans
// (cap <= 0 is unbounded).
func NewLiveSpanCollector(cap int) *LiveSpanCollector { return tracing.NewLiveCollector(cap) }

// NewHealthMonitor creates a live assessment monitor over a collector.
// A settle of 0 uses the default span-quiet window.
func NewHealthMonitor(c *LiveSpanCollector, settle time.Duration) *HealthMonitor {
	return health.NewMonitor(c, settle)
}

// HeuristicByName resolves a ranking heuristic by its canonical name.
var HeuristicByName = health.HeuristicByName

// --- Substrates users compose with ---

type (
	// MetricStore is the in-memory telemetry store checks query.
	MetricStore = metrics.Store
	// MetricScope identifies the deployment a metric series belongs to.
	MetricScope = metrics.Scope
	// MetricSample is one observation for batched ingestion
	// (MetricStore.RecordBatch).
	MetricSample = metrics.Sample
	// RoutingTable is the runtime traffic routing table.
	RoutingTable = router.Table
	// TrafficProfile drives experiment scheduling.
	TrafficProfile = traffic.Profile
	// UserGroup identifies a user segment.
	UserGroup = expmodel.UserGroup
	// Practice is a continuous-experimentation practice.
	Practice = expmodel.Practice
)

// NewMetricStore creates a telemetry store (capacity <= 0 uses the
// default).
func NewMetricStore(capacity int) *MetricStore { return metrics.NewStore(capacity) }

// NewRoutingTable creates an empty routing table.
func NewRoutingTable() *RoutingTable { return router.NewTable() }

// Experimentation practices.
const (
	PracticeCanary         = expmodel.PracticeCanary
	PracticeDarkLaunch     = expmodel.PracticeDarkLaunch
	PracticeABTest         = expmodel.PracticeABTest
	PracticeGradualRollout = expmodel.PracticeGradualRollout
	PracticeBlueGreen      = expmodel.PracticeBlueGreen
)
