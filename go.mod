module contexp

go 1.24
