package topology

import (
	"fmt"
	"testing"
	"time"

	"contexp/internal/tracing"
)

// synthTraces builds n valid traces of `width` child spans each, spread
// over `services` distinct services, mimicking the shape the live
// collector harvests.
func synthTraces(n, width, services int) []tracing.Trace {
	out := make([]tracing.Trace, n)
	for i := range out {
		id := tracing.TraceID(i + 1)
		start := time.Unix(int64(i), 0)
		spans := []tracing.Span{{
			TraceID: id, SpanID: 1,
			Service: "frontend", Version: "v1", Endpoint: "GET /",
			Start: start, Duration: 10 * time.Millisecond,
		}}
		for j := 0; j < width; j++ {
			svc := fmt.Sprintf("svc-%03d", (i+j)%services)
			spans = append(spans, tracing.Span{
				TraceID: id, SpanID: tracing.SpanID(j + 2), ParentID: 1,
				Service: svc, Version: "v1", Endpoint: "GET /op",
				Start: start.Add(time.Duration(j) * time.Millisecond), Duration: 2 * time.Millisecond,
			})
		}
		out[i] = tracing.Trace{ID: id, Spans: spans}
	}
	return out
}

// BenchmarkGraphBuild measures the full trace-set build: the cost the
// analysis plane pays per harvested batch.
func BenchmarkGraphBuild(b *testing.B) {
	traces := synthTraces(2000, 6, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(tracing.VariantBaseline, traces)
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkGraphAddTrace measures the incremental unit: folding one
// trace into an already-populated graph, the steady-state cost of the
// live pipeline.
func BenchmarkGraphAddTrace(b *testing.B) {
	warm := synthTraces(2000, 6, 40)
	extra := synthTraces(1, 6, 40)
	g := Build(tracing.VariantBaseline, warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := extra[0]
		tr.ID = tracing.TraceID(10_000 + i)
		for j := range tr.Spans {
			tr.Spans[j].TraceID = tr.ID
		}
		if err := g.AddTrace(&tr); err != nil {
			b.Fatal(err)
		}
	}
}
