package topology

import (
	"testing"
	"time"

	"contexp/internal/tracing"
)

var tBase = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

// buildTrace constructs a trace frontend -> catalog -> db with optional
// error on the catalog span.
func buildTrace(id tracing.TraceID, variant tracing.Variant, catalogErr bool) tracing.Trace {
	spans := []tracing.Span{
		{TraceID: id, SpanID: 1, Service: "frontend", Version: "v1", Endpoint: "GET /",
			Start: tBase, Duration: 100 * time.Millisecond, Variant: variant},
		{TraceID: id, SpanID: 2, ParentID: 1, Service: "catalog", Version: "v1", Endpoint: "GET /products",
			Start: tBase.Add(5 * time.Millisecond), Duration: 50 * time.Millisecond, Err: catalogErr, Variant: variant},
		{TraceID: id, SpanID: 3, ParentID: 2, Service: "db", Version: "v1", Endpoint: "QUERY products",
			Start: tBase.Add(10 * time.Millisecond), Duration: 20 * time.Millisecond, Variant: variant},
	}
	return tracing.Trace{ID: id, Variant: variant, Spans: spans}
}

func nk(svc, ver, ep string) tracing.NodeKey {
	return tracing.NodeKey{Service: svc, Version: ver, Endpoint: ep}
}

func TestBuildGraph(t *testing.T) {
	traces := []tracing.Trace{
		buildTrace(1, tracing.VariantBaseline, false),
		buildTrace(2, tracing.VariantBaseline, true),
	}
	g := Build(tracing.VariantBaseline, traces)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.Roots[nk("frontend", "v1", "GET /")] {
		t.Error("frontend root not detected")
	}
	cat := g.Nodes[nk("catalog", "v1", "GET /products")]
	if cat == nil || cat.Calls != 2 || cat.Errors != 1 {
		t.Fatalf("catalog node = %+v", cat)
	}
	if cat.ErrorRate() != 0.5 {
		t.Errorf("ErrorRate = %v", cat.ErrorRate())
	}
	if cat.MeanDuration() != 50*time.Millisecond {
		t.Errorf("MeanDuration = %v", cat.MeanDuration())
	}
	edge := g.Edges[EdgeKey{From: nk("frontend", "v1", "GET /"), To: nk("catalog", "v1", "GET /products")}]
	if edge == nil || edge.Calls != 2 {
		t.Fatalf("frontend->catalog edge = %+v", edge)
	}
}

func TestBuildSkipsBrokenTraces(t *testing.T) {
	broken := tracing.Trace{ID: 9, Spans: []tracing.Span{
		{TraceID: 9, SpanID: 1, ParentID: 42, Service: "x", Version: "v1", Endpoint: "e"},
	}}
	g := Build("", []tracing.Trace{broken, buildTrace(1, "", false)})
	if g.NumNodes() != 3 {
		t.Errorf("broken trace contaminated graph: %d nodes", g.NumNodes())
	}
}

func TestCalleesDeterministic(t *testing.T) {
	g := Build("", []tracing.Trace{buildTrace(1, "", false)})
	callees := g.Callees(nk("frontend", "v1", "GET /"))
	if len(callees) != 1 || callees[0].Service != "catalog" {
		t.Fatalf("Callees = %v", callees)
	}
	if got := g.Callees(nk("db", "v1", "QUERY products")); len(got) != 0 {
		t.Errorf("leaf should have no callees, got %v", got)
	}
}

func TestSubtreeAndDepth(t *testing.T) {
	g := Build("", []tracing.Trace{buildTrace(1, "", false)})
	sub := g.Subtree(nk("frontend", "v1", "GET /"))
	if len(sub) != 3 {
		t.Errorf("Subtree size = %d, want 3", len(sub))
	}
	if d := g.Depth(nk("frontend", "v1", "GET /")); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	if d := g.Depth(nk("db", "v1", "QUERY products")); d != 1 {
		t.Errorf("leaf Depth = %d, want 1", d)
	}
}

func TestDepthWithCycle(t *testing.T) {
	// a -> b -> a cycle, plus b -> c.
	spans := []tracing.Span{
		{TraceID: 1, SpanID: 1, Service: "a", Version: "v1", Endpoint: "e", Start: tBase},
		{TraceID: 1, SpanID: 2, ParentID: 1, Service: "b", Version: "v1", Endpoint: "e", Start: tBase.Add(time.Millisecond)},
		{TraceID: 1, SpanID: 3, ParentID: 2, Service: "a", Version: "v1", Endpoint: "e", Start: tBase.Add(2 * time.Millisecond)},
		{TraceID: 1, SpanID: 4, ParentID: 2, Service: "c", Version: "v1", Endpoint: "e", Start: tBase.Add(3 * time.Millisecond)},
	}
	g := Build("", []tracing.Trace{{ID: 1, Spans: spans}})
	// Depth must terminate and count a -> b -> c.
	if d := g.Depth(nk("a", "v1", "e")); d != 3 {
		t.Errorf("cyclic Depth = %d, want 3", d)
	}
	sub := g.Subtree(nk("a", "v1", "e"))
	if len(sub) != 3 {
		t.Errorf("cyclic Subtree size = %d, want 3", len(sub))
	}
}

func TestServiceVersions(t *testing.T) {
	traces := []tracing.Trace{buildTrace(1, "", false)}
	// Add a trace with catalog v2.
	spans := []tracing.Span{
		{TraceID: 2, SpanID: 10, Service: "frontend", Version: "v1", Endpoint: "GET /", Start: tBase},
		{TraceID: 2, SpanID: 11, ParentID: 10, Service: "catalog", Version: "v2", Endpoint: "GET /products", Start: tBase},
	}
	traces = append(traces, tracing.Trace{ID: 2, Spans: spans})
	g := Build("", traces)
	sv := g.ServiceVersions()
	if got := sv["catalog"]; len(got) != 2 || got[0] != "v1" || got[1] != "v2" {
		t.Errorf("catalog versions = %v", got)
	}
	if !g.HasEndpoint("catalog", "GET /products") {
		t.Error("HasEndpoint failed for existing endpoint")
	}
	if g.HasEndpoint("catalog", "DELETE /products") {
		t.Error("HasEndpoint true for missing endpoint")
	}
}

func TestSortedNodesAndEdgesStable(t *testing.T) {
	g := Build("", []tracing.Trace{buildTrace(1, "", false)})
	n1 := g.SortedNodes()
	n2 := g.SortedNodes()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("SortedNodes not deterministic")
		}
	}
	e1 := g.SortedEdges()
	if len(e1) != 2 {
		t.Fatalf("SortedEdges len = %d", len(e1))
	}
	if e1[0].From.Service > e1[1].From.Service {
		t.Error("edges not sorted")
	}
}

func TestGraphString(t *testing.T) {
	g := Build(tracing.VariantBaseline, []tracing.Trace{buildTrace(1, tracing.VariantBaseline, false)})
	s := g.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestTrackReportsOnlyNovelty(t *testing.T) {
	g := NewGraph(tracing.VariantBaseline)
	d := g.Track()
	if !d.Empty() {
		t.Fatal("fresh tracker should be empty")
	}
	if g.Track() != d {
		t.Fatal("Track must return the same tracker on repeated calls")
	}

	tr := buildTrace(1, tracing.VariantBaseline, false)
	if err := g.AddTrace(&tr); err != nil {
		t.Fatal(err)
	}
	nodes, edges := d.Drain()
	if len(nodes) != 3 || len(edges) != 2 {
		t.Fatalf("first fold: %d nodes, %d edges dirty, want 3/2", len(nodes), len(edges))
	}
	if !d.Empty() {
		t.Fatal("tracker should be empty after Drain")
	}

	// Folding the identical topology again creates no new keys: the
	// feed reports structural novelty, not statistics updates.
	tr2 := buildTrace(2, tracing.VariantBaseline, true)
	if err := g.AddTrace(&tr2); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		nodes, edges := d.Drain()
		t.Fatalf("repeat fold dirtied %d nodes, %d edges, want none", len(nodes), len(edges))
	}

	// A new child endpoint dirties exactly the new node and edge.
	tr3 := buildTrace(3, tracing.VariantBaseline, false)
	tr3.Spans = append(tr3.Spans, tracing.Span{
		TraceID: 3, SpanID: 4, ParentID: 1,
		Service: "search", Version: "v1", Endpoint: "GET /q",
		Start: tBase, Duration: time.Millisecond,
	})
	if err := g.AddTrace(&tr3); err != nil {
		t.Fatal(err)
	}
	nodes, edges = d.Drain()
	if len(nodes) != 1 || nodes[0] != nk("search", "v1", "GET /q") {
		t.Fatalf("dirty nodes = %v", nodes)
	}
	if len(edges) != 1 || edges[0].To != nk("search", "v1", "GET /q") {
		t.Fatalf("dirty edges = %v", edges)
	}
}

func TestAddTraceMaintainsAdjacencyCache(t *testing.T) {
	g := NewGraph(tracing.VariantBaseline)
	tr := buildTrace(1, tracing.VariantBaseline, false)
	if err := g.AddTrace(&tr); err != nil {
		t.Fatal(err)
	}
	front := nk("frontend", "v1", "GET /")
	if got := g.Callees(front); len(got) != 1 {
		t.Fatalf("Callees = %v", got)
	}
	// Fold edges after the cache materialized: insertion must keep the
	// per-caller lists sorted without a rebuild.
	for _, ep := range []string{"GET /z", "GET /a", "GET /m"} {
		tr := buildTrace(2, tracing.VariantBaseline, false)
		tr.Spans = append(tr.Spans, tracing.Span{
			TraceID: 2, SpanID: 4, ParentID: 1,
			Service: "aux", Version: "v1", Endpoint: ep,
			Start: tBase, Duration: time.Millisecond,
		})
		if err := g.AddTrace(&tr); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Callees(front)
	want := []tracing.NodeKey{
		nk("aux", "v1", "GET /a"), nk("aux", "v1", "GET /m"), nk("aux", "v1", "GET /z"),
		nk("catalog", "v1", "GET /products"),
	}
	if len(got) != len(want) {
		t.Fatalf("Callees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Callees[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
