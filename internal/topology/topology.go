// Package topology builds service interaction graphs from distributed
// traces, the analysis model of Chapter 5. Nodes denote endpoints of
// services in specific versions; edges denote calls between them
// ("which services call which concrete other service endpoints",
// Section 5.4.2). The graphs of a baseline and an experimental variant
// are later diffed by the health package to surface topological changes.
package topology

import (
	"fmt"
	"sort"
	"time"

	"contexp/internal/tracing"
)

// Node is an endpoint of a service in a specific version, annotated with
// the call statistics observed in the trace set.
type Node struct {
	Key tracing.NodeKey
	// Calls is how many spans hit this endpoint.
	Calls int
	// Errors is how many of those spans failed.
	Errors int
	// TotalDuration accumulates span durations; mean = Total/Calls.
	TotalDuration time.Duration
	// Durations retains the raw values for percentile queries by the
	// response-time heuristics.
	Durations []time.Duration
}

// MeanDuration returns the average observed duration of the endpoint.
func (n *Node) MeanDuration() time.Duration {
	if n.Calls == 0 {
		return 0
	}
	return n.TotalDuration / time.Duration(n.Calls)
}

// ErrorRate returns the fraction of failed calls.
func (n *Node) ErrorRate() float64 {
	if n.Calls == 0 {
		return 0
	}
	return float64(n.Errors) / float64(n.Calls)
}

// EdgeKey identifies a caller→callee interaction.
type EdgeKey struct {
	From tracing.NodeKey
	To   tracing.NodeKey
}

// String renders "from -> to".
func (k EdgeKey) String() string {
	return k.From.String() + " -> " + k.To.String()
}

// Edge is an observed caller→callee interaction with its statistics.
type Edge struct {
	Key   EdgeKey
	Calls int
}

// Graph is a service interaction graph extracted from a set of traces.
type Graph struct {
	Variant tracing.Variant
	Nodes   map[tracing.NodeKey]*Node
	Edges   map[EdgeKey]*Edge
	// Roots are entry-point nodes (reached by root spans).
	Roots map[tracing.NodeKey]bool
	// out adjacency, deterministic ordering computed lazily and
	// maintained incrementally as AddTrace folds new edges in.
	out map[tracing.NodeKey][]tracing.NodeKey
	// dirty, when attached via Track, accumulates the keys of nodes and
	// edges AddTrace creates — the change-notification feed incremental
	// consumers (health.IncrementalDiff) drain instead of re-walking the
	// graph.
	dirty *Dirty
}

// Dirty accumulates the node and edge keys a graph gained since the
// last Drain: the change-notification feed of the incremental analysis
// plane. Only structural novelty is reported — a key appears exactly
// once, when AddTrace first creates its node or edge. Statistics
// updates to existing keys (calls, errors, durations) are not reported,
// since the topological diff depends only on which keys exist.
type Dirty struct {
	Nodes []tracing.NodeKey
	Edges []EdgeKey
}

// Drain returns the accumulated keys and resets the sets. The returned
// slices are owned by the caller; the tracker starts fresh.
func (d *Dirty) Drain() (nodes []tracing.NodeKey, edges []EdgeKey) {
	nodes, edges = d.Nodes, d.Edges
	d.Nodes, d.Edges = nil, nil
	return nodes, edges
}

// Empty reports whether nothing changed since the last Drain.
func (d *Dirty) Empty() bool { return len(d.Nodes) == 0 && len(d.Edges) == 0 }

// Track attaches (and returns) the graph's change tracker. All
// mutations MUST flow through AddTrace from this point on — direct map
// manipulation bypasses the feed. A graph has at most one tracker;
// repeated calls return the same one.
func (g *Graph) Track() *Dirty {
	if g.dirty == nil {
		g.dirty = &Dirty{}
	}
	return g.dirty
}

// NewGraph returns an empty graph for the given variant.
func NewGraph(variant tracing.Variant) *Graph {
	return &Graph{
		Variant: variant,
		Nodes:   make(map[tracing.NodeKey]*Node),
		Edges:   make(map[EdgeKey]*Edge),
		Roots:   make(map[tracing.NodeKey]bool),
	}
}

// Build constructs the interaction graph of all traces. Broken traces
// (failing Validate) are skipped rather than poisoning the graph, since
// real tracing backends routinely deliver incomplete traces.
func Build(variant tracing.Variant, traces []tracing.Trace) *Graph {
	g := NewGraph(variant)
	for i := range traces {
		_ = g.AddTrace(&traces[i])
	}
	return g
}

// AddTrace folds one trace into the graph incrementally — the unit of
// work of the live analysis plane, which grows baseline and candidate
// graphs trace by trace as the data plane hands settled traces over.
// Broken traces are rejected with the validation error and leave the
// graph untouched.
func (g *Graph) AddTrace(tr *tracing.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	g.addTrace(tr)
	return nil
}

func (g *Graph) addTrace(tr *tracing.Trace) {
	byID := make(map[tracing.SpanID]tracing.Span, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.SpanID] = s
	}
	for _, s := range tr.Spans {
		key := s.Node()
		n := g.Nodes[key]
		if n == nil {
			n = &Node{Key: key}
			g.Nodes[key] = n
			if g.dirty != nil {
				g.dirty.Nodes = append(g.dirty.Nodes, key)
			}
		}
		n.Calls++
		if s.Err {
			n.Errors++
		}
		n.TotalDuration += s.Duration
		n.Durations = append(n.Durations, s.Duration)

		if s.ParentID == 0 {
			g.Roots[key] = true
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok {
			continue
		}
		ek := EdgeKey{From: parent.Node(), To: key}
		e := g.Edges[ek]
		if e == nil {
			e = &Edge{Key: ek}
			g.Edges[ek] = e
			if g.dirty != nil {
				g.dirty.Edges = append(g.dirty.Edges, ek)
			}
			// Keep the adjacency cache coherent instead of discarding it:
			// a new edge inserts its callee in sorted position, so the
			// live pipeline's per-trace fold stays O(degree) rather than
			// forcing an O(edges log edges) rebuild on the next Callees.
			if g.out != nil {
				g.insertCallee(ek)
			}
		}
		e.Calls++
	}
}

// insertCallee inserts ek.To into the sorted adjacency list of ek.From.
func (g *Graph) insertCallee(ek EdgeKey) {
	tos := g.out[ek.From]
	i := sort.Search(len(tos), func(i int) bool { return !nodeKeyLess(tos[i], ek.To) })
	tos = append(tos, tracing.NodeKey{})
	copy(tos[i+1:], tos[i:])
	tos[i] = ek.To
	g.out[ek.From] = tos
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Callees returns the deterministic (sorted) list of nodes called by `from`.
func (g *Graph) Callees(from tracing.NodeKey) []tracing.NodeKey {
	if g.out == nil {
		g.out = make(map[tracing.NodeKey][]tracing.NodeKey, len(g.Nodes))
		for ek := range g.Edges {
			g.out[ek.From] = append(g.out[ek.From], ek.To)
		}
		for _, tos := range g.out {
			sort.Slice(tos, func(i, j int) bool {
				return nodeKeyLess(tos[i], tos[j])
			})
		}
	}
	return g.out[from]
}

// SortedNodes returns all node keys in deterministic order.
func (g *Graph) SortedNodes() []tracing.NodeKey {
	keys := make([]tracing.NodeKey, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return nodeKeyLess(keys[i], keys[j]) })
	return keys
}

// SortedEdges returns all edge keys in deterministic order.
func (g *Graph) SortedEdges() []EdgeKey {
	keys := make([]EdgeKey, 0, len(g.Edges))
	for k := range g.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return nodeKeyLess(keys[i].From, keys[j].From)
		}
		return nodeKeyLess(keys[i].To, keys[j].To)
	})
	return keys
}

// Subtree returns the set of nodes reachable from root (including root)
// following call edges. Cycles are handled.
func (g *Graph) Subtree(root tracing.NodeKey) map[tracing.NodeKey]bool {
	seen := make(map[tracing.NodeKey]bool)
	var walk func(k tracing.NodeKey)
	walk = func(k tracing.NodeKey) {
		if seen[k] {
			return
		}
		seen[k] = true
		for _, to := range g.Callees(k) {
			walk(to)
		}
	}
	walk(root)
	return seen
}

// Depth returns the height of the call subtree under root: 1 for a leaf.
// Cycles contribute no additional depth.
func (g *Graph) Depth(root tracing.NodeKey) int {
	seen := make(map[tracing.NodeKey]bool)
	var walk func(k tracing.NodeKey) int
	walk = func(k tracing.NodeKey) int {
		if seen[k] {
			return 0
		}
		seen[k] = true
		defer delete(seen, k)
		best := 0
		for _, to := range g.Callees(k) {
			if d := walk(to); d > best {
				best = d
			}
		}
		return best + 1
	}
	return walk(root)
}

// ServiceVersions returns the set of versions observed per service.
func (g *Graph) ServiceVersions() map[string][]string {
	set := make(map[string]map[string]bool)
	for k := range g.Nodes {
		if set[k.Service] == nil {
			set[k.Service] = make(map[string]bool)
		}
		set[k.Service][k.Version] = true
	}
	out := make(map[string][]string, len(set))
	for svc, versions := range set {
		vs := make([]string, 0, len(versions))
		for v := range versions {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		out[svc] = vs
	}
	return out
}

// HasEndpoint reports whether any version of service exposes endpoint.
func (g *Graph) HasEndpoint(service, endpoint string) bool {
	for k := range g.Nodes {
		if k.Service == service && k.Endpoint == endpoint {
			return true
		}
	}
	return false
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(%s: %d nodes, %d edges, %d roots)",
		g.Variant, len(g.Nodes), len(g.Edges), len(g.Roots))
}

func nodeKeyLess(a, b tracing.NodeKey) bool {
	if a.Service != b.Service {
		return a.Service < b.Service
	}
	if a.Version != b.Version {
		return a.Version < b.Version
	}
	return a.Endpoint < b.Endpoint
}
