//go:build !race

package metrics

const raceEnabled = false
