package metrics

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkRecord(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Record("rt", scope, now, float64(i))
	}
}

func BenchmarkQueryP95(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Now()
	for i := 0; i < 10000; i++ {
		// Strictly positive latencies: zero values would route quantiles
		// through the exact underflow fallback instead of the sketch.
		st.Record("rt", scope, base.Add(time.Duration(i)*time.Millisecond), 1+float64(i%100))
	}
	since := base.Add(5 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query("rt", scope, since, AggP95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordParallel hammers the write path from all cores over
// several series: the sharded map means writers of different series
// never serialize on a store-wide lock.
func BenchmarkRecordParallel(b *testing.B) {
	st := NewStore(0)
	now := time.Now()
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		g := next.Add(1)
		scope := Scope{Service: "svc", Version: fmt.Sprintf("v%d", g)}
		i := 0
		for pb.Next() {
			st.Record("rt", scope, now.Add(time.Duration(i)*time.Millisecond), float64(i%100))
			i++
		}
	})
}

// BenchmarkQueryP95Hot queries a percentile on a full-capacity series
// (DefaultSeriesCapacity raw observations). The streaming histogram
// sketch answers in O(time buckets + histogram buckets) — no copy, no
// sort of the 65k-sample window.
func BenchmarkQueryP95Hot(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Now()
	for i := 0; i < DefaultSeriesCapacity; i++ {
		// Strictly positive latencies (see BenchmarkQueryP95).
		st.Record("rt", scope, base.Add(time.Duration(i)*time.Millisecond), 1+float64(i%250))
	}
	since := base // whole window: every bucket merges into the answer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query("rt", scope, since, AggP95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParallel hammers the sealed-aggregate read path from
// all cores while a writer keeps appending: readers take no series
// lock and allocate nothing (the allocs gate holds the path at zero),
// so throughput scales with cores instead of serializing on the
// per-series mutex.
func BenchmarkQueryParallel(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	now := time.Now()
	// 30s of sealed history ending now; the writer below appends live.
	for i := 0; i < 30000; i++ {
		st.Record("rt", scope, now.Add(time.Duration(i-30000)*time.Millisecond), 1+float64(i%100))
	}
	since := now.Add(-25 * time.Second)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := make([]Sample, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			at := time.Now()
			for k := range batch {
				batch[k] = Sample{Metric: "rt", Scope: scope, At: at, Value: 1 + float64(k%100)}
			}
			st.RecordBatch(batch) // zero-alloc concurrent write pressure
		}
	}()
	aggs := []Aggregation{AggMean, AggCount, AggMax, AggRate}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := st.Query("rt", scope, since, aggs[i%len(aggs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkStoreRecordBatch measures the batched ingestion path with a
// realistic mixed batch (four series interleaved in runs, the shape the
// binary ingestion endpoint and the simulators deliver). Steady-state
// batch recording into existing series is allocation-free, and the
// bench gate holds it there.
func BenchmarkStoreRecordBatch(b *testing.B) {
	st := NewStore(0)
	now := time.Now()
	batch := make([]Sample, 256)
	for i := range batch {
		batch[i] = Sample{
			Metric: fmt.Sprintf("metric-%d", (i/16)%4),
			Scope:  Scope{Service: "svc", Version: "v1", Variant: "baseline"},
			At:     now.Add(time.Duration(i) * time.Millisecond),
			Value:  1 + float64(i%100),
		}
	}
	st.RecordBatch(batch) // create the series outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RecordBatch(batch)
	}
}
