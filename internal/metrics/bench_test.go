package metrics

import (
	"testing"
	"time"
)

func BenchmarkRecord(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Record("rt", scope, now, float64(i))
	}
}

func BenchmarkQueryP95(b *testing.B) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Now()
	for i := 0; i < 10000; i++ {
		st.Record("rt", scope, base.Add(time.Duration(i)*time.Millisecond), float64(i%100))
	}
	since := base.Add(5 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query("rt", scope, since, AggP95); err != nil {
			b.Fatal(err)
		}
	}
}
