package metrics

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

// The rollup tier contract: a day of 1-second traffic stays queryable
// at minute granularity long after the raw rings have wrapped, memory
// stays bounded, idle series age out under Maintain, and the rollups
// survive a Save/Load round trip.

func TestRollupsAnswerLongWindows(t *testing.T) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

	// 24 hours of one sample per simulated second — far past the raw
	// ring's few minutes of coverage.
	const day = 24 * 60 * 60
	for i := 0; i < day; i++ {
		st.Record("response_time", scope, base.Add(time.Duration(i)*time.Second), 10)
	}
	now := base.Add(day * time.Second)

	// A 12-hour window cannot come from the raw ring; the minute
	// rollups answer it.
	since := now.Add(-12 * time.Hour)
	got, err := st.Query("response_time", scope, since, AggMean)
	if err != nil {
		t.Fatalf("12h mean: %v", err)
	}
	if math.Abs(got-10) > 0.01 {
		t.Fatalf("12h mean: want 10, got %v", got)
	}
	cnt, err := st.Query("response_time", scope, since, AggCount)
	if err != nil {
		t.Fatalf("12h count: %v", err)
	}
	// Windows snap to minute boundaries: allow one bucket of slack.
	if want := float64(12 * 60 * 60); math.Abs(cnt-want) > 60 {
		t.Fatalf("12h count: want ~%v, got %v", want, cnt)
	}

	// The full day answers too (minute ring holds exactly 24h).
	if _, err := st.Query("response_time", scope, now.Add(-23*time.Hour), AggMax); err != nil {
		t.Fatalf("23h max: %v", err)
	}
}

func TestRollupMemoryIsBoundedOverDays(t *testing.T) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

	// Three days of traffic, sparse (one sample per minute) to keep the
	// test fast. The minute ring wraps after day one; the hour ring
	// carries the rest. Nothing grows past the fixed ring sizes.
	const days = 3
	for i := 0; i < days*24*60; i++ {
		st.Record("response_time", scope, base.Add(time.Duration(i)*time.Minute), float64(i%100))
	}
	s := st.lookup(seriesKey("response_time", scope))
	if s == nil {
		t.Fatal("series missing")
	}
	s.mu.Lock()
	minuteLen, hourLen := len(s.minute.buckets), len(s.hour.buckets)
	s.mu.Unlock()
	if minuteLen > minuteRingSlots || hourLen > hourRingSlots {
		t.Fatalf("rings grew past their bounds: minute=%d hour=%d", minuteLen, hourLen)
	}

	// A window beyond the minute ring's 24h reach falls to the hour
	// tier instead of failing.
	now := base.Add(days * 24 * time.Hour)
	if _, err := st.Query("response_time", scope, now.Add(-60*time.Hour), AggCount); err != nil {
		t.Fatalf("60h count via hour tier: %v", err)
	}
}

func TestMaintainEvictsIdleSeries(t *testing.T) {
	st := NewStore(0)
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	st.Record("response_time", Scope{Tenant: "acme", Service: "svc", Version: "v1"}, base, 1)
	st.Record("response_time", Scope{Tenant: "beta", Service: "svc", Version: "v1"}, base.Add(20*time.Hour), 1)

	// Retention 24h at base+30h: acme's series (idle 30h) goes, beta's
	// (idle 10h) stays.
	evicted := st.Maintain(base.Add(30*time.Hour), 24*time.Hour)
	if evicted != 1 {
		t.Fatalf("want 1 eviction, got %d", evicted)
	}
	series := st.TenantSeries()
	if series["acme"] != 0 || series["beta"] != 1 {
		t.Fatalf("want acme evicted and beta live, got %v", series)
	}

	// idleFor <= 0 disables eviction.
	if n := st.Maintain(base.Add(1000*time.Hour), 0); n != 0 {
		t.Fatalf("disabled retention evicted %d series", n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := NewStore(0)
	scope := Scope{Tenant: "acme", Service: "svc", Version: "v1"}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6*60; i++ {
		st.Record("response_time", scope, base.Add(time.Duration(i)*time.Minute), 42)
	}
	now := base.Add(6 * time.Hour)

	path := filepath.Join(t.TempDir(), "rollups.json")
	if err := st.SaveSnapshot(path, now); err != nil {
		t.Fatal(err)
	}

	// A fresh store (a restarted daemon) answers the long window from
	// the restored rollups even though its raw rings are empty.
	st2 := NewStore(0)
	if err := st2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := st2.Query("response_time", scope, now.Add(-5*time.Hour), AggMean)
	if err != nil {
		t.Fatalf("restored query: %v", err)
	}
	if math.Abs(got-42) > 0.01 {
		t.Fatalf("restored mean: want 42, got %v", got)
	}
	if n := st2.TenantSeries()["acme"]; n != 1 {
		t.Fatalf("restored store should hold acme's series, got %v", st2.TenantSeries())
	}

	// Restored series carry a lastWrite, so retention still ages them.
	if n := st2.Maintain(now.Add(48*time.Hour), 24*time.Hour); n != 1 {
		t.Fatalf("restored series should age out, evicted %d", n)
	}

	// Missing snapshot file is a clean no-op (first boot).
	st3 := NewStore(0)
	if err := st3.LoadSnapshot(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing snapshot should not error: %v", err)
	}
}
