package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// This file is the lock-light read side of a series: completed
// one-second buckets are sealed into an immutable view published
// through an atomic pointer, and the in-progress second is mirrored in
// a seqlock-style bucket whose fields are all atomics. Aggregate
// queries (mean/min/max/count/sum/rate) over that pair take no series
// lock and allocate nothing, so hundreds of concurrent check
// evaluations never serialize against writers — or each other — on the
// per-series mutex. Quantile queries keep the locked path: they need
// the histogram sketches, which are deliberately not copied into the
// sealed view (that would multiply the publish cost by histSize).
//
// Write-side protocol (all under the series mutex, single writer):
//
//   - first write of a new second: publish a view sealing everything
//     before that second. The just-finished second's ring bucket is
//     complete at that point, so the view is lossless without ever
//     reading the mirror.
//   - write into the current second: it lands in the locked bucket
//     ring as before and marks the mirror dirty; the mirror is synced
//     from the ring bucket once per locked write section (record or a
//     RecordBatch series run), not per sample, keeping the hot write
//     path at one bool store per observation.
//   - late write into an already-sealed second: bumps the series'
//     late-write sequence, which readers compare against the value
//     stamped into the view at publish. A mismatch sends the read down
//     the locked path; the next second-boundary seal republishes with
//     the current sequence and re-arms the fast path. Deferring the
//     reconcile keeps out-of-order batches (the steady state for
//     replayed telemetry) allocation-free.
//
// Read-side protocol: check the late-write sequence, load view,
// snapshot hot, reload view; retry if the view moved or the hot
// seqlock was mid-write. The hot snapshot supplements the view only
// when its second is not already sealed into it (h.idx >= view.hotIdx)
// — rechecking the view after the hot snapshot is what makes the pair
// lossless: a reader that observes a mirror second at or past hotIdx
// is guaranteed (atomic ordering: the view publish precedes the mirror
// sync) to also observe the view holding every earlier second. A
// lagging mirror merely linearizes the read before the in-flight
// writes. A handful of failed attempts falls back to the locked path —
// correctness never depends on winning the race.

// sealedBucket is an immutable, histogram-free copy of one completed
// one-second aggregate bucket.
type sealedBucket struct {
	idx     int64 // unix second, full index
	count   int
	sum     float64
	min     float64
	max     float64
	firstNs int64 // UnixNano of earliest/latest observation; count > 0
	lastNs  int64 // guarantees both are meaningful
}

// sealedView is the atomically-published read index over sealed
// seconds. Immutable after publish.
type sealedView struct {
	// buckets holds every live bucket with idx < hotIdx, in ring order.
	buckets []sealedBucket
	// earliestIdx/latestIdx mirror the series' coverage bookkeeping at
	// publish time; readers extend latestIdx with the hot second.
	earliestIdx int64
	latestIdx   int64
	// hotIdx is the first unsealed second: the hot mirror supplements
	// this view iff its idx is >= hotIdx.
	hotIdx int64
	// lateSeq is the series' late-write sequence at publish; a reader
	// seeing a newer value knows sealed history moved under this view.
	lateSeq uint64
}

// hotBucket mirrors the in-progress second for lock-free readers. All
// fields are atomics (race-detector clean); seq makes a multi-field
// snapshot consistent: odd while a sync is in flight, bumped twice per
// sync, so a reader whose two seq loads match saw a stable state. Only
// the write side mutates it, always under the series mutex.
type hotBucket struct {
	seq     atomic.Uint64
	idx     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	firstNs atomic.Int64
	lastNs  atomic.Int64
}

// syncLocked copies the current second's ring bucket into the mirror
// in one seqlock section. Caller holds the series mutex.
func (h *hotBucket) syncLocked(b *aggBucket) {
	h.seq.Add(1)
	h.idx.Store(b.idx)
	h.count.Store(int64(b.count))
	h.sumBits.Store(math.Float64bits(b.sum))
	h.minBits.Store(math.Float64bits(b.min))
	h.maxBits.Store(math.Float64bits(b.max))
	h.firstNs.Store(b.firstAt.UnixNano())
	h.lastNs.Store(b.lastAt.UnixNano())
	h.seq.Add(1)
}

// hotSnap is a reader's consistent copy of the hot mirror.
type hotSnap struct {
	idx     int64
	count   int64
	sum     float64
	min     float64
	max     float64
	firstNs int64
	lastNs  int64
}

// snapshot copies the mirror if no sync intervened; ok is false when
// the caller should retry (or fall back to the locked path).
func (h *hotBucket) snapshot() (hotSnap, bool) {
	s1 := h.seq.Load()
	if s1&1 != 0 {
		return hotSnap{}, false
	}
	snap := hotSnap{
		idx:     h.idx.Load(),
		count:   h.count.Load(),
		sum:     math.Float64frombits(h.sumBits.Load()),
		min:     math.Float64frombits(h.minBits.Load()),
		max:     math.Float64frombits(h.maxBits.Load()),
		firstNs: h.firstNs.Load(),
		lastNs:  h.lastNs.Load(),
	}
	if h.seq.Load() != s1 {
		return hotSnap{}, false
	}
	return snap, true
}

// republishLocked seals every live bucket before hotIdx into a fresh
// view. Caller holds the series mutex. O(ring) once per second per
// series — not per write.
func (s *series) republishLocked(hotIdx int64) {
	n := 0
	oldestValid := s.latestIdx - numTimeBuckets
	for _, b := range s.buckets {
		if b != nil && b.count > 0 && b.idx > oldestValid && b.idx < hotIdx {
			n++
		}
	}
	v := &sealedView{
		buckets:     make([]sealedBucket, 0, n),
		earliestIdx: s.earliestIdx,
		latestIdx:   s.latestIdx,
		hotIdx:      hotIdx,
		lateSeq:     s.lateSeq.Load(),
	}
	for _, b := range s.buckets {
		if b == nil || b.count == 0 || b.idx <= oldestValid || b.idx >= hotIdx {
			continue
		}
		v.buckets = append(v.buckets, sealedBucket{
			idx: b.idx, count: b.count, sum: b.sum, min: b.min, max: b.max,
			firstNs: b.firstAt.UnixNano(), lastNs: b.lastAt.UnixNano(),
		})
	}
	s.view.Store(v)
}

// sealOnWriteLocked is the write-side hook recordLocked calls after
// the locked bucket ring has absorbed a sample for second bIdx: it
// keeps the sealed view in step and marks the mirror for the
// end-of-section sync.
func (s *series) sealOnWriteLocked(bIdx int64) {
	switch {
	case bIdx > s.curHotIdx:
		// First write of a new second: seal everything before it. The
		// mirror keeps showing the old second until the flush; readers
		// exclude it then (idx < hotIdx), so nothing double-counts.
		s.republishLocked(bIdx)
		s.curHotIdx = bIdx
		s.hotDirty = true
	case bIdx == s.curHotIdx:
		s.hotDirty = true
	default:
		// Late write into sealed history: invalidate the fast path
		// until the next seal republishes.
		s.lateSeq.Add(1)
	}
}

// flushHotLocked syncs the mirror from the current second's ring
// bucket. Called once at the end of every locked write section.
func (s *series) flushHotLocked() {
	if !s.hotDirty {
		return
	}
	s.hotDirty = false
	slot := int(((s.curHotIdx % numTimeBuckets) + numTimeBuckets) % numTimeBuckets)
	if b := s.buckets[slot]; b != nil && b.idx == s.curHotIdx {
		s.hot.syncLocked(b)
	}
}

// querySealed answers an aggregate query from the sealed view plus the
// hot mirror, without the series lock and without allocating. ok is
// false when the locked path must decide instead: no view yet, the
// window reaches past sealed coverage (rollup/exact territory), stale
// sealed history, or the optimistic read lost too many races. Never
// called for quantiles.
func (s *series) querySealed(since time.Time, agg Aggregation) (float64, bool, error) {
	for attempt := 0; attempt < 8; attempt++ {
		v := s.view.Load()
		if v == nil {
			return 0, false, nil
		}
		if s.lateSeq.Load() != v.lateSeq {
			// Sealed history moved under this view (out-of-order write);
			// the locked path sees it, the next seal re-arms us.
			return 0, false, nil
		}
		h, ok := s.hot.snapshot()
		if !ok || s.view.Load() != v {
			continue // writer in flight; retry with the fresh pair
		}
		// The hot second supplements the view only when not already
		// sealed into it.
		useHot := h.count > 0 && h.idx >= v.hotIdx
		latest := v.latestIdx
		if useHot && h.idx > latest {
			latest = h.idx
		}
		// Mirror coversAgg: the pair answers only windows inside the
		// aggregate ring's coverage.
		if latest-v.earliestIdx >= numTimeBuckets &&
			since.Before(time.Unix(latest-numTimeBuckets+1, 0)) {
			return 0, false, nil
		}
		var (
			count           int
			sum             float64
			minV            = math.Inf(1)
			maxV            = math.Inf(-1)
			firstNs, lastNs int64
			haveSpan        bool
			oldestValid     = latest - numTimeBuckets // exclusive lower bound
		)
		// Same snap rule as the locked path: a bucket ending at or
		// before the window start is excluded, one straddling it
		// contributes whole: include iff time.Unix(idx+1,0) > since.
		includesBucket := func(idx int64) bool {
			return time.Unix(idx+1, 0).After(since)
		}
		for i := range v.buckets {
			b := &v.buckets[i]
			if b.idx <= oldestValid || !includesBucket(b.idx) {
				continue
			}
			count += b.count
			sum += b.sum
			if b.min < minV {
				minV = b.min
			}
			if b.max > maxV {
				maxV = b.max
			}
			if !haveSpan {
				haveSpan = true
				firstNs, lastNs = b.firstNs, b.lastNs
			} else {
				if b.firstNs < firstNs {
					firstNs = b.firstNs
				}
				if b.lastNs > lastNs {
					lastNs = b.lastNs
				}
			}
		}
		if useHot && h.idx > oldestValid && includesBucket(h.idx) {
			count += int(h.count)
			sum += h.sum
			if h.min < minV {
				minV = h.min
			}
			if h.max > maxV {
				maxV = h.max
			}
			if !haveSpan {
				haveSpan = true
				firstNs, lastNs = h.firstNs, h.lastNs
			} else {
				if h.firstNs < firstNs {
					firstNs = h.firstNs
				}
				if h.lastNs > lastNs {
					lastNs = h.lastNs
				}
			}
		}
		if count == 0 && agg != AggCount && agg != AggRate && agg != AggSum {
			return 0, true, ErrNoData
		}
		switch agg {
		case AggCount:
			return float64(count), true, nil
		case AggSum:
			return sum, true, nil
		case AggRate:
			if count < 2 {
				return 0, true, nil
			}
			span := float64(lastNs-firstNs) / float64(time.Second)
			if span <= 0 {
				return 0, true, nil
			}
			return float64(count) / span, true, nil
		case AggMean:
			return sum / float64(count), true, nil
		case AggMin:
			return minV, true, nil
		case AggMax:
			return maxV, true, nil
		default:
			return 0, false, nil
		}
	}
	return 0, false, nil
}
