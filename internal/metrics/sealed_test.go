package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// aggsNoQuantile are the aggregations the sealed fast path serves.
var aggsNoQuantile = []Aggregation{AggMean, AggMin, AggMax, AggCount, AggSum, AggRate}

// TestSealedQueryMatchesExact drives random multi-second write
// patterns and checks every fast-path aggregation against the exact
// raw-window computation.
func TestSealedQueryMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Unix(1_700_000_000, 0)
	var all []observation
	for i := 0; i < 2000; i++ {
		at := base.Add(time.Duration(rng.Intn(60_000)) * time.Millisecond)
		v := 1 + rng.Float64()*100
		st.Record("rt", scope, at, v)
		all = append(all, observation{at: at, value: v})
	}
	// Whole-second window starts only: the aggregate path snaps windows
	// to bucket boundaries, so on-boundary starts compare exactly.
	for _, sinceOff := range []time.Duration{0, 10 * time.Second, 30 * time.Second, 59 * time.Second} {
		since := base.Add(sinceOff)
		var window []observation
		for _, o := range all {
			if !o.at.Before(since) {
				window = append(window, o)
			}
		}
		// Time-sorted so queryExact's rate (first-to-last element span)
		// matches the bucket path's earliest-to-latest span.
		sort.Slice(window, func(i, j int) bool { return window[i].at.Before(window[j].at) })
		for _, agg := range aggsNoQuantile {
			got, err := st.Query("rt", scope, since, agg)
			if err != nil {
				t.Fatalf("query %v since=%v: %v", agg, sinceOff, err)
			}
			want, err := queryExact(window, agg)
			if err != nil {
				t.Fatalf("exact %v: %v", agg, err)
			}
			tol := 1e-9 * (1 + want)
			if diff := got - want; diff > tol || diff < -tol {
				t.Errorf("agg %v since=%v: sealed=%v exact=%v", agg, sinceOff, got, want)
			}
		}
	}
}

// TestSealedLateWriteVisible checks the invalidate-then-reseal
// protocol: an out-of-order write into sealed history must be visible
// to the very next query (via the locked path) and stay visible after
// the next seal re-arms the fast path.
func TestSealedLateWriteVisible(t *testing.T) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 5; i++ {
		st.Record("rt", scope, base.Add(time.Duration(i)*time.Second), 10)
	}
	if got, _ := st.Query("rt", scope, base, AggCount); got != 5 {
		t.Fatalf("count before late write = %v, want 5", got)
	}
	// Late write into the already-sealed second #1.
	st.Record("rt", scope, base.Add(1*time.Second), 10)
	if got, _ := st.Query("rt", scope, base, AggCount); got != 6 {
		t.Fatalf("count right after late write = %v, want 6", got)
	}
	// A write in a fresh second reseals; the fast path must now carry
	// the late sample too.
	st.Record("rt", scope, base.Add(10*time.Second), 10)
	for i := 0; i < 3; i++ {
		if got, _ := st.Query("rt", scope, base, AggCount); got != 7 {
			t.Fatalf("count after reseal = %v, want 7", got)
		}
	}
}

// TestSealedQueryZeroAlloc pins the tentpole claim: aggregate queries
// over sealed data allocate nothing.
func TestSealedQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the bench gate holds this at zero")
	}
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1", Variant: "canary"}
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 5000; i++ {
		st.Record("rt", scope, base.Add(time.Duration(i)*10*time.Millisecond), 1+float64(i%100))
	}
	since := base.Add(5 * time.Second)
	for _, agg := range aggsNoQuantile {
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := st.Query("rt", scope, since, agg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("agg %v: %v allocs/op, want 0", agg, allocs)
		}
	}
}

// TestSealedConcurrentConsistency hammers one series with batch
// writers while readers continuously query; the windowed count over a
// fixed `since` must never move backwards, and mean must stay inside
// the written value range — both would break if a reader ever saw a
// torn or lossy view/hot pair.
func TestSealedConcurrentConsistency(t *testing.T) {
	st := NewStore(0)
	scope := Scope{Service: "svc", Version: "v1"}
	base := time.Now()
	st.Record("rt", scope, base, 5) // series exists before readers start
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]Sample, 64)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := range batch {
				batch[k] = Sample{
					Metric: "rt", Scope: scope,
					At:    base.Add(time.Duration(i) * time.Millisecond),
					Value: 5 + float64(i%10),
				}
				i++
			}
			st.RecordBatch(batch)
		}
	}()
	var prevCount float64
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		c, err := st.Query("rt", scope, base, AggCount)
		if err != nil {
			t.Fatal(err)
		}
		if c < prevCount {
			t.Fatalf("count went backwards: %v -> %v", prevCount, c)
		}
		prevCount = c
		if c > 0 {
			m, err := st.Query("rt", scope, base, AggMean)
			if err != nil {
				t.Fatal(err)
			}
			if m < 5 || m > 15 {
				t.Fatalf("mean %v outside written range [5,15)", m)
			}
		}
	}
	close(stop)
	wg.Wait()
}
