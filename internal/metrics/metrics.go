// Package metrics is the in-memory telemetry substrate standing in for
// the monitoring/APM solutions (New Relic, Prometheus, Istio telemetry)
// the paper's systems depend on. Bifrost checks query it to decide phase
// transitions, and the evaluation harnesses read it to reproduce the
// response-time figures.
//
// The store keeps raw observations per (metric, scope) series in a ring
// buffer and answers windowed aggregate queries: mean, percentiles, rate,
// count, min, max. A scope identifies which deployment produced the
// observation — typically service + version, optionally an experiment
// variant tag (dark-launch mirrors record under the "dark" variant so
// their telemetry never mixes with user-facing traffic):
//
//	store := metrics.NewStore(0)
//	scope := metrics.Scope{Service: "recommendation", Version: "v2"}
//	store.Record("response_time", scope, time.Now(), 41.3)
//	p95, err := store.Query("response_time", scope,
//	    time.Now().Add(-30*time.Second), metrics.AggP95)
//
// Query semantics Bifrost depends on: a window with no observations
// (or a series that was never written) returns ErrNoData, which the
// engine maps to an inconclusive check outcome rather than a pass or
// fail — absence of evidence never trips a rollback. Count, sum, and
// rate over an existing-but-empty window return 0 instead, since
// "nothing happened" is a real answer for those.
//
// All operations are safe for concurrent use; writers contend only on
// their own series. The per-series ring (DefaultSeriesCapacity) bounds
// memory, evicting oldest-first, and holds several minutes of history
// at the paper's request rates — longer than any check window used in
// the evaluations.
package metrics

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Scope identifies the deployment a series belongs to.
type Scope struct {
	Service string
	Version string
	Variant string // experiment variant tag, e.g. "baseline" or "canary"; may be empty
}

// String renders the scope as service/version[/variant].
func (s Scope) String() string {
	if s.Variant == "" {
		return s.Service + "/" + s.Version
	}
	return s.Service + "/" + s.Version + "/" + s.Variant
}

// Aggregation selects how a window of observations is reduced to one value.
type Aggregation int

// Supported aggregations.
const (
	AggMean Aggregation = iota + 1
	AggMedian
	AggP95
	AggP99
	AggMin
	AggMax
	AggCount
	AggSum
	AggRate // observations per second over the window
)

// ParseAggregation converts the DSL spelling of an aggregation.
func ParseAggregation(s string) (Aggregation, error) {
	switch strings.ToLower(s) {
	case "mean", "avg":
		return AggMean, nil
	case "median", "p50":
		return AggMedian, nil
	case "p95":
		return AggP95, nil
	case "p99":
		return AggP99, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "rate":
		return AggRate, nil
	default:
		return 0, fmt.Errorf("metrics: unknown aggregation %q", s)
	}
}

// String returns the canonical spelling.
func (a Aggregation) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	case AggP95:
		return "p95"
	case AggP99:
		return "p99"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggRate:
		return "rate"
	default:
		return fmt.Sprintf("aggregation(%d)", int(a))
	}
}

// ErrNoData is returned by queries over series or windows with no
// observations; Bifrost maps it to an inconclusive check outcome.
var ErrNoData = errors.New("metrics: no data in window")

type observation struct {
	at    time.Time
	value float64
}

type series struct {
	mu         sync.Mutex
	buf        []observation // ring buffer
	head, size int
}

func newSeries(capacity int) *series {
	return &series{buf: make([]observation, capacity)}
}

func (s *series) record(at time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := (s.head + s.size) % len(s.buf)
	s.buf[idx] = observation{at: at, value: v}
	if s.size < len(s.buf) {
		s.size++
	} else {
		s.head = (s.head + 1) % len(s.buf)
	}
}

// window copies out all observations with at >= since.
func (s *series) window(since time.Time) []observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]observation, 0, s.size)
	for i := 0; i < s.size; i++ {
		o := s.buf[(s.head+i)%len(s.buf)]
		if !o.at.Before(since) {
			out = append(out, o)
		}
	}
	return out
}

// Store is a concurrency-safe metric store. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu       sync.RWMutex
	series   map[string]*series
	capacity int
}

// DefaultSeriesCapacity bounds the per-series ring buffer; at one
// observation per request and the evaluation's request rates this holds
// several minutes of history, which covers every check window used in
// the paper.
const DefaultSeriesCapacity = 65536

// NewStore creates a Store holding up to capacity observations per series
// (DefaultSeriesCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Store{series: make(map[string]*series), capacity: capacity}
}

func seriesKey(metric string, scope Scope) string {
	return metric + "\x00" + scope.Service + "\x00" + scope.Version + "\x00" + scope.Variant
}

// Record appends an observation to (metric, scope) at time at.
func (st *Store) Record(metric string, scope Scope, at time.Time, value float64) {
	key := seriesKey(metric, scope)
	st.mu.RLock()
	s := st.series[key]
	st.mu.RUnlock()
	if s == nil {
		st.mu.Lock()
		s = st.series[key]
		if s == nil {
			s = newSeries(st.capacity)
			st.series[key] = s
		}
		st.mu.Unlock()
	}
	s.record(at, value)
}

// Query reduces the observations of (metric, scope) recorded at or after
// `since` (up to `now` semantics are the caller's: everything recorded is
// included) with the given aggregation.
func (st *Store) Query(metric string, scope Scope, since time.Time, agg Aggregation) (float64, error) {
	st.mu.RLock()
	s := st.series[seriesKey(metric, scope)]
	st.mu.RUnlock()
	if s == nil {
		return 0, fmt.Errorf("%w: no series %s %s", ErrNoData, metric, scope)
	}
	obs := s.window(since)
	if len(obs) == 0 && agg != AggCount && agg != AggRate && agg != AggSum {
		return 0, ErrNoData
	}
	switch agg {
	case AggCount:
		return float64(len(obs)), nil
	case AggSum:
		var sum float64
		for _, o := range obs {
			sum += o.value
		}
		return sum, nil
	case AggRate:
		if len(obs) < 2 {
			return 0, nil
		}
		span := obs[len(obs)-1].at.Sub(obs[0].at).Seconds()
		if span <= 0 {
			return 0, nil
		}
		return float64(len(obs)) / span, nil
	case AggMean:
		var sum float64
		for _, o := range obs {
			sum += o.value
		}
		return sum / float64(len(obs)), nil
	case AggMin:
		m := obs[0].value
		for _, o := range obs[1:] {
			if o.value < m {
				m = o.value
			}
		}
		return m, nil
	case AggMax:
		m := obs[0].value
		for _, o := range obs[1:] {
			if o.value > m {
				m = o.value
			}
		}
		return m, nil
	case AggMedian, AggP95, AggP99:
		vals := make([]float64, len(obs))
		for i, o := range obs {
			vals[i] = o.value
		}
		sort.Float64s(vals)
		p := map[Aggregation]float64{AggMedian: 0.5, AggP95: 0.95, AggP99: 0.99}[agg]
		return quantileSorted(vals, p), nil
	default:
		return 0, fmt.Errorf("metrics: unsupported aggregation %v", agg)
	}
}

// Values returns the raw observation values of (metric, scope) at or after
// since, in arrival order.
func (st *Store) Values(metric string, scope Scope, since time.Time) []float64 {
	st.mu.RLock()
	s := st.series[seriesKey(metric, scope)]
	st.mu.RUnlock()
	if s == nil {
		return nil
	}
	obs := s.window(since)
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = o.value
	}
	return out
}

// SeriesCount returns the number of distinct series in the store.
func (st *Store) SeriesCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// Reset drops all series.
func (st *Store) Reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.series = make(map[string]*series)
}

// quantileSorted mirrors stats.QuantileSorted; duplicated locally to keep
// the metrics substrate dependency-free of the analysis layer.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(h)
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}
