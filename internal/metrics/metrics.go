// Package metrics is the in-memory telemetry substrate standing in for
// the monitoring/APM solutions (New Relic, Prometheus, Istio telemetry)
// the paper's systems depend on. Bifrost checks query it to decide phase
// transitions, and the evaluation harnesses read it to reproduce the
// response-time figures.
//
// The store keeps raw observations per (metric, scope) series in a ring
// buffer and answers windowed aggregate queries: mean, percentiles, rate,
// count, min, max. A scope identifies which deployment produced the
// observation — typically service + version, optionally an experiment
// variant tag (dark-launch mirrors record under the "dark" variant so
// their telemetry never mixes with user-facing traffic):
//
//	store := metrics.NewStore(0)
//	scope := metrics.Scope{Service: "recommendation", Version: "v2"}
//	store.Record("response_time", scope, time.Now(), 41.3)
//	p95, err := store.Query("response_time", scope,
//	    time.Now().Add(-30*time.Second), metrics.AggP95)
//
// Query semantics Bifrost depends on: a window with no observations
// (or a series that was never written) returns ErrNoData, which the
// engine maps to an inconclusive check outcome rather than a pass or
// fail — absence of evidence never trips a rollback. Count, sum, and
// rate over an existing-but-empty window return 0 instead, since
// "nothing happened" is a real answer for those.
//
// Performance model: the series map is sharded by key hash so writers
// of different series never contend on one store-wide lock, and each
// series maintains streaming aggregates in a ring of one-second time
// buckets — running count/sum/min/max, the bucket's first/last
// observation times, and a log-bucketed histogram sketch. Windowed
// count/sum/mean/min/max/rate queries are O(time buckets) and
// median/p95/p99 merge the sketches instead of copying and sorting the
// raw window (quantiles carry the sketch's bounded relative error; see
// docs/PERFORMANCE.md). Values keeps the exact raw-sample path for the
// stats/analysis layer. Queries reaching back before the aggregate
// ring's coverage fall back to an exact scan of the raw ring.
//
// All operations are safe for concurrent use; writers contend only on
// their own series. The per-series ring (DefaultSeriesCapacity) bounds
// memory, evicting oldest-first, and holds several minutes of history
// at the paper's request rates — longer than any check window used in
// the evaluations.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/fnvx"
)

// Scope identifies the deployment a series belongs to.
type Scope struct {
	// Tenant is the canonical owning tenant ("" for the default
	// tenant). The control plane stamps it from the authenticated
	// principal at ingestion; it is never part of the telemetry wire
	// format, so tenants cannot write into each other's series.
	Tenant  string
	Service string
	Version string
	Variant string // experiment variant tag, e.g. "baseline" or "canary"; may be empty
}

// String renders the scope as [tenant:]service/version[/variant].
func (s Scope) String() string {
	out := s.Service + "/" + s.Version
	if s.Variant != "" {
		out += "/" + s.Variant
	}
	if s.Tenant != "" {
		out = s.Tenant + ":" + out
	}
	return out
}

// Aggregation selects how a window of observations is reduced to one value.
type Aggregation int

// Supported aggregations.
const (
	AggMean Aggregation = iota + 1
	AggMedian
	AggP95
	AggP99
	AggMin
	AggMax
	AggCount
	AggSum
	AggRate // observations per second over the window
)

// ParseAggregation converts the DSL spelling of an aggregation.
func ParseAggregation(s string) (Aggregation, error) {
	switch strings.ToLower(s) {
	case "mean", "avg":
		return AggMean, nil
	case "median", "p50":
		return AggMedian, nil
	case "p95":
		return AggP95, nil
	case "p99":
		return AggP99, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "rate":
		return AggRate, nil
	default:
		return 0, fmt.Errorf("metrics: unknown aggregation %q", s)
	}
}

// String returns the canonical spelling.
func (a Aggregation) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	case AggP95:
		return "p95"
	case AggP99:
		return "p99"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggRate:
		return "rate"
	default:
		return fmt.Sprintf("aggregation(%d)", int(a))
	}
}

// ErrNoData is returned by queries over series or windows with no
// observations; Bifrost maps it to an inconclusive check outcome.
var ErrNoData = errors.New("metrics: no data in window")

type observation struct {
	at    time.Time
	value float64
}

// --- histogram sketch ---
//
// Values are assigned to log-spaced buckets: bucket i (1 ≤ i ≤
// histInterior) covers (histMin·γ^(i-1), histMin·γ^i]; bucket 0 catches
// everything ≤ histMin (including zero and negatives, which latencies
// and counters never produce) and the last bucket everything > histMax.
// A quantile read returns the geometric midpoint of its bucket, so the
// relative error is bounded by √γ − 1 (≈ 4.9% with γ = 1.1).
const (
	histGamma    = 1.1
	histMin      = 1e-3
	histMax      = 1e6
	histInterior = 218 // ceil(ln(histMax/histMin)/ln(histGamma))
	histSize     = histInterior + 2
)

var lnHistGamma = math.Log(histGamma)

func histIndex(v float64) int {
	if !(v > histMin) { // also catches NaN
		return 0
	}
	if v >= histMax {
		return histSize - 1
	}
	i := 1 + int(math.Log(v/histMin)/lnHistGamma)
	if i < 1 {
		i = 1
	}
	if i > histInterior {
		i = histInterior
	}
	return i
}

func histValue(i int) float64 {
	switch {
	case i <= 0:
		return histMin
	case i >= histSize-1:
		return histMax
	default:
		return histMin * math.Pow(histGamma, float64(i)-0.5)
	}
}

// --- time-bucket ring ---

const (
	// bucketWidth is the streaming-aggregate resolution; windows snap to
	// bucket boundaries (a bucket straddling `since` is included whole).
	bucketWidth = time.Second
	// numTimeBuckets bounds the aggregate ring: ~4 minutes of coverage,
	// matching the raw ring's "several minutes" retention claim.
	numTimeBuckets = 256
)

// aggBucket holds the streaming aggregates of one bucketWidth interval.
type aggBucket struct {
	idx     int64 // at.Unix() of the interval start; full index, not mod
	count   int
	sum     float64
	min     float64
	max     float64
	firstAt time.Time // earliest observation in the bucket
	lastAt  time.Time // latest observation in the bucket
	hist    [histSize]uint32
}

func (b *aggBucket) reset(idx int64) {
	*b = aggBucket{idx: idx, min: math.Inf(1), max: math.Inf(-1)}
}

func (b *aggBucket) add(at time.Time, v float64) {
	b.count++
	b.sum += v
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	if b.firstAt.IsZero() || at.Before(b.firstAt) {
		b.firstAt = at
	}
	if b.lastAt.IsZero() || at.After(b.lastAt) {
		b.lastAt = at
	}
	b.hist[histIndex(v)]++
}

type series struct {
	mu         sync.Mutex
	buf        []observation // raw ring buffer (exact path, Values)
	head, size int

	// Streaming aggregates: a ring of one-second buckets, lazily
	// allocated. latestIdx is the highest bucket index written and
	// earliestIdx the lowest ever seen; coverage spans
	// (latestIdx-numTimeBuckets, latestIdx]. While
	// latestIdx-earliestIdx stays inside the ring, the aggregates hold
	// every observation ever recorded and answer any window; once data
	// falls outside, queries reaching past coverage use the exact raw
	// path.
	buckets     []*aggBucket
	earliestIdx int64
	latestIdx   int64
	hasAgg      bool

	// Durable rollup tiers, fed on every write alongside the one-second
	// buckets: minute and hour rings of count/sum/min/max aggregates
	// (no histogram, so quantile queries beyond the 1s ring's coverage
	// take the exact raw path). They extend windowed queries far past
	// the 1s ring and survive restarts via Store.SaveSnapshot.
	minute rollRing
	hour   rollRing

	// Lock-light read side (sealed.go): completed seconds sealed into
	// an atomically-published immutable view, the in-progress second
	// mirrored in a seqlock hot bucket synced once per locked write
	// section. Aggregate queries over the pair take no series lock.
	// curHotIdx/hotDirty are write-side bookkeeping guarded by mu;
	// lateSeq counts out-of-order writes into sealed history so
	// readers can tell when the view went stale.
	view      atomic.Pointer[sealedView]
	hot       hotBucket
	curHotIdx int64
	hotDirty  bool
	lateSeq   atomic.Uint64

	// lastWrite drives idle-series eviction (Store.Maintain).
	lastWrite time.Time
}

func newSeries(capacity int) *series {
	return &series{
		buf:       make([]observation, capacity),
		buckets:   make([]*aggBucket, numTimeBuckets),
		minute:    rollRing{width: 60, slots: minuteRingSlots},
		hour:      rollRing{width: 3600, slots: hourRingSlots},
		curHotIdx: math.MinInt64, // first write always opens a new second
	}
}

func (s *series) record(at time.Time, v float64) {
	s.mu.Lock()
	s.recordLocked(at, v)
	s.flushHotLocked()
	s.mu.Unlock()
}

func (s *series) recordLocked(at time.Time, v float64) {
	// Raw ring.
	idx := (s.head + s.size) % len(s.buf)
	s.buf[idx] = observation{at: at, value: v}
	if s.size < len(s.buf) {
		s.size++
	} else {
		s.head = (s.head + 1) % len(s.buf)
	}

	// Streaming aggregates.
	bIdx := at.Unix()
	if !s.hasAgg {
		s.hasAgg = true
		s.earliestIdx = bIdx
		s.latestIdx = bIdx
	} else {
		if bIdx > s.latestIdx {
			s.latestIdx = bIdx
		}
		if bIdx < s.earliestIdx {
			s.earliestIdx = bIdx
		}
	}
	if bIdx <= s.latestIdx-numTimeBuckets {
		// Too old for the aggregate ring; only the raw ring sees it
		// (and earliestIdx now marks coverage as incomplete, which
		// lock-free readers learn through the late-write sequence).
		s.lateSeq.Add(1)
		return
	}
	slot := int(((bIdx % numTimeBuckets) + numTimeBuckets) % numTimeBuckets)
	b := s.buckets[slot]
	if b == nil {
		b = &aggBucket{}
		b.reset(bIdx)
		s.buckets[slot] = b
	} else if b.idx != bIdx {
		b.reset(bIdx)
	}
	b.add(at, v)
	s.sealOnWriteLocked(bIdx)

	// Rollup tiers: two more cheap bucket adds per observation keep the
	// minute and hour rings always-current, so downsampling needs no
	// background fold over the 1s ring (and no cross-tier locking).
	s.minute.add(at, v)
	s.hour.add(at, v)
	if at.After(s.lastWrite) {
		s.lastWrite = at
	}
}

// coversAgg reports whether the aggregate ring fully answers a query
// from `since`: either no data has ever fallen outside the ring, or the
// window starts inside its coverage.
func (s *series) coversAgg(since time.Time) bool {
	if !s.hasAgg {
		return false
	}
	if s.latestIdx-s.earliestIdx < numTimeBuckets {
		return true
	}
	coverageStart := time.Unix(s.latestIdx-numTimeBuckets+1, 0)
	return !since.Before(coverageStart)
}

// window copies out all observations with at >= since (exact path).
func (s *series) window(since time.Time) []observation {
	out := make([]observation, 0, s.size)
	for i := 0; i < s.size; i++ {
		o := s.buf[(s.head+i)%len(s.buf)]
		if !o.at.Before(since) {
			out = append(out, o)
		}
	}
	return out
}

// shard is one partition of the series map with its own lock.
type shard struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NumShards is the number of series-map partitions; writers of
// different series only contend within their shard.
const NumShards = 16

// Store is a concurrency-safe metric store. The zero value is not usable;
// construct with NewStore.
type Store struct {
	shards   [NumShards]shard
	capacity int
}

// DefaultSeriesCapacity bounds the per-series ring buffer; at one
// observation per request and the evaluation's request rates this holds
// several minutes of history, which covers every check window used in
// the paper.
const DefaultSeriesCapacity = 65536

// NewStore creates a Store holding up to capacity observations per series
// (DefaultSeriesCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	st := &Store{capacity: capacity}
	for i := range st.shards {
		st.shards[i].series = make(map[string]*series)
	}
	return st
}

// seriesKey leads with the tenant so per-tenant accounting
// (TenantSeries) can attribute every series by splitting at the first
// NUL; the default tenant's prefix is the empty string.
func seriesKey(metric string, scope Scope) string {
	return scope.Tenant + "\x00" + metric + "\x00" + scope.Service + "\x00" + scope.Version + "\x00" + scope.Variant
}

// appendSeriesKey builds seriesKey into dst, so batched ingestion can
// probe the series map without materializing a key string per run.
func appendSeriesKey(dst []byte, metric string, scope Scope) []byte {
	dst = append(dst, scope.Tenant...)
	dst = append(dst, 0)
	dst = append(dst, metric...)
	dst = append(dst, 0)
	dst = append(dst, scope.Service...)
	dst = append(dst, 0)
	dst = append(dst, scope.Version...)
	dst = append(dst, 0)
	dst = append(dst, scope.Variant...)
	return dst
}

// keyBufPool recycles the scratch buffers RecordBatch builds series
// keys in.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// lookupBytes returns the series for the key bytes, or nil. The
// string(key) map probe does not allocate.
func (st *Store) lookupBytes(key []byte) *series {
	sh := &st.shards[fnvx.Bytes(fnvx.Offset64, key)&(NumShards-1)]
	sh.mu.RLock()
	s := sh.series[string(key)]
	sh.mu.RUnlock()
	return s
}

func (st *Store) shardFor(key string) *shard {
	return &st.shards[fnvx.String(fnvx.Offset64, key)&(NumShards-1)]
}

// lookup returns the series for key, or nil.
func (st *Store) lookup(key string) *series {
	sh := st.shardFor(key)
	sh.mu.RLock()
	s := sh.series[key]
	sh.mu.RUnlock()
	return s
}

// getOrCreate returns the series for key, creating it on first write.
func (st *Store) getOrCreate(key string) *series {
	sh := st.shardFor(key)
	sh.mu.RLock()
	s := sh.series[key]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	s = sh.series[key]
	if s == nil {
		s = newSeries(st.capacity)
		sh.series[key] = s
	}
	sh.mu.Unlock()
	return s
}

// Record appends an observation to (metric, scope) at time at.
func (st *Store) Record(metric string, scope Scope, at time.Time, value float64) {
	st.getOrCreate(seriesKey(metric, scope)).record(at, value)
}

// Sample is one observation destined for (Metric, Scope); the batched
// ingestion unit of RecordBatch.
type Sample struct {
	Metric string
	Scope  Scope
	At     time.Time
	Value  float64
}

// RecordBatch records a batch of samples. Consecutive samples for the
// same series are appended under one lock acquisition, so ingestion
// paths that deliver many observations at once (HTTP ingestion, the
// simulators' per-request telemetry, load-generator flushes) amortize
// the per-call overhead of Record.
func (st *Store) RecordBatch(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	bufp := keyBufPool.Get().(*[]byte)
	buf := *bufp
	for i := 0; i < len(samples); {
		j := i + 1
		for j < len(samples) &&
			samples[j].Metric == samples[i].Metric && samples[j].Scope == samples[i].Scope {
			j++
		}
		// Probe with a pooled key buffer first: recording into existing
		// series (the steady state) allocates nothing. Only a series'
		// first-ever write materializes the key string.
		buf = appendSeriesKey(buf[:0], samples[i].Metric, samples[i].Scope)
		s := st.lookupBytes(buf)
		if s == nil {
			s = st.getOrCreate(string(buf))
		}
		s.mu.Lock()
		for k := i; k < j; k++ {
			s.recordLocked(samples[k].At, samples[k].Value)
		}
		s.flushHotLocked()
		s.mu.Unlock()
		i = j
	}
	*bufp = buf
	keyBufPool.Put(bufp)
}

// Query reduces the observations of (metric, scope) recorded at or after
// `since` (up to `now` semantics are the caller's: everything recorded is
// included) with the given aggregation.
//
// Count/sum/mean/min/max/rate read the streaming per-bucket aggregates
// in O(time buckets); median/p95/p99 merge the per-bucket histogram
// sketches (bounded relative error) instead of sorting raw samples.
// Windows snap to one-second bucket boundaries: a bucket straddling
// `since` contributes whole. Queries reaching back before the aggregate
// ring's coverage fall back to an exact scan of the raw ring.
func (st *Store) Query(metric string, scope Scope, since time.Time, agg Aggregation) (float64, error) {
	// Pooled key probe (as in RecordBatch): looking up an existing
	// series allocates nothing.
	bufp := keyBufPool.Get().(*[]byte)
	buf := appendSeriesKey((*bufp)[:0], metric, scope)
	s := st.lookupBytes(buf)
	*bufp = buf
	keyBufPool.Put(bufp)
	if s == nil {
		return 0, fmt.Errorf("%w: no series %s %s", ErrNoData, metric, scope)
	}
	// Lock-free fast path (sealed.go): aggregate reads over the sealed
	// view + hot mirror take no series lock and allocate nothing.
	// Quantiles need the histogram sketches and keep the locked path.
	if agg != AggMedian && agg != AggP95 && agg != AggP99 {
		if v, ok, err := s.querySealed(since, agg); ok {
			return v, err
		}
	}
	s.mu.Lock()
	if s.coversAgg(since) {
		v, ok, err := queryBuckets(s, since, agg)
		if ok {
			s.mu.Unlock()
			return v, err
		}
		// Quantile over underflow-bucket values (≤ histMin, e.g. zero or
		// negative): the sketch cannot place them, use the exact path.
	} else if agg != AggMedian && agg != AggP95 && agg != AggP99 {
		// Rollup tiers answer windows older than the 1s ring's coverage:
		// minute buckets first, hour buckets beyond those. Quantiles are
		// excluded — the rollups keep no histogram — and fall through to
		// the exact raw path (pre-rollup semantics).
		if s.minute.covers(since) {
			v, err := s.minute.query(since, agg)
			s.mu.Unlock()
			return v, err
		}
		if s.hour.covers(since) {
			v, err := s.hour.query(since, agg)
			s.mu.Unlock()
			return v, err
		}
	}
	// Exact fallback: copy the window under the lock, aggregate (and
	// for percentiles, sort) outside it so a large scan never blocks
	// writers to this series.
	obs := s.window(since)
	s.mu.Unlock()
	return queryExact(obs, agg)
}

// queryBuckets answers from the streaming aggregate ring. Caller holds
// the series lock. ok reports whether the ring could answer; it is
// false when the aggregation needs the exact path instead (quantiles
// over values the sketch cannot place).
func queryBuckets(s *series, since time.Time, agg Aggregation) (float64, bool, error) {
	var (
		count    int
		sum      float64
		minV     = math.Inf(1)
		maxV     = math.Inf(-1)
		firstAt  time.Time
		lastAt   time.Time
		hist     [histSize]uint64
		needHist = agg == AggMedian || agg == AggP95 || agg == AggP99
	)
	oldestValid := s.latestIdx - numTimeBuckets // exclusive lower bound
	for _, b := range s.buckets {
		if b == nil || b.count == 0 || b.idx <= oldestValid {
			continue
		}
		if !time.Unix(b.idx+1, 0).After(since) {
			continue // bucket ends at or before the window start
		}
		count += b.count
		sum += b.sum
		if b.min < minV {
			minV = b.min
		}
		if b.max > maxV {
			maxV = b.max
		}
		if firstAt.IsZero() || b.firstAt.Before(firstAt) {
			firstAt = b.firstAt
		}
		if lastAt.IsZero() || b.lastAt.After(lastAt) {
			lastAt = b.lastAt
		}
		if needHist {
			for i, c := range b.hist {
				hist[i] += uint64(c)
			}
		}
	}
	if count == 0 && agg != AggCount && agg != AggRate && agg != AggSum {
		return 0, true, ErrNoData
	}
	switch agg {
	case AggCount:
		return float64(count), true, nil
	case AggSum:
		return sum, true, nil
	case AggRate:
		if count < 2 {
			return 0, true, nil
		}
		span := lastAt.Sub(firstAt).Seconds()
		if span <= 0 {
			return 0, true, nil
		}
		return float64(count) / span, true, nil
	case AggMean:
		return sum / float64(count), true, nil
	case AggMin:
		return minV, true, nil
	case AggMax:
		return maxV, true, nil
	case AggMedian, AggP95, AggP99:
		if hist[0] > 0 {
			// Values at or below histMin (zero, negative) all collapse
			// into the underflow bucket; their quantiles need raw samples.
			return 0, false, nil
		}
		q := histQuantile(&hist, count, quantileTarget(agg))
		// The window's exact extremes bound the sketch answer: clamp so
		// under/overflow representatives never leave the observed range.
		if q < minV {
			q = minV
		}
		if q > maxV {
			q = maxV
		}
		return q, true, nil
	default:
		return 0, true, fmt.Errorf("metrics: unsupported aggregation %v", agg)
	}
}

func quantileTarget(agg Aggregation) float64 {
	switch agg {
	case AggMedian:
		return 0.5
	case AggP95:
		return 0.95
	default:
		return 0.99
	}
}

// histQuantile reads the p-quantile from a merged sketch: the bucket
// containing rank p·(n−1), reported as its geometric midpoint.
func histQuantile(hist *[histSize]uint64, count int, p float64) float64 {
	target := p * float64(count-1)
	cum := uint64(0)
	last := 0
	for i, c := range hist {
		if c == 0 {
			continue
		}
		cum += c
		last = i
		if float64(cum-1) >= target {
			return histValue(i)
		}
	}
	return histValue(last)
}

// queryExact aggregates a copied-out window: the fallback for windows
// older than the aggregate ring's coverage and for quantiles the
// sketch cannot place. Runs without any lock held.
func queryExact(obs []observation, agg Aggregation) (float64, error) {
	if len(obs) == 0 && agg != AggCount && agg != AggRate && agg != AggSum {
		return 0, ErrNoData
	}
	switch agg {
	case AggCount:
		return float64(len(obs)), nil
	case AggSum:
		var sum float64
		for _, o := range obs {
			sum += o.value
		}
		return sum, nil
	case AggRate:
		if len(obs) < 2 {
			return 0, nil
		}
		span := obs[len(obs)-1].at.Sub(obs[0].at).Seconds()
		if span <= 0 {
			return 0, nil
		}
		return float64(len(obs)) / span, nil
	case AggMean:
		var sum float64
		for _, o := range obs {
			sum += o.value
		}
		return sum / float64(len(obs)), nil
	case AggMin:
		m := obs[0].value
		for _, o := range obs[1:] {
			if o.value < m {
				m = o.value
			}
		}
		return m, nil
	case AggMax:
		m := obs[0].value
		for _, o := range obs[1:] {
			if o.value > m {
				m = o.value
			}
		}
		return m, nil
	case AggMedian, AggP95, AggP99:
		vals := make([]float64, len(obs))
		for i, o := range obs {
			vals[i] = o.value
		}
		sort.Float64s(vals)
		return quantileSorted(vals, quantileTarget(agg)), nil
	default:
		return 0, fmt.Errorf("metrics: unsupported aggregation %v", agg)
	}
}

// Values returns the raw observation values of (metric, scope) at or after
// since, in arrival order. This is the exact path: the stats/analysis
// layer sorts and summarizes these samples itself.
func (st *Store) Values(metric string, scope Scope, since time.Time) []float64 {
	s := st.lookup(seriesKey(metric, scope))
	if s == nil {
		return nil
	}
	s.mu.Lock()
	obs := s.window(since)
	s.mu.Unlock()
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = o.value
	}
	return out
}

// SeriesCount returns the number of distinct series in the store.
func (st *Store) SeriesCount() int {
	var n int
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// ShardCount returns the number of series-map partitions.
func (st *Store) ShardCount() int { return NumShards }

// Reset drops all series.
func (st *Store) Reset() {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.series = make(map[string]*series)
		sh.mu.Unlock()
	}
}

// quantileSorted mirrors stats.QuantileSorted; duplicated locally to keep
// the metrics substrate dependency-free of the analysis layer.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(h)
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}
