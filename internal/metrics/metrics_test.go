package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

var (
	t0      = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	scopeV1 = Scope{Service: "catalog", Version: "v1"}
	scopeV2 = Scope{Service: "catalog", Version: "v2", Variant: "canary"}
)

func TestScopeString(t *testing.T) {
	if got := scopeV1.String(); got != "catalog/v1" {
		t.Errorf("Scope.String = %q", got)
	}
	if got := scopeV2.String(); got != "catalog/v2/canary" {
		t.Errorf("Scope.String = %q", got)
	}
}

func TestParseAggregation(t *testing.T) {
	tests := []struct {
		in      string
		want    Aggregation
		wantErr bool
	}{
		{"mean", AggMean, false},
		{"avg", AggMean, false},
		{"P95", AggP95, false},
		{"p50", AggMedian, false},
		{"rate", AggRate, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAggregation(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAggregation(%q) err = %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("ParseAggregation(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAggregationString(t *testing.T) {
	for _, a := range []Aggregation{AggMean, AggMedian, AggP95, AggP99, AggMin, AggMax, AggCount, AggSum, AggRate} {
		s := a.String()
		back, err := ParseAggregation(s)
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v (%v)", a, s, back, err)
		}
	}
	if Aggregation(99).String() == "" {
		t.Error("unknown aggregation should still produce a string")
	}
}

func TestRecordAndQueryAggregations(t *testing.T) {
	st := NewStore(0)
	vals := []float64{10, 20, 30, 40, 50}
	for i, v := range vals {
		st.Record("response_time", scopeV1, t0.Add(time.Duration(i)*time.Second), v)
	}
	tests := []struct {
		agg  Aggregation
		want float64
	}{
		{AggMean, 30},
		{AggMedian, 30},
		{AggMin, 10},
		{AggMax, 50},
		{AggCount, 5},
		{AggSum, 150},
		{AggP95, 48}, // type-7 quantile of 5 points
	}
	for _, tt := range tests {
		got, err := st.Query("response_time", scopeV1, t0, tt.agg)
		if err != nil {
			t.Fatalf("%v: %v", tt.agg, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Query(%v) = %v, want %v", tt.agg, got, tt.want)
		}
	}
}

func TestQueryWindowFiltering(t *testing.T) {
	st := NewStore(0)
	for i := 0; i < 10; i++ {
		st.Record("rt", scopeV1, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	// Only observations at t0+5s or later.
	got, err := st.Query("rt", scopeV1, t0.Add(5*time.Second), AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 { // mean of 5..9
		t.Errorf("windowed mean = %v, want 7", got)
	}
}

func TestQueryRate(t *testing.T) {
	st := NewStore(0)
	// 11 observations over 10 seconds -> 1.1/s.
	for i := 0; i <= 10; i++ {
		st.Record("req", scopeV1, t0.Add(time.Duration(i)*time.Second), 1)
	}
	got, err := st.Query("req", scopeV1, t0, AggRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.1) > 1e-9 {
		t.Errorf("rate = %v, want 1.1", got)
	}
	// A single observation has no rate.
	st2 := NewStore(0)
	st2.Record("req", scopeV1, t0, 1)
	if got, err := st2.Query("req", scopeV1, t0, AggRate); err != nil || got != 0 {
		t.Errorf("single-obs rate = %v, %v", got, err)
	}
}

func TestQueryNoData(t *testing.T) {
	st := NewStore(0)
	if _, err := st.Query("missing", scopeV1, t0, AggMean); !errors.Is(err, ErrNoData) {
		t.Errorf("missing series error = %v, want ErrNoData", err)
	}
	st.Record("rt", scopeV1, t0, 1)
	// Window after the only observation.
	if _, err := st.Query("rt", scopeV1, t0.Add(time.Hour), AggMean); !errors.Is(err, ErrNoData) {
		t.Errorf("empty window error = %v, want ErrNoData", err)
	}
	// Count over an empty window is 0, not an error.
	if got, err := st.Query("rt", scopeV1, t0.Add(time.Hour), AggCount); err != nil || got != 0 {
		t.Errorf("empty-window count = %v, %v", got, err)
	}
}

func TestScopeIsolation(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 10)
	st.Record("rt", scopeV2, t0, 1000)
	got, err := st.Query("rt", scopeV1, t0, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("scope leakage: got %v", got)
	}
	if st.SeriesCount() != 2 {
		t.Errorf("SeriesCount = %d, want 2", st.SeriesCount())
	}
}

func TestRingBufferEviction(t *testing.T) {
	st := NewStore(4)
	for i := 0; i < 10; i++ {
		st.Record("rt", scopeV1, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	vals := st.Values("rt", scopeV1, time.Time{})
	if len(vals) != 4 {
		t.Fatalf("len = %d, want 4", len(vals))
	}
	for i, want := range []float64{6, 7, 8, 9} {
		if vals[i] != want {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want)
		}
	}
}

func TestValuesMissingSeries(t *testing.T) {
	st := NewStore(0)
	if got := st.Values("rt", scopeV1, time.Time{}); got != nil {
		t.Errorf("Values of missing series = %v, want nil", got)
	}
}

func TestReset(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 1)
	st.Reset()
	if st.SeriesCount() != 0 {
		t.Error("Reset did not clear series")
	}
}

func TestConcurrentRecordQuery(t *testing.T) {
	st := NewStore(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := Scope{Service: "svc", Version: "v1"}
			for i := 0; i < 1000; i++ {
				st.Record("rt", scope, t0.Add(time.Duration(i)*time.Millisecond), float64(i))
				if i%100 == 0 {
					_, _ = st.Query("rt", scope, t0, AggMean)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, err := st.Query("rt", Scope{Service: "svc", Version: "v1"}, t0, AggCount); err != nil || got == 0 {
		t.Errorf("after concurrent writes: count = %v, err = %v", got, err)
	}
}

func TestUnsupportedAggregation(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 1)
	if _, err := st.Query("rt", scopeV1, t0, Aggregation(99)); err == nil {
		t.Error("expected error for unknown aggregation")
	}
}
