package metrics

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

var (
	t0      = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	scopeV1 = Scope{Service: "catalog", Version: "v1"}
	scopeV2 = Scope{Service: "catalog", Version: "v2", Variant: "canary"}
)

func TestScopeString(t *testing.T) {
	if got := scopeV1.String(); got != "catalog/v1" {
		t.Errorf("Scope.String = %q", got)
	}
	if got := scopeV2.String(); got != "catalog/v2/canary" {
		t.Errorf("Scope.String = %q", got)
	}
}

func TestParseAggregation(t *testing.T) {
	tests := []struct {
		in      string
		want    Aggregation
		wantErr bool
	}{
		{"mean", AggMean, false},
		{"avg", AggMean, false},
		{"P95", AggP95, false},
		{"p50", AggMedian, false},
		{"rate", AggRate, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAggregation(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAggregation(%q) err = %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("ParseAggregation(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAggregationString(t *testing.T) {
	for _, a := range []Aggregation{AggMean, AggMedian, AggP95, AggP99, AggMin, AggMax, AggCount, AggSum, AggRate} {
		s := a.String()
		back, err := ParseAggregation(s)
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v (%v)", a, s, back, err)
		}
	}
	if Aggregation(99).String() == "" {
		t.Error("unknown aggregation should still produce a string")
	}
}

func TestRecordAndQueryAggregations(t *testing.T) {
	st := NewStore(0)
	vals := []float64{10, 20, 30, 40, 50}
	for i, v := range vals {
		st.Record("response_time", scopeV1, t0.Add(time.Duration(i)*time.Second), v)
	}
	// Streaming aggregates are exact.
	exact := []struct {
		agg  Aggregation
		want float64
	}{
		{AggMean, 30},
		{AggMin, 10},
		{AggMax, 50},
		{AggCount, 5},
		{AggSum, 150},
	}
	for _, tt := range exact {
		got, err := st.Query("response_time", scopeV1, t0, tt.agg)
		if err != nil {
			t.Fatalf("%v: %v", tt.agg, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Query(%v) = %v, want %v", tt.agg, got, tt.want)
		}
	}
	// Percentiles come from the histogram sketch: bounded relative error
	// (√γ−1 ≈ 5%) around the exact type-7 quantile.
	approx := []struct {
		agg  Aggregation
		want float64
	}{
		{AggMedian, 30},
		{AggP95, 48}, // type-7 quantile of 5 points
	}
	for _, tt := range approx {
		got, err := st.Query("response_time", scopeV1, t0, tt.agg)
		if err != nil {
			t.Fatalf("%v: %v", tt.agg, err)
		}
		if math.Abs(got-tt.want)/tt.want > 0.10 {
			t.Errorf("Query(%v) = %v, want %v ±10%%", tt.agg, got, tt.want)
		}
	}
}

func TestQuantileSketchAccuracy(t *testing.T) {
	// A dense series: the sketch's p95/p99 must land within its
	// documented relative-error bound of the exact sorted quantile.
	st := NewStore(0)
	const n = 20000
	for i := 0; i < n; i++ {
		// Latency-like values spread over two decades.
		v := 1 + 0.05*float64(i%2000)
		st.Record("rt", scopeV1, t0.Add(time.Duration(i)*time.Millisecond), v)
	}
	vals := st.Values("rt", scopeV1, time.Time{})
	sorted := append([]float64(nil), vals...)
	sortFloat64s(sorted)
	for _, tt := range []struct {
		agg Aggregation
		p   float64
	}{{AggMedian, 0.5}, {AggP95, 0.95}, {AggP99, 0.99}} {
		got, err := st.Query("rt", scopeV1, t0, tt.agg)
		if err != nil {
			t.Fatalf("%v: %v", tt.agg, err)
		}
		want := quantileSorted(sorted, tt.p)
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("%v = %v, exact %v: outside 6%% bound", tt.agg, got, want)
		}
	}
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestQueryExactFallbackBeforeCoverage(t *testing.T) {
	// Observations further apart than the aggregate ring's coverage:
	// a query reaching back past coverage must fall back to the exact
	// raw path and still see everything in the raw ring.
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 10)
	st.Record("rt", scopeV1, t0.Add(400*time.Second), 30) // > numTimeBuckets seconds later
	got, err := st.Query("rt", scopeV1, time.Time{}, AggCount)
	if err != nil || got != 2 {
		t.Fatalf("full-history count = %v, %v; want 2", got, err)
	}
	if got, err := st.Query("rt", scopeV1, time.Time{}, AggMean); err != nil || got != 20 {
		t.Errorf("full-history mean = %v, %v; want 20", got, err)
	}
	// A recent window still uses the aggregate path and sees only the
	// covered observation.
	if got, err := st.Query("rt", scopeV1, t0.Add(399*time.Second), AggCount); err != nil || got != 1 {
		t.Errorf("recent count = %v, %v; want 1", got, err)
	}
}

func TestRecordBatch(t *testing.T) {
	st := NewStore(0)
	batch := []Sample{
		{Metric: "rt", Scope: scopeV1, At: t0, Value: 10},
		{Metric: "rt", Scope: scopeV1, At: t0.Add(time.Second), Value: 20},
		{Metric: "requests", Scope: scopeV1, At: t0, Value: 1},
		{Metric: "rt", Scope: scopeV2, At: t0, Value: 99},
	}
	st.RecordBatch(batch)
	if got, err := st.Query("rt", scopeV1, t0, AggCount); err != nil || got != 2 {
		t.Errorf("rt/v1 count = %v, %v; want 2", got, err)
	}
	if got, err := st.Query("rt", scopeV1, t0, AggSum); err != nil || got != 30 {
		t.Errorf("rt/v1 sum = %v, %v; want 30", got, err)
	}
	if got, err := st.Query("requests", scopeV1, t0, AggCount); err != nil || got != 1 {
		t.Errorf("requests count = %v, %v; want 1", got, err)
	}
	if got, err := st.Query("rt", scopeV2, t0, AggMax); err != nil || got != 99 {
		t.Errorf("rt/v2 max = %v, %v; want 99", got, err)
	}
	if st.SeriesCount() != 3 {
		t.Errorf("SeriesCount = %d, want 3", st.SeriesCount())
	}
	st.RecordBatch(nil) // no-op
}

func TestShardCount(t *testing.T) {
	st := NewStore(0)
	if st.ShardCount() != NumShards {
		t.Errorf("ShardCount = %d, want %d", st.ShardCount(), NumShards)
	}
	// Series land across shards and are all counted.
	for i := 0; i < 100; i++ {
		st.Record("rt", Scope{Service: "svc", Version: string(rune('a'+i%26)) + string(rune('0'+i/26))}, t0, 1)
	}
	if st.SeriesCount() != 100 {
		t.Errorf("SeriesCount = %d, want 100", st.SeriesCount())
	}
}

func TestQueryWindowFiltering(t *testing.T) {
	st := NewStore(0)
	for i := 0; i < 10; i++ {
		st.Record("rt", scopeV1, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	// Only observations at t0+5s or later.
	got, err := st.Query("rt", scopeV1, t0.Add(5*time.Second), AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 { // mean of 5..9
		t.Errorf("windowed mean = %v, want 7", got)
	}
}

func TestQueryRate(t *testing.T) {
	st := NewStore(0)
	// 11 observations over 10 seconds -> 1.1/s.
	for i := 0; i <= 10; i++ {
		st.Record("req", scopeV1, t0.Add(time.Duration(i)*time.Second), 1)
	}
	got, err := st.Query("req", scopeV1, t0, AggRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.1) > 1e-9 {
		t.Errorf("rate = %v, want 1.1", got)
	}
	// A single observation has no rate.
	st2 := NewStore(0)
	st2.Record("req", scopeV1, t0, 1)
	if got, err := st2.Query("req", scopeV1, t0, AggRate); err != nil || got != 0 {
		t.Errorf("single-obs rate = %v, %v", got, err)
	}
}

func TestQueryNoData(t *testing.T) {
	st := NewStore(0)
	if _, err := st.Query("missing", scopeV1, t0, AggMean); !errors.Is(err, ErrNoData) {
		t.Errorf("missing series error = %v, want ErrNoData", err)
	}
	st.Record("rt", scopeV1, t0, 1)
	// Window after the only observation.
	if _, err := st.Query("rt", scopeV1, t0.Add(time.Hour), AggMean); !errors.Is(err, ErrNoData) {
		t.Errorf("empty window error = %v, want ErrNoData", err)
	}
	// Count over an empty window is 0, not an error.
	if got, err := st.Query("rt", scopeV1, t0.Add(time.Hour), AggCount); err != nil || got != 0 {
		t.Errorf("empty-window count = %v, %v", got, err)
	}
}

func TestScopeIsolation(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 10)
	st.Record("rt", scopeV2, t0, 1000)
	got, err := st.Query("rt", scopeV1, t0, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("scope leakage: got %v", got)
	}
	if st.SeriesCount() != 2 {
		t.Errorf("SeriesCount = %d, want 2", st.SeriesCount())
	}
}

func TestRingBufferEviction(t *testing.T) {
	st := NewStore(4)
	for i := 0; i < 10; i++ {
		st.Record("rt", scopeV1, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	vals := st.Values("rt", scopeV1, time.Time{})
	if len(vals) != 4 {
		t.Fatalf("len = %d, want 4", len(vals))
	}
	for i, want := range []float64{6, 7, 8, 9} {
		if vals[i] != want {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want)
		}
	}
}

func TestValuesMissingSeries(t *testing.T) {
	st := NewStore(0)
	if got := st.Values("rt", scopeV1, time.Time{}); got != nil {
		t.Errorf("Values of missing series = %v, want nil", got)
	}
}

func TestReset(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 1)
	st.Reset()
	if st.SeriesCount() != 0 {
		t.Error("Reset did not clear series")
	}
}

func TestConcurrentRecordQuery(t *testing.T) {
	st := NewStore(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := Scope{Service: "svc", Version: "v1"}
			for i := 0; i < 1000; i++ {
				st.Record("rt", scope, t0.Add(time.Duration(i)*time.Millisecond), float64(i))
				if i%100 == 0 {
					_, _ = st.Query("rt", scope, t0, AggMean)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, err := st.Query("rt", Scope{Service: "svc", Version: "v1"}, t0, AggCount); err != nil || got == 0 {
		t.Errorf("after concurrent writes: count = %v, err = %v", got, err)
	}
}

// TestParallelRecordQueryReset exercises the sharded store under -race:
// concurrent writers on many series, readers on both query paths, and
// periodic store-wide resets.
func TestParallelRecordQueryReset(t *testing.T) {
	st := NewStore(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := Scope{Service: "svc", Version: fmt.Sprintf("v%d", g%4)}
			for i := 0; i < 2000; i++ {
				at := t0.Add(time.Duration(i) * time.Millisecond)
				if i%3 == 0 {
					st.RecordBatch([]Sample{
						{Metric: "rt", Scope: scope, At: at, Value: float64(i)},
						{Metric: "requests", Scope: scope, At: at, Value: 1},
					})
				} else {
					st.Record("rt", scope, at, float64(i))
				}
				if i%50 == 0 {
					_, _ = st.Query("rt", scope, t0, AggP95)
					_, _ = st.Query("rt", scope, t0, AggMean)
					_ = st.Values("rt", scope, t0)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			st.Reset()
			_ = st.SeriesCount()
		}
	}()
	wg.Wait()
}

func TestUnsupportedAggregation(t *testing.T) {
	st := NewStore(0)
	st.Record("rt", scopeV1, t0, 1)
	if _, err := st.Query("rt", scopeV1, t0, Aggregation(99)); err == nil {
		t.Error("expected error for unknown aggregation")
	}
}

// TestQuantileNonPositiveValuesExact: zero/negative values collapse
// into the sketch's underflow bucket, so quantile queries over them
// must take the exact path instead of reporting the bucket boundary.
func TestQuantileNonPositiveValuesExact(t *testing.T) {
	st := NewStore(0)
	for i, v := range []float64{-5, -3, -1} {
		st.Record("delta", scopeV1, t0.Add(time.Duration(i)*time.Second), v)
	}
	if got, err := st.Query("delta", scopeV1, t0, AggMedian); err != nil || got != -3 {
		t.Errorf("median = %v, %v; want -3", got, err)
	}
	if got, err := st.Query("delta", scopeV1, t0, AggMin); err != nil || got != -5 {
		t.Errorf("min = %v, %v; want -5", got, err)
	}
	// Mixed signs also route quantiles through the exact path.
	st.Record("delta", scopeV1, t0.Add(3*time.Second), 10)
	want := quantileSorted([]float64{-5, -3, -1, 10}, 0.5)
	if got, err := st.Query("delta", scopeV1, t0, AggMedian); err != nil || got != want {
		t.Errorf("mixed median = %v, %v; want %v", got, err, want)
	}
}
