package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// This file is the durable windowed-storage side of the store: the
// minute/hour rollup rings each series feeds on every write
// (metrics.go), idle-series eviction (Maintain), per-tenant series
// accounting (TenantSeries), and rollup persistence
// (SaveSnapshot/LoadSnapshot) so long-window history survives a daemon
// restart even though the raw rings die with the process.

const (
	// minuteRingSlots bounds the minute rollup tier: 24 hours.
	minuteRingSlots = 1440
	// hourRingSlots bounds the hour rollup tier: 14 days.
	hourRingSlots = 336
)

// rollBucket is one downsampled interval: the streaming aggregates of
// aggBucket minus the histogram sketch (quantiles at rollup resolution
// would multiply the memory bound by histSize for little decision
// value — checks window seconds, not days).
type rollBucket struct {
	idx     int64 // interval start = idx * ring width (in unix seconds)
	count   int
	sum     float64
	min     float64
	max     float64
	firstAt time.Time
	lastAt  time.Time
}

func (b *rollBucket) reset(idx int64) {
	*b = rollBucket{idx: idx, min: math.Inf(1), max: math.Inf(-1)}
}

func (b *rollBucket) add(at time.Time, v float64) {
	b.count++
	b.sum += v
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	if b.firstAt.IsZero() || at.Before(b.firstAt) {
		b.firstAt = at
	}
	if b.lastAt.IsZero() || at.After(b.lastAt) {
		b.lastAt = at
	}
}

// rollRing is one rollup tier: a fixed ring of width-second buckets,
// allocated on first write. Caller holds the owning series' lock.
type rollRing struct {
	width int64 // bucket width in seconds (60 or 3600)
	slots int

	buckets     []rollBucket
	earliestIdx int64
	latestIdx   int64
	has         bool
}

func (r *rollRing) add(at time.Time, v float64) {
	idx := at.Unix() / r.width
	if r.buckets == nil {
		r.buckets = make([]rollBucket, r.slots)
	}
	if !r.has {
		r.has = true
		r.earliestIdx = idx
		r.latestIdx = idx
	} else {
		if idx > r.latestIdx {
			r.latestIdx = idx
		}
		if idx < r.earliestIdx {
			r.earliestIdx = idx
		}
	}
	if idx <= r.latestIdx-int64(r.slots) {
		return // older than the ring's reach
	}
	b := &r.buckets[int(((idx%int64(r.slots))+int64(r.slots))%int64(r.slots))]
	if b.idx != idx || b.count == 0 {
		b.reset(idx)
	}
	b.add(at, v)
}

// covers reports whether the ring fully answers a window from `since`:
// no data ever fell outside it, or the window starts inside coverage.
func (r *rollRing) covers(since time.Time) bool {
	if !r.has {
		return false
	}
	if r.latestIdx-r.earliestIdx < int64(r.slots) {
		return true
	}
	coverageStart := time.Unix((r.latestIdx-int64(r.slots)+1)*r.width, 0)
	return !since.Before(coverageStart)
}

// query reduces the ring's buckets that overlap [since, ∞). Windows
// snap to bucket boundaries: a bucket straddling `since` contributes
// whole, so answers at this tier have minute/hour granularity.
// Quantile aggregations are the caller's job to route elsewhere.
func (r *rollRing) query(since time.Time, agg Aggregation) (float64, error) {
	var (
		count   int
		sum     float64
		minV    = math.Inf(1)
		maxV    = math.Inf(-1)
		firstAt time.Time
		lastAt  time.Time
	)
	oldestValid := r.latestIdx - int64(r.slots) // exclusive lower bound
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.count == 0 || b.idx <= oldestValid {
			continue
		}
		if !time.Unix((b.idx+1)*r.width, 0).After(since) {
			continue // bucket ends at or before the window start
		}
		count += b.count
		sum += b.sum
		if b.min < minV {
			minV = b.min
		}
		if b.max > maxV {
			maxV = b.max
		}
		if firstAt.IsZero() || b.firstAt.Before(firstAt) {
			firstAt = b.firstAt
		}
		if lastAt.IsZero() || b.lastAt.After(lastAt) {
			lastAt = b.lastAt
		}
	}
	if count == 0 && agg != AggCount && agg != AggRate && agg != AggSum {
		return 0, ErrNoData
	}
	switch agg {
	case AggCount:
		return float64(count), nil
	case AggSum:
		return sum, nil
	case AggRate:
		if count < 2 {
			return 0, nil
		}
		span := lastAt.Sub(firstAt).Seconds()
		if span <= 0 {
			return 0, nil
		}
		return float64(count) / span, nil
	case AggMean:
		return sum / float64(count), nil
	case AggMin:
		return minV, nil
	case AggMax:
		return maxV, nil
	default:
		return 0, fmt.Errorf("metrics: aggregation %v unsupported at rollup resolution", agg)
	}
}

// --- maintenance ---

// Maintain evicts series whose newest observation is older than
// idleFor relative to now, bounding store memory over long uptimes: a
// finished experiment's series (raw ring, 1s buckets, and rollups)
// disappear once nothing has written to them for the retention window.
// idleFor <= 0 disables eviction. Returns the number of evicted
// series. Run it periodically (contexpd's maintenance loop does).
func (st *Store) Maintain(now time.Time, idleFor time.Duration) int {
	if idleFor <= 0 {
		return 0
	}
	cutoff := now.Add(-idleFor)
	evicted := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for key, s := range sh.series {
			s.mu.Lock()
			idle := !s.lastWrite.IsZero() && s.lastWrite.Before(cutoff)
			s.mu.Unlock()
			if idle {
				delete(sh.series, key)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// TenantSeries counts live series per canonical tenant (the series
// key's leading segment). The ops surfaces render the empty key as
// "default".
func (st *Store) TenantSeries() map[string]int {
	out := make(map[string]int)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for key := range sh.series {
			tenant, _, _ := strings.Cut(key, "\x00")
			out[tenant]++
		}
		sh.mu.RUnlock()
	}
	return out
}

// --- rollup persistence ---

// snapshotVersion is bumped when the snapshot schema changes
// incompatibly; LoadSnapshot rejects newer versions.
const snapshotVersion = 1

type snapshotBucket struct {
	Idx     int64   `json:"idx"`
	Count   int     `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	FirstAt int64   `json:"firstAt"` // unix nanos
	LastAt  int64   `json:"lastAt"`
}

type snapshotSeries struct {
	Key    string           `json:"key"`
	Minute []snapshotBucket `json:"minute,omitempty"`
	Hour   []snapshotBucket `json:"hour,omitempty"`
}

type snapshotFile struct {
	V       int              `json:"v"`
	SavedAt time.Time        `json:"savedAt"`
	Series  []snapshotSeries `json:"series"`
}

func dumpRing(r *rollRing) []snapshotBucket {
	if !r.has {
		return nil
	}
	out := make([]snapshotBucket, 0, len(r.buckets))
	oldestValid := r.latestIdx - int64(r.slots)
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.count == 0 || b.idx <= oldestValid {
			continue
		}
		out = append(out, snapshotBucket{
			Idx: b.idx, Count: b.count, Sum: b.sum, Min: b.min, Max: b.max,
			FirstAt: b.firstAt.UnixNano(), LastAt: b.lastAt.UnixNano(),
		})
	}
	return out
}

func restoreRing(r *rollRing, saved []snapshotBucket) {
	for _, sb := range saved {
		if sb.Count == 0 {
			continue
		}
		if r.buckets == nil {
			r.buckets = make([]rollBucket, r.slots)
		}
		if !r.has {
			r.has = true
			r.earliestIdx = sb.Idx
			r.latestIdx = sb.Idx
		} else {
			if sb.Idx > r.latestIdx {
				r.latestIdx = sb.Idx
			}
			if sb.Idx < r.earliestIdx {
				r.earliestIdx = sb.Idx
			}
		}
	}
	oldestValid := r.latestIdx - int64(r.slots)
	for _, sb := range saved {
		if sb.Count == 0 || sb.Idx <= oldestValid {
			continue
		}
		b := &r.buckets[int(((sb.Idx%int64(r.slots))+int64(r.slots))%int64(r.slots))]
		// Keep the newer generation if two saved buckets map to one slot
		// (possible only with a corrupted file; harmless either way).
		if b.count != 0 && b.idx > sb.Idx {
			continue
		}
		*b = rollBucket{
			idx: sb.Idx, count: sb.Count, sum: sb.Sum, min: sb.Min, max: sb.Max,
			firstAt: time.Unix(0, sb.FirstAt), lastAt: time.Unix(0, sb.LastAt),
		}
	}
}

// SaveSnapshot writes the rollup tiers of every series to path as
// versioned JSON, atomically (temp file + rename), so a restarted
// daemon can answer long-window queries from before the restart. Raw
// rings and 1s buckets are deliberately not persisted: they cover
// minutes and refill immediately, while the rollups carry the hours
// and days a snapshot actually preserves.
func (st *Store) SaveSnapshot(path string, now time.Time) error {
	snap := snapshotFile{V: snapshotVersion, SavedAt: now}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for key, s := range sh.series {
			s.mu.Lock()
			ss := snapshotSeries{Key: key, Minute: dumpRing(&s.minute), Hour: dumpRing(&s.hour)}
			s.mu.Unlock()
			if len(ss.Minute) == 0 && len(ss.Hour) == 0 {
				continue
			}
			snap.Series = append(snap.Series, ss)
		}
		sh.mu.RUnlock()
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("metrics: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot merges a SaveSnapshot file into the store, restoring
// each series' rollup tiers (creating series as needed; raw rings
// start empty). A missing file is not an error — a first boot simply
// has no history.
func (st *Store) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("metrics: undecodable snapshot %s: %w", path, err)
	}
	if snap.V > snapshotVersion {
		return fmt.Errorf("metrics: snapshot %s version %d newer than supported %d", path, snap.V, snapshotVersion)
	}
	for _, ss := range snap.Series {
		if ss.Key == "" {
			continue
		}
		s := st.getOrCreate(ss.Key)
		s.mu.Lock()
		restoreRing(&s.minute, ss.Minute)
		restoreRing(&s.hour, ss.Hour)
		// Seed lastWrite so Maintain can age restored-but-idle series
		// out instead of keeping them forever.
		for _, tier := range [][]snapshotBucket{ss.Minute, ss.Hour} {
			for _, b := range tier {
				if at := time.Unix(0, b.LastAt); at.After(s.lastWrite) {
					s.lastWrite = at
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}
