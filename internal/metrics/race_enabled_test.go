//go:build race

package metrics

// raceEnabled lets allocation-count assertions skip under the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in normal builds.
const raceEnabled = true
