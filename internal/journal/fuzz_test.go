package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecordFraming feeds arbitrary payloads through an append +
// reopen + replay cycle: whatever the bytes, a record that was appended
// must replay identically.
func FuzzRecordFraming(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{0x00}, []byte{0xFF, 0xFE})
	f.Add(bytes.Repeat([]byte{0xAB}, 4096), []byte("{\"run\":\"x\"}"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		dir := t.TempDir()
		log, err := Open(dir, Options{SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for _, rec := range [][]byte{a, b} {
			if len(rec) == 0 || len(rec) > MaxRecord {
				continue // rejected by contract
			}
			if err := log.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
			want = append(want, rec)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		var got [][]byte
		if err := re.Replay(func(rec []byte) error {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			got = append(got, cp)
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("record %d corrupted in round trip", i)
			}
		}
	})
}

// FuzzReplayArbitraryBytes writes arbitrary bytes as a segment file and
// replays: the reader must never panic, never return a record that
// fails its checksum, and always terminate.
func FuzzReplayArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'a', 'b', 'c'})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		log, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer log.Close()
		if err := log.Replay(func(rec []byte) error {
			if len(rec) == 0 || len(rec) > MaxRecord {
				t.Errorf("replay yielded out-of-contract record of %d bytes", len(rec))
			}
			return nil
		}); err != nil {
			t.Fatalf("replay errored on garbage input: %v", err)
		}
	})
}
