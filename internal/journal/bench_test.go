package journal

import (
	"testing"
)

// benchRecord approximates one journaled run event: a ~200-byte JSON
// envelope, the payload size the enactment loop appends per check
// evaluation.
var benchRecord = []byte(`{"run":"demo-canary-rollout","v":1,"at":"2017-12-11T09:00:00Z","type":"check-result","phase":"canary","check":"latency","outcome":1,"detail":"value=42.17"}`)

// BenchmarkJournalAppend measures the write-ahead cost added to the
// enactment loop: one framed append with batched fsync (the default
// policy). The acceptance bar is <10µs p50.
func BenchmarkJournalAppend(b *testing.B) {
	b.Run("file-batched-sync", func(b *testing.B) {
		log, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.SetBytes(int64(len(benchRecord)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := log.Append(benchRecord); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memory", func(b *testing.B) {
		log := NewMemory()
		b.SetBytes(int64(len(benchRecord)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := log.Append(benchRecord); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The durability ceiling: what every append would cost if each one
	// paid its own fsync instead of joining a batch.
	b.Run("file-sync-every-append", func(b *testing.B) {
		log, err := Open(b.TempDir(), Options{SyncInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.SetBytes(int64(len(benchRecord)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := log.Append(benchRecord); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJournalReplay measures recovery-side throughput.
func BenchmarkJournalReplay(b *testing.B) {
	log, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := log.Append(benchRecord); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := log.Replay(func([]byte) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d, want %d", count, n)
		}
	}
}
