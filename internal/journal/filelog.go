package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Record framing: every record is written as an 8-byte header followed
// by the payload.
//
//	offset  size  field
//	0       4     payload length, little endian
//	4       4     CRC-32C (Castagnoli) of the payload
//	8       n     payload
//
// A record is valid only when its length is in (0, MaxRecord] and the
// payload checksum matches. Anything else — a short header, a short
// payload, a zero or oversized length, a checksum mismatch — marks the
// point where a crash tore an in-flight append; the segment is
// truncated there on replay and the remainder ignored.
const (
	frameHeaderSize = 8
	// MaxRecord bounds a single record's payload. The bound keeps a
	// corrupted length field from turning replay into a multi-gigabyte
	// allocation.
	MaxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes a FileLog.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed
	// and a new one started (default 4 MiB).
	SegmentBytes int64
	// SyncInterval is the fsync batching window: appends mark the log
	// dirty and a background syncer flushes to stable storage at this
	// cadence, so one fsync amortizes over every append in the window.
	// Zero defaults to 2ms. Negative syncs on every append (durable but
	// slow: each append pays a full fsync).
	SyncInterval time.Duration
}

const (
	defaultSegmentBytes = 4 << 20
	defaultSyncInterval = 2 * time.Millisecond
	segmentSuffix       = ".wal"
)

// FileLog is a durable Journal: an append-only log segmented across
// numbered files in one directory. Records are CRC-framed, fsyncs are
// batched (Options.SyncInterval), segments rotate at a size threshold,
// and Compact rewrites the log keeping only records a filter retains.
//
// Opening a directory always starts a fresh active segment, so a tail
// torn by a crash is never appended after; replay drops the torn tail
// and the log continues in the next segment.
type FileLog struct {
	dir  string
	opts Options

	// lock holds an exclusive flock on the directory's lock file for
	// the journal's lifetime, so two processes cannot interleave
	// segments on the same --data-dir.
	lock *os.File

	mu      sync.Mutex
	active  *os.File
	w       *bufio.Writer
	size    int64 // bytes written to the active segment
	seq     uint64
	dirty   bool
	closed  bool
	lastErr error // sticky background sync failure

	appended    uint64 // records appended by this process
	preexisting uint64 // records found on disk, counted by the first Replay
	counted     bool
	bytes       uint64
	segCount    int
	syncs       uint64
	truncations uint64

	stop chan struct{}
	done chan struct{}
}

var _ Journal = (*FileLog)(nil)
var _ Stater = (*FileLog)(nil)
var _ Compactor = (*FileLog)(nil)

// Open creates or opens a file journal in dir (created if missing).
// Existing segments are preserved and replayed in order; new appends go
// to a fresh segment.
func Open(dir string, opts Options) (*FileLog, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	f := &FileLog{
		dir:  dir,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Exclusive directory lock: a second daemon pointed at the same
	// --data-dir must fail fast instead of interleaving segments with a
	// live writer. flock is released automatically if the process dies,
	// so a kill -9 never wedges the next boot.
	lock, err := os.OpenFile(filepath.Join(dir, "journal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("journal: %s is in use by another process: %w", dir, err)
	}
	f.lock = lock

	segs, err := f.segments()
	if err != nil {
		lock.Close()
		return nil, err
	}
	for _, seg := range segs {
		info, err := os.Stat(seg.path)
		if err != nil {
			lock.Close()
			return nil, fmt.Errorf("journal: stat %s: %w", seg.path, err)
		}
		f.bytes += uint64(info.Size())
		if seg.seq >= f.seq {
			f.seq = seg.seq
		}
	}
	f.segCount = len(segs)
	if err := f.openSegment(f.seq + 1); err != nil {
		lock.Close()
		return nil, err
	}
	if f.opts.SyncInterval > 0 {
		go f.syncLoop()
	} else {
		close(f.done)
	}
	return f, nil
}

// Dir returns the journal directory.
func (f *FileLog) Dir() string { return f.dir }

type segment struct {
	seq  uint64
	path string
}

// segments lists the on-disk segment files in sequence order.
func (f *FileLog) segments() ([]segment, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", f.dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // not a segment file
		}
		segs = append(segs, segment{seq: seq, path: filepath.Join(f.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

func (f *FileLog) segmentPath(seq uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("%08d%s", seq, segmentSuffix))
}

// openSegment seals the current active segment (if any) and starts a
// new one. Caller holds f.mu (or is constructing the log).
func (f *FileLog) openSegment(seq uint64) error {
	if f.active != nil {
		if err := f.w.Flush(); err != nil {
			return err
		}
		if err := f.active.Sync(); err != nil {
			return err
		}
		if err := f.active.Close(); err != nil {
			return err
		}
		f.syncs++
	}
	file, err := os.OpenFile(f.segmentPath(seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment: %w", err)
	}
	// Fsync the directory so the new segment's entry survives a crash:
	// without it, records reported durable could vanish with the file.
	if err := syncDir(f.dir); err != nil {
		file.Close()
		return err
	}
	f.active = file
	f.w = bufio.NewWriter(file)
	f.size = 0
	f.seq = seq
	f.segCount++
	return nil
}

// syncDir fsyncs a directory so entry mutations (segment creation,
// compaction renames and removals) reach stable storage.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append implements Journal.
func (f *FileLog) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	if len(rec) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit %d", len(rec), MaxRecord)
	}
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(rec, castagnoli))

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("journal: appending to closed journal")
	}
	if f.lastErr != nil {
		return f.lastErr
	}
	if _, err := f.w.Write(header[:]); err != nil {
		return err
	}
	if _, err := f.w.Write(rec); err != nil {
		return err
	}
	n := int64(frameHeaderSize + len(rec))
	f.size += n
	f.bytes += uint64(n)
	f.appended++
	f.dirty = true
	if f.opts.SyncInterval < 0 {
		if err := f.syncLocked(); err != nil {
			return err
		}
	}
	if f.size >= f.opts.SegmentBytes {
		return f.openSegment(f.seq + 1)
	}
	return nil
}

// syncLoop is the background fsync batcher.
func (f *FileLog) syncLoop() {
	defer close(f.done)
	ticker := time.NewTicker(f.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.mu.Lock()
			if !f.closed && f.dirty {
				if err := f.syncLocked(); err != nil && f.lastErr == nil {
					f.lastErr = err
				}
			}
			f.mu.Unlock()
		}
	}
}

// syncLocked flushes the write buffer and fsyncs the active segment.
// Caller holds f.mu.
func (f *FileLog) syncLocked() error {
	if err := f.w.Flush(); err != nil {
		return err
	}
	if err := f.active.Sync(); err != nil {
		return err
	}
	f.dirty = false
	f.syncs++
	return nil
}

// Sync implements Journal.
func (f *FileLog) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if f.lastErr != nil {
		return f.lastErr
	}
	return f.syncLocked()
}

// Close implements Journal: it stops the syncer, flushes, and seals the
// active segment.
func (f *FileLog) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	err := f.syncLocked()
	f.closed = true
	closeErr := f.active.Close()
	lockErr := f.lock.Close() // releases the flock
	f.mu.Unlock()
	close(f.stop)
	<-f.done
	if err == nil {
		err = closeErr
	}
	if err == nil {
		err = lockErr
	}
	return err
}

// Replay implements Journal. The boundary (segment list and active
// segment size) is captured under the lock, then the files are read
// outside it, so the callback may Append to this same journal — the
// write-ahead recovery pattern — without deadlocking; those appends are
// not part of the replay.
//
// A torn record (short frame, bad length, checksum mismatch) truncates
// its segment at that point: the rest of the segment is skipped and
// replay continues with the next segment. This is the crash shape —
// each process generation appends to its own segment, so a tear only
// ever hides records that were being written when that generation died.
func (f *FileLog) Replay(fn func(rec []byte) error) error {
	f.mu.Lock()
	if err := f.w.Flush(); err != nil {
		f.mu.Unlock()
		return err
	}
	segs, err := f.segments()
	if err != nil {
		f.mu.Unlock()
		return err
	}
	activeSeq, activeSize := f.seq, f.size
	appendedAtBoundary := f.appended
	f.mu.Unlock()

	var replayed uint64
	for _, seg := range segs {
		if seg.seq > activeSeq {
			continue // created after the boundary
		}
		limit := int64(-1)
		if seg.seq == activeSeq {
			limit = activeSize
		}
		truncated, err := replaySegment(seg.path, limit, func(rec []byte) error {
			replayed++
			return fn(rec)
		})
		if err != nil {
			return err
		}
		if truncated {
			f.mu.Lock()
			f.truncations++
			f.mu.Unlock()
		}
	}
	// A completed replay saw every record up to the boundary —
	// preexisting ones plus this process's appends. That settles the
	// preexisting count without Open having to scan the log twice (the
	// daemon replays at boot anyway, for recovery).
	f.mu.Lock()
	if !f.counted {
		f.preexisting = replayed - appendedAtBoundary
		f.counted = true
	}
	f.mu.Unlock()
	return nil
}

// replaySegment reads one segment, calling fn per valid record. limit
// caps the bytes read (-1 = whole file). The bool result reports
// whether a torn tail was dropped.
func replaySegment(path string, limit int64, fn func(rec []byte) error) (bool, error) {
	file, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: opening segment: %w", err)
	}
	defer file.Close()
	var src io.Reader = file
	if limit >= 0 {
		src = io.LimitReader(file, limit)
	}
	r := bufio.NewReader(src)
	var header [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil // clean end of segment
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil // torn header
			}
			return false, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length == 0 || length > MaxRecord {
			return true, nil // corrupt length: torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil // torn payload
			}
			return false, err
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(header[4:8]) {
			return true, nil // corrupt payload: torn tail
		}
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// Compact rewrites the journal keeping only the records keep returns
// true for: the retention hook callers use to drop events of runs that
// no longer need replaying. The kept records land in one fresh segment
// (fsynced before the old segments are removed), and appends continue
// in a new active segment after it. keep must not touch the journal.
func (f *FileLog) Compact(keep func(rec []byte) bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("journal: compacting closed journal")
	}
	if err := f.w.Flush(); err != nil {
		return err
	}
	segs, err := f.segments()
	if err != nil {
		return err
	}

	// Write survivors into the next segment via a temp file.
	tmpPath := filepath.Join(f.dir, "compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating compaction file: %w", err)
	}
	w := bufio.NewWriter(tmp)
	var kept, keptBytes uint64
	for _, seg := range segs {
		_, err := replaySegment(seg.path, -1, func(rec []byte) error {
			if !keep(rec) {
				return nil
			}
			var header [frameHeaderSize]byte
			binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
			binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(rec, castagnoli))
			if _, err := w.Write(header[:]); err != nil {
				return err
			}
			if _, err := w.Write(rec); err != nil {
				return err
			}
			kept++
			keptBytes += uint64(frameHeaderSize + len(rec))
			return nil
		})
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Publish: rename into place as the next segment, drop the old
	// segments, fsync the directory so the swap is crash-durable, and
	// continue in a fresh active segment after it.
	compactSeq := f.seq + 1
	if err := os.Rename(tmpPath, f.segmentPath(compactSeq)); err != nil {
		return err
	}
	if err := f.active.Close(); err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("journal: removing compacted segment: %w", err)
		}
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	f.preexisting = kept
	f.counted = true
	f.appended = 0
	f.bytes = keptBytes
	f.segCount = 1 // the compacted segment; openSegment adds the active one
	f.active = nil // openSegment must not re-seal the closed file
	f.w = nil
	f.seq = compactSeq
	return f.openSegment(compactSeq + 1)
}

// Stats implements Stater. It reads in-memory counters only — no
// directory I/O under the mutex Append contends on.
func (f *FileLog) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Records:     f.preexisting + f.appended,
		Bytes:       f.bytes,
		Segments:    f.segCount,
		Syncs:       f.syncs,
		Truncations: f.truncations,
	}
}
