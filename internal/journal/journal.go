// Package journal provides the write-ahead log that makes strategy
// enactment durable. The Bifrost engine appends one framed record per
// run event *before* applying the event's side effects; replaying the
// journal therefore reconstructs every run — finished and in-flight —
// after a crash or restart (see Engine.Recover in internal/bifrost).
//
// Two backends implement the same interface: Memory keeps records in a
// slice (tests, benches, and daemons that opt out of durability), and
// FileLog is a segmented append-only file log with CRC-framed records,
// batched fsync, segment rotation, and compaction (filelog.go).
package journal

// Journal is an append-only record log. Records are opaque byte
// payloads; framing, durability, and ordering are the journal's
// concern, interpretation is the caller's.
//
// Append must be safe for concurrent use. Replay must be safe to run
// while concurrent Appends happen, and the callback is allowed to
// Append to the same journal: records appended after Replay starts are
// simply not part of that replay.
type Journal interface {
	// Append adds one record to the log. Records must be non-empty.
	// When Append returns, the record is visible to Replay; durability
	// against crashes follows the backend's sync policy (see
	// Options.SyncInterval for FileLog).
	Append(rec []byte) error
	// Replay calls fn for every record in append order and stops at the
	// first error fn returns.
	Replay(fn func(rec []byte) error) error
	// Sync forces buffered records to stable storage.
	Sync() error
	// Close releases the journal. Appends after Close fail.
	Close() error
}

// Stats describes a journal's size and activity. Backends expose it via
// the Stater interface so health surfaces can report journal state
// without widening Journal itself.
type Stats struct {
	// Records is the number of records in the log. For FileLog the
	// on-disk records present at open time are tallied by the first
	// full Replay (recovery runs one at boot); before that, Records
	// reflects only this process's appends.
	Records uint64
	// Bytes is the total size of the log, framing included.
	Bytes uint64
	// Segments is the number of on-disk segment files (1 for Memory).
	Segments int
	// Syncs counts fsync batches flushed to stable storage.
	Syncs uint64
	// Truncations counts torn record tails dropped during replays: the
	// residue of crashes mid-append.
	Truncations uint64
}

// Stater is the optional stats surface of a Journal.
type Stater interface {
	Stats() Stats
}

// Compactor is the optional retention surface of a Journal: Compact
// rewrites the log keeping only the records keep returns true for.
// keep must not touch the journal (Compact holds the journal's lock).
type Compactor interface {
	Compact(keep func(rec []byte) bool) error
}
