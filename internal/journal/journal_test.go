package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays a journal into a slice.
func collect(t *testing.T, j Journal) [][]byte {
	t.Helper()
	var out [][]byte
	if err := j.Replay(func(rec []byte) error {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func testRoundTrip(t *testing.T, j Journal) {
	t.Helper()
	recs := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte("x"), 10_000)}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got := collect(t, j)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
	if err := j.Append([]byte{}); err == nil {
		t.Error("empty record should be rejected")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	testRoundTrip(t, m)
	st := m.Stats()
	if st.Records != 3 {
		t.Errorf("stats records = %d, want 3", st.Records)
	}
}

func TestMemorySnapshotIsIndependent(t *testing.T) {
	m := NewMemory()
	if err := m.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if n := len(collect(t, snap)); n != 1 {
		t.Errorf("snapshot has %d records, want 1", n)
	}
	if n := len(collect(t, m)); n != 2 {
		t.Errorf("original has %d records, want 2", n)
	}
}

func TestMemoryClosedAppendFails(t *testing.T) {
	m := NewMemory()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]byte("x")); err == nil {
		t.Error("append after close should fail")
	}
}

func openTestLog(t *testing.T, dir string, opts Options) *FileLog {
	t.Helper()
	f, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

func TestFileLogRoundTrip(t *testing.T) {
	testRoundTrip(t, openTestLog(t, t.TempDir(), Options{}))
}

func TestFileLogReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := f.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := openTestLog(t, dir, Options{})
	if err := f2.Append([]byte("rec-5")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, f2)
	if len(got) != 6 {
		t.Fatalf("replayed %d records after reopen, want 6", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("rec-%d", i); string(rec) != want {
			t.Errorf("record %d = %q, want %q", i, rec, want)
		}
	}
	if st := f2.Stats(); st.Records != 6 {
		t.Errorf("stats records = %d, want 6", st.Records)
	}
}

func TestFileLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := f.Append(bytes.Repeat([]byte{byte('a' + i)}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Segments < 5 {
		t.Errorf("segments = %d, want several after rotation", st.Segments)
	}
	if got := collect(t, f); len(got) != 20 {
		t.Errorf("replayed %d records across segments, want 20", len(got))
	}
}

func TestFileLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := f.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a frame header promising more bytes
	// than exist.
	segs, err := (&FileLog{dir: dir}).segments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	last := segs[len(segs)-1].path
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:4], 100) // promises 100 payload bytes
	file, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	file.Close()

	f2 := openTestLog(t, dir, Options{})
	got := collect(t, f2)
	if len(got) != 3 {
		t.Fatalf("replayed %d records with torn tail, want 3", len(got))
	}
	if st := f2.Stats(); st.Truncations == 0 {
		t.Error("truncation not counted")
	}
	// New appends continue in a fresh segment past the torn one.
	if err := f2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, f2); len(got) != 4 || string(got[3]) != "after-crash" {
		t.Errorf("post-crash append not replayed: %d records", len(got))
	}
}

func TestFileLogCorruptPayloadTruncates(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{})
	if err := f.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := (&FileLog{dir: dir}).segments()
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	f2 := openTestLog(t, dir, Options{})
	got := collect(t, f2)
	if len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("replayed %v, want just %q", got, "first")
	}
}

func TestFileLogCompact(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if err := f.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Keep even records only.
	err := f.Compact(func(rec []byte) bool {
		var n int
		fmt.Sscanf(string(rec), "rec-%d", &n)
		return n%2 == 0
	})
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	got := collect(t, f)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after compaction, want 5", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("rec-%d", 2*i); string(rec) != want {
			t.Errorf("record %d = %q, want %q", i, rec, want)
		}
	}
	// Appends continue after compaction and survive reopen.
	if err := f.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openTestLog(t, dir, Options{})
	if got := collect(t, f2); len(got) != 6 || string(got[5]) != "post-compact" {
		t.Fatalf("after reopen: %d records", len(got))
	}
}

func TestFileLogSyncEveryAppend(t *testing.T) {
	f := openTestLog(t, t.TempDir(), Options{SyncInterval: -1})
	if err := f.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Syncs == 0 {
		t.Error("no sync recorded with SyncInterval<0")
	}
}

func TestFileLogBatchedSyncEventuallyFsyncs(t *testing.T) {
	f := openTestLog(t, t.TempDir(), Options{SyncInterval: time.Millisecond})
	if err := f.Append([]byte("batched")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if f.Stats().Syncs > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background syncer never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFileLogAppendDuringReplay(t *testing.T) {
	// The recovery pattern: the replay callback appends to the same
	// journal. Must not deadlock, and the appended records are not part
	// of the replay.
	f := openTestLog(t, t.TempDir(), Options{})
	for i := 0; i < 3; i++ {
		if err := f.Append([]byte(fmt.Sprintf("seed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	err := f.Replay(func(rec []byte) error {
		seen++
		return f.Append(append([]byte("echo-"), rec...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("replayed %d records, want 3 (echoes excluded)", seen)
	}
	if got := collect(t, f); len(got) != 6 {
		t.Errorf("total records = %d, want 6", len(got))
	}
}

func TestFileLogIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := openTestLog(t, dir, Options{})
	if err := f.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, f); len(got) != 1 {
		t.Errorf("replayed %d records, want 1", len(got))
	}
}

func TestFileLogClosedAppendFails(t *testing.T) {
	f, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
	if err := f.Append([]byte("x")); err == nil {
		t.Error("append after close should fail")
	}
}

func TestFileLogOversizedRecordRejected(t *testing.T) {
	f := openTestLog(t, t.TempDir(), Options{})
	if err := f.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized record should be rejected")
	}
}

func TestFileLogLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a live journal directory should fail")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the lock is released and the directory reopens.
	f2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	f2.Close()
}

func TestFileLogStatsCountsPreexistingAfterReplay(t *testing.T) {
	dir := t.TempDir()
	f := openTestLog(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := f.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openTestLog(t, dir, Options{})
	if err := f2.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	// Open no longer scans contents: only this process's appends count
	// until the first replay tallies the rest.
	if st := f2.Stats(); st.Records != 1 {
		t.Errorf("records before replay = %d, want 1", st.Records)
	}
	if err := f2.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := f2.Stats(); st.Records != 5 {
		t.Errorf("records after replay = %d, want 5", st.Records)
	}
}
