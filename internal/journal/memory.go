package journal

import (
	"errors"
	"sync"
)

// Memory is an in-process Journal: the zero-durability backend used by
// tests, benchmarks, and daemons running without --data-dir. It keeps
// every record in order and never fails except on misuse.
type Memory struct {
	mu     sync.Mutex
	recs   [][]byte
	bytes  uint64
	closed bool
}

var _ Journal = (*Memory)(nil)
var _ Stater = (*Memory)(nil)
var _ Compactor = (*Memory)(nil)

// NewMemory returns an empty in-memory journal.
func NewMemory() *Memory { return &Memory{} }

// Append implements Journal. The record is copied.
func (m *Memory) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("journal: appending to closed journal")
	}
	m.recs = append(m.recs, cp)
	m.bytes += uint64(len(cp))
	return nil
}

// Replay implements Journal. The callback may Append to this journal;
// records appended after Replay starts are not part of the replay.
func (m *Memory) Replay(fn func(rec []byte) error) error {
	m.mu.Lock()
	recs := m.recs[:len(m.recs):len(m.recs)]
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements Journal (a no-op: memory has no stable storage).
func (m *Memory) Sync() error { return nil }

// Compact implements Compactor.
func (m *Memory) Compact(keep func(rec []byte) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.recs[:0:0]
	var bytes uint64
	for _, rec := range m.recs {
		if keep(rec) {
			kept = append(kept, rec)
			bytes += uint64(len(rec))
		}
	}
	m.recs, m.bytes = kept, bytes
	return nil
}

// Close implements Journal.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Stats implements Stater.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Records: uint64(len(m.recs)), Bytes: m.bytes, Segments: 1}
}

// Snapshot returns an independent copy of the journal at this instant:
// the crash-simulation primitive tests use to freeze a journal mid-run
// and recover an engine from it.
func (m *Memory) Snapshot() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := &Memory{recs: make([][]byte, len(m.recs)), bytes: m.bytes}
	copy(cp.recs, m.recs)
	return cp
}
