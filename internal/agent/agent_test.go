package agent

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/server"
)

// canaryDSL promotes svc v2 after a 200ms canary phase with a passing
// latency check — the phase transition whose fleet-wide propagation the
// e2e test observes.
const canaryDSL = `
strategy "edge-canary" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 50%
        duration = 200ms
        check "latency" {
            metric    = response_time
            aggregate = mean
            max       = 100
            window    = 1m
            interval  = 100ms
        }
        on success -> promote
        on failure -> rollback
    }
}
`

type plane struct {
	t      *testing.T
	ts     *httptest.Server
	table  *router.Table
	store  *metrics.Store
	engine *bifrost.Engine
	hub    *fleet.Hub
}

// newPlane boots a control plane (engine + table + fleet hub behind a
// real HTTP server) the agents under test connect to.
func newPlane(t *testing.T) *plane {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := fleet.New(fleet.Config{Table: table, HeartbeatInterval: 50 * time.Millisecond})
	t.Cleanup(hub.Close)
	s, err := server.New(server.Config{Engine: engine, Table: table, Store: store, Fleet: hub})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &plane{t: t, ts: ts, table: table, store: store, engine: engine, hub: hub}
}

func (p *plane) newAgent(id string) *Agent {
	p.t.Helper()
	a, err := New(Config{
		ID:                id,
		ControlPlane:      p.ts.URL,
		HeartbeatInterval: 25 * time.Millisecond,
		LeaseTTL:          250 * time.Millisecond,
		ReconnectMin:      10 * time.Millisecond,
		ReconnectMax:      50 * time.Millisecond,
	})
	if err != nil {
		p.t.Fatal(err)
	}
	a.Start()
	p.t.Cleanup(func() { _ = a.Close() })
	return a
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func svcRoute(weightV1 float64) router.Route {
	return router.Route{
		Service: "svc",
		Backends: []router.Backend{
			{Version: "v1", Weight: weightV1},
			{Version: "v2", Weight: 1 - weightV1},
		},
	}
}

func TestThreeAgentsConvergeOnMutations(t *testing.T) {
	p := newPlane(t)
	if err := p.table.Set(svcRoute(1)); err != nil {
		t.Fatal(err)
	}
	agents := []*Agent{p.newAgent("a1"), p.newAgent("a2"), p.newAgent("a3")}

	converged := func(v uint64) func() bool {
		return func() bool {
			for _, a := range agents {
				if a.Version() != v || a.Table().String() != p.table.String() {
					return false
				}
			}
			return true
		}
	}
	waitFor(t, "initial sync", converged(p.table.Version()))

	// A stream of mutations — each one a phase-transition-shaped change.
	for i := 0; i < 5; i++ {
		if err := p.table.SetWeights("svc", []router.Backend{
			{Version: "v1", Weight: float64(10-i) / 10},
			{Version: "v2", Weight: float64(i) / 10},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.table.Set(router.Route{
		Service:  "checkout",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
		Mirrors:  []string{"v2"},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-mutation convergence", converged(p.table.Version()))

	// The registry sees all three connected, lag 0, once heartbeats land.
	waitFor(t, "registry lag settle", func() bool {
		agents := p.hub.Agents()
		if len(agents) != 3 {
			return false
		}
		for _, st := range agents {
			if !st.Connected || st.Lag != 0 || st.Stale {
				return false
			}
		}
		return true
	})
}

func TestAgentFailsStaticWhenControlPlaneDies(t *testing.T) {
	p := newPlane(t)
	if err := p.table.Set(svcRoute(0.7)); err != nil {
		t.Fatal(err)
	}
	a := p.newAgent("edge-1")
	waitFor(t, "sync", func() bool { return a.Version() == p.table.Version() })
	wantTable := a.Table().String()

	// Kill the control plane mid-lease.
	p.hub.Close()
	p.ts.CloseClientConnections()
	p.ts.Close()

	// The agent keeps serving its last snapshot: Resolve still answers
	// from the applied table even though the brain is gone.
	waitFor(t, "disconnect", func() bool { return !a.Connected() })
	if got := a.Table().String(); got != wantTable {
		t.Fatalf("table changed after partition:\n%s\nwant\n%s", got, wantTable)
	}
	for i := 0; i < 100; i++ {
		d, err := a.Table().Resolve("svc", &router.Request{UserID: fmt.Sprintf("u%d", i)})
		if err != nil {
			t.Fatalf("resolve %d failed while partitioned: %v", i, err)
		}
		if d.Version != "v1" && d.Version != "v2" {
			t.Fatalf("resolve %d: version %q", i, d.Version)
		}
	}
	// And it surfaces the staleness on its own health endpoint once the
	// lease (250ms here) expires.
	waitFor(t, "stale flag", a.Stale)
	h := a.Health()
	if !h.Stale || h.Connected || h.Version != p.table.Version() {
		t.Fatalf("health = %+v", h)
	}
}

func TestAgentReconnectsAndCatchesUp(t *testing.T) {
	p := newPlane(t)
	if err := p.table.Set(svcRoute(1)); err != nil {
		t.Fatal(err)
	}
	a := p.newAgent("edge-1")
	waitFor(t, "sync", func() bool { return a.Version() == p.table.Version() })

	// Cut the TCP connections (server stays up): the agent must
	// reconnect and converge on mutations made while it was dark.
	p.ts.CloseClientConnections()
	if err := p.table.SetWeights("svc", []router.Backend{
		{Version: "v1", Weight: 0.4}, {Version: "v2", Weight: 0.6},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reconnect convergence", func() bool {
		return a.Version() == p.table.Version() && a.Table().String() == p.table.String()
	})
}

// TestCanaryTransitionPropagates is the in-process e2e: a real Bifrost
// run enacts a canary strategy on the control plane's table, and the
// fleet converges on every phase of it — the distributed version of the
// paper's "middleware reconfigures the proxies" loop.
func TestCanaryTransitionPropagates(t *testing.T) {
	p := newPlane(t)
	if err := p.table.Set(svcRoute(1)); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 10; i++ {
		p.store.Record("response_time", metrics.Scope{Service: "svc", Version: "v1"}, now, 20)
		p.store.Record("response_time", metrics.Scope{Service: "svc", Version: "v2"}, now, 25)
	}
	agents := []*Agent{p.newAgent("a1"), p.newAgent("a2"), p.newAgent("a3")}
	waitFor(t, "initial sync", func() bool {
		for _, a := range agents {
			if a.Version() != p.table.Version() {
				return false
			}
		}
		return true
	})

	strategy, err := bifrost.ParseStrategy(canaryDSL)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "run completion", func() bool { return run.Status() != bifrost.StatusRunning })
	if run.Status() != bifrost.StatusSucceeded {
		t.Fatalf("run status = %s, events: %+v", run.Status(), run.Events())
	}

	// Promotion happened on the control plane; the whole fleet must land
	// on the same final table (candidate promoted).
	waitFor(t, "post-promotion convergence", func() bool {
		for _, a := range agents {
			if a.Version() != p.table.Version() || a.Table().String() != p.table.String() {
				return false
			}
		}
		return true
	})
	d, err := agents[0].Table().Resolve("svc", &router.Request{UserID: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != "v2" {
		t.Fatalf("post-promotion resolve = %q, want v2", d.Version)
	}
}

func TestAgentResolveEndpointAndHealth(t *testing.T) {
	p := newPlane(t)
	if err := p.table.Set(svcRoute(1)); err != nil {
		t.Fatal(err)
	}
	a := p.newAgent("edge-1")
	waitFor(t, "sync", func() bool { return a.Version() == p.table.Version() })

	as := httptest.NewServer(a.Handler())
	defer as.Close()

	resp, err := http.Get(as.URL + "/v1/resolve?service=svc&user=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rv struct {
		Version      string `json:"version"`
		TableVersion uint64 `json:"tableVersion"`
		Stale        bool   `json:"stale"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		t.Fatal(err)
	}
	if rv.Version != "v1" || rv.TableVersion != p.table.Version() || rv.Stale {
		t.Fatalf("resolve view = %+v", rv)
	}
	if a.Resolves() != 1 {
		t.Fatalf("resolves = %d", a.Resolves())
	}

	// Unknown service is a gateway error, not a counter bump.
	resp2, err := http.Get(as.URL + "/v1/resolve?service=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("unknown service status = %s", resp2.Status)
	}
	if a.Resolves() != 1 {
		t.Fatalf("resolves = %d after failed resolve", a.Resolves())
	}

	resp3, err := http.Get(as.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var h HealthView
	if err := json.NewDecoder(resp3.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ID != "edge-1" || !h.Connected || h.Stale || h.Resolves != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestAgentProxyForwards(t *testing.T) {
	p := newPlane(t)
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "v1:%s", r.URL.Path)
	}))
	defer upstream.Close()
	if err := p.table.Set(svcRoute(1)); err != nil {
		t.Fatal(err)
	}
	a := p.newAgent("edge-1")
	waitFor(t, "sync", func() bool { return a.Version() == p.table.Version() })
	if _, err := a.RegisterProxy("svc", map[string]string{"v1": upstream.URL, "v2": upstream.URL}); err != nil {
		t.Fatal(err)
	}

	as := httptest.NewServer(a.Handler())
	defer as.Close()
	resp, err := http.Get(as.URL + "/proxy/svc/items/42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "v1:/items/42" {
		t.Fatalf("proxied body = %q", body)
	}
	if a.Resolves() == 0 {
		t.Fatal("proxy path did not count resolves")
	}

	resp2, err := http.Get(as.URL + "/proxy/ghost/x")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted proxy status = %s", resp2.Status)
	}
}
