// Package agent is the edge half of the distributed data plane: a
// process that embeds a router.Table fed by the control plane's watch
// stream and serves traffic from it locally, so Resolve never leaves
// the box. It is the out-of-process twin of the per-service proxies
// the demo shop runs in-process — the deployment shape the paper's
// middleware assumes, where lightweight proxies sit next to service
// instances and the experimentation brain reconfigures them remotely.
//
// Lifecycle:
//
//   - On start the agent opens GET /v1/routing/watch against the
//     control plane, reporting the version its table already holds;
//     the stream answers with a full snapshot, or just the missing
//     deltas when the control plane still retains them.
//   - Every frame (snapshot, delta, heartbeat) renews the agent's
//     lease. Deltas that no longer chain (version skew after a missed
//     frame) drop the connection; the reconnect catches up.
//   - When the stream dies the agent FAILS STATIC: it keeps serving
//     the last-applied snapshot and reports itself stale on /healthz
//     once the lease expires — availability over freshness, the same
//     trade Envoy/xDS makes. Reconnection retries forever with capped
//     backoff.
//   - A heartbeat loop POSTs the applied version and resolve counters
//     to /v1/agents/heartbeat so the control plane's fleet registry
//     sees lag and staleness per agent.
//
// Telemetry flows the other way on the existing binary batch path: a
// wire.Client buffers locally observed samples/spans and ships them to
// the control plane's ingestion endpoints; Close flushes the tail.
package agent

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/wire"
)

// MaxFrameBytes bounds a single routing frame read from the watch
// stream (16 MiB — a snapshot of ~64k maximal routes stays well under).
const MaxFrameBytes = 16 << 20

// Config parameterizes an Agent.
type Config struct {
	// ID identifies this agent to the control plane (required).
	ID string
	// ControlPlane is the contexpd base URL (required).
	ControlPlane string
	// AdvertiseAddr is the address other processes reach this agent on,
	// reported in the fleet registry. Optional.
	AdvertiseAddr string
	// HTTPClient is used for the watch stream and heartbeats; nil uses
	// a dedicated client with no overall timeout (the watch stream is
	// long-lived by design).
	HTTPClient *http.Client
	// HeartbeatInterval is how often the agent posts its applied
	// version upstream (default 5s).
	HeartbeatInterval time.Duration
	// LeaseTTL is how long the agent trusts its snapshot without
	// hearing a frame before reporting itself stale (default 15s).
	// Staleness never stops serving — it is surfaced, not enforced.
	LeaseTTL time.Duration
	// ReconnectMin/ReconnectMax bound the watch reconnect backoff
	// (defaults 100ms / 5s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Token, when set, is sent as a bearer token on every control-plane
	// request (watch stream, heartbeats) — required against a contexpd
	// running with --auth-tokens. Optional.
	Token string
	// Telemetry, when set, receives one sample per local resolve and is
	// flushed on Close. Optional; typically a wire.Client pointed at
	// the control plane.
	Telemetry *wire.Client
	// Logf, when set, receives lifecycle messages. Optional.
	Logf func(format string, args ...any)
}

// Agent runs the edge data plane. Create with New, start with Start,
// release with Close.
type Agent struct {
	cfg   Config
	table *router.Table
	hc    *http.Client

	resolves  atomic.Uint64
	lastFrame atomic.Int64 // unix nanos of the last stream frame, 0 = never
	connected atomic.Bool
	reconns   atomic.Uint64
	skews     atomic.Uint64

	proxyMu sync.RWMutex
	proxies map[string]*router.Proxy

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New creates an Agent with an empty routing table.
func New(cfg Config) (*Agent, error) {
	if cfg.ID == "" || cfg.ControlPlane == "" {
		return nil, errors.New("agent: ID and ControlPlane are required")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Agent{
		cfg:     cfg,
		table:   router.NewTable(),
		hc:      hc,
		proxies: make(map[string]*router.Proxy),
		ctx:     ctx,
		cancel:  cancel,
	}, nil
}

// Table is the agent's local routing table (the watch stream's sink).
func (a *Agent) Table() *router.Table { return a.table }

// Start launches the watch and heartbeat loops.
func (a *Agent) Start() {
	a.wg.Add(2)
	go a.watchLoop()
	go a.heartbeatLoop()
}

// Close stops the loops, sends a final heartbeat so the registry sees
// the parting state, and flushes buffered telemetry.
func (a *Agent) Close() error {
	a.cancel()
	a.wg.Wait()
	a.proxyMu.Lock()
	for _, p := range a.proxies {
		p.Close()
	}
	clear(a.proxies)
	a.proxyMu.Unlock()
	if a.cfg.Telemetry != nil {
		return a.cfg.Telemetry.Close()
	}
	return nil
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Stale reports fail-static mode: no stream frame within the lease.
// An agent that never connected is stale by definition (it serves an
// empty table).
func (a *Agent) Stale() bool {
	last := a.lastFrame.Load()
	return last == 0 || time.Since(time.Unix(0, last)) > a.cfg.LeaseTTL
}

// Connected reports a live watch stream.
func (a *Agent) Connected() bool { return a.connected.Load() }

// Version is the snapshot version the local table has applied.
func (a *Agent) Version() uint64 { return a.table.Version() }

// Resolves is the lifetime count of local routing decisions.
func (a *Agent) Resolves() uint64 { return a.resolves.Load() }

// --- watch stream ---

func (a *Agent) watchLoop() {
	defer a.wg.Done()
	backoff := a.cfg.ReconnectMin
	for {
		err := a.watchOnce()
		a.connected.Store(false)
		if a.ctx.Err() != nil {
			return
		}
		a.reconns.Add(1)
		a.logf("watch stream ended (%v); failing static at version %d, reconnecting in %s",
			err, a.table.Version(), backoff)
		select {
		case <-a.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > a.cfg.ReconnectMax {
			backoff = a.cfg.ReconnectMax
		}
	}
}

// watchOnce runs one watch connection until it breaks, applying every
// frame to the local table.
func (a *Agent) watchOnce() error {
	u := fmt.Sprintf("%s/v1/routing/watch?agent=%s&lastApplied=%d",
		a.cfg.ControlPlane, url.QueryEscape(a.cfg.ID), a.table.Version())
	req, err := http.NewRequestWithContext(a.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if a.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.cfg.Token)
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("agent: watch returned %s", resp.Status)
	}
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var buf []byte
	sd := wire.GetSnapshotDecoder()
	defer wire.PutSnapshotDecoder(sd)
	dd := wire.GetDeltaDecoder()
	defer wire.PutDeltaDecoder(dd)
	first := true
	for {
		frame, err := wire.ReadFrame(br, buf, MaxFrameBytes)
		if err != nil {
			return err
		}
		buf = frame
		switch wire.Kind(frame) {
		case wire.KindSnapshot:
			snap, err := sd.Decode(frame)
			if err != nil {
				return err
			}
			if err := a.table.ApplySnapshot(snap); err != nil {
				return err
			}
		case wire.KindDelta:
			delta, err := dd.Decode(frame)
			if err != nil {
				return err
			}
			if err := a.table.ApplyDelta(delta); err != nil {
				if errors.Is(err, router.ErrVersionSkew) {
					// A frame was missed; reconnecting reports our real
					// version and the control plane repairs the gap with
					// a delta chain or a full snapshot.
					a.skews.Add(1)
				}
				return err
			}
		case wire.KindHeartbeat:
			if _, err := wire.DecodeHeartbeat(frame); err != nil {
				return err
			}
		default:
			return fmt.Errorf("agent: unexpected frame kind %d on watch stream", wire.Kind(frame))
		}
		a.lastFrame.Store(time.Now().UnixNano())
		a.connected.Store(true)
		if first {
			first = false
			a.logf("synced at version %d", a.table.Version())
		}
	}
}

// --- heartbeats ---

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	a.sendHeartbeat(a.ctx) // announce immediately, not one interval late
	for {
		select {
		case <-a.ctx.Done():
			// Parting heartbeat on a fresh context: a.ctx is already
			// canceled, but the registry should still see final counters.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			a.sendHeartbeat(ctx)
			cancel()
			return
		case <-ticker.C:
			a.sendHeartbeat(a.ctx)
		}
	}
}

func (a *Agent) sendHeartbeat(ctx context.Context) {
	body, err := json.Marshal(map[string]any{
		"id":       a.cfg.ID,
		"addr":     a.cfg.AdvertiseAddr,
		"version":  a.table.Version(),
		"resolves": a.resolves.Load(),
		"stale":    a.Stale(),
	})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.ControlPlane+"/v1/agents/heartbeat", strings.NewReader(string(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if a.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.cfg.Token)
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return // heartbeats are best effort; the lease surfaces the gap
	}
	_ = resp.Body.Close()
}

// --- serving ---

// RegisterProxy mounts a per-service reverse proxy (the router.Proxy
// data plane) for service, forwarding version -> baseURL as registered
// upstreams. Returns the proxy so callers can add more upstreams.
func (a *Agent) RegisterProxy(service string, upstreams map[string]string) (*router.Proxy, error) {
	p := router.NewProxy(service, a.table)
	for version, baseURL := range upstreams {
		if err := p.RegisterUpstream(version, baseURL); err != nil {
			p.Close()
			return nil, err
		}
	}
	a.proxyMu.Lock()
	if old, ok := a.proxies[service]; ok {
		old.Close()
	}
	a.proxies[service] = p
	a.proxyMu.Unlock()
	return p, nil
}

// HealthView is the agent's self-reported state, served on /healthz.
type HealthView struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	// Connected is the live-stream flag; Stale the fail-static flag.
	// A connected agent is never stale; a disconnected one serves its
	// last snapshot and turns stale when the lease runs out.
	Connected bool `json:"connected"`
	Stale     bool `json:"stale"`
	// LastFrameAgo is how long ago the last routing frame arrived
	// (empty before the first frame).
	LastFrameAgo string   `json:"lastFrameAgo,omitempty"`
	Resolves     uint64   `json:"resolves"`
	Reconnects   uint64   `json:"reconnects"`
	VersionSkews uint64   `json:"versionSkews"`
	Services     []string `json:"services"`
}

// Health snapshots the agent's state.
func (a *Agent) Health() HealthView {
	v := HealthView{
		ID:           a.cfg.ID,
		Version:      a.table.Version(),
		Connected:    a.connected.Load(),
		Stale:        a.Stale(),
		Resolves:     a.resolves.Load(),
		Reconnects:   a.reconns.Load(),
		VersionSkews: a.skews.Load(),
		Services:     a.table.Services(),
	}
	if last := a.lastFrame.Load(); last != 0 {
		v.LastFrameAgo = time.Since(time.Unix(0, last)).Round(time.Millisecond).String()
	}
	return v
}

// Handler serves the agent's local API:
//
//	GET /healthz             agent health (version, staleness, counters)
//	GET /v1/resolve          resolve a routing decision from the local table
//	ANY /proxy/{service}/... forward through the mounted router.Proxy
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealth)
	mux.HandleFunc("GET /v1/resolve", a.handleResolve)
	mux.HandleFunc("/proxy/{service}/{rest...}", a.handleProxy)
	return mux
}

func (a *Agent) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.Health())
}

// handleResolve answers one routing decision from the local snapshot —
// the RPC shape sidecar-less clients use, and what fleet-bench drives.
// Each resolve is counted and (when telemetry is wired) sampled
// upstream, so the control plane sees edge traffic without sitting on
// the request path.
func (a *Agent) handleResolve(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	if service == "" {
		http.Error(w, `{"error":"service query parameter is required"}`, http.StatusBadRequest)
		return
	}
	req := &router.Request{UserID: r.URL.Query().Get("user")}
	if groups := r.URL.Query().Get("groups"); groups != "" {
		for _, g := range strings.Split(groups, ",") {
			if g = strings.TrimSpace(g); g != "" {
				req.Groups = append(req.Groups, expmodel.UserGroup(g))
			}
		}
	}
	decision, err := a.table.Resolve(service, req)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadGateway)
		return
	}
	a.resolves.Add(1)
	if a.cfg.Telemetry != nil {
		a.cfg.Telemetry.RecordMetric(metrics.Sample{
			Metric: "edge_resolves",
			Scope:  metrics.Scope{Service: service, Version: decision.Version},
			Value:  1,
			At:     time.Now(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"service":      service,
		"version":      decision.Version,
		"rule":         decision.Rule,
		"mirrors":      decision.Mirrors,
		"tableVersion": a.table.Version(),
		"stale":        a.Stale(),
	})
}

// handleProxy forwards through the per-service router.Proxy, counting
// the resolve the proxy performs.
func (a *Agent) handleProxy(w http.ResponseWriter, r *http.Request) {
	service := r.PathValue("service")
	a.proxyMu.RLock()
	p := a.proxies[service]
	a.proxyMu.RUnlock()
	if p == nil {
		http.Error(w, fmt.Sprintf(`{"error":"no proxy mounted for service %q"}`, service),
			http.StatusNotFound)
		return
	}
	// Strip the /proxy/{service} prefix so upstreams see clean paths.
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + r.PathValue("rest")
	a.resolves.Add(1)
	p.ServeHTTP(w, r2)
}
