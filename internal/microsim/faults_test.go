package microsim

import (
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

var faultEpoch = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

// faultApp is a two-tier app: front calls back on every request, with
// tight latency distributions and no intrinsic errors.
func faultApp(t *testing.T) *Application {
	t.Helper()
	app := NewApplication("front", "GET /")
	app.AddService("front", "v1").
		Endpoint("GET /", 10, 12).
		Calls("back", "GET /data")
	app.AddService("back", "v1").
		Endpoint("GET /data", 20, 24)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

func faultSim(t *testing.T, app *Application, in *Injector) (*Sim, *metrics.Store) {
	t.Helper()
	table := router.NewTable()
	if err := InstallBaselineRoutes(app, table); err != nil {
		t.Fatal(err)
	}
	store := metrics.NewStore(0)
	sim := NewSim(app, table, tracing.NewCollector(), store, 1)
	sim.SetFaults(in)
	return sim, store
}

func execAt(t *testing.T, sim *Sim, at time.Time) Result {
	t.Helper()
	res, err := sim.Execute(&router.Request{UserID: "u1"}, at)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// meanDuration averages n requests issued in a tight burst around `at`
// (spaced 50ms so the whole burst stays inside one fault regime).
func meanDuration(t *testing.T, sim *Sim, at time.Time, n int) (time.Duration, int) {
	t.Helper()
	var total time.Duration
	failures := 0
	for i := 0; i < n; i++ {
		res := execAt(t, sim, at.Add(time.Duration(i)*50*time.Millisecond))
		total += res.Duration
		if res.Err {
			failures++
		}
	}
	return total / time.Duration(n), failures
}

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"valid spike", Fault{Kind: FaultLatencySpike, Service: "s", Duration: time.Second, LatencyFactor: 2}, true},
		{"no service", Fault{Kind: FaultLatencySpike, Duration: time.Second, LatencyFactor: 2}, false},
		{"no duration", Fault{Kind: FaultBlackout, Service: "s"}, false},
		{"bad probability", Fault{Kind: FaultBlackout, Service: "s", Duration: time.Second, Probability: 1.5}, false},
		{"spike without effect", Fault{Kind: FaultLatencySpike, Service: "s", Duration: time.Second}, false},
		{"storm without rate", Fault{Kind: FaultErrorStorm, Service: "s", Duration: time.Second}, false},
		{"valid storm", Fault{Kind: FaultErrorStorm, Service: "s", Duration: time.Second, ErrorRate: 0.5}, true},
		{"restart without downtime", Fault{Kind: FaultSlowRestart, Service: "s", Duration: time.Second}, false},
		{"restart downtime too long", Fault{Kind: FaultSlowRestart, Service: "s", Duration: time.Second, RestartDowntime: 2 * time.Second}, false},
		{"valid restart", Fault{Kind: FaultSlowRestart, Service: "s", Duration: 10 * time.Second, RestartDowntime: 2 * time.Second}, true},
		{"unknown kind", Fault{Service: "s", Duration: time.Second}, false},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFaultKindRoundTrip(t *testing.T) {
	for _, k := range []FaultKind{FaultLatencySpike, FaultErrorStorm, FaultBlackout, FaultSlowRestart} {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseFaultKind("meteor-strike"); err == nil {
		t.Error("unknown kind should fail to parse")
	}
}

func TestLatencySpikeWindow(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{{
		Kind: FaultLatencySpike, Service: "back",
		Start: 10 * time.Second, Duration: 10 * time.Second, LatencyFactor: 5,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := faultSim(t, faultApp(t), in)

	// Mean end-to-end latency is ~30ms unfaulted and ~110ms while back's
	// 20ms is scaled 5x; a 2x separation is far outside lognormal jitter
	// over 20 samples.
	before, failB := meanDuration(t, sim, faultEpoch, 20)
	during, failD := meanDuration(t, sim, faultEpoch.Add(15*time.Second), 20)
	after, failA := meanDuration(t, sim, faultEpoch.Add(25*time.Second), 20)
	if during < 2*before {
		t.Errorf("spike window did not slow requests: before=%v during=%v", before, during)
	}
	if after > during/2 {
		t.Errorf("spike did not end: during=%v after=%v", during, after)
	}
	if failB+failD+failA != 0 {
		t.Error("latency spike should not fail requests")
	}
}

func TestErrorStormForcedFailures(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{{
		Kind: FaultErrorStorm, Service: "back",
		Start: 0, Duration: time.Minute, ErrorRate: 1,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, store := faultSim(t, faultApp(t), in)
	at := faultEpoch
	for i := 0; i < 20; i++ {
		res := execAt(t, sim, at)
		if !res.Err {
			t.Fatalf("request %d survived a 100%% error storm", i)
		}
		at = at.Add(time.Second)
	}
	// The storm surfaces in the error metric of the faulted service.
	n, err := store.Query(MetricErrors, metrics.Scope{Service: "back", Version: "v1"},
		faultEpoch.Add(-time.Second), metrics.AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("error count = %v, want 20", n)
	}
}

func TestBlackoutGoesDarkDownstream(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{{
		Kind: FaultBlackout, Service: "front",
		Start: 0, Duration: time.Minute,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, store := faultSim(t, faultApp(t), in)
	res := execAt(t, sim, faultEpoch)
	if !res.Err {
		t.Error("blacked-out entry service should fail the request")
	}
	if res.Duration > 5*time.Millisecond {
		t.Errorf("blackout should fail fast, took %v", res.Duration)
	}
	// Downstream went dark: back never saw the request.
	if _, err := store.Query(MetricRequests, metrics.Scope{Service: "back", Version: "v1"},
		faultEpoch.Add(-time.Second), metrics.AggCount); err == nil {
		t.Error("downstream service should have seen no traffic during entry blackout")
	}
}

func TestPartialBlackoutProbability(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{{
		Kind: FaultBlackout, Service: "back",
		Start: 0, Duration: time.Hour, Probability: 0.5,
	}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := faultSim(t, faultApp(t), in)
	failures := 0
	at := faultEpoch
	for i := 0; i < 400; i++ {
		if execAt(t, sim, at).Err {
			failures++
		}
		at = at.Add(time.Second)
	}
	if failures < 140 || failures > 260 {
		t.Errorf("partial blackout failed %d/400, want ≈ 200", failures)
	}
}

func TestSlowRestartPhases(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{{
		Kind: FaultSlowRestart, Service: "back",
		Start: 0, Duration: 60 * time.Second, RestartDowntime: 10 * time.Second, LatencyFactor: 4,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := faultSim(t, faultApp(t), in)

	down := execAt(t, sim, faultEpoch.Add(5*time.Second))
	if !down.Err {
		t.Error("request during restart downtime should fail")
	}
	// Factor decays from 4x right after downtime towards 1x at window
	// end: warm-up latency (~87ms mean) clearly exceeds both the late
	// window (~31ms) and the post-window baseline (~30ms).
	warming, failW := meanDuration(t, sim, faultEpoch.Add(11*time.Second), 20)
	recovered, failR := meanDuration(t, sim, faultEpoch.Add(58*time.Second), 20)
	healthy, failH := meanDuration(t, sim, faultEpoch.Add(2*time.Minute), 20)
	if failW+failR+failH != 0 {
		t.Error("post-downtime requests should succeed")
	}
	if warming < 2*healthy {
		t.Errorf("cold caches should be slow: warming=%v healthy=%v", warming, healthy)
	}
	if recovered > warming/2 {
		t.Errorf("cold-cache latency should decay: warming=%v recovered=%v", warming, recovered)
	}
}

func TestInjectorSnapshot(t *testing.T) {
	in, err := NewInjector(faultEpoch, []Fault{
		{Kind: FaultLatencySpike, Service: "front", Start: time.Hour, Duration: time.Minute, LatencyFactor: 2},
		{Kind: FaultErrorStorm, Service: "back", Version: "v1", Start: 0, Duration: time.Minute, ErrorRate: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := faultSim(t, faultApp(t), in)
	execAt(t, sim, faultEpoch.Add(10*time.Second))

	snap := in.Snapshot(faultEpoch.Add(10 * time.Second))
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	// Active faults sort first.
	if !snap[0].Active || snap[0].Kind != "error-storm" {
		t.Errorf("first entry should be the active storm, got %+v", snap[0])
	}
	if snap[0].Target != "back@v1" {
		t.Errorf("storm target = %q", snap[0].Target)
	}
	if snap[0].Applied == 0 {
		t.Error("active storm should have applied to at least one call")
	}
	if snap[1].Active {
		t.Errorf("future spike should be inactive, got %+v", snap[1])
	}
	if got := in.ActiveFaults(faultEpoch.Add(10 * time.Second)); got != 1 {
		t.Errorf("ActiveFaults = %d, want 1", got)
	}
}
