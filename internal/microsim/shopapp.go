package microsim

// ShopApplication builds the microservice-based case-study application
// used throughout the evaluations, mirroring the structure of the
// paper's Fig 4.5 and the AB Inc motivating example: customer-facing
// frontend services (landing page, product catalog, search) and
// business-related services (accounting/payment, shipping), plus the
// recommendation service whose release drives the running example.
//
// Latency means are in the 3–25 ms range per endpoint, matching the
// tens-of-milliseconds service times of the paper's testbed.
//
// Two versions of the recommendation service exist:
//
//	v1 — the stable baseline (simple popularity-based suggestions)
//	v2 — the experimental personalized recommender: slightly slower,
//	     calls the new user-history endpoint of the users service
//
// Version selection is left to the routing table, so experiments decide
// who sees v2.
func ShopApplication() (*Application, error) {
	app := NewApplication("frontend", "GET /")

	fe := app.AddService("frontend", "v1").
		Endpoint("GET /", 8, 20).
		Calls("catalog", "GET /products").
		Calls("recommendation", "GET /recommendations").
		Endpoint("GET /search", 6, 15).
		Calls("search", "GET /query").
		Endpoint("POST /checkout", 10, 25).
		Calls("cart", "GET /cart").
		Calls("checkout", "POST /order")
	if err := fe.Err(); err != nil {
		return nil, err
	}

	cat := app.AddService("catalog", "v1").
		Endpoint("GET /products", 12, 30).
		Calls("inventory", "GET /stock").
		Endpoint("GET /product", 9, 22).
		Calls("inventory", "GET /stock")
	if err := cat.Err(); err != nil {
		return nil, err
	}

	search := app.AddService("search", "v1").
		Endpoint("GET /query", 18, 45).
		Calls("catalog", "GET /product")
	if err := search.Err(); err != nil {
		return nil, err
	}

	rec1 := app.AddService("recommendation", "v1").
		Endpoint("GET /recommendations", 10, 26).
		Calls("catalog", "GET /product")
	if err := rec1.Err(); err != nil {
		return nil, err
	}

	// The experimental personalized recommender: ~30% slower and with a
	// new dependency on the users service's history endpoint.
	rec2 := app.AddService("recommendation", "v2").
		Endpoint("GET /recommendations", 13, 34).
		Calls("catalog", "GET /product").
		Calls("users", "GET /history")
	if err := rec2.Err(); err != nil {
		return nil, err
	}

	inv := app.AddService("inventory", "v1").
		Endpoint("GET /stock", 5, 12)
	if err := inv.Err(); err != nil {
		return nil, err
	}

	cart := app.AddService("cart", "v1").
		Endpoint("GET /cart", 6, 14).
		Endpoint("POST /add", 7, 16)
	if err := cart.Err(); err != nil {
		return nil, err
	}

	co := app.AddService("checkout", "v1").
		Endpoint("POST /order", 15, 38).
		Calls("payment", "POST /charge").
		Calls("shipping", "POST /dispatch")
	if err := co.Err(); err != nil {
		return nil, err
	}

	pay := app.AddService("payment", "v1").
		Endpoint("POST /charge", 20, 50).
		ErrorRate(0.002)
	if err := pay.Err(); err != nil {
		return nil, err
	}

	ship := app.AddService("shipping", "v1").
		Endpoint("POST /dispatch", 11, 28)
	if err := ship.Err(); err != nil {
		return nil, err
	}

	users := app.AddService("users", "v1").
		Endpoint("GET /profile", 4, 10).
		Endpoint("GET /history", 8, 20)
	if err := users.Err(); err != nil {
		return nil, err
	}

	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}
