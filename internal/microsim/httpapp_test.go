package microsim

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
)

func startHTTPApp(t *testing.T, app *Application) (*HTTPApplication, *router.Table, *metrics.Store) {
	t.Helper()
	table := router.NewTable()
	if err := InstallBaselineRoutes(app, table); err != nil {
		t.Fatal(err)
	}
	store := metrics.NewStore(0)
	h, err := StartHTTP(app, table, store, HTTPConfig{LatencyScale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h, table, store
}

func get(t *testing.T, url, user string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-User-ID", user)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestHTTPAppEndToEnd(t *testing.T) {
	app := NewApplication("front", "GET /")
	if err := app.AddService("front", "v1").
		Endpoint("GET /", 4, 10).
		Calls("back", "GET /data").Err(); err != nil {
		t.Fatal(err)
	}
	if err := app.AddService("back", "v1").
		Endpoint("GET /data", 2, 5).Err(); err != nil {
		t.Fatal(err)
	}
	h, _, store := startHTTPApp(t, app)

	status, body := get(t, h.EntryURL(), "alice")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %q", status, body)
	}
	if !strings.Contains(body, "front@v1") {
		t.Errorf("body = %q", body)
	}
	// Both services saw traffic and reported telemetry.
	for _, svc := range []string{"front", "back"} {
		scope := metrics.Scope{Service: svc, Version: "v1"}
		n, err := store.Query(MetricRequests, scope, time.Time{}, metrics.AggCount)
		if err != nil || n != 1 {
			t.Errorf("%s requests = %v, %v", svc, n, err)
		}
	}
}

func TestHTTPAppRoutingShift(t *testing.T) {
	app := NewApplication("front", "GET /")
	if err := app.AddService("front", "v1").
		Endpoint("GET /", 3, 8).
		Calls("back", "GET /data").Err(); err != nil {
		t.Fatal(err)
	}
	_ = app.AddService("back", "v1").Endpoint("GET /data", 2, 5)
	_ = app.AddService("back", "v2").Endpoint("GET /data", 2, 5)
	h, table, store := startHTTPApp(t, app)

	// Shift all back traffic to v2 at runtime; subsequent requests land
	// on the new version.
	if err := table.SetWeights("back", []router.Backend{{Version: "v2", Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		status, _ := get(t, h.EntryURL(), fmt.Sprintf("user-%d", i))
		if status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
	}
	scopeV2 := metrics.Scope{Service: "back", Version: "v2"}
	n, err := store.Query(MetricRequests, scopeV2, time.Time{}, metrics.AggCount)
	if err != nil || n != 5 {
		t.Errorf("back v2 requests = %v, %v", n, err)
	}
}

func TestHTTPAppErrorInjection(t *testing.T) {
	app := NewApplication("front", "GET /")
	if err := app.AddService("front", "v1").
		Endpoint("GET /", 1, 3).ErrorRate(1).Err(); err != nil {
		t.Fatal(err)
	}
	h, _, store := startHTTPApp(t, app)
	status, _ := get(t, h.EntryURL(), "u")
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	scope := metrics.Scope{Service: "front", Version: "v1"}
	n, err := store.Query(MetricErrors, scope, time.Time{}, metrics.AggCount)
	if err != nil || n != 1 {
		t.Errorf("errors = %v, %v", n, err)
	}
}

func TestHTTPAppDownstreamFailurePropagates(t *testing.T) {
	app := NewApplication("front", "GET /")
	_ = app.AddService("front", "v1").
		Endpoint("GET /", 1, 3).
		Calls("back", "GET /data")
	_ = app.AddService("back", "v1").
		Endpoint("GET /data", 1, 3).ErrorRate(1)
	h, _, _ := startHTTPApp(t, app)
	status, _ := get(t, h.EntryURL(), "u")
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (downstream failure)", status)
	}
}

func TestHTTPAppUnknownPath(t *testing.T) {
	app := NewApplication("front", "GET /")
	_ = app.AddService("front", "v1").Endpoint("GET /", 1, 3)
	h, _, _ := startHTTPApp(t, app)
	status, _ := get(t, h.ServiceURL("front")+"/nope", "u")
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", status)
	}
}

func TestSplitEndpoint(t *testing.T) {
	tests := []struct {
		in, method, path string
	}{
		{"GET /products", "GET", "/products"},
		{"POST /order", "POST", "/order"},
		{"QUERY products", "QUERY", "/products"},
		{"/bare", "GET", "/bare"},
	}
	for _, tt := range tests {
		m, p := splitEndpoint(tt.in)
		if m != tt.method || p != tt.path {
			t.Errorf("splitEndpoint(%q) = %q %q", tt.in, m, p)
		}
	}
}

func TestHTTPAppInvalidApplication(t *testing.T) {
	app := NewApplication("ghost", "GET /")
	if _, err := StartHTTP(app, router.NewTable(), nil, HTTPConfig{}); err == nil {
		t.Error("invalid application should fail to start")
	}
}

func TestHTTPShopApplication(t *testing.T) {
	app, err := ShopApplication()
	if err != nil {
		t.Fatal(err)
	}
	h, _, store := startHTTPApp(t, app)
	for i := 0; i < 10; i++ {
		status, _ := get(t, h.EntryURL(), fmt.Sprintf("u%d", i))
		if status != http.StatusOK && status != http.StatusInternalServerError {
			t.Fatalf("status = %d", status)
		}
	}
	// The whole call tree reported telemetry.
	scope := metrics.Scope{Service: "catalog", Version: "v1"}
	if _, err := store.Query(MetricResponseTime, scope, time.Time{}, metrics.AggMean); err != nil {
		t.Errorf("catalog telemetry missing: %v", err)
	}
}
