package microsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

// Sim executes user requests against an Application in-process. Version
// selection is delegated to a router.Table, exactly as in the real
// deployment: the simulation sees the same routing decisions Bifrost
// makes, which is what lets the evaluation harnesses exercise the full
// planning→execution→analysis loop without a cloud testbed.
//
// Sim is safe for concurrent use.
type Sim struct {
	app    *Application
	table  *router.Table
	traces *tracing.Collector
	live   *tracing.LiveCollector
	store  *metrics.Store
	faults *Injector

	mu  sync.Mutex
	rng *rand.Rand
}

// MetricResponseTime is the response-time metric name recorded per span
// (milliseconds).
const MetricResponseTime = "response_time"

// MetricErrors is the error-count metric name (1 per failed call).
const MetricErrors = "errors"

// MetricRequests is the request-count metric name (1 per call).
const MetricRequests = "requests"

// NewSim wires an application to a routing table, trace collector, and
// metric store. Collector and store may be nil if unneeded.
func NewSim(app *Application, table *router.Table, traces *tracing.Collector, store *metrics.Store, seed int64) *Sim {
	return &Sim{
		app:    app,
		table:  table,
		traces: traces,
		store:  store,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SetFaults installs a fault injector consulted on every invocation
// (nil disables injection). Install before issuing traffic.
func (s *Sim) SetFaults(in *Injector) { s.faults = in }

// SetLiveTraces mirrors finished spans into a data-plane LiveCollector
// in addition to the analysis-time Collector, so virtual-time scenario
// runs can drive the live topology pipeline (harvest → graphs →
// health verdicts) without real services.
func (s *Sim) SetLiveTraces(lc *tracing.LiveCollector) { s.live = lc }

// Result summarizes one simulated end-user request.
type Result struct {
	Duration time.Duration
	Err      bool
	Variant  tracing.Variant
	TraceID  tracing.TraceID
}

// Execute simulates one user request arriving at the application entry
// point at the given instant.
func (s *Sim) Execute(req *router.Request, at time.Time) (Result, error) {
	var tid tracing.TraceID
	switch {
	case s.traces != nil:
		tid = s.traces.NextTraceID()
	case s.live != nil:
		tid = s.live.NextTraceID()
	}
	ex := &execution{sim: s, at: at, traceID: tid}
	dur, failed, err := ex.call(s.app.EntryService, s.app.EntryEndpoint, req, at, 0, 0)
	if err != nil {
		return Result{}, err
	}
	variant := tracing.VariantBaseline
	if ex.experimental {
		variant = tracing.VariantExperiment
	}
	for i := range ex.spans {
		ex.spans[i].Variant = variant
		if s.traces != nil {
			s.traces.Record(ex.spans[i])
		}
		if s.live != nil {
			s.live.Record(ex.spans[i])
		}
	}
	return Result{Duration: dur, Err: failed, Variant: variant, TraceID: tid}, nil
}

// execution tracks the state of one simulated request tree.
type execution struct {
	sim          *Sim
	at           time.Time
	traceID      tracing.TraceID
	spans        []tracing.Span
	experimental bool
	nextSpan     tracing.SpanID
	depth        int
}

// maxCallDepth guards against accidental topology cycles.
const maxCallDepth = 64

// failFastLatency is the service time of a call rejected by a blackout:
// the connection is refused almost immediately.
const failFastLatency = time.Millisecond

func (e *execution) call(service, endpoint string, req *router.Request, at time.Time, parent tracing.SpanID, depth int) (time.Duration, bool, error) {
	if depth > maxCallDepth {
		return 0, false, fmt.Errorf("microsim: call depth exceeds %d (topology cycle?)", maxCallDepth)
	}
	decision, err := e.sim.table.Resolve(service, req)
	if err != nil {
		return 0, false, err
	}
	if decision.Version != e.sim.app.Baseline(service) {
		e.experimental = true
	}
	dur, failed, err := e.invoke(service, decision.Version, endpoint, req, at, parent, depth, false)
	if err != nil {
		return 0, false, err
	}
	// Dark-launch mirrors execute the same request against the mirror
	// version. They do not contribute to the caller-visible duration
	// (asynchronous duplication) but they do generate spans and load —
	// the cascading-load effect Section 4.5 highlights.
	for _, m := range decision.Mirrors {
		if _, _, err := e.invoke(service, m, endpoint, req, at, parent, depth, true); err != nil {
			return 0, false, err
		}
	}
	return dur, failed, nil
}

// invoke runs one endpoint of a concrete service version.
func (e *execution) invoke(service, version, endpoint string, req *router.Request, at time.Time, parent tracing.SpanID, depth int, dark bool) (time.Duration, bool, error) {
	sv, err := e.sim.app.Lookup(service, version)
	if err != nil {
		return 0, false, err
	}
	ep := sv.Endpoints[endpoint]
	if ep == nil {
		return 0, false, fmt.Errorf("microsim: %s@%s has no endpoint %q", service, version, endpoint)
	}

	e.sim.mu.Lock()
	own := latencySample(ep, e.sim.rng)
	failed := e.sim.rng.Float64() < ep.ErrorRate
	gates := make([]bool, len(ep.Calls))
	for i, c := range ep.Calls {
		gates[i] = c.Probability >= 1 || e.sim.rng.Float64() < c.Probability
	}
	e.nextSpan++
	spanID := e.nextSpan
	e.sim.mu.Unlock()

	// Injected faults distort the sampled behavior before downstream
	// calls fan out; a blackout fails fast and goes dark downstream.
	var unavailable bool
	if e.sim.faults != nil {
		p := e.sim.faults.Apply(service, version, endpoint, at)
		if p.Unavailable {
			unavailable = true
			failed = true
			own = failFastLatency
		} else {
			if p.LatencyFactor > 0 && p.LatencyFactor != 1 {
				own = time.Duration(float64(own) * p.LatencyFactor)
			}
			own += p.ExtraLatency
			if p.ForceError {
				failed = true
			}
		}
	}

	total := own
	childAt := at.Add(own)
	if !unavailable {
		for i, c := range ep.Calls {
			if !gates[i] {
				continue
			}
			cdur, cfailed, err := e.call(c.Service, c.Endpoint, req, childAt, spanID, depth+1)
			if err != nil {
				return 0, false, err
			}
			total += cdur
			childAt = childAt.Add(cdur)
			if cfailed {
				failed = true
			}
		}
	}

	variantTag := ""
	if dark {
		variantTag = "dark"
	}
	scope := metrics.Scope{Service: service, Version: version, Variant: variantTag}
	if e.sim.store != nil {
		// One batched write per invocation: the store acquires each
		// series lock once instead of once per metric.
		ms := float64(total) / float64(time.Millisecond)
		batch := [3]metrics.Sample{
			{Metric: MetricResponseTime, Scope: scope, At: at, Value: ms},
			{Metric: MetricRequests, Scope: scope, At: at, Value: 1},
			{Metric: MetricErrors, Scope: scope, At: at, Value: 1},
		}
		n := 2
		if failed {
			n = 3
		}
		e.sim.store.RecordBatch(batch[:n])
	}
	if !dark {
		// Dark spans are excluded from traces: the tracing backend only
		// sees user-visible interactions, mirroring how shadow traffic
		// is filtered out of trace-based analyses.
		e.spans = append(e.spans, tracing.Span{
			TraceID:  e.traceID,
			SpanID:   spanID,
			ParentID: parent,
			Service:  service,
			Version:  version,
			Endpoint: endpoint,
			Start:    at,
			Duration: total,
			Err:      failed,
		})
	}
	return total, failed, nil
}

// InstallBaselineRoutes populates the routing table with a 100%-to-
// baseline route for every service of the application. Experiments then
// adjust individual services.
func InstallBaselineRoutes(app *Application, table *router.Table) error {
	for _, svc := range app.Services() {
		base := app.Baseline(svc)
		if err := table.Set(router.Route{
			Service:  svc,
			Backends: []router.Backend{{Version: base, Weight: 1}},
		}); err != nil {
			return err
		}
	}
	return nil
}
