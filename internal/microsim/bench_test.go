package microsim

import (
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

func BenchmarkSimExecuteShop(b *testing.B) {
	app, err := ShopApplication()
	if err != nil {
		b.Fatal(err)
	}
	tbl := router.NewTable()
	if err := InstallBaselineRoutes(app, tbl); err != nil {
		b.Fatal(err)
	}
	sim := NewSim(app, tbl, tracing.NewCollector(), metrics.NewStore(4096), 1)
	req := &router.Request{UserID: "user-1"}
	at := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(req, at); err != nil {
			b.Fatal(err)
		}
	}
}
