package microsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fault injection: scheduled, probabilistic perturbations of service
// behavior, the chaos half of the scenario engine. A Fault describes
// one perturbation window (what, where, when, how hard); an Injector
// holds a schedule of faults plus a seeded RNG and answers, per
// simulated call, "what happens to this invocation right now". The
// per-request probability gate follows the drop/block machinery of the
// bringyour client simulator: a fault need not be total — a blackout
// with Probability 0.5 is a partial outage.
//
// Both the in-process Sim and the HTTP backends consult the same
// Injector, so a scenario runs identically on either substrate.

// FaultKind enumerates the supported perturbations.
type FaultKind int

const (
	// FaultLatencySpike multiplies (and/or pads) the endpoint's own
	// service time.
	FaultLatencySpike FaultKind = iota + 1
	// FaultErrorStorm forces application failures at ErrorRate.
	FaultErrorStorm
	// FaultBlackout makes the target unavailable: calls fail fast and
	// downstream calls are skipped (dependencies go dark).
	FaultBlackout
	// FaultSlowRestart models a rolling restart: hard downtime for
	// RestartDowntime, then degraded latency decaying linearly back to
	// normal over the rest of the window (cold caches warming up).
	FaultSlowRestart
)

// String returns the config-file name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLatencySpike:
		return "latency-spike"
	case FaultErrorStorm:
		return "error-storm"
	case FaultBlackout:
		return "blackout"
	case FaultSlowRestart:
		return "slow-restart"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// ParseFaultKind is the inverse of String.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "latency-spike":
		return FaultLatencySpike, nil
	case "error-storm":
		return FaultErrorStorm, nil
	case "blackout":
		return FaultBlackout, nil
	case "slow-restart":
		return FaultSlowRestart, nil
	default:
		return 0, fmt.Errorf("microsim: unknown fault kind %q (want latency-spike, error-storm, blackout, or slow-restart)", s)
	}
}

// Fault is one scheduled perturbation. Zero-value selectors widen the
// blast radius: an empty Version hits every version of the service, an
// empty Endpoint every endpoint.
type Fault struct {
	Kind FaultKind
	// Service is the target service (required).
	Service string
	// Version narrows the fault to one version ("" = all versions).
	// Targeting the candidate version models a bad release; leaving it
	// empty models ambient infrastructure trouble.
	Version string
	// Endpoint narrows the fault to one endpoint name ("" = all).
	Endpoint string
	// Start and Duration place the fault window relative to the
	// injector epoch: the fault is live in [Start, Start+Duration).
	Start    time.Duration
	Duration time.Duration
	// Probability gates each matching call independently; 0 or >= 1
	// means the fault applies to every call in the window. Values in
	// (0,1) produce partial outages.
	Probability float64
	// LatencyFactor scales the endpoint's own service time
	// (latency-spike, slow-restart recovery peak). 0 means unchanged.
	LatencyFactor float64
	// ExtraLatency is added on top of the scaled service time.
	ExtraLatency time.Duration
	// ErrorRate is the forced failure probability during an
	// error-storm.
	ErrorRate float64
	// RestartDowntime is the hard-down prefix of a slow-restart window.
	RestartDowntime time.Duration
}

// Validate checks the fault for structural problems.
func (f *Fault) Validate() error {
	if f.Service == "" {
		return fmt.Errorf("microsim: fault %s has no target service", f.Kind)
	}
	if f.Duration <= 0 {
		return fmt.Errorf("microsim: fault %s on %s has non-positive duration %v", f.Kind, f.Service, f.Duration)
	}
	if f.Start < 0 {
		return fmt.Errorf("microsim: fault %s on %s starts before the epoch (%v)", f.Kind, f.Service, f.Start)
	}
	if f.Probability < 0 || f.Probability > 1 {
		return fmt.Errorf("microsim: fault %s on %s has probability %v outside [0,1]", f.Kind, f.Service, f.Probability)
	}
	switch f.Kind {
	case FaultLatencySpike:
		if f.LatencyFactor <= 0 && f.ExtraLatency <= 0 {
			return fmt.Errorf("microsim: latency-spike on %s needs a latency factor or extra latency", f.Service)
		}
		if f.LatencyFactor < 0 {
			return fmt.Errorf("microsim: latency-spike on %s has negative factor", f.Service)
		}
	case FaultErrorStorm:
		if f.ErrorRate <= 0 || f.ErrorRate > 1 {
			return fmt.Errorf("microsim: error-storm on %s has error rate %v outside (0,1]", f.Service, f.ErrorRate)
		}
	case FaultBlackout:
		// Window and probability are the whole story.
	case FaultSlowRestart:
		if f.RestartDowntime <= 0 {
			return fmt.Errorf("microsim: slow-restart on %s needs a restart downtime", f.Service)
		}
		if f.RestartDowntime > f.Duration {
			return fmt.Errorf("microsim: slow-restart on %s: downtime %v exceeds window %v", f.Service, f.RestartDowntime, f.Duration)
		}
		if f.LatencyFactor < 0 {
			return fmt.Errorf("microsim: slow-restart on %s has negative factor", f.Service)
		}
	default:
		return fmt.Errorf("microsim: fault on %s has unknown kind %d", f.Service, int(f.Kind))
	}
	return nil
}

// activeAt reports whether elapsed falls inside the fault window.
func (f *Fault) activeAt(elapsed time.Duration) bool {
	return elapsed >= f.Start && elapsed < f.Start+f.Duration
}

// matches reports whether the fault targets the given invocation.
func (f *Fault) matches(service, version, endpoint string) bool {
	if f.Service != service {
		return false
	}
	if f.Version != "" && f.Version != version {
		return false
	}
	if f.Endpoint != "" && f.Endpoint != endpoint {
		return false
	}
	return true
}

// Target renders the fault selector for logs and health reports.
func (f *Fault) Target() string {
	var b strings.Builder
	b.WriteString(f.Service)
	if f.Version != "" {
		b.WriteString("@")
		b.WriteString(f.Version)
	}
	if f.Endpoint != "" {
		b.WriteString(" ")
		b.WriteString(f.Endpoint)
	}
	return b.String()
}

// Perturbation is the per-call verdict of the injector: how one
// invocation is to be distorted.
type Perturbation struct {
	// LatencyFactor scales the endpoint's own sampled service time
	// (1 = unchanged).
	LatencyFactor float64
	// ExtraLatency is added after scaling.
	ExtraLatency time.Duration
	// ForceError marks the call failed even though the endpoint's own
	// error draw passed.
	ForceError bool
	// Unavailable fails the call fast and suppresses downstream calls.
	Unavailable bool
}

// None reports whether the perturbation leaves the call untouched.
func (p Perturbation) None() bool {
	return p.LatencyFactor == 1 && p.ExtraLatency == 0 && !p.ForceError && !p.Unavailable
}

// Injector evaluates a fault schedule against individual invocations.
// It is safe for concurrent use; with a fixed seed and a deterministic
// call order the perturbation stream is reproducible.
type Injector struct {
	epoch  time.Time
	faults []Fault

	mu      sync.Mutex
	rng     *rand.Rand
	applied []uint64 // per-fault count of perturbed calls
}

// NewInjector validates the schedule and builds an injector whose fault
// windows are relative to epoch.
func NewInjector(epoch time.Time, faults []Fault, seed int64) (*Injector, error) {
	for i := range faults {
		if err := faults[i].Validate(); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
	}
	in := &Injector{
		epoch:   epoch,
		faults:  append([]Fault(nil), faults...),
		rng:     rand.New(rand.NewSource(seed)),
		applied: make([]uint64, len(faults)),
	}
	return in, nil
}

// Epoch returns the schedule's zero instant.
func (in *Injector) Epoch() time.Time { return in.epoch }

// Apply evaluates every fault matching the invocation at instant `at`
// and folds them into one Perturbation (factors multiply, pads add,
// errors and blackouts accumulate with OR).
func (in *Injector) Apply(service, version, endpoint string, at time.Time) Perturbation {
	p := Perturbation{LatencyFactor: 1}
	if in == nil || len(in.faults) == 0 {
		return p
	}
	elapsed := at.Sub(in.epoch)

	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.faults {
		f := &in.faults[i]
		if !f.activeAt(elapsed) || !f.matches(service, version, endpoint) {
			continue
		}
		if f.Probability > 0 && f.Probability < 1 && in.rng.Float64() >= f.Probability {
			continue
		}
		hit := true
		switch f.Kind {
		case FaultLatencySpike:
			if f.LatencyFactor > 0 {
				p.LatencyFactor *= f.LatencyFactor
			}
			p.ExtraLatency += f.ExtraLatency
		case FaultErrorStorm:
			if in.rng.Float64() < f.ErrorRate {
				p.ForceError = true
			} else {
				hit = false
			}
		case FaultBlackout:
			p.Unavailable = true
		case FaultSlowRestart:
			into := elapsed - f.Start
			if into < f.RestartDowntime {
				p.Unavailable = true
			} else {
				// Degradation decays linearly from LatencyFactor at the
				// moment the instance comes back to 1 at window end.
				peak := f.LatencyFactor
				if peak <= 0 {
					peak = defaultRestartFactor
				}
				recovery := float64(into-f.RestartDowntime) / float64(f.Duration-f.RestartDowntime)
				factor := peak - (peak-1)*recovery
				p.LatencyFactor *= factor
			}
		}
		if hit {
			in.applied[i]++
		}
	}
	return p
}

// defaultRestartFactor is the post-restart latency multiplier used when
// a slow-restart fault does not set one.
const defaultRestartFactor = 3

// FaultStatus is one schedule entry rendered for health reporting.
type FaultStatus struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	// Window is "start+duration" relative to the epoch, e.g. "30s+45s".
	Window string `json:"window"`
	// Active reports whether the fault window covers the query instant.
	Active bool `json:"active"`
	// Applied counts calls perturbed by this fault so far.
	Applied uint64 `json:"applied"`
}

// Snapshot reports the schedule state at instant `at`, active faults
// first, for the /healthz demo section: a human watching a scenario can
// tell injected chaos from real regressions.
func (in *Injector) Snapshot(at time.Time) []FaultStatus {
	if in == nil {
		return nil
	}
	elapsed := at.Sub(in.epoch)
	in.mu.Lock()
	out := make([]FaultStatus, len(in.faults))
	for i := range in.faults {
		f := &in.faults[i]
		out[i] = FaultStatus{
			Kind:    f.Kind.String(),
			Target:  f.Target(),
			Window:  fmt.Sprintf("%s+%s", f.Start, f.Duration),
			Active:  f.activeAt(elapsed),
			Applied: in.applied[i],
		}
	}
	in.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Active && !out[j].Active })
	return out
}

// ActiveFaults counts faults whose window covers `at`.
func (in *Injector) ActiveFaults(at time.Time) int {
	if in == nil {
		return 0
	}
	elapsed := at.Sub(in.epoch)
	n := 0
	for i := range in.faults {
		if in.faults[i].activeAt(elapsed) {
			n++
		}
	}
	return n
}
