package microsim

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

var tBase = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

func simpleApp(t *testing.T) *Application {
	t.Helper()
	app := NewApplication("front", "GET /")
	b := app.AddService("front", "v1").
		Endpoint("GET /", 10, 25).
		Calls("back", "GET /data")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	b = app.AddService("back", "v1").
		Endpoint("GET /data", 5, 12)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestBuilderErrors(t *testing.T) {
	app := NewApplication("s", "e")
	if err := app.AddService("s", "v1").ErrorRate(0.5).Err(); err == nil {
		t.Error("ErrorRate before Endpoint should fail")
	}
	if err := app.AddService("x", "v1").Endpoint("e", 1, 2).Endpoint("e", 1, 2).Err(); err == nil {
		t.Error("duplicate endpoint should fail")
	}
	if err := app.AddService("x", "v1").Err(); err == nil {
		t.Error("duplicate service version should fail")
	}
	if err := app.AddService("y", "v1").Endpoint("e", 1, 2).ErrorRate(1.5).Err(); err == nil {
		t.Error("error rate > 1 should fail")
	}
	if err := app.AddService("z", "v1").Endpoint("e", 1, 2).CallsWithProbability("a", "b", 0).Err(); err == nil {
		t.Error("call probability 0 should fail")
	}
}

func TestValidate(t *testing.T) {
	app := NewApplication("front", "GET /")
	_ = app.AddService("front", "v1").
		Endpoint("GET /", 10, 25).
		Calls("ghost", "GET /data")
	err := app.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Errorf("Validate = %v", err)
	}

	app2 := NewApplication("front", "GET /")
	_ = app2.AddService("front", "v1").
		Endpoint("GET /", 10, 25).
		Calls("back", "GET /missing")
	_ = app2.AddService("back", "v1").Endpoint("GET /data", 5, 12)
	err = app2.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown endpoint") {
		t.Errorf("Validate = %v", err)
	}

	app3 := NewApplication("front", "GET /nope")
	_ = app3.AddService("front", "v1").Endpoint("GET /", 10, 25)
	if err := app3.Validate(); err == nil {
		t.Error("missing entry endpoint should fail validation")
	}
}

func TestBaselineManagement(t *testing.T) {
	app := simpleApp(t)
	if app.Baseline("front") != "v1" {
		t.Error("first version should be baseline")
	}
	_ = app.AddService("front", "v2").Endpoint("GET /", 10, 25)
	if app.Baseline("front") != "v1" {
		t.Error("adding a version must not change baseline")
	}
	if err := app.SetBaseline("front", "v2"); err != nil {
		t.Fatal(err)
	}
	if app.Baseline("front") != "v2" {
		t.Error("SetBaseline failed")
	}
	if err := app.SetBaseline("front", "v9"); err == nil {
		t.Error("SetBaseline to unknown version should fail")
	}
}

func TestSimExecuteBaseline(t *testing.T) {
	app := simpleApp(t)
	tbl := router.NewTable()
	if err := InstallBaselineRoutes(app, tbl); err != nil {
		t.Fatal(err)
	}
	traces := tracing.NewCollector()
	store := metrics.NewStore(0)
	sim := NewSim(app, tbl, traces, store, 1)

	res, err := sim.Execute(&router.Request{UserID: "u1"}, tBase)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != tracing.VariantBaseline {
		t.Errorf("variant = %v", res.Variant)
	}
	if res.Duration <= 0 {
		t.Error("duration should be positive")
	}
	trs := traces.Traces("")
	if len(trs) != 1 {
		t.Fatalf("traces = %d", len(trs))
	}
	tr := trs[0]
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	// Root duration covers the child's.
	root, _ := tr.Root()
	var child tracing.Span
	for _, s := range tr.Spans {
		if s.ParentID != 0 {
			child = s
		}
	}
	if root.Duration < child.Duration {
		t.Errorf("root %v < child %v", root.Duration, child.Duration)
	}
	// Metrics recorded for both services.
	if _, err := store.Query(MetricResponseTime, metrics.Scope{Service: "front", Version: "v1"}, tBase.Add(-time.Hour), metrics.AggMean); err != nil {
		t.Errorf("front metrics missing: %v", err)
	}
	if _, err := store.Query(MetricResponseTime, metrics.Scope{Service: "back", Version: "v1"}, tBase.Add(-time.Hour), metrics.AggMean); err != nil {
		t.Errorf("back metrics missing: %v", err)
	}
}

func TestSimExperimentVariantTagging(t *testing.T) {
	app := simpleApp(t)
	_ = app.AddService("back", "v2").Endpoint("GET /data", 5, 12)
	tbl := router.NewTable()
	if err := InstallBaselineRoutes(app, tbl); err != nil {
		t.Fatal(err)
	}
	// Route all back traffic to v2 (non-baseline).
	if err := tbl.SetWeights("back", []router.Backend{{Version: "v2", Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	sim := NewSim(app, tbl, tracing.NewCollector(), nil, 1)
	res, err := sim.Execute(&router.Request{UserID: "u"}, tBase)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != tracing.VariantExperiment {
		t.Errorf("variant = %v, want experiment", res.Variant)
	}
}

func TestSimDarkLaunchGeneratesLoadNotLatency(t *testing.T) {
	app := simpleApp(t)
	_ = app.AddService("back", "v2").Endpoint("GET /data", 500, 900) // very slow dark version
	tbl := router.NewTable()
	if err := InstallBaselineRoutes(app, tbl); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetMirrors("back", []string{"v2"}); err != nil {
		t.Fatal(err)
	}
	store := metrics.NewStore(0)
	traces := tracing.NewCollector()
	sim := NewSim(app, tbl, traces, store, 1)

	res, err := sim.Execute(&router.Request{UserID: "u"}, tBase)
	if err != nil {
		t.Fatal(err)
	}
	// User-visible latency excludes the slow mirror.
	if res.Duration > 200*time.Millisecond {
		t.Errorf("mirror latency leaked into user path: %v", res.Duration)
	}
	// But the mirror generated load under the "dark" metric variant.
	darkScope := metrics.Scope{Service: "back", Version: "v2", Variant: "dark"}
	n, err := store.Query(MetricRequests, darkScope, tBase.Add(-time.Hour), metrics.AggCount)
	if err != nil || n != 1 {
		t.Errorf("dark requests = %v, %v", n, err)
	}
	// Dark spans do not pollute traces.
	for _, tr := range traces.Traces("") {
		for _, s := range tr.Spans {
			if s.Version == "v2" {
				t.Error("dark span leaked into traces")
			}
		}
	}
}

func TestSimErrorPropagation(t *testing.T) {
	app := NewApplication("front", "GET /")
	_ = app.AddService("front", "v1").
		Endpoint("GET /", 1, 3).
		Calls("back", "GET /data")
	_ = app.AddService("back", "v1").
		Endpoint("GET /data", 1, 3).
		ErrorRate(1) // always fails
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	tbl := router.NewTable()
	_ = InstallBaselineRoutes(app, tbl)
	sim := NewSim(app, tbl, nil, nil, 1)
	res, err := sim.Execute(&router.Request{UserID: "u"}, tBase)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Err {
		t.Error("downstream failure should propagate to the root result")
	}
}

func TestSimCycleGuard(t *testing.T) {
	app := NewApplication("a", "e")
	_ = app.AddService("a", "v1").Endpoint("e", 1, 2).Calls("b", "e")
	_ = app.AddService("b", "v1").Endpoint("e", 1, 2).Calls("a", "e")
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	tbl := router.NewTable()
	_ = InstallBaselineRoutes(app, tbl)
	sim := NewSim(app, tbl, nil, nil, 1)
	if _, err := sim.Execute(&router.Request{UserID: "u"}, tBase); err == nil {
		t.Error("cyclic topology should abort with depth error")
	}
}

func TestSimDeterministicWithSeed(t *testing.T) {
	run := func() time.Duration {
		app := simpleApp(t)
		tbl := router.NewTable()
		_ = InstallBaselineRoutes(app, tbl)
		sim := NewSim(app, tbl, nil, nil, 42)
		var total time.Duration
		for i := 0; i < 50; i++ {
			res, err := sim.Execute(&router.Request{UserID: "u"}, tBase)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Duration
		}
		return total
	}
	if run() != run() {
		t.Error("same seed should produce identical simulations")
	}
}

func TestShopApplication(t *testing.T) {
	app, err := ShopApplication()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(app.Services()); got != 10 {
		t.Errorf("services = %d, want 10", got)
	}
	if vs := app.Versions("recommendation"); len(vs) != 2 {
		t.Errorf("recommendation versions = %v", vs)
	}
	tbl := router.NewTable()
	if err := InstallBaselineRoutes(app, tbl); err != nil {
		t.Fatal(err)
	}
	traces := tracing.NewCollector()
	sim := NewSim(app, tbl, traces, nil, 1)
	for i := 0; i < 20; i++ {
		if _, err := sim.Execute(&router.Request{UserID: "u"}, tBase); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range traces.Traces("") {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	app := simpleApp(t)
	if _, err := app.Lookup("ghost", "v1"); err == nil {
		t.Error("unknown service should error")
	}
	if _, err := app.Lookup("front", "v99"); err == nil {
		t.Error("unknown version should error")
	}
}
