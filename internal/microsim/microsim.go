// Package microsim is the microservice-application substrate that stands
// in for the paper's case-study application (Fig 4.5) and for the
// service ecosystems of the Chapter 5 scenarios. An Application declares
// services, versions, endpoints, latency distributions, error rates, and
// downstream calls; a Sim executes user requests against it in-process,
// resolving versions through a router.Table, emitting spans into a
// tracing.Collector and observations into a metrics.Store.
//
// Two execution modes share one topology:
//
//   - Sim runs requests in-process on a virtual clock: deterministic
//     (seeded), no I/O, fast enough to drive the paper's evaluations at
//     full scale in milliseconds of wall time.
//   - HTTPApplication (StartHTTP) deploys the same Application as real
//     net/http servers on loopback — one backend per service version
//     behind one router.Proxy per service — for the wire-level overhead
//     measurements of Section 4.5.1 and for contexpd's demo mode.
//     Endpoint latencies are slept for real (scaled by LatencyScale),
//     and each backend self-reports response_time/requests/errors
//     telemetry into the store, exactly like an instrumented service.
//
// In both modes every hop resolves its callee version through the
// routing table, so a Bifrost strategy rerouting traffic mid-run
// affects the whole call tree, sticky per user. ShopApplication builds
// the ten-service case-study shop (with the two-version recommendation
// service whose release drives the running example);
// InstallBaselineRoutes points every service at its stable version as
// a starting state.
package microsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"contexp/internal/stats"
)

// Call declares a downstream interaction of an endpoint.
type Call struct {
	// Service and Endpoint name the callee. The callee version is
	// resolved at request time through the routing table.
	Service  string
	Endpoint string
	// Probability in (0,1] gates the call per request (1 = always).
	Probability float64
}

// Endpoint models one operation of a service version.
type Endpoint struct {
	// Name is the operation, e.g. "GET /products".
	Name string
	// Latency is the endpoint's own processing time (excluding
	// downstream calls).
	Latency stats.LogNormal
	// ErrorRate is the probability a call fails locally.
	ErrorRate float64
	// Calls are issued sequentially; the endpoint's total duration is
	// its own latency plus the callees' durations.
	Calls []Call
}

// ServiceVersion is one deployable unit: a service at a version.
type ServiceVersion struct {
	Service   string
	Version   string
	Endpoints map[string]*Endpoint
}

// Application is a static topology of service versions.
type Application struct {
	versions map[string]map[string]*ServiceVersion // service -> version
	baseline map[string]string                     // service -> baseline version
	// Entry is the user-facing service/endpoint requests arrive at.
	EntryService  string
	EntryEndpoint string
}

// NewApplication creates an empty application.
func NewApplication(entryService, entryEndpoint string) *Application {
	return &Application{
		versions:      make(map[string]map[string]*ServiceVersion),
		baseline:      make(map[string]string),
		EntryService:  entryService,
		EntryEndpoint: entryEndpoint,
	}
}

// ServiceBuilder incrementally defines a service version.
type ServiceBuilder struct {
	app  *Application
	sv   *ServiceVersion
	last string // most recently declared endpoint
	err  error
}

// AddService registers a service version and returns a builder for its
// endpoints. The first version added for a service becomes its baseline
// unless SetBaseline overrides it.
func (a *Application) AddService(service, version string) *ServiceBuilder {
	if a.versions[service] == nil {
		a.versions[service] = make(map[string]*ServiceVersion)
		a.baseline[service] = version
	}
	sv := &ServiceVersion{Service: service, Version: version, Endpoints: make(map[string]*Endpoint)}
	b := &ServiceBuilder{app: a, sv: sv}
	if _, dup := a.versions[service][version]; dup {
		b.err = fmt.Errorf("microsim: duplicate %s@%s", service, version)
		return b
	}
	a.versions[service][version] = sv
	return b
}

// Endpoint declares an endpoint with a latency distribution calibrated
// from its mean and 95th percentile (both in milliseconds).
func (b *ServiceBuilder) Endpoint(name string, meanMs, p95Ms float64) *ServiceBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.sv.Endpoints[name]; dup {
		b.err = fmt.Errorf("microsim: duplicate endpoint %s on %s@%s", name, b.sv.Service, b.sv.Version)
		return b
	}
	b.sv.Endpoints[name] = &Endpoint{
		Name:    name,
		Latency: stats.LogNormalFromMeanP95(meanMs, p95Ms),
	}
	b.last = name
	return b
}

// ErrorRate sets the local failure probability of the most recently
// declared endpoint.
func (b *ServiceBuilder) ErrorRate(rate float64) *ServiceBuilder {
	if b.err != nil {
		return b
	}
	ep, err := b.current()
	if err != nil {
		b.err = err
		return b
	}
	if rate < 0 || rate > 1 {
		b.err = fmt.Errorf("microsim: error rate %v outside [0,1]", rate)
		return b
	}
	ep.ErrorRate = rate
	return b
}

// Calls appends an always-taken downstream call to the most recently
// declared endpoint.
func (b *ServiceBuilder) Calls(service, endpoint string) *ServiceBuilder {
	return b.CallsWithProbability(service, endpoint, 1)
}

// CallsWithProbability appends a probabilistic downstream call.
func (b *ServiceBuilder) CallsWithProbability(service, endpoint string, p float64) *ServiceBuilder {
	if b.err != nil {
		return b
	}
	ep, err := b.current()
	if err != nil {
		b.err = err
		return b
	}
	if p <= 0 || p > 1 {
		b.err = fmt.Errorf("microsim: call probability %v outside (0,1]", p)
		return b
	}
	ep.Calls = append(ep.Calls, Call{Service: service, Endpoint: endpoint, Probability: p})
	return b
}

// Err returns the first error encountered while building.
func (b *ServiceBuilder) Err() error { return b.err }

func (b *ServiceBuilder) current() (*Endpoint, error) {
	if b.last == "" {
		return nil, fmt.Errorf("microsim: no endpoint declared yet on %s@%s", b.sv.Service, b.sv.Version)
	}
	return b.sv.Endpoints[b.last], nil
}

// SetBaseline marks version as the stable baseline of service.
func (a *Application) SetBaseline(service, version string) error {
	if a.versions[service] == nil || a.versions[service][version] == nil {
		return fmt.Errorf("microsim: unknown %s@%s", service, version)
	}
	a.baseline[service] = version
	return nil
}

// Baseline returns the baseline version of service ("" when unknown).
func (a *Application) Baseline(service string) string { return a.baseline[service] }

// Lookup returns the definition of service@version.
func (a *Application) Lookup(service, version string) (*ServiceVersion, error) {
	vs := a.versions[service]
	if vs == nil {
		return nil, fmt.Errorf("microsim: unknown service %q", service)
	}
	sv := vs[version]
	if sv == nil {
		return nil, fmt.Errorf("microsim: unknown version %s@%s", service, version)
	}
	return sv, nil
}

// Services returns all service names, sorted.
func (a *Application) Services() []string {
	out := make([]string, 0, len(a.versions))
	for s := range a.versions {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Versions returns the versions of a service, sorted.
func (a *Application) Versions(service string) []string {
	vs := a.versions[service]
	out := make([]string, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Validate checks that every declared downstream call has at least one
// version of the callee exposing the endpoint, and that the entry point
// exists.
func (a *Application) Validate() error {
	if _, err := a.Lookup(a.EntryService, a.baseline[a.EntryService]); err != nil {
		return fmt.Errorf("microsim: invalid entry: %w", err)
	}
	entry, _ := a.Lookup(a.EntryService, a.baseline[a.EntryService])
	if entry.Endpoints[a.EntryEndpoint] == nil {
		return fmt.Errorf("microsim: entry endpoint %q missing on %s@%s",
			a.EntryEndpoint, a.EntryService, a.baseline[a.EntryService])
	}
	for svc, versions := range a.versions {
		for ver, sv := range versions {
			for _, ep := range sv.Endpoints {
				for _, c := range ep.Calls {
					callee := a.versions[c.Service]
					if callee == nil {
						return fmt.Errorf("microsim: %s@%s %s calls unknown service %q",
							svc, ver, ep.Name, c.Service)
					}
					found := false
					for _, cv := range callee {
						if cv.Endpoints[c.Endpoint] != nil {
							found = true
							break
						}
					}
					if !found {
						return fmt.Errorf("microsim: %s@%s %s calls unknown endpoint %s:%s",
							svc, ver, ep.Name, c.Service, c.Endpoint)
					}
				}
			}
		}
	}
	return nil
}

// latencySample draws a latency in time units from an endpoint.
func latencySample(ep *Endpoint, rng *rand.Rand) time.Duration {
	ms := ep.Latency.Sample(rng)
	return time.Duration(ms * float64(time.Millisecond))
}
