package microsim

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

// HTTPApplication deploys an Application as real HTTP servers on
// loopback: one backend server per (service, version) plus one routing
// proxy per service, wired through the shared routing table — the
// wire-level twin of the in-process Sim. Bifrost strategies executed
// against the table reroute real requests, exactly as in the paper's
// testbed (Section 4.5.1), with localhost standing in for the cloud
// network.
//
// Endpoint latencies are slept for real, scaled by LatencyScale, and
// each backend self-reports response-time/request/error telemetry into
// the metric store. Downstream calls go through the callee's proxy, so
// every hop is subject to the experiment routing.
type HTTPApplication struct {
	app       *Application
	table     *router.Table
	store     *metrics.Store
	traces    *tracing.LiveCollector
	faults    *Injector
	telemetry MetricSink
	spans     SpanSink

	mu  sync.Mutex
	rng *rand.Rand

	proxies  map[string]*router.Proxy // service -> proxy
	servers  []*http.Server
	closers  []func()
	frontURL map[string]string // service -> proxy base URL

	latencyScale float64
}

// HTTPConfig parameterizes StartHTTP.
type HTTPConfig struct {
	// LatencyScale multiplies endpoint latencies (e.g. 0.1 runs a 20 ms
	// endpoint in 2 ms). Default 1.
	LatencyScale float64
	// Seed drives latency sampling and error injection.
	Seed int64
	// Traces, when set, receives one span per backend invocation: the
	// backends join the trace identity the routing proxies stamp on
	// requests (X-Trace-ID / X-Parent-Span) and self-report spans the
	// same way they self-report metrics. Dark-launch mirror traffic is
	// excluded, matching the in-process Sim.
	Traces *tracing.LiveCollector
	// Faults, when set, is consulted on every backend invocation: the
	// same scheduled chaos the in-process Sim injects, applied to real
	// HTTP backends (latency added to the slept service time, forced
	// 500s, 503 blackouts).
	Faults *Injector
	// Telemetry, when set, replaces the direct store recording: each
	// backend hands its per-request metric batch to the sink instead of
	// the store. A wire.Client satisfies it, turning the shop's
	// self-reported telemetry into binary batch frames posted to a
	// contexpd ingestion endpoint (which lands them in the same store,
	// over the wire).
	Telemetry MetricSink
	// Spans, when set, receives each backend span instead of
	// Traces.Record. Traces is still required for trace participation —
	// it mints the span IDs — but delivery goes through the sink (a
	// wire.Client ships them as binary frames to POST /v1/spans).
	Spans SpanSink
}

// MetricSink receives batched metric telemetry. *metrics.Store and
// *wire.Client both satisfy it.
type MetricSink interface {
	RecordBatch(samples []metrics.Sample)
}

// SpanSink receives spans one at a time. *wire.Client satisfies it.
type SpanSink interface {
	RecordSpan(s tracing.Span)
}

// StartHTTP boots the application. The caller owns table and store and
// must Close the returned value.
func StartHTTP(app *Application, table *router.Table, store *metrics.Store, cfg HTTPConfig) (*HTTPApplication, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	scale := cfg.LatencyScale
	if scale <= 0 {
		scale = 1
	}
	h := &HTTPApplication{
		app:          app,
		table:        table,
		store:        store,
		traces:       cfg.Traces,
		faults:       cfg.Faults,
		telemetry:    cfg.Telemetry,
		spans:        cfg.Spans,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		proxies:      make(map[string]*router.Proxy),
		frontURL:     make(map[string]string),
		latencyScale: scale,
	}

	// Proxies first, so backends can resolve downstream URLs.
	for _, svc := range app.Services() {
		proxy := router.NewProxy(svc, table)
		url, err := h.serve(proxy)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.proxies[svc] = proxy
		h.frontURL[svc] = url
		h.closers = append(h.closers, proxy.Close)
	}
	// One backend server per service version.
	for _, svc := range app.Services() {
		for _, ver := range app.Versions(svc) {
			sv, err := app.Lookup(svc, ver)
			if err != nil {
				h.Close()
				return nil, err
			}
			url, err := h.serve(h.backendHandler(sv))
			if err != nil {
				h.Close()
				return nil, err
			}
			if err := h.proxies[svc].RegisterUpstream(ver, url); err != nil {
				h.Close()
				return nil, err
			}
		}
	}
	return h, nil
}

// EntryURL returns the URL of the entry service's proxy plus the entry
// endpoint path.
func (h *HTTPApplication) EntryURL() string {
	_, path := splitEndpoint(h.app.EntryEndpoint)
	return h.frontURL[h.app.EntryService] + path
}

// ServiceURL returns the proxy base URL of a service.
func (h *HTTPApplication) ServiceURL(service string) string {
	return h.frontURL[service]
}

// MirrorDrops sums the dark-launch mirror jobs every proxy dropped
// because its mirror queue was full.
func (h *HTTPApplication) MirrorDrops() uint64 {
	var total uint64
	for _, p := range h.proxies {
		total += p.MirrorDrops()
	}
	return total
}

// Close shuts every server and proxy down.
func (h *HTTPApplication) Close() {
	for _, srv := range h.servers {
		_ = srv.Close()
	}
	for _, c := range h.closers {
		c()
	}
}

// serve starts an HTTP server on a random loopback port and returns its
// base URL.
func (h *HTTPApplication) serve(handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("microsim: listen: %w", err)
	}
	srv := &http.Server{Handler: handler}
	h.servers = append(h.servers, srv)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// backendHandler implements one service version: it dispatches on
// method+path, sleeps the sampled latency, issues downstream calls
// through the callees' proxies, and self-reports telemetry.
func (h *HTTPApplication) backendHandler(sv *ServiceVersion) http.Handler {
	type route struct {
		ep     *Endpoint
		method string
		name   string
	}
	routes := make(map[string]route, len(sv.Endpoints)) // path -> route
	for name, ep := range sv.Endpoints {
		method, path := splitEndpoint(name)
		routes[method+" "+path] = route{ep: ep, method: method, name: name}
	}
	client := &http.Client{Timeout: 30 * time.Second}

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt, ok := routes[r.Method+" "+r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		start := time.Now()
		ep := rt.ep
		dark := r.Header.Get("X-Dark-Launch") == "true"

		// Join the trace the routing proxy stamped on the request: the
		// trace ID is inherited, the span ID is this invocation's own,
		// and the parent is the calling backend's span. Dark-launch
		// mirror traffic stays out of traces (matching Sim), so the
		// user-visible trace is not broken by shadow spans.
		var traceID tracing.TraceID
		var spanID, parentID tracing.SpanID
		if h.traces != nil && !dark {
			if v, err := strconv.ParseUint(r.Header.Get(router.HeaderTraceID), 16, 64); err == nil {
				traceID = tracing.TraceID(v)
			}
			if v, err := strconv.ParseUint(r.Header.Get(router.HeaderParentSpan), 16, 64); err == nil {
				parentID = tracing.SpanID(v)
			}
			if traceID != 0 {
				spanID = h.traces.NextSpanID()
			}
		}

		h.mu.Lock()
		ownMs := ep.Latency.Sample(h.rng) * h.latencyScale
		failed := h.rng.Float64() < ep.ErrorRate
		gates := make([]bool, len(ep.Calls))
		for i, c := range ep.Calls {
			gates[i] = c.Probability >= 1 || h.rng.Float64() < c.Probability
		}
		h.mu.Unlock()

		// Injected faults distort this invocation before it sleeps or
		// fans out; a blackout fails fast and skips downstream calls.
		perturb := Perturbation{LatencyFactor: 1}
		if h.faults != nil {
			perturb = h.faults.Apply(sv.Service, sv.Version, rt.name, time.Now())
		}
		if perturb.Unavailable {
			failed = true
			ownMs = 0
		} else {
			if perturb.LatencyFactor > 0 && perturb.LatencyFactor != 1 {
				ownMs *= perturb.LatencyFactor
			}
			ownMs += float64(perturb.ExtraLatency) / float64(time.Millisecond) * h.latencyScale
			if perturb.ForceError {
				failed = true
			}
		}

		time.Sleep(time.Duration(ownMs * float64(time.Millisecond)))

		for i, call := range ep.Calls {
			if !gates[i] {
				continue
			}
			if perturb.Unavailable {
				break
			}
			method, path := splitEndpoint(call.Endpoint)
			req, err := http.NewRequestWithContext(r.Context(), method, h.frontURL[call.Service]+path, nil)
			if err != nil {
				failed = true
				continue
			}
			// Propagate the routing identity so sticky assignment holds
			// across the whole call tree, the trace identity so spans
			// assemble end to end, and the dark-launch marker so a
			// mirrored request's entire subtree stays shadow traffic.
			for _, header := range []string{"X-User-ID", "X-User-Groups", router.HeaderTraceID, "X-Dark-Launch"} {
				if v := r.Header.Get(header); v != "" {
					req.Header.Set(header, v)
				}
			}
			if spanID != 0 {
				req.Header.Set(router.HeaderParentSpan, strconv.FormatUint(uint64(spanID), 16))
			}
			resp, err := client.Do(req)
			if err != nil {
				failed = true
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				failed = true
			}
		}

		variant := ""
		if dark {
			variant = "dark"
		}
		scope := metrics.Scope{Service: sv.Service, Version: sv.Version, Variant: variant}
		now := time.Now()
		elapsedMs := float64(time.Since(start)) / float64(time.Millisecond)
		if h.store != nil || h.telemetry != nil {
			// Self-report the request's telemetry as one batch.
			batch := [3]metrics.Sample{
				{Metric: MetricResponseTime, Scope: scope, At: now, Value: elapsedMs},
				{Metric: MetricRequests, Scope: scope, At: now, Value: 1},
				{Metric: MetricErrors, Scope: scope, At: now, Value: 1},
			}
			n := 2
			if failed {
				n = 3
			}
			if h.telemetry != nil {
				h.telemetry.RecordBatch(batch[:n])
			} else {
				h.store.RecordBatch(batch[:n])
			}
		}
		if spanID != 0 {
			span := tracing.Span{
				TraceID:  traceID,
				SpanID:   spanID,
				ParentID: parentID,
				Service:  sv.Service,
				Version:  sv.Version,
				Endpoint: rt.method + " " + r.URL.Path,
				Start:    start,
				Duration: time.Since(start),
				Err:      failed,
			}
			if h.spans != nil {
				h.spans.RecordSpan(span)
			} else {
				h.traces.Record(span)
			}
		}
		w.Header().Set("X-Version", sv.Version)
		if perturb.Unavailable {
			http.Error(w, "injected blackout", http.StatusServiceUnavailable)
			return
		}
		if failed {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%s@%s %s ok", sv.Service, sv.Version, r.URL.Path)
	})
}

// splitEndpoint splits "GET /products" into method and path. Endpoints
// without a method default to GET; paths get a leading slash.
func splitEndpoint(name string) (method, path string) {
	parts := strings.SplitN(name, " ", 2)
	if len(parts) == 2 {
		method, path = parts[0], parts[1]
	} else {
		method, path = http.MethodGet, parts[0]
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return method, path
}
