package tracing

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

var tBase = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

func sampleTrace(c *Collector, variant Variant) TraceID {
	tid := c.NextTraceID()
	root := Span{
		TraceID: tid, SpanID: c.NextSpanID(),
		Service: "frontend", Version: "v1", Endpoint: "GET /",
		Start: tBase, Duration: 100 * time.Millisecond, Variant: variant,
	}
	child := Span{
		TraceID: tid, SpanID: c.NextSpanID(), ParentID: root.SpanID,
		Service: "catalog", Version: "v2", Endpoint: "GET /products",
		Start: tBase.Add(10 * time.Millisecond), Duration: 40 * time.Millisecond, Variant: variant,
	}
	// Record out of order on purpose.
	c.Record(child)
	c.Record(root)
	return tid
}

func TestCollectorAssemblesTraces(t *testing.T) {
	c := NewCollector()
	tid := sampleTrace(c, VariantBaseline)
	traces := c.Traces("")
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != tid || tr.Variant != VariantBaseline || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	// Spans sorted by start time.
	if tr.Spans[0].Service != "frontend" {
		t.Errorf("spans not sorted by start: %v first", tr.Spans[0].Service)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTraceRootAndDuration(t *testing.T) {
	c := NewCollector()
	sampleTrace(c, VariantExperiment)
	tr := c.Traces(VariantExperiment)[0]
	root, ok := tr.Root()
	if !ok || root.Service != "frontend" {
		t.Fatalf("Root = %+v, %v", root, ok)
	}
	if tr.Duration() != 100*time.Millisecond {
		t.Errorf("Duration = %v", tr.Duration())
	}
	empty := Trace{}
	if _, ok := empty.Root(); ok {
		t.Error("empty trace should have no root")
	}
	if empty.Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestVariantFiltering(t *testing.T) {
	c := NewCollector()
	sampleTrace(c, VariantBaseline)
	sampleTrace(c, VariantBaseline)
	sampleTrace(c, VariantExperiment)
	if got := len(c.Traces(VariantBaseline)); got != 2 {
		t.Errorf("baseline traces = %d, want 2", got)
	}
	if got := len(c.Traces(VariantExperiment)); got != 1 {
		t.Errorf("experiment traces = %d, want 1", got)
	}
	if got := len(c.Traces("")); got != 3 {
		t.Errorf("all traces = %d, want 3", got)
	}
}

func TestSpanCountAndReset(t *testing.T) {
	c := NewCollector()
	sampleTrace(c, VariantBaseline)
	if c.SpanCount() != 2 {
		t.Errorf("SpanCount = %d", c.SpanCount())
	}
	c.Reset()
	if c.SpanCount() != 0 || len(c.Traces("")) != 0 {
		t.Error("Reset did not clear collector")
	}
}

func TestNodeKey(t *testing.T) {
	s := Span{Service: "cart", Version: "v3", Endpoint: "POST /add"}
	k := s.Node()
	if k.String() != "cart@v3:POST /add" {
		t.Errorf("NodeKey.String = %q", k.String())
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(spans ...Span) *Trace { return &Trace{ID: 1, Spans: spans} }
	tests := []struct {
		name    string
		tr      *Trace
		wantSub string
	}{
		{"empty", mk(), "no spans"},
		{"two roots", mk(
			Span{SpanID: 1}, Span{SpanID: 2},
		), "2 roots"},
		{"duplicate span id", mk(
			Span{SpanID: 1}, Span{SpanID: 1, ParentID: 1},
		), "duplicate"},
		{"dangling parent", mk(
			Span{SpanID: 1}, Span{SpanID: 2, ParentID: 99},
		), "unknown parent"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tr.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("Validate = %v, want containing %q", err, tt.wantSub)
			}
		})
	}
}

func TestTraceJSON(t *testing.T) {
	c := NewCollector()
	sampleTrace(c, VariantBaseline)
	tr := c.Traces("")[0]
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d spans", len(decoded))
	}
	// Root span has no parentId key; child does.
	var sawParent bool
	for _, m := range decoded {
		if _, ok := m["parentId"]; ok {
			sawParent = true
		}
		if m["kind"] != "SERVER" {
			t.Errorf("kind = %v", m["kind"])
		}
	}
	if !sawParent {
		t.Error("child span lost its parentId in JSON")
	}
}

func TestIDAllocationUniqueUnderConcurrency(t *testing.T) {
	c := NewCollector()
	const n = 1000
	ids := make([]TraceID, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = c.NextTraceID()
		}(i)
	}
	wg.Wait()
	seen := make(map[TraceID]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace id %d", id)
		}
		seen[id] = true
	}
}

func TestConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sampleTrace(c, VariantBaseline)
			}
		}()
	}
	wg.Wait()
	if got := c.SpanCount(); got != 8*100*2 {
		t.Errorf("SpanCount = %d, want %d", got, 8*100*2)
	}
	for _, tr := range c.Traces("") {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid trace after concurrent recording: %v", err)
		}
	}
}
