package tracing

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func liveSpan(trace, span, parent uint64) Span {
	return Span{
		TraceID:  TraceID(trace),
		SpanID:   SpanID(span),
		ParentID: SpanID(parent),
		Service:  "svc",
		Version:  "v1",
		Endpoint: "GET /x",
		Start:    time.Unix(int64(span), 0),
		Duration: time.Millisecond,
	}
}

func TestLiveCollectorHarvestRemovesTraces(t *testing.T) {
	c := NewLiveCollector(0)
	c.Record(liveSpan(1, 1, 0))
	c.Record(liveSpan(1, 2, 1))
	c.Record(liveSpan(2, 3, 0))
	if got := c.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	if got := c.PendingTraces(); got != 2 {
		t.Fatalf("PendingTraces = %d, want 2", got)
	}

	traces := c.Harvest(0)
	if len(traces) != 2 {
		t.Fatalf("harvested %d traces, want 2", len(traces))
	}
	byID := make(map[TraceID]Trace, len(traces))
	for _, tr := range traces {
		byID[tr.ID] = tr
	}
	if len(byID[1].Spans) != 2 || len(byID[2].Spans) != 1 {
		t.Errorf("trace span counts = %d/%d, want 2/1", len(byID[1].Spans), len(byID[2].Spans))
	}

	// Harvest hands each trace over exactly once.
	if again := c.Harvest(0); len(again) != 0 {
		t.Errorf("second harvest returned %d traces, want 0", len(again))
	}
	if got := c.SpanCount(); got != 0 {
		t.Errorf("SpanCount after harvest = %d, want 0", got)
	}
	if got := c.HarvestedTraces(); got != 2 {
		t.Errorf("HarvestedTraces = %d, want 2", got)
	}
}

func TestLiveCollectorSettleWindow(t *testing.T) {
	c := NewLiveCollector(0)
	c.Record(liveSpan(1, 1, 0))
	// A long settle keeps the fresh trace buffered.
	if got := c.Harvest(time.Hour); len(got) != 0 {
		t.Fatalf("harvested %d traces within the settle window, want 0", len(got))
	}
	if got := c.Harvest(0); len(got) != 1 {
		t.Fatalf("harvested %d traces with settle 0, want 1", len(got))
	}
}

func TestLiveCollectorCapDrops(t *testing.T) {
	c := NewLiveCollector(2)
	if !c.Record(liveSpan(1, 1, 0)) || !c.Record(liveSpan(2, 2, 0)) {
		t.Fatal("spans under the cap must be accepted")
	}
	if c.Record(liveSpan(3, 3, 0)) {
		t.Fatal("span beyond the cap must be dropped")
	}
	if got := c.Drops(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
	// Harvesting frees capacity.
	if got := c.Harvest(0); len(got) != 2 {
		t.Fatalf("harvested %d, want 2", len(got))
	}
	if !c.Record(liveSpan(4, 4, 0)) {
		t.Fatal("span after harvest must be accepted again")
	}
}

func TestLiveCollectorRejectsZeroTraceID(t *testing.T) {
	c := NewLiveCollector(0)
	if c.Record(liveSpan(0, 1, 0)) {
		t.Fatal("span without trace ID must be dropped")
	}
	if got := c.Drops(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
}

func TestLiveCollectorRecordBatch(t *testing.T) {
	c := NewLiveCollector(3)
	batch := []Span{liveSpan(1, 1, 0), liveSpan(1, 2, 1), liveSpan(1, 3, 1), liveSpan(1, 4, 1)}
	if got := c.RecordBatch(batch); got != 3 {
		t.Fatalf("RecordBatch accepted %d, want 3", got)
	}
	if got := c.Drops(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
}

func TestLiveCollectorConcurrentRecordHarvest(t *testing.T) {
	c := NewLiveCollector(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(g*1000 + i + 1)
				c.Record(liveSpan(id, id, 0))
			}
		}(g)
	}
	done := make(chan struct{})
	var harvested int
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			harvested += len(c.Harvest(0))
		}
	}()
	wg.Wait()
	<-done
	harvested += len(c.Harvest(0))
	if harvested != 8*200 {
		t.Fatalf("harvested %d traces total, want %d", harvested, 8*200)
	}
}

func TestCollectorCapDrops(t *testing.T) {
	c := NewCollector()
	c.SetCap(2)
	c.Record(liveSpan(1, 1, 0))
	c.Record(liveSpan(1, 2, 1))
	c.Record(liveSpan(1, 3, 1)) // beyond cap
	if got := c.SpanCount(); got != 2 {
		t.Fatalf("SpanCount = %d, want 2", got)
	}
	if got := c.Drops(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
	// Reset frees capacity but keeps the drop counter.
	c.Reset()
	c.Record(liveSpan(2, 4, 0))
	if got, drops := c.SpanCount(), c.Drops(); got != 1 || drops != 1 {
		t.Fatalf("after reset: SpanCount = %d, Drops = %d, want 1, 1", got, drops)
	}
}

func TestLiveCollectorIDAllocation(t *testing.T) {
	c := NewLiveCollector(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := uint64(c.NextTraceID())
		if seen[id] {
			t.Fatalf("duplicate trace id %d", id)
		}
		seen[id] = true
		sid := uint64(c.NextSpanID())
		if seen[sid] {
			t.Fatalf("span id %d collides", sid)
		}
		seen[sid] = true
	}
}

func BenchmarkLiveCollectorRecord(b *testing.B) {
	c := NewLiveCollector(0)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			c.Record(liveSpan(i%4096+1, i, 0))
		}
	})
	_ = fmt.Sprint(c.SpanCount())
}

// BenchmarkLiveCollectorHarvest measures the harvest sweep alone: spans
// are recorded with the timer stopped, so allocs/op counts only what
// Harvest itself does. The reused scratch slice keeps the steady-state
// poll loop allocation-free, and the bench gate holds it there.
func BenchmarkLiveCollectorHarvest(b *testing.B) {
	c := NewLiveCollector(0)
	fill := func() {
		for t := uint64(1); t <= 64; t++ {
			for s := uint64(0); s < 4; s++ {
				c.Record(liveSpan(t, t*100+s+1, 0))
			}
		}
	}
	fill()
	c.Harvest(0) // size the scratch slice
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		if got := len(c.Harvest(0)); got != 64 {
			b.Fatalf("harvested %d traces, want 64", got)
		}
	}
}
