package tracing

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const zipkinSample = `[
  {
    "traceId": "0000000000000001",
    "id": "a1",
    "name": "GET /",
    "timestamp": 1513000000000000,
    "duration": 100000,
    "localEndpoint": {"serviceName": "frontend"},
    "tags": {"version": "v1", "variant": "baseline"}
  },
  {
    "traceId": "0000000000000001",
    "id": "a2",
    "parentId": "a1",
    "name": "GET /products",
    "timestamp": 1513000000010000,
    "duration": 40000,
    "localEndpoint": {"serviceName": "catalog"},
    "tags": {"version": "v2", "error": "true"}
  }
]`

func TestImportZipkin(t *testing.T) {
	c := NewCollector()
	n, err := c.ImportZipkin([]byte(zipkinSample))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported = %d", n)
	}
	traces := c.Traces("")
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	root, ok := tr.Root()
	if !ok || root.Service != "frontend" || root.Duration != 100*time.Millisecond {
		t.Errorf("root = %+v", root)
	}
	var child Span
	for _, s := range tr.Spans {
		if s.ParentID != 0 {
			child = s
		}
	}
	if child.Service != "catalog" || child.Version != "v2" || !child.Err {
		t.Errorf("child = %+v", child)
	}
	if child.ParentID != root.SpanID {
		t.Error("parent link broken")
	}
}

func TestImportZipkinRoundTrip(t *testing.T) {
	// Export a collected trace via MarshalJSON and import it back.
	c := NewCollector()
	sampleTrace(c, VariantExperiment)
	orig := c.Traces("")[0]
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCollector()
	if _, err := c2.ImportZipkin(data); err != nil {
		t.Fatal(err)
	}
	back := c2.Traces("")[0]
	if len(back.Spans) != len(orig.Spans) {
		t.Fatalf("span count %d != %d", len(back.Spans), len(orig.Spans))
	}
	if back.Variant != VariantExperiment {
		t.Errorf("variant = %v", back.Variant)
	}
	for i := range orig.Spans {
		o, b := orig.Spans[i], back.Spans[i]
		if o.Service != b.Service || o.Version != b.Version || o.Endpoint != b.Endpoint {
			t.Errorf("span %d: %+v != %+v", i, o, b)
		}
		// Timestamps round to microseconds in the Zipkin schema, and
		// come back in a different location; compare instants.
		if !o.Start.Truncate(time.Microsecond).Equal(b.Start) || o.Duration != b.Duration {
			t.Errorf("span %d timing: %v/%v vs %v/%v", i, o.Start, o.Duration, b.Start, b.Duration)
		}
	}
}

func TestImportZipkin128BitTraceID(t *testing.T) {
	src := `[{"traceId": "463ac35c9f6413ad48485a3953bb6124", "id": "1",
		"name": "e", "timestamp": 0, "duration": 1,
		"localEndpoint": {"serviceName": "s"}}]`
	c := NewCollector()
	if _, err := c.ImportZipkin([]byte(src)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Traces("")); got != 1 {
		t.Errorf("traces = %d", got)
	}
}

func TestImportZipkinErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"not json", "{", "bad zipkin JSON"},
		{"bad trace id", `[{"traceId": "xx", "id": "1", "name": "e",
			"localEndpoint": {"serviceName": "s"}}]`, "bad traceId"},
		{"bad span id", `[{"traceId": "1", "id": "zz", "name": "e",
			"localEndpoint": {"serviceName": "s"}}]`, "bad id"},
		{"bad parent id", `[{"traceId": "1", "id": "1", "parentId": "qq", "name": "e",
			"localEndpoint": {"serviceName": "s"}}]`, "bad parentId"},
		{"missing service", `[{"traceId": "1", "id": "1", "name": "e"}]`, "serviceName"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCollector()
			_, err := c.ImportZipkin([]byte(tt.src))
			if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("err = %v, want containing %q", err, tt.wantSub)
			}
		})
	}
}
