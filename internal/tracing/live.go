package tracing

import (
	"sync"
	"sync/atomic"
	"time"
)

// LiveCollector is the data-plane span sink: the bounded, sharded
// counterpart of Collector built for live ingestion. Where Collector is
// an unbounded analysis-time store, LiveCollector accepts spans from
// concurrently running services (in-process backends or the batched
// POST /v1/spans API), shards them by trace to keep ingestion scalable,
// enforces a hard span cap so a traffic burst cannot exhaust memory
// (dropped spans are counted, like router.Proxy.MirrorDrops), and hands
// settled traces over to the analysis plane exactly once via Harvest —
// which is what makes incremental interaction-graph building possible:
// each harvested trace is folded into the per-run topology graphs and
// its spans are released.
type LiveCollector struct {
	cap    int
	spans  atomic.Int64
	drops  atomic.Uint64
	nextID atomic.Uint64
	// harvested counts traces handed to the analysis plane.
	harvested atomic.Int64

	shards [liveShards]liveShard

	// harvestMu serializes harvesters and guards scratch, the Trace
	// slice Harvest reuses across calls so the periodic poll loop is
	// allocation-free at steady state.
	harvestMu sync.Mutex
	scratch   []Trace
}

const liveShards = 16

type liveShard struct {
	mu     sync.Mutex
	traces map[TraceID]*liveTrace
}

// liveTrace buffers the spans of one in-flight trace.
type liveTrace struct {
	spans []Span
	// last is the wall-clock arrival time of the newest span: a trace is
	// settled (harvestable) once no span has arrived for the settle
	// window.
	last time.Time
}

// NewLiveCollector creates a collector bounding buffered spans to cap
// (cap <= 0 means unbounded).
func NewLiveCollector(cap int) *LiveCollector {
	c := &LiveCollector{cap: cap}
	for i := range c.shards {
		c.shards[i].traces = make(map[TraceID]*liveTrace)
	}
	return c
}

// Cap returns the configured span cap (0 = unbounded).
func (c *LiveCollector) Cap() int { return c.cap }

// NextTraceID allocates a fresh trace identifier.
func (c *LiveCollector) NextTraceID() TraceID { return TraceID(c.nextID.Add(1)) }

// NextSpanID allocates a fresh span identifier.
func (c *LiveCollector) NextSpanID() SpanID { return SpanID(c.nextID.Add(1)) }

func (c *LiveCollector) shard(id TraceID) *liveShard {
	return &c.shards[uint64(id)%liveShards]
}

// Record buffers one finished span. It returns false when the span was
// dropped because the collector is at its cap; the drop is counted.
func (c *LiveCollector) Record(s Span) bool {
	if s.TraceID == 0 {
		c.drops.Add(1)
		return false
	}
	if c.cap > 0 && c.spans.Load() >= int64(c.cap) {
		c.drops.Add(1)
		return false
	}
	c.spans.Add(1)
	sh := c.shard(s.TraceID)
	sh.mu.Lock()
	tr := sh.traces[s.TraceID]
	if tr == nil {
		tr = &liveTrace{}
		sh.traces[s.TraceID] = tr
	}
	tr.spans = append(tr.spans, s)
	tr.last = time.Now()
	sh.mu.Unlock()
	return true
}

// RecordBatch buffers a batch of spans and returns how many were
// accepted (the rest were dropped against the cap and counted).
func (c *LiveCollector) RecordBatch(spans []Span) int {
	accepted := 0
	for _, s := range spans {
		if c.Record(s) {
			accepted++
		}
	}
	return accepted
}

// Harvest removes and returns every trace whose newest span is at least
// `settle` old: no span arrived within the settle window, so the trace
// is taken as complete. A settle of 0 harvests everything buffered.
// Harvested traces are gone from the collector — each trace is handed
// to the analysis plane exactly once. Spans arriving for an already
// harvested trace start a new partial trace, which trace validation in
// the graph builder later rejects.
//
// The returned slice is owned by the collector and reused by the next
// Harvest call: consume (fold or copy) the traces before harvesting
// again. The spans inside each Trace are handed over for keeps.
func (c *LiveCollector) Harvest(settle time.Duration) []Trace {
	cutoff := time.Now().Add(-settle)
	c.harvestMu.Lock()
	out := c.scratch[:0]
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, tr := range sh.traces {
			if tr.last.After(cutoff) {
				continue
			}
			delete(sh.traces, id)
			c.spans.Add(int64(-len(tr.spans)))
			variant := tr.spans[0].Variant
			out = append(out, Trace{ID: id, Variant: variant, Spans: tr.spans})
		}
		sh.mu.Unlock()
	}
	// Drop the span pointers past the live prefix so the scratch array
	// does not pin the previous harvest's spans until it is overwritten.
	tail := out[len(out):cap(out)]
	for i := range tail {
		tail[i] = Trace{}
	}
	c.scratch = out
	c.harvestMu.Unlock()
	c.harvested.Add(int64(len(out)))
	return out
}

// SpanCount returns the number of currently buffered spans.
func (c *LiveCollector) SpanCount() int { return int(c.spans.Load()) }

// PendingTraces returns the number of traces still buffering spans.
func (c *LiveCollector) PendingTraces() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.traces)
		sh.mu.Unlock()
	}
	return n
}

// Drops reports how many spans were discarded because the collector was
// at its cap (or carried no trace ID). A growing value means the
// topology graphs see less traffic than the services actually served.
func (c *LiveCollector) Drops() uint64 { return c.drops.Load() }

// HarvestedTraces reports how many traces were handed to the analysis
// plane over the collector's lifetime.
func (c *LiveCollector) HarvestedTraces() int64 { return c.harvested.Load() }
