package tracing

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// This file imports Zipkin-v2 JSON span dumps, so the health
// assessment can run against traces exported from a real Zipkin or
// Jaeger deployment (the backends the paper's prototype consumed) —
// not only against the built-in simulator.

// zipkinSpan is the subset of the Zipkin v2 span schema we consume.
type zipkinSpan struct {
	TraceID  string `json:"traceId"`
	ID       string `json:"id"`
	ParentID string `json:"parentId"`
	Name     string `json:"name"`
	Ts       int64  `json:"timestamp"` // microseconds since epoch
	Duration int64  `json:"duration"`  // microseconds
	Local    struct {
		ServiceName string `json:"serviceName"`
	} `json:"localEndpoint"`
	Tags map[string]string `json:"tags"`
}

// ImportZipkin parses a Zipkin-v2 JSON array of spans and records them
// into the collector. Version and variant are read from the "version"
// and "variant" tags (defaulting to "v1" and baseline); an "error" tag
// marks failures. IDs are parsed as hexadecimal, matching Zipkin's
// encoding; 128-bit trace IDs use their low 64 bits.
func (c *Collector) ImportZipkin(data []byte) (int, error) {
	var spans []zipkinSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		return 0, fmt.Errorf("tracing: bad zipkin JSON: %w", err)
	}
	var imported int
	for i, zs := range spans {
		traceID, err := parseHexID(zs.TraceID)
		if err != nil {
			return imported, fmt.Errorf("tracing: span %d: bad traceId %q", i, zs.TraceID)
		}
		spanID, err := parseHexID(zs.ID)
		if err != nil {
			return imported, fmt.Errorf("tracing: span %d: bad id %q", i, zs.ID)
		}
		var parentID SpanID
		if zs.ParentID != "" {
			pid, err := parseHexID(zs.ParentID)
			if err != nil {
				return imported, fmt.Errorf("tracing: span %d: bad parentId %q", i, zs.ParentID)
			}
			parentID = SpanID(pid)
		}
		if zs.Local.ServiceName == "" {
			return imported, fmt.Errorf("tracing: span %d: missing localEndpoint.serviceName", i)
		}
		version := zs.Tags["version"]
		if version == "" {
			version = "v1"
		}
		variant := Variant(zs.Tags["variant"])
		if variant == "" {
			variant = VariantBaseline
		}
		c.Record(Span{
			TraceID:  TraceID(traceID),
			SpanID:   SpanID(spanID),
			ParentID: parentID,
			Service:  zs.Local.ServiceName,
			Version:  version,
			Endpoint: zs.Name,
			Start:    time.UnixMicro(zs.Ts),
			Duration: time.Duration(zs.Duration) * time.Microsecond,
			Err:      zs.Tags["error"] != "",
			Variant:  variant,
		})
		imported++
	}
	return imported, nil
}

// parseHexID parses a Zipkin hex ID, keeping the low 64 bits of
// 128-bit trace IDs.
func parseHexID(s string) (uint64, error) {
	if len(s) > 16 {
		s = s[len(s)-16:]
	}
	return strconv.ParseUint(s, 16, 64)
}
