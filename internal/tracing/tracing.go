// Package tracing is the distributed-tracing substrate standing in for
// Zipkin/Jaeger, which Chapter 5's health assessment consumes. A Span
// records one endpoint invocation: which (service, version, endpoint)
// handled it, who called it, when, for how long, and whether it failed.
// Spans sharing a TraceID form a Trace; Traces carry a Variant tag so
// baseline and experimental user populations can be separated, which is
// what enables the topological comparison of Section 5.5.
package tracing

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Variant labels which experiment population a trace belongs to.
type Variant string

// Conventional variant labels used throughout the framework.
const (
	VariantBaseline   Variant = "baseline"
	VariantExperiment Variant = "experiment"
)

// SpanID identifies a span within a trace.
type SpanID uint64

// TraceID identifies an end-to-end user interaction.
type TraceID uint64

// Span is one endpoint invocation, modeled on the Zipkin/Jaeger span
// fields the paper's prototype extracts.
type Span struct {
	TraceID  TraceID       `json:"traceId"`
	SpanID   SpanID        `json:"id"`
	ParentID SpanID        `json:"parentId,omitempty"` // 0 for root spans
	Service  string        `json:"localEndpoint"`
	Version  string        `json:"version"`
	Endpoint string        `json:"name"` // e.g. "GET /products/{id}"
	Start    time.Time     `json:"timestamp"`
	Duration time.Duration `json:"duration"`
	Err      bool          `json:"error,omitempty"`
	Variant  Variant       `json:"variant,omitempty"`
}

// Node returns the topology node key of the span: the (service, version,
// endpoint) triple Chapter 5 compares at.
func (s Span) Node() NodeKey {
	return NodeKey{Service: s.Service, Version: s.Version, Endpoint: s.Endpoint}
}

// NodeKey identifies an endpoint of a service in a specific version.
type NodeKey struct {
	Service  string
	Version  string
	Endpoint string
}

// String renders service@version:endpoint.
func (k NodeKey) String() string {
	return k.Service + "@" + k.Version + ":" + k.Endpoint
}

// Trace is the tree of spans of one user interaction.
type Trace struct {
	ID      TraceID
	Variant Variant
	Spans   []Span
}

// Root returns the root span (ParentID == 0) and true, or a zero Span and
// false when the trace is empty or broken.
func (t *Trace) Root() (Span, bool) {
	for _, s := range t.Spans {
		if s.ParentID == 0 {
			return s, true
		}
	}
	return Span{}, false
}

// Duration returns the root span's duration, the end-user-visible latency.
func (t *Trace) Duration() time.Duration {
	if root, ok := t.Root(); ok {
		return root.Duration
	}
	return 0
}

// Collector gathers spans concurrently and assembles them into traces.
// It is the in-memory stand-in for a Zipkin/Jaeger backend. The zero
// value is not usable; construct with NewCollector.
type Collector struct {
	mu    sync.Mutex
	spans map[TraceID][]Span
	count int
	// cap bounds buffered spans (0 = unbounded); drops counts spans
	// discarded against it, exposed like router.Proxy.MirrorDrops.
	cap    int
	drops  atomic.Uint64
	nextID atomic.Uint64
}

// NewCollector creates an empty, unbounded Collector.
func NewCollector() *Collector {
	return &Collector{spans: make(map[TraceID][]Span)}
}

// SetCap bounds the collector to at most n buffered spans (0 removes
// the bound). Spans recorded beyond the cap are dropped and counted.
func (c *Collector) SetCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
}

// Drops reports how many spans were discarded because the collector was
// at its cap. A growing value means later traces are incomplete and the
// topological analysis undercounts interactions.
func (c *Collector) Drops() uint64 { return c.drops.Load() }

// NextTraceID allocates a fresh trace identifier.
func (c *Collector) NextTraceID() TraceID {
	return TraceID(c.nextID.Add(1))
}

// NextSpanID allocates a fresh span identifier (shared sequence with
// trace IDs; uniqueness is all that matters).
func (c *Collector) NextSpanID() SpanID {
	return SpanID(c.nextID.Add(1))
}

// Record stores one finished span. When the collector is at its cap the
// span is dropped and counted instead.
func (c *Collector) Record(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && c.count >= c.cap {
		c.drops.Add(1)
		return
	}
	c.count++
	c.spans[s.TraceID] = append(c.spans[s.TraceID], s)
}

// Traces assembles and returns all collected traces, optionally filtered
// by variant ("" keeps everything). Spans within a trace are ordered by
// start time; traces are ordered by ID for determinism.
func (c *Collector) Traces(variant Variant) []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]TraceID, 0, len(c.spans))
	for id := range c.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		spans := c.spans[id]
		if len(spans) == 0 {
			continue
		}
		v := spans[0].Variant
		if variant != "" && v != variant {
			continue
		}
		cp := make([]Span, len(spans))
		copy(cp, spans)
		sort.Slice(cp, func(i, j int) bool { return cp[i].Start.Before(cp[j].Start) })
		out = append(out, Trace{ID: id, Variant: v, Spans: cp})
	}
	return out
}

// SpanCount returns the total number of spans collected.
func (c *Collector) SpanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Reset drops all collected spans (the cap and drop counter persist).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = make(map[TraceID][]Span)
	c.count = 0
}

// MarshalJSON encodes the trace in a Zipkin-v2-like JSON array form, so
// collected traces can be inspected with external tools.
func (t Trace) MarshalJSON() ([]byte, error) {
	type jsonSpan struct {
		TraceID  string `json:"traceId"`
		ID       string `json:"id"`
		ParentID string `json:"parentId,omitempty"`
		Name     string `json:"name"`
		Kind     string `json:"kind"`
		Ts       int64  `json:"timestamp"` // microseconds
		Duration int64  `json:"duration"`  // microseconds
		Local    struct {
			ServiceName string `json:"serviceName"`
		} `json:"localEndpoint"`
		Tags map[string]string `json:"tags,omitempty"`
	}
	out := make([]jsonSpan, 0, len(t.Spans))
	for _, s := range t.Spans {
		js := jsonSpan{
			TraceID:  strconv.FormatUint(uint64(s.TraceID), 16),
			ID:       strconv.FormatUint(uint64(s.SpanID), 16),
			Name:     s.Endpoint,
			Kind:     "SERVER",
			Ts:       s.Start.UnixMicro(),
			Duration: s.Duration.Microseconds(),
			Tags: map[string]string{
				"version": s.Version,
				"variant": string(s.Variant),
			},
		}
		if s.ParentID != 0 {
			js.ParentID = strconv.FormatUint(uint64(s.ParentID), 16)
		}
		if s.Err {
			js.Tags["error"] = "true"
		}
		js.Local.ServiceName = s.Service
		out = append(out, js)
	}
	return json.Marshal(out)
}

// Validate checks structural integrity of a trace: exactly one root, all
// parents resolvable, children within the parent's time range is NOT
// required (clock skew exists in real systems), no duplicate span IDs.
func (t *Trace) Validate() error {
	if len(t.Spans) == 0 {
		return fmt.Errorf("tracing: trace %d has no spans", t.ID)
	}
	seen := make(map[SpanID]bool, len(t.Spans))
	var roots int
	for _, s := range t.Spans {
		if seen[s.SpanID] {
			return fmt.Errorf("tracing: trace %d has duplicate span %d", t.ID, s.SpanID)
		}
		seen[s.SpanID] = true
		if s.ParentID == 0 {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("tracing: trace %d has %d roots, want 1", t.ID, roots)
	}
	for _, s := range t.Spans {
		if s.ParentID != 0 && !seen[s.ParentID] {
			return fmt.Errorf("tracing: trace %d span %d has unknown parent %d", t.ID, s.SpanID, s.ParentID)
		}
	}
	return nil
}
