package expmodel

import "testing"

func TestPracticeRoundTrip(t *testing.T) {
	for _, p := range []Practice{PracticeCanary, PracticeDarkLaunch, PracticeABTest, PracticeGradualRollout, PracticeBlueGreen} {
		got, err := ParsePractice(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v -> %q -> %v (%v)", p, p.String(), got, err)
		}
	}
}

func TestParsePracticeAliases(t *testing.T) {
	tests := []struct {
		in   string
		want Practice
	}{
		{"dark", PracticeDarkLaunch},
		{"shadow", PracticeDarkLaunch},
		{"AB", PracticeABTest},
		{"a/b", PracticeABTest},
		{"gradual", PracticeGradualRollout},
		{"DARK_LAUNCH", PracticeDarkLaunch},
		{"  canary  ", PracticeCanary},
	}
	for _, tt := range tests {
		got, err := ParsePractice(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParsePractice(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := ParsePractice("catapult"); err == nil {
		t.Error("expected error for unknown practice")
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		p    Practice
		want Class
	}{
		{PracticeCanary, ClassRegressionDriven},
		{PracticeDarkLaunch, ClassRegressionDriven},
		{PracticeGradualRollout, ClassRegressionDriven},
		{PracticeBlueGreen, ClassRegressionDriven},
		{PracticeABTest, ClassBusinessDriven},
	}
	for _, tt := range tests {
		if got := Classify(tt.p); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassRegressionDriven.String() != "regression-driven" {
		t.Error("bad class name")
	}
	if ClassBusinessDriven.String() != "business-driven" {
		t.Error("bad class name")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should still stringify")
	}
	if Practice(42).String() == "" {
		t.Error("unknown practice should still stringify")
	}
}

func TestGroupSet(t *testing.T) {
	s := NewGroupSet("eu", "us")
	if !s.Contains("eu") || s.Contains("apac") {
		t.Error("Contains wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := len(s.Slice()); got != 2 {
		t.Errorf("Slice len = %d", got)
	}

	other := NewGroupSet("us", "apac")
	if !s.Intersects(other) {
		t.Error("expected intersection on us")
	}
	disjoint := NewGroupSet("apac")
	if s.Intersects(disjoint) {
		t.Error("unexpected intersection")
	}
	empty := NewGroupSet()
	if s.Intersects(empty) || empty.Intersects(s) {
		t.Error("empty set should intersect nothing")
	}
}

func TestVariantString(t *testing.T) {
	v := Variant{Name: "candidate", Service: "catalog", Version: "v2"}
	if got := v.String(); got != "candidate(catalog@v2)" {
		t.Errorf("Variant.String = %q", got)
	}
}
