// Package expmodel holds the shared vocabulary of the conceptual
// framework for continuous experimentation (Section 1.2.1): the
// experimentation practices identified by the empirical study, the
// regression-driven vs. business-driven classification, user groups, and
// variant definitions. Fenrir (planning), Bifrost (execution), and the
// health assessment (analysis) all speak in these terms.
package expmodel

import (
	"fmt"
	"strings"
)

// Practice is a continuous-experimentation practice (Section 2.2.1).
type Practice int

// The practices surveyed by Chapter 2 and enacted by Bifrost.
const (
	// PracticeCanary releases a new version to a small random subset of
	// users while the rest stay on the stable version.
	PracticeCanary Practice = iota + 1
	// PracticeDarkLaunch duplicates production traffic to the new
	// version without exposing responses to users.
	PracticeDarkLaunch
	// PracticeABTest splits users between variants of equal footing and
	// compares business metrics.
	PracticeABTest
	// PracticeGradualRollout step-wise increases the share of users on
	// the new version until full rollout.
	PracticeGradualRollout
	// PracticeBlueGreen keeps two complete deployments and atomically
	// switches production traffic between them.
	PracticeBlueGreen
)

var practiceNames = map[Practice]string{
	PracticeCanary:         "canary",
	PracticeDarkLaunch:     "dark-launch",
	PracticeABTest:         "ab-test",
	PracticeGradualRollout: "gradual-rollout",
	PracticeBlueGreen:      "blue-green",
}

// String returns the canonical DSL spelling of the practice.
func (p Practice) String() string {
	if s, ok := practiceNames[p]; ok {
		return s
	}
	return fmt.Sprintf("practice(%d)", int(p))
}

// ParsePractice converts a DSL spelling into a Practice.
func ParsePractice(s string) (Practice, error) {
	norm := strings.ToLower(strings.TrimSpace(s))
	norm = strings.ReplaceAll(norm, "_", "-")
	for p, name := range practiceNames {
		if norm == name {
			return p, nil
		}
	}
	// Accept a few aliases seen in the paper's prose.
	switch norm {
	case "dark", "shadow", "shadow-launch":
		return PracticeDarkLaunch, nil
	case "ab", "a/b", "a/b-test":
		return PracticeABTest, nil
	case "gradual", "rollout":
		return PracticeGradualRollout, nil
	}
	return 0, fmt.Errorf("expmodel: unknown practice %q", s)
}

// Class is the study's two-way classification of experiments
// (Section 2.6, Table 2.5).
type Class int

// Experiment classes.
const (
	// ClassRegressionDriven: quality assurance — canaries, dark
	// launches, gradual rollouts; verdicts from technical metrics.
	ClassRegressionDriven Class = iota + 1
	// ClassBusinessDriven: feature evaluation — A/B tests; verdicts
	// from business metrics with hypothesis testing.
	ClassBusinessDriven
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRegressionDriven:
		return "regression-driven"
	case ClassBusinessDriven:
		return "business-driven"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify maps a practice to its experiment class per Table 2.5.
func Classify(p Practice) Class {
	if p == PracticeABTest {
		return ClassBusinessDriven
	}
	return ClassRegressionDriven
}

// UserGroup identifies a segment of the user population (e.g., a region,
// a device class, a loyalty tier). Fenrir's group-coverage objective and
// overlap constraints, and Bifrost's routing filters, operate on these.
type UserGroup string

// GroupSet is an immutable set of user groups with value semantics.
type GroupSet struct {
	groups map[UserGroup]bool
}

// NewGroupSet builds a set from the given groups.
func NewGroupSet(groups ...UserGroup) GroupSet {
	m := make(map[UserGroup]bool, len(groups))
	for _, g := range groups {
		m[g] = true
	}
	return GroupSet{groups: m}
}

// Contains reports membership.
func (s GroupSet) Contains(g UserGroup) bool { return s.groups[g] }

// Len returns the set size.
func (s GroupSet) Len() int { return len(s.groups) }

// Intersects reports whether the sets share any group. Fenrir uses this
// for the overlap constraint: experiments with intersecting groups must
// not run in the same slot.
func (s GroupSet) Intersects(o GroupSet) bool {
	a, b := s.groups, o.groups
	if len(b) < len(a) {
		a, b = b, a
	}
	for g := range a {
		if b[g] {
			return true
		}
	}
	return false
}

// Slice returns the groups (unspecified order).
func (s GroupSet) Slice() []UserGroup {
	out := make([]UserGroup, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	return out
}

// Variant describes one deployed version participating in an experiment.
type Variant struct {
	// Name labels the variant ("baseline", "candidate", "B", ...).
	Name string
	// Service and Version locate the deployment.
	Service string
	Version string
}

// String renders name(service@version).
func (v Variant) String() string {
	return fmt.Sprintf("%s(%s@%s)", v.Name, v.Service, v.Version)
}
