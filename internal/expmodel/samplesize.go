package expmodel

import (
	"errors"
	"fmt"

	"contexp/internal/stats"
)

// SampleSizePlan bridges the study's "from intuition to principled
// decision making" implication (Section 2.7): instead of gut-feeling
// sample sizes, an experiment's RequiredSamples (Fenrir) and
// min-samples (Bifrost) are derived from the effect the experiment
// must be able to detect, using the established power-analysis
// formulas the paper cites (Kohavi et al.).
type SampleSizePlan struct {
	// PerVariant is the required sample size per experiment arm.
	PerVariant int
	// Total across the arms (two for A/B tests, one observed arm for
	// regression-driven experiments whose baseline is the full
	// population).
	Total int
	// Alpha and Power document the statistical parameters used.
	Alpha, Power float64
}

// PlanProportionTest sizes a business-driven experiment on a conversion
// metric: baseline rate p0, minimum detectable absolute lift mde.
// Defaults: alpha 0.05, power 0.8 when zero.
func PlanProportionTest(p0, mde, alpha, power float64) (SampleSizePlan, error) {
	alpha, power = defaultAlphaPower(alpha, power)
	n, err := stats.MinSampleSizeProportion(p0, mde, alpha, power)
	if err != nil {
		return SampleSizePlan{}, fmt.Errorf("expmodel: %w", err)
	}
	return SampleSizePlan{PerVariant: n, Total: 2 * n, Alpha: alpha, Power: power}, nil
}

// PlanMeanTest sizes a regression-driven experiment on a continuous
// metric (e.g. response time): standard deviation sigma, minimum
// detectable difference mde, in the metric's units.
func PlanMeanTest(sigma, mde, alpha, power float64) (SampleSizePlan, error) {
	alpha, power = defaultAlphaPower(alpha, power)
	n, err := stats.MinSampleSizeMean(sigma, mde, alpha, power)
	if err != nil {
		return SampleSizePlan{}, fmt.Errorf("expmodel: %w", err)
	}
	return SampleSizePlan{PerVariant: n, Total: 2 * n, Alpha: alpha, Power: power}, nil
}

// MinimumDuration estimates how long an experiment must run to collect
// the plan's per-variant samples, given the traffic share routed to the
// variant and the experimentable request rate (requests per hour). It
// answers the planning question the paper poses — "how long to run at
// which scope to achieve the required level of confidence".
func (p SampleSizePlan) MinimumDuration(share, requestsPerHour float64) (hours float64, err error) {
	if share <= 0 || share > 1 {
		return 0, fmt.Errorf("expmodel: share %v outside (0,1]", share)
	}
	if requestsPerHour <= 0 {
		return 0, errors.New("expmodel: request rate must be positive")
	}
	perHour := share * requestsPerHour
	return float64(p.PerVariant) / perHour, nil
}

func defaultAlphaPower(alpha, power float64) (float64, float64) {
	if alpha <= 0 {
		alpha = 0.05
	}
	if power <= 0 {
		power = 0.8
	}
	return alpha, power
}
