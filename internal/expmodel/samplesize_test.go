package expmodel

import (
	"math"
	"testing"
)

func TestPlanProportionTest(t *testing.T) {
	plan, err := PlanProportionTest(0.10, 0.02, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alpha != 0.05 || plan.Power != 0.8 {
		t.Errorf("defaults = %v/%v", plan.Alpha, plan.Power)
	}
	if plan.PerVariant < 3000 || plan.PerVariant > 5000 {
		t.Errorf("per-variant = %d, want textbook ≈3,800", plan.PerVariant)
	}
	if plan.Total != 2*plan.PerVariant {
		t.Errorf("total = %d", plan.Total)
	}
	if _, err := PlanProportionTest(0, 0.02, 0, 0); err == nil {
		t.Error("invalid baseline should fail")
	}
}

func TestPlanMeanTest(t *testing.T) {
	plan, err := PlanMeanTest(10, 1, 0.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// 2*(1.96+1.282)^2*100 ≈ 2102.
	if plan.PerVariant < 1900 || plan.PerVariant > 2300 {
		t.Errorf("per-variant = %d, want ≈2,100", plan.PerVariant)
	}
	if _, err := PlanMeanTest(-1, 1, 0, 0); err == nil {
		t.Error("negative sigma should fail")
	}
}

func TestMinimumDuration(t *testing.T) {
	plan := SampleSizePlan{PerVariant: 5000}
	// 5% of 50k req/h = 2,500 samples/hour -> 2 hours.
	hours, err := plan.MinimumDuration(0.05, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hours-2) > 1e-9 {
		t.Errorf("hours = %v, want 2", hours)
	}
	if _, err := plan.MinimumDuration(0, 50000); err == nil {
		t.Error("zero share should fail")
	}
	if _, err := plan.MinimumDuration(0.05, 0); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := plan.MinimumDuration(1.5, 50000); err == nil {
		t.Error("share above 1 should fail")
	}
}

func TestPlanIntegrationWithScheduling(t *testing.T) {
	// The planning loop the paper envisions: derive the sample size
	// from the hypothesis, then the minimum duration from the traffic.
	plan, err := PlanProportionTest(0.08, 0.01, 0.05, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	hours, err := plan.MinimumDuration(0.1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if hours <= 0 || hours > 24*14 {
		t.Errorf("implausible duration %v hours for a realistic plan", hours)
	}
}
