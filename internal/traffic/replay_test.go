// Replay integration: a recorded traffic profile, round-tripped through
// its CSV form, drives the load generator as an open-loop arrival
// process. This is an external-package test (traffic_test) because it
// pulls in loadgen, which itself imports traffic.
package traffic_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"contexp/internal/loadgen"
	"contexp/internal/router"
	"contexp/internal/traffic"
)

// replayProfile is the recorded shape under test; volumes per 30s slot
// work out to 15, 45, 90, and 30 requests/second.
func replayProfile() *traffic.Profile {
	return &traffic.Profile{
		Start:      time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC),
		SlotLength: 30 * time.Second,
		Slots:      []float64{450, 1350, 2700, 900},
	}
}

// roundTrip writes the profile as CSV and reads it back, failing the
// test on any drift.
func roundTrip(t *testing.T, orig *traffic.Profile) *traffic.Profile {
	t.Helper()
	var buf strings.Builder
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := traffic.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Start.Equal(orig.Start) || replayed.SlotLength != orig.SlotLength {
		t.Fatalf("round trip changed the frame: %+v", replayed)
	}
	if len(replayed.Slots) != len(orig.Slots) {
		t.Fatalf("round trip changed slot count: %d", len(replayed.Slots))
	}
	for i := range orig.Slots {
		if math.Abs(replayed.Slots[i]-orig.Slots[i]) > 1e-9 {
			t.Fatalf("slot %d drifted: %v vs %v", i, replayed.Slots[i], orig.Slots[i])
		}
	}
	return replayed
}

// replayCounts runs the replayed profile through loadgen and tallies
// arrivals per recorded slot.
func replayCounts(t *testing.T, p *traffic.Profile, uniform bool) []int {
	t.Helper()
	pop, err := loadgen.NewPopulation(loadgen.PopulationConfig{Size: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(p.Slots))
	target := loadgen.TargetFunc(func(_ *router.Request, at time.Time) (time.Duration, bool, error) {
		slot := int(at.Sub(p.Start) / p.SlotLength)
		if slot < 0 || slot >= len(counts) {
			t.Errorf("arrival at %v falls outside the recorded timeline", at)
			return 0, false, nil
		}
		counts[slot]++
		return 0, false, nil
	})
	_, err = loadgen.Run(loadgen.Config{
		Rate:     loadgen.ProfileRate(p, 1),
		Uniform:  uniform,
		Duration: p.SlotLength * time.Duration(len(p.Slots)),
		Start:    p.Start,
		Seed:     11,
	}, pop, target)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

// TestReplayDrivesLoadgen is the CSV-replay arrival-process test:
// record → CSV → read → replay through loadgen, asserting the generated
// timeline reproduces the recorded per-slot volumes. The uniform
// variant must land within a request or two of the recorded volume; the
// Poisson variant within sampling tolerance (4σ).
func TestReplayDrivesLoadgen(t *testing.T) {
	orig := replayProfile()
	replayed := roundTrip(t, orig)

	t.Run("uniform", func(t *testing.T) {
		counts := replayCounts(t, replayed, true)
		for i, want := range orig.Slots {
			if diff := math.Abs(float64(counts[i]) - want); diff > 2 {
				t.Errorf("slot %d: %d arrivals, recorded volume %v", i, counts[i], want)
			}
		}
	})
	t.Run("poisson", func(t *testing.T) {
		counts := replayCounts(t, replayed, false)
		for i, want := range orig.Slots {
			tol := math.Max(5, 4*math.Sqrt(want))
			if diff := math.Abs(float64(counts[i]) - want); diff > tol {
				t.Errorf("slot %d: %d arrivals, recorded volume %v (tolerance %v)", i, counts[i], want, tol)
			}
		}
	})
}
