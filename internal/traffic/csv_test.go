package traffic

import (
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Generate(monday(), 2, DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Start.Equal(orig.Start) {
		t.Errorf("start = %v, want %v", back.Start, orig.Start)
	}
	if back.SlotLength != orig.SlotLength {
		t.Errorf("slot length = %v, want %v", back.SlotLength, orig.SlotLength)
	}
	if back.NumSlots() != orig.NumSlots() {
		t.Fatalf("slots = %d, want %d", back.NumSlots(), orig.NumSlots())
	}
	for i := range orig.Slots {
		if back.Slots[i] != orig.Slots[i] {
			t.Fatalf("slot %d = %v, want %v", i, back.Slots[i], orig.Slots[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	mk := func(rows ...string) string {
		return "timestamp,volume\n" + strings.Join(rows, "\n") + "\n"
	}
	tests := []struct {
		name, src, wantSub string
	}{
		{"too short", "timestamp,volume\n2017-12-11T00:00:00Z,10\n", "at least two"},
		{"bad timestamp", mk("nope,10", "2017-12-11T01:00:00Z,10"), "bad timestamp"},
		{"bad volume", mk("2017-12-11T00:00:00Z,abc", "2017-12-11T01:00:00Z,10"), "bad volume"},
		{"negative volume", mk("2017-12-11T00:00:00Z,-5", "2017-12-11T01:00:00Z,10"), "negative"},
		{"not increasing", mk("2017-12-11T01:00:00Z,10", "2017-12-11T00:00:00Z,10"), "not increasing"},
		{"uneven spacing", mk(
			"2017-12-11T00:00:00Z,10",
			"2017-12-11T01:00:00Z,10",
			"2017-12-11T03:00:00Z,10"), "uneven"},
		{"wrong columns", "timestamp,volume\na,b,c\n", "csv"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tt.src))
			if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("err = %v, want containing %q", err, tt.wantSub)
			}
		})
	}
}

func TestReadCSVDifferentSlotLength(t *testing.T) {
	src := "timestamp,volume\n" +
		"2017-12-11T00:00:00Z,100\n" +
		"2017-12-11T00:15:00Z,110\n" +
		"2017-12-11T00:30:00Z,120\n"
	p, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotLength != 15*time.Minute {
		t.Errorf("slot length = %v", p.SlotLength)
	}
	if p.Total() != 330 {
		t.Errorf("total = %v", p.Total())
	}
}
