package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV import/export for traffic profiles, so Fenrir can be driven by a
// real production profile instead of the synthetic generator — the
// paper's evaluation "applied a real world traffic profile".
//
// Format: a header line, then one row per slot:
//
//	timestamp,volume
//	2017-12-11T00:00:00Z,48123.5
//	2017-12-11T01:00:00Z,45010.0
//
// Timestamps are RFC 3339 and must be evenly spaced and increasing;
// the spacing defines SlotLength.

// WriteCSV serializes the profile.
func (p *Profile) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "volume"}); err != nil {
		return fmt.Errorf("traffic: write header: %w", err)
	}
	for i, v := range p.Slots {
		row := []string{
			p.SlotTime(i).UTC().Format(time.RFC3339),
			strconv.FormatFloat(v, 'f', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traffic: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a profile written by WriteCSV (or exported from a
// monitoring system in the same shape).
func ReadCSV(r io.Reader) (*Profile, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: read csv: %w", err)
	}
	if len(rows) < 3 { // header + at least two slots (spacing needs two)
		return nil, fmt.Errorf("traffic: csv needs a header and at least two slots, got %d rows", len(rows))
	}
	rows = rows[1:] // drop header

	p := &Profile{Slots: make([]float64, 0, len(rows))}
	var prev time.Time
	for i, row := range rows {
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad timestamp %q: %w", i+1, row[0], err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad volume %q: %w", i+1, row[1], err)
		}
		if v < 0 {
			return nil, fmt.Errorf("traffic: row %d: negative volume %v", i+1, v)
		}
		switch i {
		case 0:
			p.Start = ts
		case 1:
			p.SlotLength = ts.Sub(prev)
			if p.SlotLength <= 0 {
				return nil, fmt.Errorf("traffic: timestamps not increasing at row %d", i+1)
			}
		default:
			if got := ts.Sub(prev); got != p.SlotLength {
				return nil, fmt.Errorf("traffic: uneven slot spacing at row %d: %v != %v", i+1, got, p.SlotLength)
			}
		}
		prev = ts
		p.Slots = append(p.Slots, v)
	}
	return p, nil
}
