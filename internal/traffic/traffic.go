// Package traffic models the user-traffic profiles that drive experiment
// scheduling (Chapter 3). A profile gives, per time slot (one hour in the
// paper's evaluation), the number of user requests available for
// experimentation; experiments consume fractions of a slot's traffic
// (Fig 3.3 "Example traffic profile and traffic consumption").
//
// The authors used a production traffic profile; we substitute a
// synthetic profile with the same structural features: a diurnal cycle,
// a weekly cycle with weekend troughs, and multiplicative noise.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Profile is a sequence of per-slot traffic volumes. Slot i covers
// [Start + i*SlotLength, Start + (i+1)*SlotLength).
type Profile struct {
	Start      time.Time
	SlotLength time.Duration
	Slots      []float64 // expected experimentable requests per slot
}

// NumSlots returns the number of slots in the profile.
func (p *Profile) NumSlots() int { return len(p.Slots) }

// Total returns the sum of traffic over all slots.
func (p *Profile) Total() float64 {
	var sum float64
	for _, v := range p.Slots {
		sum += v
	}
	return sum
}

// At returns the traffic volume of slot i, or 0 when i is out of range.
func (p *Profile) At(i int) float64 {
	if i < 0 || i >= len(p.Slots) {
		return 0
	}
	return p.Slots[i]
}

// SlotTime returns the start instant of slot i.
func (p *Profile) SlotTime(i int) time.Time {
	return p.Start.Add(time.Duration(i) * p.SlotLength)
}

// Window returns the total traffic in slots [from, from+length).
func (p *Profile) Window(from, length int) float64 {
	var sum float64
	for i := from; i < from+length && i < len(p.Slots); i++ {
		if i >= 0 {
			sum += p.Slots[i]
		}
	}
	return sum
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	slots := make([]float64, len(p.Slots))
	copy(slots, p.Slots)
	return &Profile{Start: p.Start, SlotLength: p.SlotLength, Slots: slots}
}

// GeneratorConfig parameterizes the synthetic seasonal profile.
type GeneratorConfig struct {
	// BaseVolume is the mean traffic per slot before seasonality.
	BaseVolume float64
	// DiurnalAmplitude in [0,1] scales the day/night swing. 0.6 means
	// the daily peak is ~1.6x base and the trough ~0.4x.
	DiurnalAmplitude float64
	// WeekendFactor in (0,1] multiplies Saturday/Sunday traffic.
	WeekendFactor float64
	// PeakHour is the local hour (0-23) of the diurnal maximum.
	PeakHour int
	// Noise is the multiplicative noise standard deviation (e.g., 0.05).
	Noise float64
	// Seed makes the profile reproducible.
	Seed int64
}

// DefaultGeneratorConfig returns the configuration used throughout the
// Chapter 3 evaluation: ~50k requests/hour base volume with a pronounced
// afternoon peak, quieter weekends, and 5% noise.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		BaseVolume:       50000,
		DiurnalAmplitude: 0.6,
		WeekendFactor:    0.7,
		PeakHour:         15,
		Noise:            0.05,
		Seed:             1,
	}
}

// Generate produces a profile of `days` days of hourly slots starting at
// start (which should be midnight for the peak-hour alignment to be
// meaningful).
func Generate(start time.Time, days int, cfg GeneratorConfig) (*Profile, error) {
	if days <= 0 {
		return nil, errors.New("traffic: days must be positive")
	}
	if cfg.BaseVolume <= 0 {
		return nil, errors.New("traffic: base volume must be positive")
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude > 1 {
		return nil, fmt.Errorf("traffic: diurnal amplitude %v outside [0,1]", cfg.DiurnalAmplitude)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := days * 24
	slots := make([]float64, n)
	for i := range slots {
		ts := start.Add(time.Duration(i) * time.Hour)
		hour := float64(ts.Hour())
		phase := 2 * math.Pi * (hour - float64(cfg.PeakHour)) / 24
		diurnal := 1 + cfg.DiurnalAmplitude*math.Cos(phase)
		weekly := 1.0
		if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
			weekly = cfg.WeekendFactor
		}
		noise := 1 + cfg.Noise*rng.NormFloat64()
		if noise < 0.1 {
			noise = 0.1
		}
		slots[i] = cfg.BaseVolume * diurnal * weekly * noise
	}
	return &Profile{Start: start, SlotLength: time.Hour, Slots: slots}, nil
}

// Consumption tracks, per slot, how much of the profile's traffic has been
// allocated to experiments. It enforces the overarching constraint that
// the summed traffic share per slot stays below a capacity ceiling, which
// reserves the remainder as the untouched control population.
type Consumption struct {
	profile  *Profile
	capacity float64 // max total share per slot, e.g. 0.8
	used     []float64
}

// NewConsumption creates a consumption tracker over profile with the given
// per-slot capacity ceiling in (0, 1].
func NewConsumption(profile *Profile, capacity float64) (*Consumption, error) {
	if capacity <= 0 || capacity > 1 {
		return nil, fmt.Errorf("traffic: capacity %v outside (0,1]", capacity)
	}
	return &Consumption{
		profile:  profile,
		capacity: capacity,
		used:     make([]float64, profile.NumSlots()),
	}, nil
}

// Capacity returns the per-slot share ceiling.
func (c *Consumption) Capacity() float64 { return c.capacity }

// Used returns the share already allocated in slot i.
func (c *Consumption) Used(i int) float64 {
	if i < 0 || i >= len(c.used) {
		return 0
	}
	return c.used[i]
}

// Free returns the share still available in slot i.
func (c *Consumption) Free(i int) float64 {
	if i < 0 || i >= len(c.used) {
		return 0
	}
	free := c.capacity - c.used[i]
	if free < 0 {
		return 0
	}
	return free
}

// CanAllocate reports whether share fits into every slot of
// [from, from+length).
func (c *Consumption) CanAllocate(from, length int, share float64) bool {
	if from < 0 || from+length > len(c.used) {
		return false
	}
	for i := from; i < from+length; i++ {
		if c.used[i]+share > c.capacity+1e-12 {
			return false
		}
	}
	return true
}

// Allocate reserves share in each slot of [from, from+length), returning
// the number of samples (requests) the allocation yields. It fails without
// side effects if any slot would exceed capacity.
func (c *Consumption) Allocate(from, length int, share float64) (float64, error) {
	if share < 0 {
		return 0, errors.New("traffic: negative share")
	}
	if !c.CanAllocate(from, length, share) {
		return 0, fmt.Errorf("traffic: allocation of %.3f in slots [%d,%d) exceeds capacity %.3f",
			share, from, from+length, c.capacity)
	}
	var samples float64
	for i := from; i < from+length; i++ {
		c.used[i] += share
		samples += share * c.profile.Slots[i]
	}
	return samples, nil
}

// Release returns share to each slot of [from, from+length). Shares are
// clamped at zero to stay safe under double releases.
func (c *Consumption) Release(from, length int, share float64) {
	for i := from; i < from+length && i < len(c.used); i++ {
		if i < 0 {
			continue
		}
		c.used[i] -= share
		if c.used[i] < 0 {
			c.used[i] = 0
		}
	}
}

// Reset clears all allocations.
func (c *Consumption) Reset() {
	for i := range c.used {
		c.used[i] = 0
	}
}

// Sparkline renders the profile as a unicode sparkline, `width` slots wide
// (downsampled by averaging), for the textual reproduction of Fig 3.3.
func (p *Profile) Sparkline(width int) string {
	if width <= 0 || len(p.Slots) == 0 {
		return ""
	}
	if width > len(p.Slots) {
		width = len(p.Slots)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	bucket := float64(len(p.Slots)) / float64(width)
	vals := make([]float64, width)
	var maxV float64
	for i := 0; i < width; i++ {
		lo := int(float64(i) * bucket)
		hi := int(float64(i+1) * bucket)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(p.Slots) {
			hi = len(p.Slots)
		}
		var sum float64
		for j := lo; j < hi; j++ {
			sum += p.Slots[j]
		}
		vals[i] = sum / float64(hi-lo)
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
