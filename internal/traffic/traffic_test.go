package traffic

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func monday() time.Time {
	return time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC) // a Monday
}

func TestGenerateBasics(t *testing.T) {
	p, err := Generate(monday(), 14, DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.NumSlots(), 14*24; got != want {
		t.Fatalf("NumSlots = %d, want %d", got, want)
	}
	for i, v := range p.Slots {
		if v <= 0 {
			t.Fatalf("slot %d non-positive: %v", i, v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	if _, err := Generate(monday(), 0, cfg); err == nil {
		t.Error("expected error for 0 days")
	}
	cfg.BaseVolume = -1
	if _, err := Generate(monday(), 7, cfg); err == nil {
		t.Error("expected error for negative base volume")
	}
	cfg = DefaultGeneratorConfig()
	cfg.DiurnalAmplitude = 1.5
	if _, err := Generate(monday(), 7, cfg); err == nil {
		t.Error("expected error for amplitude > 1")
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Noise = 0
	p, err := Generate(monday(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peak hour should carry more traffic than 3am.
	if p.Slots[cfg.PeakHour] <= p.Slots[3] {
		t.Errorf("peak hour %v not above trough %v", p.Slots[cfg.PeakHour], p.Slots[3])
	}
}

func TestGenerateWeekendTrough(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Noise = 0
	p, err := Generate(monday(), 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the same hour on Monday (day 0) and Saturday (day 5).
	mondayNoon := p.Slots[12]
	saturdayNoon := p.Slots[5*24+12]
	ratio := saturdayNoon / mondayNoon
	if math.Abs(ratio-cfg.WeekendFactor) > 0.01 {
		t.Errorf("weekend ratio = %v, want %v", ratio, cfg.WeekendFactor)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	p1, _ := Generate(monday(), 3, cfg)
	p2, _ := Generate(monday(), 3, cfg)
	for i := range p1.Slots {
		if p1.Slots[i] != p2.Slots[i] {
			t.Fatal("same seed must produce identical profiles")
		}
	}
	cfg.Seed = 2
	p3, _ := Generate(monday(), 3, cfg)
	same := true
	for i := range p1.Slots {
		if p1.Slots[i] != p3.Slots[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical profiles")
	}
}

func TestProfileAccessors(t *testing.T) {
	p := &Profile{Start: monday(), SlotLength: time.Hour, Slots: []float64{10, 20, 30}}
	if p.Total() != 60 {
		t.Errorf("Total = %v", p.Total())
	}
	if p.At(1) != 20 || p.At(-1) != 0 || p.At(5) != 0 {
		t.Error("At out-of-range handling wrong")
	}
	if got := p.SlotTime(2); !got.Equal(monday().Add(2 * time.Hour)) {
		t.Errorf("SlotTime(2) = %v", got)
	}
	if p.Window(1, 2) != 50 {
		t.Errorf("Window(1,2) = %v", p.Window(1, 2))
	}
	if p.Window(2, 10) != 30 {
		t.Errorf("Window clamps at end: %v", p.Window(2, 10))
	}
	c := p.Clone()
	c.Slots[0] = 999
	if p.Slots[0] == 999 {
		t.Error("Clone aliases slots")
	}
}

func TestConsumptionAllocateRelease(t *testing.T) {
	p := &Profile{Start: monday(), SlotLength: time.Hour, Slots: []float64{100, 100, 100, 100}}
	c, err := NewConsumption(p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Allocate(0, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if samples != 100 { // 0.5 * 100 * 2 slots
		t.Errorf("samples = %v, want 100", samples)
	}
	if c.Used(0) != 0.5 || math.Abs(c.Free(0)-0.3) > 1e-9 {
		t.Errorf("Used/Free wrong: %v / %v", c.Used(0), c.Free(0))
	}
	// Second allocation exceeding capacity fails atomically.
	if _, err := c.Allocate(1, 2, 0.5); err == nil {
		t.Fatal("expected capacity error")
	}
	if c.Used(2) != 0 {
		t.Error("failed allocation must not leave partial state")
	}
	// Fits in remaining capacity.
	if _, err := c.Allocate(0, 4, 0.3); err != nil {
		t.Fatalf("allocation within capacity failed: %v", err)
	}
	c.Release(0, 2, 0.5)
	if math.Abs(c.Used(0)-0.3) > 1e-9 {
		t.Errorf("Used(0) after release = %v, want 0.3", c.Used(0))
	}
	c.Reset()
	if c.Used(0) != 0 || c.Used(3) != 0 {
		t.Error("Reset did not clear usage")
	}
}

func TestConsumptionBounds(t *testing.T) {
	p := &Profile{Slots: []float64{100, 100}}
	c, _ := NewConsumption(p, 1.0)
	if c.CanAllocate(-1, 1, 0.1) {
		t.Error("negative from should not be allocatable")
	}
	if c.CanAllocate(1, 2, 0.1) {
		t.Error("allocation past end should fail")
	}
	if _, err := c.Allocate(0, 1, -0.1); err == nil {
		t.Error("negative share should error")
	}
	if c.Used(-1) != 0 || c.Free(99) != 0 {
		t.Error("out-of-range Used/Free should be 0")
	}
}

func TestNewConsumptionValidation(t *testing.T) {
	p := &Profile{Slots: []float64{1}}
	if _, err := NewConsumption(p, 0); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewConsumption(p, 1.1); err == nil {
		t.Error("capacity > 1 should error")
	}
}

func TestConsumptionNeverExceedsCapacityProperty(t *testing.T) {
	p, err := Generate(monday(), 2, DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(ops []struct {
		From, Length uint8
		Share        float64
	}) bool {
		c, err := NewConsumption(p, 0.8)
		if err != nil {
			return false
		}
		for _, op := range ops {
			share := math.Mod(math.Abs(op.Share), 1)
			// Ignore the error; failed allocations must be side-effect free.
			_, _ = c.Allocate(int(op.From), int(op.Length)%8, share)
		}
		for i := 0; i < p.NumSlots(); i++ {
			if c.Used(i) > 0.8+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparkline(t *testing.T) {
	p := &Profile{Slots: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	s := p.Sparkline(4)
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline width = %d, want 4", len([]rune(s)))
	}
	if p.Sparkline(0) != "" {
		t.Error("zero width should return empty string")
	}
	// Wider than slots clamps.
	if got := len([]rune(p.Sparkline(100))); got != 8 {
		t.Errorf("clamped width = %d, want 8", got)
	}
}
