// Package router implements runtime traffic routing, the network-level
// experimentation technique the study's participants named second-most
// (Section 2.5.1) and the mechanism Bifrost builds on to escape feature
// toggles: experimentation logic lives in routing tables, services stay
// black boxes.
//
// A Table maps each service to a Route: an ordered list of match rules
// (user group / header equality), a weighted split across versions with
// sticky per-user assignment, and a set of mirror versions that receive
// duplicated traffic for dark launches. Resolution order is rules
// first (first match wins), then the weighted split; the split hashes
// (user, service, salt) so a user keeps their assigned version for the
// whole experiment, and bumping Route.StickySalt reshuffles users
// between consecutive experiments.
//
// The table is the single source of truth shared by every consumer:
// the Bifrost engine mutates it as phases advance (Set, SetWeights,
// SetMirrors), in-process simulations resolve against it directly
// (Resolve), and Proxy exposes it at the wire level — one lightweight
// reverse proxy per service, the sidecar idiom of Section 4.4, reading
// routing identity from the X-User-ID and X-User-Groups headers and
// duplicating dark-launch traffic to mirror versions off the request
// path.
//
// Concurrency model: the table keeps its routes in an immutable
// snapshot behind an atomic pointer. Resolve loads the snapshot and
// reads precompiled routing state — no locks, no allocations — so the
// read path scales linearly with cores under production traffic.
// Mutations serialize on a writer-only mutex, build a fresh snapshot
// (copy-on-write), and publish it atomically; in-flight resolutions
// keep using the snapshot they loaded, the next request sees the new
// one. This is the immutable-config-snapshot idiom of Envoy/Istio-style
// data planes.
//
// Typical wiring:
//
//	table := router.NewTable()
//	_ = table.Set(router.Route{
//	    Service:  "recommendation",
//	    Backends: []router.Backend{{Version: "v1", Weight: 1}},
//	})
//	proxy := router.NewProxy("recommendation", table)
//	_ = proxy.RegisterUpstream("v1", "http://127.0.0.1:9001")
//	// http.ListenAndServe(addr, proxy)
//
// Experiments then shift traffic by mutating the table; in-flight
// proxies pick the change up on the next request.
package router

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"contexp/internal/expmodel"
	"contexp/internal/fnvx"
)

// Request carries the routing-relevant attributes of a user request.
type Request struct {
	UserID string
	Groups []expmodel.UserGroup
	Header map[string]string
}

// InGroup reports whether the request's user belongs to g.
func (r *Request) InGroup(g expmodel.UserGroup) bool {
	for _, have := range r.Groups {
		if have == g {
			return true
		}
	}
	return false
}

// Matcher decides whether a rule applies to a request.
type Matcher interface {
	Match(*Request) bool
	String() string
}

// GroupMatcher matches requests whose user belongs to the group.
type GroupMatcher struct {
	Group expmodel.UserGroup
}

var _ Matcher = GroupMatcher{}

// Match implements Matcher.
func (m GroupMatcher) Match(r *Request) bool { return r.InGroup(m.Group) }

// String implements Matcher.
func (m GroupMatcher) String() string { return "group=" + string(m.Group) }

// HeaderMatcher matches requests carrying Header[Key] == Value.
type HeaderMatcher struct {
	Key, Value string
}

var _ Matcher = HeaderMatcher{}

// Match implements Matcher.
func (m HeaderMatcher) Match(r *Request) bool { return r.Header[m.Key] == m.Value }

// String implements Matcher.
func (m HeaderMatcher) String() string { return "header[" + m.Key + "]=" + m.Value }

// Rule routes matching requests to a fixed version, bypassing the
// weighted split. Rules implement the "specific user groups, regions"
// targeting reported in Section 2.6.
type Rule struct {
	Name    string
	Match   Matcher
	Version string
}

// Backend is one arm of a weighted traffic split.
type Backend struct {
	Version string
	Weight  float64
}

// Route is the routing configuration of one service.
type Route struct {
	Service  string
	Rules    []Rule
	Backends []Backend
	// Mirrors receive a duplicate of every request routed by the
	// weighted split; their responses are discarded (dark launch).
	Mirrors []string
	// StickySalt changes the user→arm hash; bump it to reshuffle
	// assignments between experiments so users don't land in the same
	// bucket across consecutive A/B tests.
	StickySalt string
}

// clone returns a Route whose slices are independent of the receiver's.
// Matcher values inside Rules are shared; they are immutable by
// convention.
func (r Route) clone() Route {
	cp := r
	cp.Rules = append([]Rule(nil), r.Rules...)
	cp.Backends = append([]Backend(nil), r.Backends...)
	cp.Mirrors = append([]string(nil), r.Mirrors...)
	return cp
}

// normalize validates the route and normalizes backend weights to sum 1.
func (r *Route) normalize() error {
	if len(r.Backends) == 0 {
		return fmt.Errorf("router: route for %q has no backends", r.Service)
	}
	var total float64
	for _, b := range r.Backends {
		if b.Weight < 0 {
			return fmt.Errorf("router: negative weight %v for %s@%s", b.Weight, r.Service, b.Version)
		}
		total += b.Weight
	}
	if total <= 0 {
		return fmt.Errorf("router: route for %q has zero total weight", r.Service)
	}
	// Already-normalized weights pass through bit-identically: a route
	// that traveled control plane → wire → agent and is re-installed
	// must not drift by one ulp per hop (the byte-identity guarantee of
	// the snapshot replay protocol). A sum within epsilon of 1 leaves
	// at most ~1e-9 of probability mass on the fallback arm.
	if math.Abs(total-1) <= 1e-9 {
		return nil
	}
	for i := range r.Backends {
		r.Backends[i].Weight /= total
	}
	return nil
}

// Decision is the outcome of resolving a request.
type Decision struct {
	Version string
	// Mirrors lists versions that must receive a duplicated request.
	// The slice is shared with the table's immutable snapshot; callers
	// must not modify it.
	Mirrors []string
	// Rule is the name of the matching rule, or "" for the weighted split.
	Rule string
	// Sticky is true when the version came from the hash split.
	Sticky bool
}

// compiledRoute is the resolve-ready form of one route: the canonical
// deep-owned Route plus the precomputed split state Resolve walks.
// compiledRoutes are immutable once published in a snapshot.
type compiledRoute struct {
	route Route
	// cum[i] is the cumulative weight through backend i; cum[len-1] ≈ 1.
	cum []float64
	// versions[i] is Backends[i].Version, kept adjacent for the split walk.
	versions []string
}

func compileRoute(route Route) (*compiledRoute, error) {
	cp := route.clone()
	if err := cp.normalize(); err != nil {
		return nil, err
	}
	cr := &compiledRoute{
		route:    cp,
		cum:      make([]float64, len(cp.Backends)),
		versions: make([]string, len(cp.Backends)),
	}
	var cum float64
	for i, b := range cp.Backends {
		cum += b.Weight
		cr.cum[i] = cum
		cr.versions[i] = b.Version
	}
	return cr, nil
}

// snapshot is one immutable generation of the routing table.
type snapshot struct {
	routes  map[string]*compiledRoute
	version uint64
}

// Table is a concurrency-safe routing table. Reads (Resolve, Route,
// Services, Version, String) are lock-free against an atomically
// swapped immutable snapshot; mutations serialize on a writer mutex and
// publish a new snapshot. The zero value is not usable; construct with
// NewTable.
type Table struct {
	// writeMu serializes snapshot construction; readers never take it.
	writeMu sync.Mutex
	snap    atomic.Pointer[snapshot]
	// anonSeq spreads anonymous (userless) requests over the split
	// without a lock.
	anonSeq atomic.Uint64

	// subMu guards the change-notification registry (see Subscribe);
	// notification is a coalescing non-blocking send, so holding it on
	// the mutation path never blocks on a consumer.
	subMu  sync.Mutex
	subs   map[uint64]chan struct{}
	subSeq uint64
}

// NewTable creates an empty routing table.
func NewTable() *Table {
	t := &Table{}
	t.snap.Store(&snapshot{routes: make(map[string]*compiledRoute)})
	return t
}

// ErrNoRoute is returned when no route exists for the requested service.
var ErrNoRoute = errors.New("router: no route for service")

// mutate builds the next snapshot under the writer mutex: it copies the
// current route map, lets fn edit the copy, and publishes it with a
// bumped version. fn returning an error leaves the table untouched.
func (t *Table) mutate(fn func(routes map[string]*compiledRoute) error) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	cur := t.snap.Load()
	next := make(map[string]*compiledRoute, len(cur.routes)+1)
	for k, v := range cur.routes {
		next[k] = v
	}
	if err := fn(next); err != nil {
		return err
	}
	t.snap.Store(&snapshot{routes: next, version: cur.version + 1})
	t.notify()
	return nil
}

// Set installs (or replaces) the route for route.Service. Weights are
// normalized; invalid routes are rejected without modifying the table.
func (t *Table) Set(route Route) error {
	cr, err := compileRoute(route)
	if err != nil {
		return err
	}
	return t.mutate(func(routes map[string]*compiledRoute) error {
		routes[cr.route.Service] = cr
		return nil
	})
}

// SetWeights replaces only the weighted split of an existing route,
// keeping rules and mirrors. It is the operation gradual rollouts use to
// shift traffic step by step.
func (t *Table) SetWeights(service string, backends []Backend) error {
	return t.mutate(func(routes map[string]*compiledRoute) error {
		cur, ok := routes[service]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoRoute, service)
		}
		next := cur.route
		next.Backends = backends
		cr, err := compileRoute(next)
		if err != nil {
			return err
		}
		routes[service] = cr
		return nil
	})
}

// SetMirrors replaces the mirror set of an existing route (dark launch
// on/off switch).
func (t *Table) SetMirrors(service string, mirrors []string) error {
	return t.mutate(func(routes map[string]*compiledRoute) error {
		cur, ok := routes[service]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoRoute, service)
		}
		next := cur.route
		next.Mirrors = mirrors
		cr, err := compileRoute(next)
		if err != nil {
			return err
		}
		routes[service] = cr
		return nil
	})
}

// Remove deletes the route for service (no-op when absent; the snapshot
// version still advances).
func (t *Table) Remove(service string) {
	_ = t.mutate(func(routes map[string]*compiledRoute) error {
		delete(routes, service)
		return nil
	})
}

// Route returns a deep copy of the route for service: the returned
// Rules, Backends, and Mirrors slices are the caller's to modify and
// never alias the live table.
func (t *Table) Route(service string) (Route, error) {
	cr, ok := t.snap.Load().routes[service]
	if !ok {
		return Route{}, fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	return cr.route.clone(), nil
}

// Services returns all configured service names, sorted.
func (t *Table) Services() []string {
	snap := t.snap.Load()
	out := make([]string, 0, len(snap.routes))
	for s := range snap.routes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Version returns the snapshot version: it bumps on every mutation, so
// control-plane surfaces can detect routing churn.
func (t *Table) Version() uint64 {
	return t.snap.Load().version
}

// Resolve decides which version of service handles req.
// Resolution order: first matching rule wins; otherwise the weighted
// split assigns the user stickily by hash. Anonymous requests (empty
// UserID) draw from an atomic sequence per call and are therefore not
// sticky.
//
// Resolve is the data-plane hot path: it takes no locks and performs no
// allocations — it reads one immutable snapshot for the whole decision.
func (t *Table) Resolve(service string, req *Request) (Decision, error) {
	cr := t.snap.Load().routes[service]
	if cr == nil {
		return Decision{}, fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	rules := cr.route.Rules
	for i := range rules {
		if rules[i].Match.Match(req) {
			return Decision{Version: rules[i].Version, Mirrors: cr.route.Mirrors, Rule: rules[i].Name}, nil
		}
	}
	point := t.stickyPoint(req.UserID, service, cr.route.StickySalt)
	idx := len(cr.versions) - 1
	for i, c := range cr.cum {
		if point < c {
			idx = i
			break
		}
	}
	return Decision{Version: cr.versions[idx], Mirrors: cr.route.Mirrors, Sticky: req.UserID != ""}, nil
}

// stickyPoint maps (user, service, salt) to [0,1) with allocation-free
// FNV-1a (fnvx): the hot path neither allocates a hash.Hash64 nor
// formats strings. For identified users the byte stream is identical to
// the previous hash.Hash64 implementation, so sticky assignments are
// stable across this refactor. Anonymous requests hash a per-table
// atomic sequence number instead of a user identity.
func (t *Table) stickyPoint(userID, service, salt string) float64 {
	h := fnvx.Offset64
	if userID == "" {
		n := t.anonSeq.Add(1)
		for shift := uint(0); shift < 64; shift += 8 {
			h = fnvx.Byte(h, byte(n>>shift))
		}
	} else {
		h = fnvx.String(h, userID)
	}
	h = fnvx.Byte(h, 0)
	h = fnvx.String(h, service)
	h = fnvx.Byte(h, 0)
	h = fnvx.String(h, salt)
	return float64(h>>11) / float64(1<<53)
}

// String renders the table for debugging and the expctl tool.
func (t *Table) String() string {
	snap := t.snap.Load()
	names := make([]string, 0, len(snap.routes))
	for s := range snap.routes {
		names = append(names, s)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r := &snap.routes[name].route
		fmt.Fprintf(&b, "%s:\n", name)
		for _, rule := range r.Rules {
			fmt.Fprintf(&b, "  rule %s: %s -> %s\n", rule.Name, rule.Match, rule.Version)
		}
		for _, be := range r.Backends {
			fmt.Fprintf(&b, "  %5.1f%% -> %s\n", be.Weight*100, be.Version)
		}
		for _, m := range r.Mirrors {
			fmt.Fprintf(&b, "  mirror -> %s\n", m)
		}
	}
	return b.String()
}
