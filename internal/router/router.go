// Package router implements runtime traffic routing, the network-level
// experimentation technique the study's participants named second-most
// (Section 2.5.1) and the mechanism Bifrost builds on to escape feature
// toggles: experimentation logic lives in routing tables, services stay
// black boxes.
//
// A Table maps each service to a Route: an ordered list of match rules
// (user group / header equality), a weighted split across versions with
// sticky per-user assignment, and a set of mirror versions that receive
// duplicated traffic for dark launches. Resolution order is rules
// first (first match wins), then the weighted split; the split hashes
// (user, service, salt) so a user keeps their assigned version for the
// whole experiment, and bumping Route.StickySalt reshuffles users
// between consecutive experiments.
//
// The table is the single source of truth shared by every consumer:
// the Bifrost engine mutates it as phases advance (Set, SetWeights,
// SetMirrors), in-process simulations resolve against it directly
// (Resolve), and Proxy exposes it at the wire level — one lightweight
// reverse proxy per service, the sidecar idiom of Section 4.4, reading
// routing identity from the X-User-ID and X-User-Groups headers and
// duplicating dark-launch traffic to mirror versions off the request
// path.
//
// Typical wiring:
//
//	table := router.NewTable()
//	_ = table.Set(router.Route{
//	    Service:  "recommendation",
//	    Backends: []router.Backend{{Version: "v1", Weight: 1}},
//	})
//	proxy := router.NewProxy("recommendation", table)
//	_ = proxy.RegisterUpstream("v1", "http://127.0.0.1:9001")
//	// http.ListenAndServe(addr, proxy)
//
// Experiments then shift traffic by mutating the table; in-flight
// proxies pick the change up on the next request.
package router

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"contexp/internal/expmodel"
)

// Request carries the routing-relevant attributes of a user request.
type Request struct {
	UserID string
	Groups []expmodel.UserGroup
	Header map[string]string
}

// InGroup reports whether the request's user belongs to g.
func (r *Request) InGroup(g expmodel.UserGroup) bool {
	for _, have := range r.Groups {
		if have == g {
			return true
		}
	}
	return false
}

// Matcher decides whether a rule applies to a request.
type Matcher interface {
	Match(*Request) bool
	String() string
}

// GroupMatcher matches requests whose user belongs to the group.
type GroupMatcher struct {
	Group expmodel.UserGroup
}

var _ Matcher = GroupMatcher{}

// Match implements Matcher.
func (m GroupMatcher) Match(r *Request) bool { return r.InGroup(m.Group) }

// String implements Matcher.
func (m GroupMatcher) String() string { return "group=" + string(m.Group) }

// HeaderMatcher matches requests carrying Header[Key] == Value.
type HeaderMatcher struct {
	Key, Value string
}

var _ Matcher = HeaderMatcher{}

// Match implements Matcher.
func (m HeaderMatcher) Match(r *Request) bool { return r.Header[m.Key] == m.Value }

// String implements Matcher.
func (m HeaderMatcher) String() string { return "header[" + m.Key + "]=" + m.Value }

// Rule routes matching requests to a fixed version, bypassing the
// weighted split. Rules implement the "specific user groups, regions"
// targeting reported in Section 2.6.
type Rule struct {
	Name    string
	Match   Matcher
	Version string
}

// Backend is one arm of a weighted traffic split.
type Backend struct {
	Version string
	Weight  float64
}

// Route is the routing configuration of one service.
type Route struct {
	Service  string
	Rules    []Rule
	Backends []Backend
	// Mirrors receive a duplicate of every request routed by the
	// weighted split; their responses are discarded (dark launch).
	Mirrors []string
	// StickySalt changes the user→arm hash; bump it to reshuffle
	// assignments between experiments so users don't land in the same
	// bucket across consecutive A/B tests.
	StickySalt string
}

// normalize validates the route and normalizes backend weights to sum 1.
func (r *Route) normalize() error {
	if len(r.Backends) == 0 {
		return fmt.Errorf("router: route for %q has no backends", r.Service)
	}
	var total float64
	for _, b := range r.Backends {
		if b.Weight < 0 {
			return fmt.Errorf("router: negative weight %v for %s@%s", b.Weight, r.Service, b.Version)
		}
		total += b.Weight
	}
	if total <= 0 {
		return fmt.Errorf("router: route for %q has zero total weight", r.Service)
	}
	for i := range r.Backends {
		r.Backends[i].Weight /= total
	}
	return nil
}

// Decision is the outcome of resolving a request.
type Decision struct {
	Version string
	// Mirrors lists versions that must receive a duplicated request.
	Mirrors []string
	// Rule is the name of the matching rule, or "" for the weighted split.
	Rule string
	// Sticky is true when the version came from the hash split.
	Sticky bool
}

// Table is a concurrency-safe routing table. The zero value is not
// usable; construct with NewTable.
type Table struct {
	mu     sync.RWMutex
	routes map[string]*Route
	// version bumps on every mutation; metrics/debug surfaces expose it.
	version uint64
}

// NewTable creates an empty routing table.
func NewTable() *Table {
	return &Table{routes: make(map[string]*Route)}
}

// ErrNoRoute is returned when no route exists for the requested service.
var ErrNoRoute = errors.New("router: no route for service")

// Set installs (or replaces) the route for route.Service. Weights are
// normalized; invalid routes are rejected without modifying the table.
func (t *Table) Set(route Route) error {
	cp := route
	cp.Rules = append([]Rule(nil), route.Rules...)
	cp.Backends = append([]Backend(nil), route.Backends...)
	cp.Mirrors = append([]string(nil), route.Mirrors...)
	if err := cp.normalize(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[cp.Service] = &cp
	t.version++
	return nil
}

// SetWeights replaces only the weighted split of an existing route,
// keeping rules and mirrors. It is the operation gradual rollouts use to
// shift traffic step by step.
func (t *Table) SetWeights(service string, backends []Backend) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	route, ok := t.routes[service]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	cp := *route
	cp.Backends = append([]Backend(nil), backends...)
	if err := cp.normalize(); err != nil {
		return err
	}
	t.routes[service] = &cp
	t.version++
	return nil
}

// SetMirrors replaces the mirror set of an existing route (dark launch
// on/off switch).
func (t *Table) SetMirrors(service string, mirrors []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	route, ok := t.routes[service]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	cp := *route
	cp.Mirrors = append([]string(nil), mirrors...)
	t.routes[service] = &cp
	t.version++
	return nil
}

// Remove deletes the route for service (no-op when absent).
func (t *Table) Remove(service string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.routes, service)
	t.version++
}

// Route returns a copy of the route for service.
func (t *Table) Route(service string) (Route, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	route, ok := t.routes[service]
	if !ok {
		return Route{}, fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	return *route, nil
}

// Services returns all configured service names, sorted.
func (t *Table) Services() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.routes))
	for s := range t.routes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Version returns the mutation counter.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Resolve decides which version of service handles req.
// Resolution order: first matching rule wins; otherwise the weighted
// split assigns the user stickily by hash. Anonymous requests (empty
// UserID) are hashed per call and are therefore not sticky.
func (t *Table) Resolve(service string, req *Request) (Decision, error) {
	t.mu.RLock()
	route, ok := t.routes[service]
	t.mu.RUnlock()
	if !ok {
		return Decision{}, fmt.Errorf("%w: %s", ErrNoRoute, service)
	}
	for _, rule := range route.Rules {
		if rule.Match.Match(req) {
			return Decision{Version: rule.Version, Mirrors: route.Mirrors, Rule: rule.Name}, nil
		}
	}
	point := stickyPoint(req.UserID, service, route.StickySalt)
	var cum float64
	version := route.Backends[len(route.Backends)-1].Version
	for _, b := range route.Backends {
		cum += b.Weight
		if point < cum {
			version = b.Version
			break
		}
	}
	return Decision{Version: version, Mirrors: route.Mirrors, Sticky: req.UserID != ""}, nil
}

var anonCounter struct {
	mu sync.Mutex
	n  uint64
}

// stickyPoint maps (user, service, salt) to [0,1).
func stickyPoint(userID, service, salt string) float64 {
	h := fnv.New64a()
	if userID == "" {
		anonCounter.mu.Lock()
		anonCounter.n++
		n := anonCounter.n
		anonCounter.mu.Unlock()
		fmt.Fprintf(h, "anon-%d", n)
	} else {
		h.Write([]byte(userID))
	}
	h.Write([]byte{0})
	h.Write([]byte(service))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// String renders the table for debugging and the expctl tool.
func (t *Table) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.routes))
	for s := range t.routes {
		names = append(names, s)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r := t.routes[name]
		fmt.Fprintf(&b, "%s:\n", name)
		for _, rule := range r.Rules {
			fmt.Fprintf(&b, "  rule %s: %s -> %s\n", rule.Name, rule.Match, rule.Version)
		}
		for _, be := range r.Backends {
			fmt.Fprintf(&b, "  %5.1f%% -> %s\n", be.Weight*100, be.Version)
		}
		for _, m := range r.Mirrors {
			fmt.Fprintf(&b, "  mirror -> %s\n", m)
		}
	}
	return b.String()
}
