package router

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
)

// This file is the router's distribution surface: the pieces that turn
// one in-process Table into a control plane feeding a fleet of edge
// agents. The copy-on-write snapshot the Table already swaps on every
// mutation is the natural unit to ship — Export captures it as a value,
// DiffSnapshots derives the version-keyed delta between two captures,
// and ApplySnapshot/ApplyDelta install either on a receiving table
// while adopting the *control plane's* version numbering, so an agent's
// applied version is directly comparable to the brain's published one.

// TableSnapshot is a deep-copied capture of the whole routing table at
// one version. Routes are sorted by Service, so two snapshots of equal
// content are structurally identical — the property the wire codec's
// byte-identity tests lean on.
type TableSnapshot struct {
	Version uint64
	Routes  []Route
}

// TableDelta is the difference between two snapshots of the same table:
// apply it to a table sitting exactly at FromVersion and the table
// becomes byte-identical to one that exported ToVersion. Upserts carry
// whole routes (not field patches), sorted by Service; Removes is
// sorted. A delta may span several version bumps when the producer
// coalesced swaps; an empty Upserts+Removes still advances the version
// (e.g. a Remove of an absent service bumps the source table).
type TableDelta struct {
	FromVersion uint64
	ToVersion   uint64
	Upserts     []Route
	Removes     []string
}

// Empty reports whether the delta changes no routes (it may still
// advance the version).
func (d TableDelta) Empty() bool { return len(d.Upserts) == 0 && len(d.Removes) == 0 }

// Export captures the current snapshot as a deep copy: the returned
// routes never alias the live table.
func (t *Table) Export() TableSnapshot {
	snap := t.snap.Load()
	names := make([]string, 0, len(snap.routes))
	for name := range snap.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := TableSnapshot{Version: snap.version, Routes: make([]Route, 0, len(names))}
	for _, name := range names {
		out.Routes = append(out.Routes, snap.routes[name].route.clone())
	}
	return out
}

// Subscribe registers for change notification: the returned channel
// receives after every snapshot swap. Notifications coalesce (buffer of
// one) — a slow consumer wakes once and reads the table's latest state,
// it never queues a backlog. The cancel function unregisters; after it
// returns the channel receives nothing further.
func (t *Table) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	t.subMu.Lock()
	if t.subs == nil {
		t.subs = make(map[uint64]chan struct{})
	}
	id := t.subSeq
	t.subSeq++
	t.subs[id] = ch
	t.subMu.Unlock()
	return ch, func() {
		t.subMu.Lock()
		delete(t.subs, id)
		t.subMu.Unlock()
	}
}

// notify wakes every subscriber without blocking: each channel holds at
// most one pending notification.
func (t *Table) notify() {
	t.subMu.Lock()
	for _, ch := range t.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	t.subMu.Unlock()
}

// ErrVersionSkew reports a delta that does not chain onto the table's
// current version; the receiver must resynchronize from a full
// snapshot.
var ErrVersionSkew = errors.New("router: delta does not chain onto current snapshot version")

// ApplySnapshot replaces the table's entire contents with snap,
// adopting snap.Version verbatim. Every route is validated and compiled
// before the swap: an invalid route rejects the whole snapshot and
// leaves the table untouched.
func (t *Table) ApplySnapshot(snap TableSnapshot) error {
	next := make(map[string]*compiledRoute, len(snap.Routes))
	for _, r := range snap.Routes {
		cr, err := compileRoute(r)
		if err != nil {
			return err
		}
		next[cr.route.Service] = cr
	}
	t.writeMu.Lock()
	t.snap.Store(&snapshot{routes: next, version: snap.Version})
	t.writeMu.Unlock()
	t.notify()
	return nil
}

// ApplyDelta advances the table from d.FromVersion to d.ToVersion. The
// table must sit exactly at FromVersion (ErrVersionSkew otherwise), and
// every upsert compiles before anything is installed — a bad delta
// leaves the table untouched at its current version.
func (t *Table) ApplyDelta(d TableDelta) error {
	compiled := make([]*compiledRoute, 0, len(d.Upserts))
	for _, r := range d.Upserts {
		cr, err := compileRoute(r)
		if err != nil {
			return err
		}
		compiled = append(compiled, cr)
	}
	t.writeMu.Lock()
	cur := t.snap.Load()
	if cur.version != d.FromVersion {
		t.writeMu.Unlock()
		return fmt.Errorf("%w: table at %d, delta from %d", ErrVersionSkew, cur.version, d.FromVersion)
	}
	next := make(map[string]*compiledRoute, len(cur.routes)+len(compiled))
	for k, v := range cur.routes {
		next[k] = v
	}
	for _, cr := range compiled {
		next[cr.route.Service] = cr
	}
	for _, svc := range d.Removes {
		delete(next, svc)
	}
	t.snap.Store(&snapshot{routes: next, version: d.ToVersion})
	t.writeMu.Unlock()
	t.notify()
	return nil
}

// DiffSnapshots derives the delta turning old into cur: routes new or
// changed in cur become Upserts, routes present only in old become
// Removes. Both input snapshots must come from Export (routes sorted by
// Service).
func DiffSnapshots(old, cur TableSnapshot) TableDelta {
	d := TableDelta{FromVersion: old.Version, ToVersion: cur.Version}
	prev := make(map[string]*Route, len(old.Routes))
	for i := range old.Routes {
		prev[old.Routes[i].Service] = &old.Routes[i]
	}
	for i := range cur.Routes {
		r := &cur.Routes[i]
		if o, ok := prev[r.Service]; !ok || !routeEqual(o, r) {
			d.Upserts = append(d.Upserts, r.clone())
		}
	}
	seen := make(map[string]bool, len(cur.Routes))
	for i := range cur.Routes {
		seen[cur.Routes[i].Service] = true
	}
	for i := range old.Routes {
		if !seen[old.Routes[i].Service] {
			d.Removes = append(d.Removes, old.Routes[i].Service)
		}
	}
	sort.Strings(d.Removes)
	return d
}

// routeEqual compares two routes structurally. Matchers compare with
// reflect.DeepEqual so custom non-comparable Matcher implementations
// never panic a ==.
func routeEqual(a, b *Route) bool {
	if a.Service != b.Service || a.StickySalt != b.StickySalt ||
		len(a.Rules) != len(b.Rules) || len(a.Backends) != len(b.Backends) ||
		len(a.Mirrors) != len(b.Mirrors) {
		return false
	}
	for i := range a.Rules {
		ra, rb := &a.Rules[i], &b.Rules[i]
		if ra.Name != rb.Name || ra.Version != rb.Version || !reflect.DeepEqual(ra.Match, rb.Match) {
			return false
		}
	}
	for i := range a.Backends {
		if a.Backends[i] != b.Backends[i] {
			return false
		}
	}
	for i := range a.Mirrors {
		if a.Mirrors[i] != b.Mirrors[i] {
			return false
		}
	}
	return true
}
