package router

import (
	"fmt"
	"testing"
)

func BenchmarkResolveWeighted(b *testing.B) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.2)); err != nil {
		b.Fatal(err)
	}
	req := &Request{UserID: "user-12345"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Resolve("catalog", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveParallel exercises the lock-free read path from all
// cores at once. The acceptance bar for the copy-on-write snapshot
// design: zero allocations per resolution and linear scaling, since
// readers share nothing but an atomic pointer load.
func BenchmarkResolveParallel(b *testing.B) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.2)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		req := &Request{UserID: "user-12345"}
		for pb.Next() {
			if _, err := tbl.Resolve("catalog", req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveParallelWithChurn measures the read path while a
// writer continuously swaps snapshots, the gradual-rollout steady state.
func BenchmarkResolveParallelWithChurn(b *testing.B) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.2)); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		w := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			w += 0.01
			if w >= 1 {
				w = 0.01
			}
			_ = tbl.SetWeights("catalog", []Backend{
				{Version: "v1", Weight: 1 - w}, {Version: "v2", Weight: w},
			})
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		req := &Request{UserID: "user-12345"}
		for pb.Next() {
			if _, err := tbl.Resolve("catalog", req); err != nil {
				b.Fatal(err)
			}
		}
	})
	close(stop)
}

func BenchmarkResolveWithRules(b *testing.B) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0.2)
	for i := 0; i < 8; i++ {
		route.Rules = append(route.Rules, Rule{
			Name:    fmt.Sprintf("rule-%d", i),
			Match:   HeaderMatcher{Key: fmt.Sprintf("X-H%d", i), Value: "1"},
			Version: "v2",
		})
	}
	if err := tbl.Set(route); err != nil {
		b.Fatal(err)
	}
	req := &Request{UserID: "user-12345", Header: map[string]string{"X-H7": "1"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Resolve("catalog", req); err != nil {
			b.Fatal(err)
		}
	}
}
