package router

import (
	"fmt"
	"testing"
)

func BenchmarkResolveWeighted(b *testing.B) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.2)); err != nil {
		b.Fatal(err)
	}
	req := &Request{UserID: "user-12345"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Resolve("catalog", req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveWithRules(b *testing.B) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0.2)
	for i := 0; i < 8; i++ {
		route.Rules = append(route.Rules, Rule{
			Name:    fmt.Sprintf("rule-%d", i),
			Match:   HeaderMatcher{Key: fmt.Sprintf("X-H%d", i), Value: "1"},
			Version: "v2",
		})
	}
	if err := tbl.Set(route); err != nil {
		b.Fatal(err)
	}
	req := &Request{UserID: "user-12345", Header: map[string]string{"X-H7": "1"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Resolve("catalog", req); err != nil {
			b.Fatal(err)
		}
	}
}
