package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

func backendServer(t *testing.T, name string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		fmt.Fprintf(w, "hello from %s", name)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestProxyRoutesByWeight(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(Route{Service: "catalog", Backends: []Backend{
		{Version: "v1", Weight: 1},
		{Version: "v2", Weight: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	v1 := backendServer(t, "v1", nil)
	v2 := backendServer(t, "v2", nil)

	p := NewProxy("catalog", tbl)
	defer p.Close()
	if err := p.RegisterUpstream("v1", v1.URL); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUpstream("v2", v2.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	req, _ := http.NewRequest(http.MethodGet, front.URL+"/products", nil)
	req.Header.Set("X-User-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello from v1" {
		t.Errorf("body = %q", body)
	}

	// Flip all traffic to v2 at runtime.
	if err := tbl.SetWeights("catalog", []Backend{
		{Version: "v1", Weight: 0}, {Version: "v2", Weight: 1},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello from v2" {
		t.Errorf("after weight shift body = %q", body)
	}
}

func TestProxyRuleRouting(t *testing.T) {
	tbl := NewTable()
	route := Route{
		Service:  "catalog",
		Backends: []Backend{{Version: "v1", Weight: 1}},
		Rules:    []Rule{{Name: "beta", Match: GroupMatcher{Group: "beta"}, Version: "v2"}},
	}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	v1 := backendServer(t, "v1", nil)
	v2 := backendServer(t, "v2", nil)
	p := NewProxy("catalog", tbl)
	defer p.Close()
	_ = p.RegisterUpstream("v1", v1.URL)
	_ = p.RegisterUpstream("v2", v2.URL)
	front := httptest.NewServer(p)
	defer front.Close()

	req, _ := http.NewRequest(http.MethodGet, front.URL+"/", nil)
	req.Header.Set("X-User-ID", "bob")
	req.Header.Set("X-User-Groups", "beta, staff")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello from v2" {
		t.Errorf("beta user routed to %q", body)
	}
}

func TestProxyDarkLaunchMirrors(t *testing.T) {
	var darkHits atomic.Int64
	v1 := backendServer(t, "v1", nil)
	dark := backendServer(t, "dark", &darkHits)

	tbl := NewTable()
	route := Route{
		Service:  "catalog",
		Backends: []Backend{{Version: "v1", Weight: 1}},
		Mirrors:  []string{"v2-dark"},
	}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	p := NewProxy("catalog", tbl)
	defer p.Close()
	_ = p.RegisterUpstream("v1", v1.URL)
	_ = p.RegisterUpstream("v2-dark", dark.URL)
	front := httptest.NewServer(p)
	defer front.Close()

	const n = 20
	for i := 0; i < n; i++ {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/x", nil)
		req.Header.Set("X-User-ID", fmt.Sprintf("u%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Mirrors are async; wait for them to drain.
	deadline := time.Now().Add(2 * time.Second)
	for darkHits.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := darkHits.Load(); got != n {
		t.Errorf("dark launch hits = %d, want %d", got, n)
	}
}

func TestProxyErrors(t *testing.T) {
	tbl := NewTable()
	p := NewProxy("ghost", tbl)
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	// No route at all.
	resp, err := http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}

	// Route exists but upstream is not registered.
	_ = tbl.Set(Route{Service: "ghost", Backends: []Backend{{Version: "v1", Weight: 1}}})
	resp, err = http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502 for missing upstream", resp.StatusCode)
	}

	if err := p.RegisterUpstream("v1", "://bad-url"); err == nil {
		t.Error("bad upstream URL should error")
	}
}

func TestProxySetsVersionHeader(t *testing.T) {
	var gotVersion atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotVersion.Store(r.Header.Get("X-Experiment-Version"))
	}))
	defer srv.Close()

	tbl := NewTable()
	_ = tbl.Set(Route{Service: "s", Backends: []Backend{{Version: "v7", Weight: 1}}})
	p := NewProxy("s", tbl)
	defer p.Close()
	_ = p.RegisterUpstream("v7", srv.URL)
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotVersion.Load() != "v7" {
		t.Errorf("X-Experiment-Version = %v", gotVersion.Load())
	}
}

func TestProxyCountsMirrorDrops(t *testing.T) {
	// A worker-less proxy with a tiny mirror queue: the first job fits,
	// everything past it must be dropped — and counted, since silent
	// drops bias dark-launch sample counts.
	p := &Proxy{
		service:   "s",
		table:     NewTable(),
		upstreams: make(map[string]*httputil.ReverseProxy),
		targets:   make(map[string]*url.URL),
		mirror:    make(chan mirrorJob, 1),
		closed:    make(chan struct{}),
	}
	req := httptest.NewRequest(http.MethodGet, "/checkout", nil)
	p.enqueueMirrors(req, []string{"v2"})
	if got := p.MirrorDrops(); got != 0 {
		t.Fatalf("drops after first enqueue = %d, want 0", got)
	}
	p.enqueueMirrors(req, []string{"v2"})
	p.enqueueMirrors(req, []string{"v2", "v3"})
	if got := p.MirrorDrops(); got != 3 {
		t.Errorf("drops = %d, want 3 (queue capacity 1)", got)
	}
}
