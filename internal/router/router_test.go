package router

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"contexp/internal/expmodel"
)

func twoArmRoute(service string, canaryWeight float64) Route {
	return Route{
		Service: service,
		Backends: []Backend{
			{Version: "v1", Weight: 1 - canaryWeight},
			{Version: "v2", Weight: canaryWeight},
		},
	}
}

func TestSetValidation(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(Route{Service: "s"}); err == nil {
		t.Error("route without backends should fail")
	}
	if err := tbl.Set(Route{Service: "s", Backends: []Backend{{Version: "v1", Weight: -1}}}); err == nil {
		t.Error("negative weight should fail")
	}
	if err := tbl.Set(Route{Service: "s", Backends: []Backend{{Version: "v1", Weight: 0}}}); err == nil {
		t.Error("zero total weight should fail")
	}
	if err := tbl.Set(twoArmRoute("s", 0.2)); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
}

func TestWeightNormalization(t *testing.T) {
	tbl := NewTable()
	// Weights 3:1 normalize to 0.75 / 0.25.
	err := tbl.Set(Route{Service: "s", Backends: []Backend{
		{Version: "v1", Weight: 3}, {Version: "v2", Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Route("s")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Backends[0].Weight-0.75) > 1e-12 {
		t.Errorf("normalized weight = %v", r.Backends[0].Weight)
	}
}

func TestResolveSplitProportions(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.2)); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var v2 int
	for i := 0; i < n; i++ {
		req := &Request{UserID: fmt.Sprintf("user-%d", i)}
		d, err := tbl.Resolve("catalog", req)
		if err != nil {
			t.Fatal(err)
		}
		if d.Version == "v2" {
			v2++
		}
	}
	got := float64(v2) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("v2 share = %v, want ≈ 0.2", got)
	}
}

func TestResolveSticky(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.5)); err != nil {
		t.Fatal(err)
	}
	req := &Request{UserID: "alice"}
	first, err := tbl.Resolve("catalog", req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Sticky {
		t.Error("identified user should be sticky")
	}
	for i := 0; i < 100; i++ {
		d, _ := tbl.Resolve("catalog", req)
		if d.Version != first.Version {
			t.Fatal("sticky assignment changed between calls")
		}
	}
}

func TestStickySurvivesWeightShift(t *testing.T) {
	// Growing the canary arm must never move users who were already on
	// the canary back to baseline (monotone rollout).
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("catalog", 0.1)); err != nil {
		t.Fatal(err)
	}
	onCanary := map[string]bool{}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("user-%d", i)
		d, _ := tbl.Resolve("catalog", &Request{UserID: id})
		if d.Version == "v2" {
			onCanary[id] = true
		}
	}
	if err := tbl.SetWeights("catalog", []Backend{
		{Version: "v1", Weight: 0.5}, {Version: "v2", Weight: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	for id := range onCanary {
		d, _ := tbl.Resolve("catalog", &Request{UserID: id})
		if d.Version != "v2" {
			t.Fatalf("user %s fell off the canary when weights grew", id)
		}
	}
}

func TestRulesTakePrecedence(t *testing.T) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0)
	route.Rules = []Rule{
		{Name: "beta-users", Match: GroupMatcher{Group: "beta"}, Version: "v2"},
		{Name: "qa-header", Match: HeaderMatcher{Key: "X-QA", Value: "1"}, Version: "v2"},
	}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	d, _ := tbl.Resolve("catalog", &Request{UserID: "u", Groups: []expmodel.UserGroup{"beta"}})
	if d.Version != "v2" || d.Rule != "beta-users" {
		t.Errorf("group rule not applied: %+v", d)
	}
	d, _ = tbl.Resolve("catalog", &Request{UserID: "u", Header: map[string]string{"X-QA": "1"}})
	if d.Version != "v2" || d.Rule != "qa-header" {
		t.Errorf("header rule not applied: %+v", d)
	}
	d, _ = tbl.Resolve("catalog", &Request{UserID: "u"})
	if d.Version != "v1" || d.Rule != "" {
		t.Errorf("fallthrough wrong: %+v", d)
	}
}

func TestMirrors(t *testing.T) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0)
	route.Mirrors = []string{"v2-dark"}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	d, _ := tbl.Resolve("catalog", &Request{UserID: "u"})
	if len(d.Mirrors) != 1 || d.Mirrors[0] != "v2-dark" {
		t.Errorf("mirrors = %v", d.Mirrors)
	}
	if err := tbl.SetMirrors("catalog", nil); err != nil {
		t.Fatal(err)
	}
	d, _ = tbl.Resolve("catalog", &Request{UserID: "u"})
	if len(d.Mirrors) != 0 {
		t.Errorf("mirrors after clear = %v", d.Mirrors)
	}
	if err := tbl.SetMirrors("nope", nil); !errors.Is(err, ErrNoRoute) {
		t.Errorf("SetMirrors on missing route: %v", err)
	}
}

func TestResolveNoRoute(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Resolve("ghost", &Request{}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	if _, err := tbl.Route("ghost"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Route err = %v", err)
	}
	if err := tbl.SetWeights("ghost", nil); !errors.Is(err, ErrNoRoute) {
		t.Errorf("SetWeights err = %v", err)
	}
}

func TestRemoveAndServices(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Set(twoArmRoute("b", 0.1))
	_ = tbl.Set(twoArmRoute("a", 0.1))
	svcs := tbl.Services()
	if len(svcs) != 2 || svcs[0] != "a" || svcs[1] != "b" {
		t.Errorf("Services = %v", svcs)
	}
	tbl.Remove("a")
	if len(tbl.Services()) != 1 {
		t.Error("Remove failed")
	}
	v := tbl.Version()
	tbl.Remove("nonexistent")
	if tbl.Version() != v+1 {
		t.Error("Version should bump on every mutation")
	}
}

func TestSetDoesNotAliasCallerSlices(t *testing.T) {
	tbl := NewTable()
	backends := []Backend{{Version: "v1", Weight: 1}}
	route := Route{Service: "s", Backends: backends}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	backends[0].Version = "hacked"
	r, _ := tbl.Route("s")
	if r.Backends[0].Version != "v1" {
		t.Error("table aliases caller-owned slice")
	}
}

// TestRouteReturnsDeepCopy is the regression test for the shallow-copy
// bug: Route() used to return a Route whose Rules/Backends/Mirrors
// slices aliased the live table, so callers could corrupt routing
// state.
func TestRouteReturnsDeepCopy(t *testing.T) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0.25)
	route.Rules = []Rule{{Name: "beta", Match: GroupMatcher{Group: "beta"}, Version: "v2"}}
	route.Mirrors = []string{"v3"}
	if err := tbl.Set(route); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every slice of the returned copy.
	got.Rules[0].Version = "hacked"
	got.Rules[0].Name = "hacked"
	got.Backends[0].Version = "hacked"
	got.Backends[0].Weight = 99
	got.Mirrors[0] = "hacked"

	fresh, err := tbl.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rules[0].Version != "v2" || fresh.Rules[0].Name != "beta" {
		t.Errorf("rules aliased live table: %+v", fresh.Rules[0])
	}
	if fresh.Backends[0].Version != "v1" || fresh.Backends[0].Weight != 0.75 {
		t.Errorf("backends aliased live table: %+v", fresh.Backends[0])
	}
	if fresh.Mirrors[0] != "v3" {
		t.Errorf("mirrors aliased live table: %v", fresh.Mirrors)
	}
	// Resolution still follows the uncorrupted table.
	d, err := tbl.Resolve("catalog", &Request{UserID: "u", Groups: []expmodel.UserGroup{"beta"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != "v2" || d.Rule != "beta" {
		t.Errorf("resolution affected by caller mutation: %+v", d)
	}
}

// TestResolveRacesSnapshotSwap races lock-free Resolve calls against
// continuous snapshot swaps from every mutation type. Run under -race
// this validates the copy-on-write publication protocol; in any mode it
// validates that readers always observe a complete, valid route.
func TestResolveRacesSnapshotSwap(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(twoArmRoute("s", 0.1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d, err := tbl.Resolve("s", &Request{UserID: fmt.Sprintf("u%d-%d", g, i)})
				if err != nil {
					t.Error(err)
					return
				}
				if d.Version != "v1" && d.Version != "v2" {
					t.Errorf("torn read: version %q", d.Version)
					return
				}
				if _, err := tbl.Route("s"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		w := float64(i%9+1) / 10
		if err := tbl.SetWeights("s", []Backend{
			{Version: "v1", Weight: 1 - w}, {Version: "v2", Weight: w},
		}); err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			_ = tbl.SetMirrors("s", []string{"v2"})
		case 1:
			_ = tbl.SetMirrors("s", nil)
		default:
			route := twoArmRoute("s", w)
			route.Rules = []Rule{{Name: "beta", Match: GroupMatcher{Group: "beta"}, Version: "v2"}}
			if err := tbl.Set(route); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if tbl.Version() == 0 {
		t.Error("snapshot version did not advance")
	}
}

func TestStickySaltReshuffles(t *testing.T) {
	tblA := NewTable()
	tblB := NewTable()
	ra := twoArmRoute("s", 0.5)
	rb := twoArmRoute("s", 0.5)
	rb.StickySalt = "experiment-2"
	_ = tblA.Set(ra)
	_ = tblB.Set(rb)
	var moved int
	const n = 2000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("u%d", i)
		da, _ := tblA.Resolve("s", &Request{UserID: id})
		db, _ := tblB.Resolve("s", &Request{UserID: id})
		if da.Version != db.Version {
			moved++
		}
	}
	// With a different salt roughly half the users should land elsewhere.
	if moved < n/4 {
		t.Errorf("salt change moved only %d/%d users", moved, n)
	}
}

func TestAnonymousNotSticky(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Set(twoArmRoute("s", 0.5))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		d, _ := tbl.Resolve("s", &Request{})
		if d.Sticky {
			t.Fatal("anonymous request flagged sticky")
		}
		seen[d.Version] = true
	}
	if len(seen) != 2 {
		t.Error("anonymous requests should spread over both arms")
	}
}

func TestResolveWeightsSumProperty(t *testing.T) {
	// Property: for any weights, resolution always returns one of the
	// configured versions.
	f := func(w1, w2, w3 float64, user string) bool {
		abs := func(x float64) float64 {
			x = math.Abs(x)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 100) + 0.001
		}
		tbl := NewTable()
		err := tbl.Set(Route{Service: "s", Backends: []Backend{
			{Version: "a", Weight: abs(w1)},
			{Version: "b", Weight: abs(w2)},
			{Version: "c", Weight: abs(w3)},
		}})
		if err != nil {
			return false
		}
		d, err := tbl.Resolve("s", &Request{UserID: user})
		if err != nil {
			return false
		}
		return d.Version == "a" || d.Version == "b" || d.Version == "c"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentResolveAndMutate(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Set(twoArmRoute("s", 0.1))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tbl.Resolve("s", &Request{UserID: fmt.Sprintf("u%d-%d", g, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		w := float64(i%10) / 10
		if w == 0 {
			w = 0.05
		}
		_ = tbl.SetWeights("s", []Backend{{Version: "v1", Weight: 1 - w}, {Version: "v2", Weight: w}})
	}
	close(stop)
	wg.Wait()
}

func TestTableString(t *testing.T) {
	tbl := NewTable()
	route := twoArmRoute("catalog", 0.25)
	route.Rules = []Rule{{Name: "beta", Match: GroupMatcher{Group: "beta"}, Version: "v2"}}
	route.Mirrors = []string{"v3"}
	_ = tbl.Set(route)
	s := tbl.String()
	for _, want := range []string{"catalog:", "beta", "mirror -> v3", "v2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
