package router

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"contexp/internal/expmodel"
)

// Tracing headers the data plane stamps on requests so backends can
// emit spans that assemble into end-to-end traces:
//
//	X-Trace-ID     hex trace identifier; the entry proxy mints one when
//	               the request arrives without it
//	X-Parent-Span  hex span identifier of the calling backend's span
//	X-Experiment-Version  the version the routing table resolved
const (
	HeaderTraceID    = "X-Trace-ID"
	HeaderParentSpan = "X-Parent-Span"
)

// Proxy is the HTTP face of a routing Table: the lightweight
// per-service proxy the Bifrost architecture places in front of service
// instances (Section 4.4, and the same pattern Istio later adopted).
// It resolves the experiment version from the routing table, forwards
// the request to the registered upstream for (service, version), and
// fires mirror copies for dark launches.
//
// Request attributes are read from headers:
//
//	X-User-ID      sticky routing identity
//	X-User-Groups  comma-separated group memberships
type Proxy struct {
	service string
	table   *Table

	mu        sync.RWMutex
	upstreams map[string]*httputil.ReverseProxy // version -> proxy
	targets   map[string]*url.URL

	// MirrorWorkers bounds concurrent mirror requests (default 8).
	mirror chan mirrorJob
	wg     sync.WaitGroup
	closed chan struct{}

	// mirrorDrops counts mirror jobs discarded because the queue was
	// full: dark-launch coverage silently lost unless surfaced.
	mirrorDrops atomic.Uint64
}

type mirrorJob struct {
	version string
	req     *http.Request
	body    []byte
}

var _ http.Handler = (*Proxy)(nil)

// NewProxy creates a proxy for one service backed by table.
func NewProxy(service string, table *Table) *Proxy {
	p := &Proxy{
		service:   service,
		table:     table,
		upstreams: make(map[string]*httputil.ReverseProxy),
		targets:   make(map[string]*url.URL),
		mirror:    make(chan mirrorJob, 256),
		closed:    make(chan struct{}),
	}
	for i := 0; i < 8; i++ {
		p.wg.Add(1)
		go p.mirrorWorker()
	}
	return p
}

// Close stops the mirror workers and waits for them to drain.
func (p *Proxy) Close() {
	close(p.closed)
	close(p.mirror)
	p.wg.Wait()
}

// MirrorDrops reports how many dark-launch mirror jobs were discarded
// because the mirror queue was full. A growing value means the
// candidate sees less traffic than the baseline, biasing dark-launch
// sample counts.
func (p *Proxy) MirrorDrops() uint64 { return p.mirrorDrops.Load() }

// RegisterUpstream maps a version to its backend base URL.
func (p *Proxy) RegisterUpstream(version, baseURL string) error {
	u, err := url.Parse(baseURL)
	if err != nil {
		return fmt.Errorf("router: bad upstream url %q: %w", baseURL, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets[version] = u
	p.upstreams[version] = httputil.NewSingleHostReverseProxy(u)
	return nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req := requestFromHTTP(r)
	decision, err := p.table.Resolve(p.service, req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	p.mu.RLock()
	upstream := p.upstreams[decision.Version]
	p.mu.RUnlock()
	if upstream == nil {
		http.Error(w, fmt.Sprintf("router: no upstream for %s@%s", p.service, decision.Version),
			http.StatusBadGateway)
		return
	}
	// Fire mirrors before forwarding so the primary's response time does
	// not include mirror dispatch beyond the channel send.
	if len(decision.Mirrors) > 0 {
		p.enqueueMirrors(r, decision.Mirrors)
	}
	// Mint a trace identity at the edge: the first proxy a user request
	// hits assigns the trace ID that every downstream span joins.
	if r.Header.Get(HeaderTraceID) == "" {
		r.Header.Set(HeaderTraceID, strconv.FormatUint(rand.Uint64()|1, 16))
	}
	r.Header.Set("X-Experiment-Version", decision.Version)
	upstream.ServeHTTP(w, r)
}

func (p *Proxy) enqueueMirrors(r *http.Request, mirrors []string) {
	var body []byte
	if r.Body != nil && r.ContentLength > 0 {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			body = b
			r.Body = io.NopCloser(strings.NewReader(string(b)))
		}
	}
	for _, m := range mirrors {
		job := mirrorJob{version: m, req: r.Clone(r.Context()), body: body}
		select {
		case p.mirror <- job:
		default:
			// Mirror queue full: dark-launch traffic is best effort; the
			// primary path must never block on it. The drop is counted so
			// /healthz can reveal how much dark-launch coverage was lost.
			p.mirrorDrops.Add(1)
		}
	}
}

func (p *Proxy) mirrorWorker() {
	defer p.wg.Done()
	client := &http.Client{}
	for job := range p.mirror {
		p.mu.RLock()
		target := p.targets[job.version]
		p.mu.RUnlock()
		if target == nil {
			continue
		}
		u := *target
		u.Path = singleJoin(u.Path, job.req.URL.Path)
		u.RawQuery = job.req.URL.RawQuery
		var body io.Reader
		if job.body != nil {
			body = strings.NewReader(string(job.body))
		}
		req, err := http.NewRequest(job.req.Method, u.String(), body)
		if err != nil {
			continue
		}
		req.Header = job.req.Header.Clone()
		req.Header.Set("X-Dark-Launch", "true")
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		// Responses of dark launches are discarded.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func singleJoin(a, b string) string {
	aslash := strings.HasSuffix(a, "/")
	bslash := strings.HasPrefix(b, "/")
	switch {
	case aslash && bslash:
		return a + b[1:]
	case !aslash && !bslash:
		return a + "/" + b
	}
	return a + b
}

// requestFromHTTP extracts routing attributes from HTTP headers.
func requestFromHTTP(r *http.Request) *Request {
	req := &Request{
		UserID: r.Header.Get("X-User-ID"),
		Header: map[string]string{},
	}
	for k := range r.Header {
		req.Header[k] = r.Header.Get(k)
	}
	if groups := r.Header.Get("X-User-Groups"); groups != "" {
		for _, g := range strings.Split(groups, ",") {
			g = strings.TrimSpace(g)
			if g != "" {
				req.Groups = append(req.Groups, expmodel.UserGroup(g))
			}
		}
	}
	return req
}
