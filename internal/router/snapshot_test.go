package router

import (
	"errors"
	"testing"

	"contexp/internal/expmodel"
)

func demoRoute(service string) Route {
	return Route{
		Service: service,
		Rules: []Rule{
			{Name: "beta", Match: GroupMatcher{Group: expmodel.UserGroup("beta")}, Version: "v2"},
			{Name: "qa", Match: HeaderMatcher{Key: "X-QA", Value: "1"}, Version: "v2"},
		},
		Backends:   []Backend{{Version: "v1", Weight: 0.9}, {Version: "v2", Weight: 0.1}},
		Mirrors:    []string{"v3"},
		StickySalt: "exp-1",
	}
}

func TestExportDeepCopy(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set(demoRoute("shop")); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Export()
	if snap.Version != 1 || len(snap.Routes) != 1 {
		t.Fatalf("export = version %d, %d routes", snap.Version, len(snap.Routes))
	}
	snap.Routes[0].Mirrors[0] = "mutated"
	snap.Routes[0].Backends[0].Weight = 42
	got, err := tbl.Route("shop")
	if err != nil {
		t.Fatal(err)
	}
	if got.Mirrors[0] != "v3" || got.Backends[0].Weight == 42 {
		t.Error("mutating an export leaked into the live table")
	}
}

func TestApplySnapshotAdoptsVersion(t *testing.T) {
	src := NewTable()
	for _, svc := range []string{"a", "b", "c"} {
		if err := src.Set(demoRoute(svc)); err != nil {
			t.Fatal(err)
		}
	}
	dst := NewTable()
	if err := dst.ApplySnapshot(src.Export()); err != nil {
		t.Fatal(err)
	}
	if dst.Version() != src.Version() {
		t.Errorf("dst version %d, src %d", dst.Version(), src.Version())
	}
	if dst.String() != src.String() {
		t.Errorf("tables differ:\n%s\nvs:\n%s", dst.String(), src.String())
	}
}

func TestApplySnapshotRejectsInvalidWholesale(t *testing.T) {
	dst := NewTable()
	if err := dst.Set(demoRoute("keep")); err != nil {
		t.Fatal(err)
	}
	before := dst.String()
	bad := TableSnapshot{Version: 99, Routes: []Route{
		demoRoute("ok"),
		{Service: "broken"}, // no backends
	}}
	if err := dst.ApplySnapshot(bad); err == nil {
		t.Fatal("expected error for snapshot with invalid route")
	}
	if dst.String() != before || dst.Version() != 1 {
		t.Error("failed apply modified the table")
	}
}

func TestDiffAndApplyDelta(t *testing.T) {
	src := NewTable()
	if err := src.Set(demoRoute("a")); err != nil {
		t.Fatal(err)
	}
	if err := src.Set(demoRoute("b")); err != nil {
		t.Fatal(err)
	}
	old := src.Export()

	// One upsert (weights shift), one add, one remove — then an
	// absent-service removal that bumps the version with no content.
	if err := src.SetWeights("a", []Backend{{Version: "v1", Weight: 0.5}, {Version: "v2", Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := src.Set(demoRoute("c")); err != nil {
		t.Fatal(err)
	}
	src.Remove("b")
	cur := src.Export()

	d := DiffSnapshots(old, cur)
	if d.FromVersion != old.Version || d.ToVersion != cur.Version {
		t.Fatalf("delta spans %d->%d, want %d->%d", d.FromVersion, d.ToVersion, old.Version, cur.Version)
	}
	if len(d.Upserts) != 2 || len(d.Removes) != 1 || d.Removes[0] != "b" {
		t.Fatalf("delta = %d upserts, removes %v", len(d.Upserts), d.Removes)
	}

	dst := NewTable()
	if err := dst.ApplySnapshot(old); err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if dst.String() != src.String() || dst.Version() != src.Version() {
		t.Errorf("replayed table differs:\n%s\nvs:\n%s", dst.String(), src.String())
	}

	// Version-bump-only mutation diffs to an empty delta that still
	// advances the version.
	src.Remove("never-existed")
	next := src.Export()
	d2 := DiffSnapshots(cur, next)
	if !d2.Empty() || d2.ToVersion != next.Version {
		t.Errorf("empty-change delta = %+v", d2)
	}
	if err := dst.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if dst.Version() != next.Version {
		t.Errorf("dst version %d after empty delta, want %d", dst.Version(), next.Version)
	}
}

func TestApplyDeltaVersionSkew(t *testing.T) {
	dst := NewTable()
	if err := dst.Set(demoRoute("a")); err != nil {
		t.Fatal(err)
	}
	err := dst.ApplyDelta(TableDelta{FromVersion: 7, ToVersion: 8})
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("err = %v, want ErrVersionSkew", err)
	}
	// A bad upsert rejects before the version check mutates anything.
	err = dst.ApplyDelta(TableDelta{FromVersion: 1, ToVersion: 2, Upserts: []Route{{Service: "broken"}}})
	if err == nil || errors.Is(err, ErrVersionSkew) {
		t.Fatalf("err = %v, want compile error", err)
	}
	if dst.Version() != 1 {
		t.Errorf("version moved to %d on failed delta", dst.Version())
	}
}

func TestSubscribeCoalesces(t *testing.T) {
	tbl := NewTable()
	ch, cancel := tbl.Subscribe()
	defer cancel()
	// Three mutations with no intervening read: exactly one pending
	// notification (coalesced), and the table's state is the latest.
	for i := 0; i < 3; i++ {
		if err := tbl.Set(demoRoute("svc")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ch:
	default:
		t.Fatal("no notification after mutations")
	}
	select {
	case <-ch:
		t.Fatal("notifications did not coalesce")
	default:
	}
	if tbl.Version() != 3 {
		t.Errorf("version = %d", tbl.Version())
	}
	cancel()
	tbl.Remove("svc")
	select {
	case <-ch:
		t.Fatal("notified after cancel")
	default:
	}
}

func TestApplyNotifiesSubscribers(t *testing.T) {
	tbl := NewTable()
	ch, cancel := tbl.Subscribe()
	defer cancel()
	if err := tbl.ApplySnapshot(TableSnapshot{Version: 5, Routes: []Route{demoRoute("a")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("ApplySnapshot did not notify")
	}
	if err := tbl.ApplyDelta(TableDelta{FromVersion: 5, ToVersion: 6}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("ApplyDelta did not notify")
	}
}
