package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"contexp/internal/microsim"
	"contexp/internal/traffic"
)

var testTarget = Target{Service: "api", Candidate: "v2", Dependency: "backend"}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil || d.Std() != 90*time.Second {
		t.Errorf("string form: %v %v", d.Std(), err)
	}
	if err := json.Unmarshal([]byte(`2.5`), &d); err != nil || d.Std() != 2500*time.Millisecond {
		t.Errorf("numeric form: %v %v", d.Std(), err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Error("bad duration string should fail")
	}
	out, err := json.Marshal(Duration(time.Minute))
	if err != nil || string(out) != `"1m0s"` {
		t.Errorf("marshal: %s %v", out, err)
	}
}

func TestCatalogCompiles(t *testing.T) {
	specs := Catalog(testTarget)
	if len(specs) < 6 {
		t.Fatalf("catalog has %d scenarios, the grading matrix needs at least 6", len(specs))
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec.Name] {
			t.Errorf("duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
		sc, err := spec.Compile()
		if err != nil {
			t.Errorf("%s: compile: %v", spec.Name, err)
			continue
		}
		if sc.Duration <= 0 || sc.Rate == nil {
			t.Errorf("%s: compiled scenario incomplete: %+v", spec.Name, sc)
		}
		// Rates must be non-negative over the whole run.
		for el := time.Duration(0); el <= sc.Duration; el += sc.Duration / 64 {
			if r := sc.Rate(el); r < 0 || math.IsNaN(r) {
				t.Errorf("%s: rate(%s) = %v", spec.Name, el, r)
			}
		}
	}
	for _, required := range []string{
		ScenarioSteady, ScenarioRamp, ScenarioFlashCrowd, ScenarioDiurnal,
		ScenarioErrorStorm, ScenarioBlackout,
	} {
		if !seen[required] {
			t.Errorf("catalog is missing required scenario %q", required)
		}
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	for _, spec := range Catalog(testTarget) {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", spec.Name, err, data)
		}
		if back.Name != spec.Name || back.Duration != spec.Duration || len(back.Faults) != len(spec.Faults) {
			t.Errorf("%s: round trip drifted: %+v vs %+v", spec.Name, back, spec)
		}
	}
}

func TestByName(t *testing.T) {
	spec, err := ByName(testTarget, ScenarioErrorStorm)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Faults) != 1 || spec.Faults[0].Service != "api" || spec.Faults[0].Version != "v2" {
		t.Errorf("error storm should target the candidate, got %+v", spec.Faults)
	}
	if _, err := ByName(testTarget, "nonexistent"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty object", `{}`},
		{"no duration", `{"name":"x","arrival":{"process":"steady","rps":10}}`},
		{"no process", `{"name":"x","duration":"10s","arrival":{}}`},
		{"unknown process", `{"name":"x","duration":"10s","arrival":{"process":"warp"}}`},
		{"steady without rps", `{"name":"x","duration":"10s","arrival":{"process":"steady"}}`},
		{"burst without window", `{"name":"x","duration":"10s","arrival":{"process":"burst","rps":10,"factor":2}}`},
		{"unknown field", `{"name":"x","duration":"10s","arrival":{"process":"steady","rps":10},"surprise":1}`},
		{"bad fault kind", `{"name":"x","duration":"10s","arrival":{"process":"steady","rps":10},"faults":[{"kind":"meteor","service":"s","start":"0s","duration":"5s"}]}`},
		{"fault without service", `{"name":"x","duration":"10s","arrival":{"process":"steady","rps":10},"faults":[{"kind":"blackout","start":"0s","duration":"5s"}]}`},
		{"replay without profile", `{"name":"x","duration":"10s","arrival":{"process":"replay"}}`},
		{"not json", `steady 80rps please`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.json)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestReplayScenario(t *testing.T) {
	p := &traffic.Profile{
		Start:      time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC),
		SlotLength: 30 * time.Second,
		Slots:      []float64{600, 1800, 900},
	}
	var csv strings.Builder
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Name:     "replayed",
		Duration: Duration(90 * time.Second),
		Arrival:  ArrivalSpec{Process: ProcessReplay, ProfileCSV: csv.String()},
	}
	sc, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Slot volumes over 30s slots: 20, 60, 30 rps.
	for _, c := range []struct {
		at   time.Duration
		want float64
	}{{0, 20}, {45 * time.Second, 60}, {80 * time.Second, 30}, {2 * time.Minute, 0}} {
		if got := sc.Rate(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("rate(%s) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestInjectorFromScenario(t *testing.T) {
	spec, err := ByName(testTarget, ScenarioBlackout)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	in, err := sc.Injector(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("blackout scenario should yield an injector")
	}
	if got := in.ActiveFaults(epoch.Add(50 * time.Second)); got != 1 {
		t.Errorf("ActiveFaults inside window = %d", got)
	}
	if got := in.ActiveFaults(epoch); got != 0 {
		t.Errorf("ActiveFaults before window = %d", got)
	}

	// A fault-free scenario yields no injector.
	steady, err := ByName(testTarget, ScenarioSteady)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := steady.Compile()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := sc2.Injector(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if in2 != nil {
		t.Error("steady scenario should have no injector")
	}
	var _ *microsim.Injector = in2
}
