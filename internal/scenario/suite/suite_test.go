package suite

import (
	"reflect"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/scenario"
)

// TestGradingMatrix is the headline acceptance suite: every builtin
// scenario runs against every strategy kind, and the run must reach the
// graded outcome — rollback when the candidate release is really bad,
// promotion when the trouble is ambient or there is no trouble at all.
func TestGradingMatrix(t *testing.T) {
	for _, exp := range Matrix() {
		exp := exp
		if exp.Want == nil {
			t.Errorf("catalog scenario %q has no grade in the matrix", exp.Spec.Name)
			continue
		}
		for _, kind := range Kinds() {
			kind := kind
			t.Run(exp.Spec.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				res, err := RunScenario(exp.Spec, kind, Options{Logf: t.Logf})
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != exp.Want[kind] {
					t.Fatalf("status = %v, want %v (requests=%d failures=%d events=%d)",
						res.Status, exp.Want[kind], res.Requests, res.Failures, len(res.Events))
				}
				if res.Requests == 0 {
					t.Fatal("scenario generated no traffic")
				}

				switch exp.Spec.Name {
				case scenario.ScenarioErrorStorm, scenario.ScenarioLatencySpike:
					// A real regression must be caught by the in-phase
					// checks, before the phase would have ended anyway.
					phaseEnd := Epoch.Add(90 * time.Second)
					if res.FinishedAt.IsZero() || res.FinishedAt.After(phaseEnd) {
						t.Errorf("rollback landed at %v, want during the canary phase (before %v)",
							res.FinishedAt, phaseEnd)
					}
					if res.Failures == 0 {
						t.Error("regression scenario produced no failed requests")
					}
				case scenario.ScenarioBlackout:
					// The outage must be user-visible — otherwise the
					// scenario is not exercising anything.
					if res.Failures == 0 {
						t.Error("blackout produced no failed requests")
					}
				}

				if kind == KindTopology {
					// Structural checks must keep producing verdicts and
					// must never fail: the candidate is topologically
					// identical to the baseline in every scenario,
					// including the partial dependency outage.
					if res.TopologyFail > 0 {
						t.Errorf("topology check failed %d times on a structurally clean candidate",
							res.TopologyFail)
					}
					if res.Status == bifrost.StatusSucceeded && res.TopologyPass == 0 {
						t.Error("promoted run never got a passing topology verdict")
					}
				}
			})
		}
	}
}

// TestSuiteDeterministic asserts a scenario run is bit-for-bit
// reproducible: same spec, same kind, same seed → identical event
// trails, identical traffic tallies.
func TestSuiteDeterministic(t *testing.T) {
	spec, err := scenario.ByName(SuiteTarget, scenario.ScenarioErrorStorm)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunScenario(spec, KindTopology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(spec, KindTopology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || a.Requests != b.Requests || a.Failures != b.Failures {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		max := len(a.Events)
		if len(b.Events) < max {
			max = len(b.Events)
		}
		for i := 0; i < max; i++ {
			if !reflect.DeepEqual(a.Events[i], b.Events[i]) {
				t.Fatalf("event %d diverged:\n  a: %+v\n  b: %+v", i, a.Events[i], b.Events[i])
			}
		}
		t.Fatalf("event counts diverged: %d vs %d", len(a.Events), len(b.Events))
	}
}

// TestStrategyValidates makes sure both graded strategies pass the
// engine's own validation — the suite must not drift from the real
// strategy surface.
func TestStrategyValidates(t *testing.T) {
	for _, kind := range Kinds() {
		s, err := Strategy(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s strategy invalid: %v", kind, err)
		}
	}
	if _, err := Strategy(Kind("bogus")); err == nil {
		t.Error("unknown kind should fail")
	}
}
