// Package suite is the scenario grading harness: it runs each strategy
// kind against the builtin scenario matrix on a fully simulated stack
// (virtual clock, in-process microsim, live trace pipeline) and grades
// the outcomes. The acceptance bar is graded in both directions — a
// canary must roll back during its own error storm AND must not roll
// back during an ambient flash crowd — so both misses (false negatives)
// and false alarms (false positives) are regressions. Every future
// check kind lands by adding a strategy here and extending the matrix.
package suite

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/clock"
	"contexp/internal/expmodel"
	"contexp/internal/health"
	"contexp/internal/loadgen"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/scenario"
	"contexp/internal/tracing"
)

// Epoch is the fixed virtual start instant of every suite run; all
// scenario windows and strategy phases are relative to it.
var Epoch = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

// SuiteTarget is the cast the builtin scenarios are aimed at inside the
// suite's application: experiments run on "api" (v1 → v2), and
// "backend" is the shared dependency ambient faults hit.
var SuiteTarget = scenario.Target{Service: "api", Candidate: "v2", Dependency: "backend"}

// Kind names a strategy family under grading.
type Kind string

// Strategy kinds graded by the matrix.
const (
	// KindMetric gates the canary on relative metric checks (error
	// budget, p95 latency) — the Chapter 4 scalar checks.
	KindMetric Kind = "metric"
	// KindTopology adds the Chapter 5 structural check on top of the
	// metric gates.
	KindTopology Kind = "topology"
)

// Kinds lists the graded strategy kinds.
func Kinds() []Kind { return []Kind{KindMetric, KindTopology} }

// App builds the suite's application: gateway → api (v1 baseline,
// v2 candidate) → backend. The candidate is topologically and
// behaviorally identical to the baseline — every regression the suite
// observes is injected by the scenario, never intrinsic.
func App() (*microsim.Application, error) {
	app := microsim.NewApplication("gateway", "GET /")
	app.AddService("gateway", "v1").
		Endpoint("GET /", 5, 8).
		Calls("api", "GET /data")
	app.AddService("api", "v1").
		Endpoint("GET /data", 10, 14).ErrorRate(0.03).
		Calls("backend", "GET /store")
	app.AddService("api", "v2").
		Endpoint("GET /data", 10, 14).ErrorRate(0.03).
		Calls("backend", "GET /store")
	app.AddService("backend", "v1").
		Endpoint("GET /store", 8, 12)
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// phaseChecks are the relative metric gates every graded strategy
// carries: candidate error volume and p95 latency, each compared
// against the baseline with a 2x budget over a 30s window, tripping on
// two consecutive failures. Relative scoping is the load-bearing
// design: ambient trouble (flash crowds, dependency outages) hits both
// variants alike and cancels out.
func phaseChecks() []bifrost.Check {
	return []bifrost.Check{
		{
			Name: "error-budget", Metric: microsim.MetricErrors,
			Aggregation: metrics.AggCount, Scope: bifrost.ScopeRelative,
			Upper: true, Threshold: 2.0,
			Window: 30 * time.Second, Interval: 10 * time.Second,
			FailuresToTrip: 2,
		},
		{
			Name: "latency-p95", Metric: microsim.MetricResponseTime,
			Aggregation: metrics.AggP95, Scope: bifrost.ScopeRelative,
			Upper: true, Threshold: 2.0,
			Window: 30 * time.Second, Interval: 10 * time.Second,
			FailuresToTrip: 2,
		},
	}
}

// Strategy builds the graded strategy of the given kind: a 30% canary
// held for 90 virtual seconds, promoted on success, rolled back on
// failure.
func Strategy(kind Kind) (*bifrost.Strategy, error) {
	checks := phaseChecks()
	switch kind {
	case KindMetric:
	case KindTopology:
		checks = append(checks, bifrost.Check{
			Name: "structure", Kind: bifrost.CheckTopology,
			Heuristic: "subtree-weighted",
			MinTraces: 30, MaxChanges: 0,
			Allow:          []string{"updated-callee-version", "updated-caller-version", "updated-version"},
			Interval:       15 * time.Second,
			FailuresToTrip: 2,
		})
	default:
		return nil, fmt.Errorf("suite: unknown strategy kind %q", kind)
	}
	return &bifrost.Strategy{
		Name:    "grade-" + string(kind),
		Service: SuiteTarget.Service, Baseline: "v1", Candidate: SuiteTarget.Candidate,
		Phases: []bifrost.Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic:    bifrost.TrafficSpec{CandidateWeight: 0.3},
			Duration:   90 * time.Second,
			MinSamples: 200,
			Checks:     checks,
			OnSuccess:  bifrost.Transition{Kind: bifrost.TransitionPromote},
		}},
	}, nil
}

// Result is the graded outcome of one scenario × strategy-kind run.
type Result struct {
	Scenario string
	Kind     Kind
	Status   bifrost.RunStatus
	// FinishedAt is the virtual instant the run concluded.
	FinishedAt time.Time
	// Requests/Failures summarize the user-visible traffic the scenario
	// generated.
	Requests int
	Failures int
	// Topology verdict tally (zero for metric-only strategies).
	TopologyPass, TopologyFail, TopologyInconclusive int
	// Events is the run's full audit trail.
	Events []bifrost.Event
	// Seed is the scenario seed the run used, logged for reproduction.
	Seed int64
}

// Options tunes RunScenario.
type Options struct {
	// Logf receives progress lines (loadgen seed line included); nil
	// discards them.
	Logf func(format string, args ...any)
}

// settleWait blocks until the engine goroutine has either finished the
// run or parked on the simulated clock again, so the driver never races
// check evaluation against traffic generation — that lockstep is what
// makes a whole scenario run bit-for-bit reproducible from its seed.
func settleWait(clk *clock.Sim, run *bifrost.Run) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-run.Done():
			return nil
		default:
		}
		if clk.PendingTimers() > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("suite: engine did not settle (status=%v)", run.Status())
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// evalWorkersFromEnv reads CONTEXP_EVAL_WORKERS so CI can replay the
// grading matrix at different evaluation-pool sizes and assert the
// graded outcomes are identical — determinism must not depend on the
// worker count. Unset or invalid means the engine default.
func evalWorkersFromEnv() int {
	v := os.Getenv("CONTEXP_EVAL_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// RunScenario executes one scenario against one strategy kind on the
// simulated stack and returns the graded result. The entire run —
// arrivals, faults, check evaluations — unfolds in virtual time under a
// fixed seed, so two invocations produce identical event trails.
func RunScenario(spec *scenario.Spec, kind Kind, opt Options) (*Result, error) {
	sc, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	strategy, err := Strategy(kind)
	if err != nil {
		return nil, err
	}
	app, err := App()
	if err != nil {
		return nil, err
	}

	clk := clock.NewSim(Epoch)
	table := router.NewTable()
	store := metrics.NewStore(0)
	live := tracing.NewLiveCollector(0)
	monitor := health.NewMonitor(live, -1) // harvest immediately
	monitor.UseClock(clk)

	sim := microsim.NewSim(app, table, nil, store, sc.Seed+1)
	sim.SetLiveTraces(live)
	injector, err := sc.Injector(Epoch)
	if err != nil {
		return nil, err
	}
	sim.SetFaults(injector)
	if err := microsim.InstallBaselineRoutes(app, table); err != nil {
		return nil, err
	}

	engine, err := bifrost.NewEngine(bifrost.Config{
		Clock: clk, Table: table, Store: store, Topology: monitor,
		EvalWorkers: evalWorkersFromEnv(),
	})
	if err != nil {
		return nil, err
	}
	run, err := engine.Launch(strategy)
	if err != nil {
		return nil, err
	}
	// Let the canary routing land before the first arrival.
	if err := settleWait(clk, run); err != nil {
		return nil, err
	}

	// The load generator is the clock's pacemaker: before each arrival
	// it walks the engine through every check deadline due up to that
	// instant, waiting for the engine to park again after each, then
	// executes the request at the arrival instant.
	var driveErr error
	target := loadgen.TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		for driveErr == nil {
			select {
			case <-run.Done():
			default:
				if d, ok := clk.NextDeadline(); ok && !d.After(at) {
					clk.AdvanceTo(d)
					driveErr = settleWait(clk, run)
					continue
				}
			}
			break
		}
		if driveErr != nil {
			return 0, false, driveErr
		}
		clk.AdvanceTo(at)
		res, err := sim.Execute(req, at)
		return res.Duration, res.Err, err
	})

	pop, err := loadgen.NewPopulation(loadgen.PopulationConfig{Size: 500, Seed: sc.Seed + 2})
	if err != nil {
		return nil, err
	}
	lg, err := loadgen.Run(loadgen.Config{
		Rate:     sc.Rate,
		Uniform:  sc.Uniform,
		Duration: sc.Duration,
		Start:    Epoch,
		Seed:     sc.Seed,
		Logf:     opt.Logf,
	}, pop, target)
	if err != nil {
		return nil, err
	}
	if driveErr != nil {
		return nil, driveErr
	}

	// Drain: the scenario's traffic is exhausted, but the run may still
	// have deadlines ahead (retries, a phase outlasting the scenario).
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-run.Done():
		default:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("suite: %s/%s: run never finished (status=%v, phase=%q)",
					spec.Name, kind, run.Status(), run.CurrentPhase())
			}
			if d, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(d)
				if err := settleWait(clk, run); err != nil {
					return nil, err
				}
			} else {
				time.Sleep(50 * time.Microsecond)
			}
			continue
		}
		break
	}

	res := &Result{
		Scenario: spec.Name,
		Kind:     kind,
		Status:   run.Status(),
		Events:   run.Events(),
		Requests: len(lg.Samples),
		Seed:     sc.Seed,
	}
	for _, s := range lg.Samples {
		if s.Failed {
			res.Failures++
		}
	}
	for _, ev := range res.Events {
		switch ev.Type {
		case bifrost.EventRunFinished:
			res.FinishedAt = ev.At
		case bifrost.EventTopologyVerdict:
			switch ev.Outcome {
			case bifrost.OutcomePass:
				res.TopologyPass++
			case bifrost.OutcomeFail:
				res.TopologyFail++
			default:
				res.TopologyInconclusive++
			}
		}
	}
	return res, nil
}

// Expectation grades one scenario: the run status every strategy kind
// must reach under it.
type Expectation struct {
	Spec *scenario.Spec
	Want map[Kind]bifrost.RunStatus
}

// Matrix returns the full grading matrix: every builtin scenario with
// its expected outcome per strategy kind. Benign conditions (steady,
// ramp, flash crowd, diurnal) and ambient faults hitting both variants
// (dependency blackout, slow restart) must promote; faults targeting
// the candidate release (error storm, latency spike) must roll back.
func Matrix() []Expectation {
	promote := map[Kind]bifrost.RunStatus{
		KindMetric:   bifrost.StatusSucceeded,
		KindTopology: bifrost.StatusSucceeded,
	}
	rollback := map[Kind]bifrost.RunStatus{
		KindMetric:   bifrost.StatusRolledBack,
		KindTopology: bifrost.StatusRolledBack,
	}
	want := map[string]map[Kind]bifrost.RunStatus{
		scenario.ScenarioSteady:       promote,
		scenario.ScenarioRamp:         promote,
		scenario.ScenarioFlashCrowd:   promote,
		scenario.ScenarioDiurnal:      promote,
		scenario.ScenarioErrorStorm:   rollback,
		scenario.ScenarioLatencySpike: rollback,
		scenario.ScenarioBlackout:     promote,
		scenario.ScenarioSlowRestart:  promote,
	}
	var out []Expectation
	for _, spec := range scenario.Catalog(SuiteTarget) {
		w, ok := want[spec.Name]
		if !ok {
			// A catalog entry without a grade is itself a bug the suite
			// test surfaces.
			w = nil
		}
		out = append(out, Expectation{Spec: spec, Want: w})
	}
	return out
}
