package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Target names the cast of a scenario: the service under experiment,
// its candidate version (faults aimed here model a bad release), and a
// downstream dependency (faults aimed there model ambient
// infrastructure trouble the candidate did not cause).
type Target struct {
	// Service is the service being experimented on.
	Service string
	// Candidate is the new version under evaluation.
	Candidate string
	// Dependency is a downstream service shared by baseline and
	// candidate.
	Dependency string
}

// Builtin scenario names. The grading suite's acceptance matrix runs
// all of them; the daemon's --demo-faults flag accepts any of them.
const (
	ScenarioSteady       = "steady"
	ScenarioRamp         = "ramp"
	ScenarioFlashCrowd   = "flash-crowd"
	ScenarioDiurnal      = "diurnal"
	ScenarioErrorStorm   = "error-storm"
	ScenarioLatencySpike = "latency-spike"
	ScenarioBlackout     = "dependency-blackout"
	ScenarioSlowRestart  = "slow-restart"
)

// catalogDuration is the virtual length of every builtin scenario,
// sized to cover a 90s canary phase plus tail traffic.
const catalogDuration = Duration(2 * time.Minute)

// catalogRPS is the builtin base arrival rate.
const catalogRPS = 80

// Catalog returns the builtin scenario matrix aimed at target. The
// first four are benign conditions (a healthy canary must survive
// them); the last four contain real or ambient faults with graded
// expectations — see scenario/suite.
func Catalog(t Target) []*Spec {
	steady := ArrivalSpec{Process: ProcessSteady, RPS: catalogRPS}
	return []*Spec{
		{
			Name:        ScenarioSteady,
			Description: "steady Poisson arrivals, no faults: the control condition",
			Duration:    catalogDuration,
			Seed:        1,
			Arrival:     steady,
		},
		{
			Name:        ScenarioRamp,
			Description: "traffic triples linearly over the run: organic growth",
			Duration:    catalogDuration,
			Seed:        2,
			Arrival:     ArrivalSpec{Process: ProcessRamp, RPS: catalogRPS / 2, ToRPS: catalogRPS * 3 / 2},
		},
		{
			Name: ScenarioFlashCrowd,
			Description: "ambient flash crowd: arrivals x4 for 30s while the shared dependency " +
				"slows under load — a canary must not be blamed for it",
			Duration: catalogDuration,
			Seed:     3,
			Arrival:  ArrivalSpec{Process: ProcessBurst, RPS: catalogRPS, Factor: 4, Start: Duration(30 * time.Second), Width: Duration(30 * time.Second)},
			Faults: []FaultSpec{{
				// The crowd slows every version of the dependency equally:
				// relative (candidate vs baseline) checks stay clean.
				Kind: "latency-spike", Service: t.Dependency,
				Start: Duration(30 * time.Second), Duration: Duration(30 * time.Second),
				LatencyFactor: 3,
			}},
		},
		{
			Name:        ScenarioDiurnal,
			Description: "day/night sinusoid compressed into the run: rate swings ±60%",
			Duration:    catalogDuration,
			Seed:        4,
			Arrival:     ArrivalSpec{Process: ProcessDiurnal, RPS: catalogRPS, Amplitude: 0.6, Period: Duration(2 * time.Minute), Peak: Duration(30 * time.Second)},
		},
		{
			Name:        ScenarioErrorStorm,
			Description: "the candidate release fails 25% of its calls for 45s: a real regression",
			Duration:    catalogDuration,
			Seed:        5,
			Arrival:     steady,
			Faults: []FaultSpec{{
				Kind: "error-storm", Service: t.Service, Version: t.Candidate,
				Start: Duration(30 * time.Second), Duration: Duration(45 * time.Second),
				ErrorRate: 0.25,
			}},
		},
		{
			Name:        ScenarioLatencySpike,
			Description: "the candidate release runs 5x slower for 45s: a real performance regression",
			Duration:    catalogDuration,
			Seed:        6,
			Arrival:     steady,
			Faults: []FaultSpec{{
				Kind: "latency-spike", Service: t.Service, Version: t.Candidate,
				Start: Duration(30 * time.Second), Duration: Duration(45 * time.Second),
				LatencyFactor: 5,
			}},
		},
		{
			Name: ScenarioBlackout,
			Description: "partial dependency blackout: 40% of calls to the shared dependency " +
				"fail for 30s, hitting baseline and candidate alike",
			Duration: catalogDuration,
			Seed:     7,
			Arrival:  steady,
			Faults: []FaultSpec{{
				Kind: "blackout", Service: t.Dependency,
				Start: Duration(40 * time.Second), Duration: Duration(30 * time.Second),
				Probability: 0.4,
			}},
		},
		{
			Name: ScenarioSlowRestart,
			Description: "the shared dependency restarts: 5s hard down, then cold caches " +
				"decaying from 3x latency back to normal",
			Duration: catalogDuration,
			Seed:     8,
			Arrival:  steady,
			Faults: []FaultSpec{{
				Kind: "slow-restart", Service: t.Dependency,
				Start: Duration(40 * time.Second), Duration: Duration(40 * time.Second),
				RestartDowntime: Duration(5 * time.Second), LatencyFactor: 3,
			}},
		},
	}
}

// Names lists the builtin scenario names, sorted.
func Names() []string {
	specs := Catalog(Target{Service: "svc", Candidate: "v2", Dependency: "dep"})
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// ByName returns the builtin scenario called name, aimed at target.
func ByName(t Target, name string) (*Spec, error) {
	for _, s := range Catalog(t) {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: no builtin scenario %q (have %v)", name, Names())
}
