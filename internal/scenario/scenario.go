// Package scenario composes {arrival process × fault schedule ×
// duration} into named, runtime-configurable experiment conditions.
// A Spec is the declarative JSON form (hand-written, generated, or one
// of the builtin catalog entries); Compile lowers it into the runtime
// pieces the substrates consume — a loadgen.Rate driving arrivals and a
// microsim fault schedule driving chaos. The grading suite
// (scenario/suite) runs every strategy kind against a matrix of these
// and asserts graded outcomes, which is what turns "as many scenarios
// as you can imagine" into a regression-tested matrix.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"contexp/internal/loadgen"
	"contexp/internal/microsim"
	"contexp/internal/traffic"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("90s", "2m30s"), keeping specs human-writable.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of seconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		dur, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(dur)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(data, &secs); err == nil {
		*d = Duration(secs * float64(time.Second))
		return nil
	}
	return fmt.Errorf("scenario: duration must be a string like \"90s\" or a number of seconds, got %s", data)
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ProcessSteady  = "steady"
	ProcessRamp    = "ramp"
	ProcessBurst   = "burst"
	ProcessDiurnal = "diurnal"
	ProcessReplay  = "replay"
)

// ArrivalSpec describes the open-loop arrival process of a scenario.
type ArrivalSpec struct {
	// Process selects the shape: steady | ramp | burst | diurnal |
	// replay.
	Process string `json:"process"`
	// RPS is the base rate (steady, burst, diurnal) or the starting
	// rate (ramp).
	RPS float64 `json:"rps,omitempty"`
	// ToRPS is the final rate of a ramp.
	ToRPS float64 `json:"toRps,omitempty"`
	// RampOver is how long a ramp takes to reach ToRPS (defaults to the
	// scenario duration).
	RampOver Duration `json:"rampOver,omitempty"`
	// Factor multiplies RPS inside a burst window.
	Factor float64 `json:"factor,omitempty"`
	// Start/Width place the burst window.
	Start Duration `json:"start,omitempty"`
	Width Duration `json:"width,omitempty"`
	// Amplitude (0..1] and Period/Peak shape the diurnal sinusoid.
	Amplitude float64  `json:"amplitude,omitempty"`
	Period    Duration `json:"period,omitempty"`
	Peak      Duration `json:"peak,omitempty"`
	// ProfileCSV is an inline recorded traffic profile (the
	// internal/traffic CSV format) replayed as the arrival process.
	ProfileCSV string `json:"profileCsv,omitempty"`
	// Scale multiplies the replayed volumes (default 1 = replay the
	// recorded per-slot volumes).
	Scale float64 `json:"scale,omitempty"`
	// Uniform switches from Poisson sampling to deterministic spacing.
	Uniform bool `json:"uniform,omitempty"`
}

// FaultSpec is the declarative form of one microsim.Fault.
type FaultSpec struct {
	Kind            string   `json:"kind"`
	Service         string   `json:"service"`
	Version         string   `json:"version,omitempty"`
	Endpoint        string   `json:"endpoint,omitempty"`
	Start           Duration `json:"start"`
	Duration        Duration `json:"duration"`
	Probability     float64  `json:"probability,omitempty"`
	LatencyFactor   float64  `json:"latencyFactor,omitempty"`
	ExtraLatency    Duration `json:"extraLatency,omitempty"`
	ErrorRate       float64  `json:"errorRate,omitempty"`
	RestartDowntime Duration `json:"restartDowntime,omitempty"`
}

// Spec is a named scenario in declarative form.
type Spec struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Duration    Duration    `json:"duration"`
	Seed        int64       `json:"seed,omitempty"`
	Arrival     ArrivalSpec `json:"arrival"`
	Faults      []FaultSpec `json:"faults,omitempty"`
}

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec without compiling it.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: non-positive duration %v", s.Name, s.Duration.Std())
	}
	if err := s.Arrival.validate(s.Name); err != nil {
		return err
	}
	for i := range s.Faults {
		if _, err := s.Faults[i].compile(); err != nil {
			return fmt.Errorf("scenario %s: fault %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (a *ArrivalSpec) validate(name string) error {
	switch a.Process {
	case ProcessSteady:
		if a.RPS <= 0 {
			return fmt.Errorf("scenario %s: steady arrival needs rps > 0", name)
		}
	case ProcessRamp:
		if a.RPS < 0 || a.ToRPS <= 0 {
			return fmt.Errorf("scenario %s: ramp needs rps >= 0 and toRps > 0", name)
		}
		if a.RampOver < 0 {
			return fmt.Errorf("scenario %s: negative rampOver", name)
		}
	case ProcessBurst:
		if a.RPS <= 0 || a.Factor <= 0 {
			return fmt.Errorf("scenario %s: burst needs rps > 0 and factor > 0", name)
		}
		if a.Width <= 0 || a.Start < 0 {
			return fmt.Errorf("scenario %s: burst needs a window (start >= 0, width > 0)", name)
		}
	case ProcessDiurnal:
		if a.RPS <= 0 {
			return fmt.Errorf("scenario %s: diurnal arrival needs rps > 0", name)
		}
		if a.Amplitude < 0 || a.Amplitude > 1 {
			return fmt.Errorf("scenario %s: diurnal amplitude %v outside [0,1]", name, a.Amplitude)
		}
		if a.Period <= 0 {
			return fmt.Errorf("scenario %s: diurnal arrival needs period > 0", name)
		}
	case ProcessReplay:
		if a.ProfileCSV == "" {
			return fmt.Errorf("scenario %s: replay needs an inline profileCsv", name)
		}
		if a.Scale < 0 {
			return fmt.Errorf("scenario %s: negative replay scale", name)
		}
		if _, err := traffic.ReadCSV(strings.NewReader(a.ProfileCSV)); err != nil {
			return fmt.Errorf("scenario %s: replay profile: %w", name, err)
		}
	case "":
		return fmt.Errorf("scenario %s: arrival process missing (want steady, ramp, burst, diurnal, or replay)", name)
	default:
		return fmt.Errorf("scenario %s: unknown arrival process %q", name, a.Process)
	}
	return nil
}

// rate lowers the arrival spec into a loadgen.Rate.
func (a *ArrivalSpec) rate(total time.Duration) (loadgen.Rate, error) {
	switch a.Process {
	case ProcessSteady:
		return loadgen.ConstantRate(a.RPS), nil
	case ProcessRamp:
		over := a.RampOver.Std()
		if over == 0 {
			over = total
		}
		return loadgen.RampRate(a.RPS, a.ToRPS, over), nil
	case ProcessBurst:
		return loadgen.Spike(loadgen.ConstantRate(a.RPS), a.Factor, a.Start.Std(), a.Width.Std()), nil
	case ProcessDiurnal:
		return loadgen.DiurnalRate(a.RPS, a.Amplitude, a.Period.Std(), a.Peak.Std()), nil
	case ProcessReplay:
		p, err := traffic.ReadCSV(strings.NewReader(a.ProfileCSV))
		if err != nil {
			return nil, err
		}
		scale := a.Scale
		if scale == 0 {
			scale = 1
		}
		return loadgen.ProfileRate(p, scale), nil
	default:
		return nil, fmt.Errorf("scenario: unknown arrival process %q", a.Process)
	}
}

func (f *FaultSpec) compile() (microsim.Fault, error) {
	kind, err := microsim.ParseFaultKind(f.Kind)
	if err != nil {
		return microsim.Fault{}, err
	}
	out := microsim.Fault{
		Kind:            kind,
		Service:         f.Service,
		Version:         f.Version,
		Endpoint:        f.Endpoint,
		Start:           f.Start.Std(),
		Duration:        f.Duration.Std(),
		Probability:     f.Probability,
		LatencyFactor:   f.LatencyFactor,
		ExtraLatency:    f.ExtraLatency.Std(),
		ErrorRate:       f.ErrorRate,
		RestartDowntime: f.RestartDowntime.Std(),
	}
	if err := out.Validate(); err != nil {
		return microsim.Fault{}, err
	}
	return out, nil
}

// Scenario is the compiled, runnable form of a Spec.
type Scenario struct {
	Name        string
	Description string
	Duration    time.Duration
	Seed        int64
	// Rate drives the arrival process (elapsed time relative to the run
	// start).
	Rate loadgen.Rate
	// Uniform selects deterministic spacing over Poisson sampling.
	Uniform bool
	// Faults is the chaos schedule, windows relative to the run start.
	Faults []microsim.Fault
}

// Compile validates and lowers the spec.
func (s *Spec) Compile() (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rate, err := s.Arrival.rate(s.Duration.Std())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	out := &Scenario{
		Name:        s.Name,
		Description: s.Description,
		Duration:    s.Duration.Std(),
		Seed:        s.Seed,
		Rate:        rate,
		Uniform:     s.Arrival.Uniform,
	}
	for i := range s.Faults {
		f, err := s.Faults[i].compile()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: fault %d: %w", s.Name, i, err)
		}
		out.Faults = append(out.Faults, f)
	}
	return out, nil
}

// Injector builds the scenario's fault injector anchored at epoch. A
// scenario without faults yields a nil injector, which every consumer
// treats as "no chaos".
func (sc *Scenario) Injector(epoch time.Time) (*microsim.Injector, error) {
	if len(sc.Faults) == 0 {
		return nil, nil
	}
	return microsim.NewInjector(epoch, sc.Faults, sc.Seed)
}
