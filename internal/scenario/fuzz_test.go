package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec hammers the scenario config parser. The corpus is
// seeded with every builtin catalog entry (the configs CI actually
// runs) plus structurally interesting hand-written specs, so mutation
// starts from realistic shapes. The invariant under test: Parse either
// rejects the input or returns a spec that Compiles and survives a
// marshal→reparse round trip.
func FuzzParseSpec(f *testing.F) {
	for _, spec := range Catalog(Target{Service: "api", Candidate: "v2", Dependency: "backend"}) {
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","duration":2.5,"arrival":{"process":"steady","rps":0.001}}`))
	f.Add([]byte(`{"name":"x","duration":"1h","arrival":{"process":"replay","profileCsv":"timestamp,volume\n2017-12-11T00:00:00Z,10\n2017-12-11T01:00:00Z,20\n"}}`))
	f.Add([]byte(`{"name":"", "duration":"-5s"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		sc, err := spec.Compile()
		if err != nil {
			t.Fatalf("parsed spec failed to compile: %v\ninput: %s", err, data)
		}
		if sc.Rate == nil || sc.Duration <= 0 {
			t.Fatalf("compiled scenario incomplete: %+v\ninput: %s", sc, data)
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("round trip no longer parses: %v\nfirst: %s\nsecond: %s", err, data, out)
		}
	})
}
