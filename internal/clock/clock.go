// Package clock abstracts time so that the Bifrost engine and the
// simulation substrates can run deterministically in tests and benches.
// The real engine runs on wall-clock time; evaluations that would take
// hours on the authors' testbed run on a simulated clock that advances
// instantaneously between timer firings.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source the framework depends on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Sim is a deterministic simulated clock. Time only advances through
// Advance (or AdvanceTo); goroutines blocked in After/Sleep are released
// in timestamp order. The zero value is not usable; construct with NewSim.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    int // tiebreaker to keep firing order stable
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulated clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. Non-positive durations fire immediately.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	when := s.now.Add(d)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.timers, &simTimer{when: when, seq: s.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (s *Sim) Sleep(d time.Duration) {
	<-s.After(d)
}

// Advance moves the clock forward by d, firing all timers whose deadline
// is reached, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves the clock to instant t (no-op if t is in the past),
// firing due timers in order.
func (s *Sim) AdvanceTo(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		return
	}
	for len(s.timers) > 0 && !s.timers[0].when.After(t) {
		tm := heap.Pop(&s.timers).(*simTimer)
		s.now = tm.when
		tm.ch <- tm.when
	}
	s.now = t
}

// PendingTimers reports how many timers are waiting to fire. Useful for
// tests that need to know a goroutine has parked on the clock.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

// NextDeadline returns the earliest pending timer deadline and true, or
// the zero time and false when no timers are pending.
func (s *Sim) NextDeadline() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.timers) == 0 {
		return time.Time{}, false
	}
	return s.timers[0].when, true
}

type simTimer struct {
	when time.Time
	seq  int
	ch   chan time.Time
}

type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*simTimer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
