package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real{}
	start := time.Now()
	<-c.After(5 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("After fired too early: %v", elapsed)
	}
}

func TestSimAdvanceFiresTimers(t *testing.T) {
	start := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	s := NewSim(start)

	ch1 := s.After(10 * time.Second)
	ch2 := s.After(20 * time.Second)

	s.Advance(15 * time.Second)
	select {
	case ts := <-ch1:
		if want := start.Add(10 * time.Second); !ts.Equal(want) {
			t.Errorf("timer 1 fired at %v, want %v", ts, want)
		}
	default:
		t.Fatal("timer 1 did not fire")
	}
	select {
	case <-ch2:
		t.Fatal("timer 2 fired early")
	default:
	}

	s.Advance(10 * time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("timer 2 did not fire")
	}
	if got, want := s.Now(), start.Add(25*time.Second); !got.Equal(want) {
		t.Errorf("Now = %v, want %v", got, want)
	}
}

func TestSimFiringOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		ch := s.After(d)
		go func(i int) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Fire one at a time so goroutine scheduling cannot reorder appends.
	for s.PendingTimers() > 0 {
		next, _ := s.NextDeadline()
		s.AdvanceTo(next)
		// Wait for the released goroutine to record itself.
		deadline := time.Now().Add(time.Second)
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n == 3-s.PendingTimers() || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	want := []int{1, 2, 0} // 10s, 20s, 30s
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
}

func TestSimAfterNonPositive(t *testing.T) {
	s := NewSim(time.Unix(100, 0))
	select {
	case <-s.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Error("After(negative) should fire immediately")
	}
}

func TestSimAdvanceToPast(t *testing.T) {
	s := NewSim(time.Unix(100, 0))
	s.AdvanceTo(time.Unix(50, 0))
	if got := s.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Errorf("AdvanceTo(past) moved clock backwards to %v", got)
	}
}

func TestSimSleepBlocksUntilAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper has parked.
	for s.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	s.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestSimNextDeadline(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	if _, ok := s.NextDeadline(); ok {
		t.Error("NextDeadline on empty clock should report false")
	}
	s.After(42 * time.Second)
	d, ok := s.NextDeadline()
	if !ok || !d.Equal(time.Unix(42, 0)) {
		t.Errorf("NextDeadline = %v, %v", d, ok)
	}
}
