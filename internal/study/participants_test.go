package study

import (
	"strings"
	"testing"
)

func TestParticipants(t *testing.T) {
	ps := Participants()
	if len(ps) != 31 {
		t.Fatalf("participants = %d, want 31 (20 round 1 + 11 round 2)", len(ps))
	}
	seen := map[string]bool{}
	var round1, round2 int
	for _, p := range ps {
		if seen[p.ID] {
			t.Errorf("duplicate participant %s", p.ID)
		}
		seen[p.ID] = true
		switch p.ID[0] {
		case 'P':
			round1++
		case 'D':
			round2++
		default:
			t.Errorf("unexpected ID %q", p.ID)
		}
		if p.YearsExp <= 0 || p.Company == "" || p.Role == "" {
			t.Errorf("incomplete participant %+v", p)
		}
	}
	if round1 != 20 || round2 != 11 {
		t.Errorf("rounds = %d/%d, want 20/11", round1, round2)
	}
}

func TestParticipantsMeanExperience(t *testing.T) {
	// The paper reports ~9 years average for round 1 and ~12 for round 2.
	var sum1, sum2, n1, n2 int
	for _, p := range Participants() {
		if p.ID[0] == 'P' {
			sum1 += p.YearsExp
			n1++
		} else {
			sum2 += p.YearsExp
			n2++
		}
	}
	if avg := float64(sum1) / float64(n1); avg < 8 || avg > 10 {
		t.Errorf("round 1 mean experience = %.1f, paper reports ≈9", avg)
	}
	if avg := float64(sum2) / float64(n2); avg < 11 || avg > 13 {
		t.Errorf("round 2 mean experience = %.1f, paper reports ≈12", avg)
	}
}

func TestRenderTable2_1(t *testing.T) {
	out := RenderTable2_1()
	for _, want := range []string{"Table 2.1", "P1", "D11", "Video Streaming", "DevOps Engineer"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPracticeUsages(t *testing.T) {
	us := PracticeUsages()
	ids := map[string]bool{}
	for _, p := range Participants() {
		ids[p.ID] = true
	}
	for _, u := range us {
		if !ids[u.ID] {
			t.Errorf("usage row for unknown participant %q", u.ID)
		}
	}
	// The heavy users the paper highlights must be present.
	var d9 *PracticeUsage
	for i := range us {
		if us[i].ID == "D9" {
			d9 = &us[i]
		}
	}
	if d9 == nil || !d9.Microservices || !d9.RegressionExp || !d9.BusinessExp {
		t.Errorf("D9 usage incomplete: %+v", d9)
	}
}

func TestRenderTable2_9(t *testing.T) {
	out := RenderTable2_9()
	for _, want := range []string{"Table 2.9", "approximate", "D9", "plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
