// Package study reproduces the quantitative results of the paper's
// Chapter 2 empirical study ("We're Doing It Live"). The original data
// — 187 survey responses — is not public, so the package synthesizes a
// respondent population that matches every published per-stratum
// marginal (web vs. other application types) using deterministic
// quotas, and then recomputes Tables 2.2–2.8 and the Fig 2.3
// demographics from the per-respondent rows. This exercises the full
// table-generation pipeline: the printed tables are derived from
// individual answers, not copied from the paper.
//
// The published marginals are internally consistent in ways the
// generator relies on and tests verify: the 37% regression-experiment
// adoption of Table 2.6 yields exactly the n=70 basis of Table 2.2, its
// complement the n=117 basis of Table 2.7, and the 23% A/B-testing
// adoption the n=144 basis of Table 2.8.
package study

import (
	"math/rand"
	"sort"
)

// AppType is the primary application model of a respondent's product.
type AppType int

// Application types of Fig 2.3.
const (
	AppWeb AppType = iota + 1
	AppEnterprise
	AppDesktop
	AppMobile
	AppEmbedded
	AppOther
)

// String names the application type.
func (a AppType) String() string {
	switch a {
	case AppWeb:
		return "web"
	case AppEnterprise:
		return "enterprise"
	case AppDesktop:
		return "desktop"
	case AppMobile:
		return "mobile"
	case AppEmbedded:
		return "embedded"
	default:
		return "other"
	}
}

// CompanySize buckets of Fig 2.3.
type CompanySize int

// Company sizes.
const (
	SizeStartup CompanySize = iota + 1
	SizeSME
	SizeCorporation
)

// String names the size.
func (s CompanySize) String() string {
	switch s {
	case SizeStartup:
		return "startup"
	case SizeSME:
		return "SME"
	default:
		return "corporation"
	}
}

// RegUse is the regression-driven experimentation usage (Table 2.6).
type RegUse int

// Regression experimentation usage levels.
const (
	RegAllFeatures RegUse = iota + 1
	RegSomeFeatures
	RegNone
)

// Technique is an experiment implementation technique (Table 2.2).
type Technique string

// Implementation techniques.
const (
	TechFeatureToggles Technique = "feature toggles"
	TechTrafficRouting Technique = "traffic routing"
	TechBinaries       Technique = "binaries"
	TechPermissions    Technique = "permissions"
	TechDontKnow       Technique = "dont' know"
	TechOther          Technique = "other"
)

// Detection is how production issues are found (Table 2.3).
type Detection string

// Issue-detection channels.
const (
	DetectMonitoring Detection = "monitoring"
	DetectFeedback   Detection = "customer feedback"
	DetectOther      Detection = "don't know + other"
)

// Handoff is the phase after which developers hand off responsibility
// (Table 2.4).
type Handoff string

// Handoff phases.
const (
	HandoffNever      Handoff = "never"
	HandoffDev        Handoff = "development"
	HandoffStaging    Handoff = "staging"
	HandoffPreprod    Handoff = "preproduction"
	HandoffDontKnow   Handoff = "don't know + other"
	handoffUnassigned Handoff = ""
)

// Reason is a reason against conducting experiments (Tables 2.7, 2.8).
type Reason string

// Reasons against experimentation.
const (
	ReasonArchitecture Reason = "architecture"
	ReasonCustomers    Reason = "number customers" // regression variant
	ReasonUsers        Reason = "number of users"  // business variant
	ReasonNoSense      Reason = "no business sense"
	ReasonExpertise    Reason = "lack of expertise"
	ReasonKnowledge    Reason = "lack of knowledge"
	ReasonInvestments  Reason = "investments"
	ReasonPolicy       Reason = "policy / domain"
	ReasonDontKnow     Reason = "don't know"
	ReasonOther        Reason = "other"
)

// Respondent is one synthesized survey answer sheet.
type Respondent struct {
	ID              int
	App             AppType
	Size            CompanySize
	ExperienceYears int

	RegressionUse RegUse
	UsesABTesting bool

	Techniques map[Technique]bool
	Detection  map[Detection]bool
	Handoff    Handoff

	// ReasonsRegression is answered by respondents with RegNone.
	ReasonsRegression map[Reason]bool
	// ReasonsBusiness is answered by respondents without A/B testing.
	ReasonsBusiness map[Reason]bool
}

// Web reports whether the respondent builds Web applications; the
// paper's tables split on this.
func (r *Respondent) Web() bool { return r.App == AppWeb }

// Population is the full synthesized survey.
type Population struct {
	Respondents []Respondent
}

// TotalRespondents matches the paper's 187 complete responses.
const TotalRespondents = 187

// Generate synthesizes the population. The same seed yields the same
// population; quotas guarantee the published marginals regardless of
// seed (the seed only shuffles which individual holds which answer).
func Generate(seed int64) *Population {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]Respondent, TotalRespondents)
	for i := range rs {
		rs[i] = Respondent{
			ID:                i + 1,
			Techniques:        make(map[Technique]bool),
			Detection:         make(map[Detection]bool),
			ReasonsRegression: make(map[Reason]bool),
			ReasonsBusiness:   make(map[Reason]bool),
		}
	}

	all := make([]*Respondent, len(rs))
	for i := range rs {
		all[i] = &rs[i]
	}

	// Fig 2.3 demographics: application types (single choice, sums to 187).
	assignSingle(rng, all, func(r *Respondent, v int) { r.App = AppType(v) }, map[int]int{
		int(AppWeb): 105, int(AppEnterprise): 34, int(AppDesktop): 23,
		int(AppMobile): 10, int(AppEmbedded): 8, int(AppOther): 7,
	})
	// Company sizes: 35 startups, 99 SMEs, 53 corporations.
	assignSingle(rng, all, func(r *Respondent, v int) { r.Size = CompanySize(v) }, map[int]int{
		int(SizeStartup): 35, int(SizeSME): 99, int(SizeCorporation): 53,
	})
	// Experience buckets (0-2, 3-5, 6-10, >10): 62/62/47/16, mean ≈ 8y
	// in the paper; we store a representative year value per bucket.
	assignSingle(rng, all, func(r *Respondent, v int) { r.ExperienceYears = v }, map[int]int{
		1: 62, 4: 62, 8: 47, 12: 16,
	})

	web, other := split(rs)

	// Table 2.6 — regression-driven experimentation usage (single
	// choice; the quotas make the Table 2.2/2.7 bases come out exactly).
	assignSingle(rng, web, func(r *Respondent, v int) { r.RegressionUse = RegUse(v) }, map[int]int{
		int(RegAllFeatures): 16, int(RegSomeFeatures): 22, int(RegNone): 67,
	})
	assignSingle(rng, other, func(r *Respondent, v int) { r.RegressionUse = RegUse(v) }, map[int]int{
		int(RegAllFeatures): 18, int(RegSomeFeatures): 14, int(RegNone): 50,
	})

	// A/B testing: 43 users overall, 27 of them web (63%).
	assignBool(rng, web, func(r *Respondent, v bool) { r.UsesABTesting = v }, 27)
	assignBool(rng, other, func(r *Respondent, v bool) { r.UsesABTesting = v }, 16)

	// Table 2.2 — implementation techniques among experiment users
	// (38 web / 32 other).
	expWeb, expOther := filterSplit(rs, func(r *Respondent) bool { return r.RegressionUse != RegNone })
	techQuota := map[Technique][2]int{
		TechFeatureToggles: {17, 8},
		TechTrafficRouting: {17, 4},
		TechBinaries:       {5, 15},
		TechPermissions:    {7, 5},
		TechDontKnow:       {5, 9},
		TechOther:          {3, 1},
	}
	for tech, q := range techQuota {
		tech := tech
		assignBool(rng, expWeb, func(r *Respondent, v bool) { r.Techniques[tech] = v }, q[0])
		assignBool(rng, expOther, func(r *Respondent, v bool) { r.Techniques[tech] = v }, q[1])
	}

	// Table 2.3 — issue detection (multiple choice, all respondents).
	detQuota := map[Detection][2]int{
		DetectMonitoring: {87, 55},
		DetectFeedback:   {85, 74},
		DetectOther:      {2, 5},
	}
	for det, q := range detQuota {
		det := det
		assignBool(rng, web, func(r *Respondent, v bool) { r.Detection[det] = v }, q[0])
		assignBool(rng, other, func(r *Respondent, v bool) { r.Detection[det] = v }, q[1])
	}

	// Table 2.4 — responsibility handoff (single choice).
	assignSingleStr(rng, web, func(r *Respondent, v Handoff) { r.Handoff = v }, []quotaStr[Handoff]{
		{HandoffNever, 64}, {HandoffDev, 13}, {HandoffStaging, 16},
		{HandoffPreprod, 10}, {HandoffDontKnow, 2},
	})
	assignSingleStr(rng, other, func(r *Respondent, v Handoff) { r.Handoff = v }, []quotaStr[Handoff]{
		{HandoffNever, 41}, {HandoffDev, 23}, {HandoffStaging, 7},
		{HandoffPreprod, 7}, {HandoffDontKnow, 4},
	})

	// Table 2.7 — reasons against regression-driven experiments
	// (67 web / 50 other non-users).
	nonWeb, nonOther := filterSplit(rs, func(r *Respondent) bool { return r.RegressionUse == RegNone })
	regReasons := map[Reason][2]int{
		ReasonArchitecture: {43, 24},
		ReasonCustomers:    {31, 15},
		ReasonNoSense:      {26, 20},
		ReasonExpertise:    {18, 12},
		ReasonOther:        {1, 5},
	}
	for reason, q := range regReasons {
		reason := reason
		assignBool(rng, nonWeb, func(r *Respondent, v bool) { r.ReasonsRegression[reason] = v }, q[0])
		assignBool(rng, nonOther, func(r *Respondent, v bool) { r.ReasonsRegression[reason] = v }, q[1])
	}

	// Table 2.8 — reasons against business-driven experiments
	// (78 web / 66 other non-A/B-users).
	noABWeb, noABOther := filterSplit(rs, func(r *Respondent) bool { return !r.UsesABTesting })
	bizReasons := map[Reason][2]int{
		ReasonArchitecture: {41, 31},
		ReasonInvestments:  {27, 20},
		ReasonUsers:        {25, 15},
		ReasonPolicy:       {11, 19},
		ReasonKnowledge:    {15, 7},
		ReasonDontKnow:     {4, 4},
		ReasonOther:        {3, 5},
	}
	for reason, q := range bizReasons {
		reason := reason
		assignBool(rng, noABWeb, func(r *Respondent, v bool) { r.ReasonsBusiness[reason] = v }, q[0])
		assignBool(rng, noABOther, func(r *Respondent, v bool) { r.ReasonsBusiness[reason] = v }, q[1])
	}

	return &Population{Respondents: rs}
}

// --- quota assignment helpers ---
//
// Helpers operate on []*Respondent views so different question bases
// (all respondents, experiment users, non-users) alias the same
// population.

// assignSingle distributes exclusive integer values by exact counts.
func assignSingle(rng *rand.Rand, rs []*Respondent, set func(*Respondent, int), counts map[int]int) {
	order := rng.Perm(len(rs))
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	for _, k := range keys {
		for n := 0; n < counts[k] && i < len(order); n++ {
			set(rs[order[i]], k)
			i++
		}
	}
	// Any remainder (counts summing below len) keeps zero values.
}

type quotaStr[T ~string] struct {
	value T
	count int
}

func assignSingleStr[T ~string](rng *rand.Rand, rs []*Respondent, set func(*Respondent, T), quotas []quotaStr[T]) {
	order := rng.Perm(len(rs))
	i := 0
	for _, q := range quotas {
		for n := 0; n < q.count && i < len(order); n++ {
			set(rs[order[i]], q.value)
			i++
		}
	}
}

// assignBool marks exactly `count` respondents true and the rest false.
func assignBool(rng *rand.Rand, rs []*Respondent, set func(*Respondent, bool), count int) {
	order := rng.Perm(len(rs))
	for i, idx := range order {
		set(rs[idx], i < count)
	}
}

// split partitions the population into web and other views.
func split(rs []Respondent) (web, other []*Respondent) {
	return filterSplit(rs, func(*Respondent) bool { return true })
}

// filterSplit selects respondents matching pred and splits them into
// web/other pointer views backed by the population.
func filterSplit(rs []Respondent, pred func(*Respondent) bool) (web, other []*Respondent) {
	for i := range rs {
		r := &rs[i]
		if !pred(r) {
			continue
		}
		if r.Web() {
			web = append(web, r)
		} else {
			other = append(other, r)
		}
	}
	return web, other
}
