package study

import (
	"math"
	"strings"
	"testing"
)

// paperValue asserts a recomputed percentage is within tol points of
// the paper's published value.
func assertPct(t *testing.T, tbl *Table, label, stratum string, want, tol float64) {
	t.Helper()
	got := tbl.Pct(label, stratum)
	if got < 0 {
		t.Fatalf("%s: row %q stratum %q missing", tbl.Title, label, stratum)
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s: %q/%s = %.1f%%, paper reports %.0f%% (tol %.0f)", tbl.Title, label, stratum, got, want, tol)
	}
}

func TestPopulationSizeAndDemographics(t *testing.T) {
	p := Generate(1)
	if len(p.Respondents) != TotalRespondents {
		t.Fatalf("respondents = %d", len(p.Respondents))
	}
	var web, startups, smes, corps int
	for i := range p.Respondents {
		r := &p.Respondents[i]
		if r.Web() {
			web++
		}
		switch r.Size {
		case SizeStartup:
			startups++
		case SizeSME:
			smes++
		case SizeCorporation:
			corps++
		}
	}
	if web != 105 {
		t.Errorf("web = %d, want 105", web)
	}
	if startups != 35 || smes != 99 || corps != 53 {
		t.Errorf("sizes = %d/%d/%d, want 35/99/53", startups, smes, corps)
	}
}

func TestTable2_2MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_2()
	if tbl.N["all"] != 70 || tbl.N["web"] != 38 || tbl.N["other"] != 32 {
		t.Fatalf("bases = %d/%d/%d, want 70/38/32", tbl.N["all"], tbl.N["web"], tbl.N["other"])
	}
	assertPct(t, tbl, string(TechFeatureToggles), "all", 36, 2)
	assertPct(t, tbl, string(TechFeatureToggles), "web", 45, 2)
	assertPct(t, tbl, string(TechFeatureToggles), "other", 25, 2)
	assertPct(t, tbl, string(TechTrafficRouting), "web", 45, 2)
	assertPct(t, tbl, string(TechTrafficRouting), "other", 12, 2)
	assertPct(t, tbl, string(TechBinaries), "all", 29, 2)
	assertPct(t, tbl, string(TechBinaries), "other", 47, 2)
}

func TestTable2_3MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_3()
	if tbl.N["all"] != 187 {
		t.Fatalf("base = %d", tbl.N["all"])
	}
	assertPct(t, tbl, string(DetectMonitoring), "all", 76, 2)
	assertPct(t, tbl, string(DetectMonitoring), "web", 83, 2)
	assertPct(t, tbl, string(DetectMonitoring), "other", 67, 2)
	assertPct(t, tbl, string(DetectFeedback), "all", 85, 2)
	assertPct(t, tbl, string(DetectFeedback), "other", 90, 2)
}

func TestTable2_4MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_4()
	assertPct(t, tbl, string(HandoffNever), "all", 56, 2)
	assertPct(t, tbl, string(HandoffNever), "web", 61, 2)
	assertPct(t, tbl, string(HandoffNever), "other", 50, 2)
	assertPct(t, tbl, string(HandoffDev), "other", 28, 2)
	// Single choice: each stratum's rows sum to 100%.
	for _, stratum := range []string{"all", "web", "other"} {
		var sum float64
		for _, r := range tbl.Rows {
			sum += r.Pct[stratum]
		}
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%s rows sum to %.1f%%", stratum, sum)
		}
	}
}

func TestTable2_6MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_6()
	assertPct(t, tbl, "no experimentation", "all", 63, 2)
	assertPct(t, tbl, "for all features", "all", 18, 2)
	assertPct(t, tbl, "for some features", "all", 19, 2)
	assertPct(t, tbl, "no experimentation", "web", 64, 2)
	assertPct(t, tbl, "no experimentation", "other", 61, 2)
}

func TestTable2_7MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_7()
	if tbl.N["all"] != 117 {
		t.Fatalf("base = %d, want 117", tbl.N["all"])
	}
	assertPct(t, tbl, string(ReasonArchitecture), "all", 57, 2)
	assertPct(t, tbl, string(ReasonArchitecture), "web", 64, 2)
	assertPct(t, tbl, string(ReasonArchitecture), "other", 48, 2)
	assertPct(t, tbl, string(ReasonCustomers), "web", 46, 2)
	assertPct(t, tbl, string(ReasonNoSense), "all", 39, 2)
}

func TestTable2_8MatchesPaper(t *testing.T) {
	tbl := Generate(1).Table2_8()
	if tbl.N["all"] != 144 {
		t.Fatalf("base = %d, want 144", tbl.N["all"])
	}
	assertPct(t, tbl, string(ReasonArchitecture), "all", 50, 2)
	assertPct(t, tbl, string(ReasonArchitecture), "web", 53, 2)
	assertPct(t, tbl, string(ReasonInvestments), "all", 33, 2)
	assertPct(t, tbl, string(ReasonUsers), "web", 32, 2)
	assertPct(t, tbl, string(ReasonPolicy), "other", 29, 2)
}

func TestABTestingAdoption(t *testing.T) {
	p := Generate(1)
	if got := p.ABTestingAdoption(); math.Abs(got-0.23) > 0.01 {
		t.Errorf("A/B adoption = %.3f, paper reports 23%%", got)
	}
}

func TestMarginalsSeedIndependent(t *testing.T) {
	// Quotas guarantee marginals for any seed; seeds only shuffle
	// individuals.
	a := Generate(1).Table2_2()
	b := Generate(42).Table2_2()
	for _, row := range a.Rows {
		if math.Abs(row.Pct["web"]-b.Pct(row.Label, "web")) > 0.01 {
			t.Errorf("%s web marginal depends on seed", row.Label)
		}
	}
}

func TestRenderAllTables(t *testing.T) {
	out := Generate(1).AllTables()
	for _, want := range []string{
		"Figure 2.3", "Table 2.2", "Table 2.3", "Table 2.4",
		"Table 2.6", "Table 2.7", "Table 2.8", "feature toggles",
		"A/B testing adoption",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("AllTables missing %q", want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for _, a := range []AppType{AppWeb, AppEnterprise, AppDesktop, AppMobile, AppEmbedded, AppOther} {
		if a.String() == "" {
			t.Error("empty app type name")
		}
	}
	for _, s := range []CompanySize{SizeStartup, SizeSME, SizeCorporation} {
		if s.String() == "" {
			t.Error("empty size name")
		}
	}
}

func TestTablePctMissing(t *testing.T) {
	tbl := Generate(1).Table2_2()
	if tbl.Pct("nonexistent", "all") != -1 {
		t.Error("missing row should return -1")
	}
	if tbl.Pct(string(TechFeatureToggles), "mars") != -1 {
		t.Error("missing stratum should return -1")
	}
}
