package study

import (
	"fmt"
	"strings"
)

// This file embeds the interview-study participants of Table 2.1 —
// the one per-row dataset Chapter 2 publishes in full — and renders the
// table. The practice-usage matrix of Table 2.9 is published only as a
// color-coded figure; the booleans here reflect usages explicitly
// attributable from the paper's prose and table ordering and are
// marked approximate in the rendering.

// Participant is one interviewee of the qualitative study rounds.
type Participant struct {
	ID        string // P1–P20 (round 1), D1–D11 (round 2)
	Company   string // startup, SME, corporation
	Country   string
	App       string // application type
	Domain    string
	Role      string
	YearsExp  int // total experience
	YearsHere int // in company
	TeamSize  string
}

// Participants returns the 31 interviewees of Table 2.1.
func Participants() []Participant {
	return []Participant{
		{"P1", "SME", "AT", "Web", "Sports News & Streaming", "DevOps Engineer", 3, 3, "3-6"},
		{"P2", "SME", "AT", "Enterprise SW", "Document Composition", "Software Engineer", 4, 4, "3-5"},
		{"P3", "SME", "CH", "Web", "Employee Management", "Software Engineer", 10, 5, "1-3"},
		{"P4", "SME", "CH", "Web", "Telecommunication", "Software Engineer", 15, 4, "3-7"},
		{"P5", "SME", "AT", "Web", "Online Retail", "Software Architect", 5, 5, "15-20"},
		{"P6", "SME", "AT", "Desktop", "SharePoint", "Software Engineer", 4, 4, "2-7"},
		{"P7", "corporation", "UA", "Web", "Employee Management", "Software Engineer", 5, 5, "4-6"},
		{"P8", "SME", "AT", "Enterprise SW", "Insurance", "Software Engineer", 12, 12, "5-8"},
		{"P9", "SME", "CH", "Enterprise SW", "E-Government", "Solution Architect", 13, 13, "4-6"},
		{"P10", "SME", "CH", "Web", "Mobile Payment", "Solution Architect", 16, 6, "60-70"},
		{"P11", "SME", "CH", "Web", "Mobile Payment", "Solution Architect", 11, 4, "15-20"},
		{"P12", "corporation", "DE", "Web", "Cloud Provider", "DevOps Engineer", 1, 1, "9-11"},
		{"P13", "startup", "AT", "Web", "Online Code Quality Analysis", "DevOps Engineer", 16, 1, "1"},
		{"P14", "corporation", "IE", "Web", "Network Monitoring", "Public Cloud Architect", 10, 1, "6-8"},
		{"P15", "corporation", "US", "Web", "Cloud Provider", "Program Manager", 15, 3, "8-10"},
		{"P16", "SME", "AT", "Enterprise SW", "E-Government", "Project Lead", 15, 9, "3-7"},
		{"P17", "startup", "US", "Web", "Babysitter Platform", "Software Engineer", 4, 2, "6-8"},
		{"P18", "startup", "US", "Web", "Event Management", "Director of Engineering", 5, 1, "5-7"},
		{"P19", "SME", "US", "Web", "E-Commerce Platform", "Software Engineer", 5, 3, "3-7"},
		{"P20", "SME", "AT", "Embedded SW", "Automotive Software", "Software Engineer", 3, 3, "3-5"},
		{"D1", "SME", "US", "Web", "CMS Provider", "DevOps Engineer", 10, 1, "3-5"},
		{"D2", "SME", "DE", "Web", "Q&A Platform", "Head of Development", 10, 3, "4-7"},
		{"D3", "startup", "CH", "Web", "HR Software", "Head of Development", 10, 7, "4-5"},
		{"D4", "SME", "DE", "Web", "Travel Reviews & Booking", "Software Engineer", 7, 2, "5-7"},
		{"D5", "SME", "DE", "Web", "Travel Reviews & Booking", "Software Engineer", 8, 2, "4-6"},
		{"D6", "corporation", "CH", "Web", "Telecommunication", "Team Lead", 5, 4, "7-9"},
		{"D7", "corporation", "UK", "Web", "Scientific Publisher", "Director of Engineering", 9, 3, "3-12"},
		{"D8", "SME", "CH", "Web", "Network Services", "Team Lead", 30, 3, "5-8"},
		{"D9", "corporation", "US", "Web", "Video Streaming", "Head Release Engineering", 19, 3, "5-9"},
		{"D10", "SME", "CH", "Web", "Sustainability Solutions", "DevOps Engineer", 10, 8, "1-4"},
		{"D11", "corporation", "CH", "Web", "Telecommunication", "Software Engineer", 10, 2, "5-10"},
	}
}

// RenderTable2_1 formats the participant table.
func RenderTable2_1() string {
	var b strings.Builder
	b.WriteString("Table 2.1 — interview study participants of both rounds\n")
	fmt.Fprintf(&b, "%-4s %-12s %-3s %-13s %-28s %-25s %5s %5s %6s\n",
		"ID", "company", "cc", "app type", "domain", "role", "years", "here", "team")
	for _, p := range Participants() {
		fmt.Fprintf(&b, "%-4s %-12s %-3s %-13s %-28s %-25s %5d %5d %6s\n",
			p.ID, p.Company, p.Country, p.App, p.Domain, p.Role, p.YearsExp, p.YearsHere, p.TeamSize)
	}
	return b.String()
}

// PracticeUsage is one interviewee's reported usage of experimentation
// practices (Table 2.9, approximate — see file comment).
type PracticeUsage struct {
	ID                 string
	Microservices      bool
	FeatureToggles     bool
	TrafficRouting     bool
	EarlyAccess        bool
	DevOnCall          bool
	RegressionExp      bool
	BusinessExp        bool
	PlannedBusinessExp bool
}

// PracticeUsages returns the Table 2.9 matrix for interviewees whose
// usage the paper's prose identifies explicitly. The paper orders the
// table's columns by usage intensity; we include the participants the
// text names for each practice.
func PracticeUsages() []PracticeUsage {
	return []PracticeUsage{
		// Heavy experimentation users named throughout Sections 2.5-2.6.
		{ID: "D9", Microservices: true, FeatureToggles: true, TrafficRouting: true, DevOnCall: true, RegressionExp: true, BusinessExp: true},
		{ID: "D2", Microservices: true, FeatureToggles: true, TrafficRouting: true, DevOnCall: true, RegressionExp: true, BusinessExp: true},
		{ID: "D4", Microservices: true, TrafficRouting: true, DevOnCall: true, RegressionExp: true, BusinessExp: true},
		{ID: "D5", Microservices: true, TrafficRouting: true, DevOnCall: true, RegressionExp: true, BusinessExp: true},
		{ID: "D1", Microservices: true, FeatureToggles: true, DevOnCall: true, RegressionExp: true, BusinessExp: true},
		{ID: "D7", Microservices: true, FeatureToggles: true, DevOnCall: true, RegressionExp: true},
		{ID: "P19", Microservices: true, FeatureToggles: true, RegressionExp: true, BusinessExp: true},
		{ID: "P14", Microservices: true, DevOnCall: true, RegressionExp: true},
		{ID: "P12", Microservices: true, RegressionExp: true},
		{ID: "P4", TrafficRouting: true, RegressionExp: true},
		{ID: "P17", BusinessExp: true, DevOnCall: true},
		{ID: "D3", EarlyAccess: true, PlannedBusinessExp: true},
		{ID: "P8", EarlyAccess: true},
		{ID: "P9", EarlyAccess: true},
		{ID: "P16", DevOnCall: true},
		{ID: "P13", DevOnCall: true},
	}
}

// RenderTable2_9 formats the (approximate) practice-usage matrix.
func RenderTable2_9() string {
	var b strings.Builder
	b.WriteString("Table 2.9 — usage of experimentation practices (approximate: entries\n")
	b.WriteString("attributable from the paper's prose; the original is a color-coded figure)\n")
	fmt.Fprintf(&b, "%-5s %-6s %-8s %-8s %-6s %-7s %-9s %-9s\n",
		"ID", "µsvc", "toggles", "routing", "early", "oncall", "regr.exp", "biz.exp")
	mark := func(v bool) string {
		if v {
			return "x"
		}
		return ""
	}
	for _, u := range PracticeUsages() {
		biz := mark(u.BusinessExp)
		if u.PlannedBusinessExp {
			biz = "plan"
		}
		fmt.Fprintf(&b, "%-5s %-6s %-8s %-8s %-6s %-7s %-9s %-9s\n",
			u.ID, mark(u.Microservices), mark(u.FeatureToggles), mark(u.TrafficRouting),
			mark(u.EarlyAccess), mark(u.DevOnCall), mark(u.RegressionExp), biz)
	}
	return b.String()
}
