package study

import (
	"fmt"
	"sort"
	"strings"
)

// This file recomputes the paper's survey tables from the synthesized
// respondent rows. Each table reports percentages for the strata the
// paper uses: all respondents, web vs. other application types, and
// company sizes.

// Row is one table row: a label and its percentage per stratum.
type Row struct {
	Label string
	// Pct maps stratum name ("all", "web", "other", "startup", "SME",
	// "corporation") to a percentage in [0,100].
	Pct map[string]float64
}

// Table is a recomputed survey table.
type Table struct {
	Title string
	// N maps stratum to its denominator.
	N    map[string]int
	Rows []Row
}

// Render formats the table like the paper's (percentages per stratum).
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	strata := []string{"all", "web", "other", "startup", "SME", "corporation"}
	fmt.Fprintf(&b, "%-22s", "")
	for _, s := range strata {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("%s", shortStratum(s)))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "n =")
	for _, s := range strata {
		fmt.Fprintf(&b, " %7d", t.N[s])
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s", r.Label)
		for _, s := range strata {
			fmt.Fprintf(&b, " %6.0f%%", r.Pct[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func shortStratum(s string) string {
	switch s {
	case "startup":
		return "start."
	case "corporation":
		return "corp."
	default:
		return s
	}
}

// strata buckets a respondent set by the paper's six columns.
func strata(rs []*Respondent) map[string][]*Respondent {
	out := map[string][]*Respondent{}
	for _, r := range rs {
		out["all"] = append(out["all"], r)
		if r.Web() {
			out["web"] = append(out["web"], r)
		} else {
			out["other"] = append(out["other"], r)
		}
		out[r.Size.String()] = append(out[r.Size.String()], r)
	}
	// Normalize the size keys to the render labels.
	out["corporation"] = out[SizeCorporation.String()]
	out["startup"] = out[SizeStartup.String()]
	out["SME"] = out[SizeSME.String()]
	return out
}

// buildTable computes percentage rows over the respondent base.
func buildTable(title string, base []*Respondent, labels []string, member func(*Respondent, string) bool) *Table {
	buckets := strata(base)
	t := &Table{Title: title, N: map[string]int{}}
	for s, rs := range buckets {
		t.N[s] = len(rs)
	}
	for _, label := range labels {
		row := Row{Label: label, Pct: map[string]float64{}}
		for s, rs := range buckets {
			if len(rs) == 0 {
				continue
			}
			var n int
			for _, r := range rs {
				if member(r, label) {
					n++
				}
			}
			row.Pct[s] = 100 * float64(n) / float64(len(rs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func (p *Population) all() []*Respondent {
	out := make([]*Respondent, len(p.Respondents))
	for i := range p.Respondents {
		out[i] = &p.Respondents[i]
	}
	return out
}

func (p *Population) filter(pred func(*Respondent) bool) []*Respondent {
	var out []*Respondent
	for i := range p.Respondents {
		if pred(&p.Respondents[i]) {
			out = append(out, &p.Respondents[i])
		}
	}
	return out
}

// Table2_2 — implementation techniques among experiment users.
func (p *Population) Table2_2() *Table {
	base := p.filter(func(r *Respondent) bool { return r.RegressionUse != RegNone })
	labels := []string{
		string(TechOther), string(TechPermissions), string(TechDontKnow),
		string(TechBinaries), string(TechTrafficRouting), string(TechFeatureToggles),
	}
	return buildTable("Table 2.2 — implementation techniques for continuous experimentation",
		base, labels, func(r *Respondent, label string) bool {
			return r.Techniques[Technique(label)]
		})
}

// Table2_3 — how production issues are detected.
func (p *Population) Table2_3() *Table {
	labels := []string{string(DetectOther), string(DetectMonitoring), string(DetectFeedback)}
	return buildTable("Table 2.3 — how issues are usually detected",
		p.all(), labels, func(r *Respondent, label string) bool {
			return r.Detection[Detection(label)]
		})
}

// Table2_4 — handoff of responsibility.
func (p *Population) Table2_4() *Table {
	labels := []string{
		string(HandoffDontKnow), string(HandoffPreprod), string(HandoffStaging),
		string(HandoffDev), string(HandoffNever),
	}
	return buildTable("Table 2.4 — phase after which developers hand off responsibility",
		p.all(), labels, func(r *Respondent, label string) bool {
			return r.Handoff == Handoff(label)
		})
}

// Table2_6 — usage of regression-driven experimentation.
func (p *Population) Table2_6() *Table {
	labels := []string{"for all features", "for some features", "no experimentation"}
	return buildTable("Table 2.6 — usage of regression-driven experimentation",
		p.all(), labels, func(r *Respondent, label string) bool {
			switch label {
			case "for all features":
				return r.RegressionUse == RegAllFeatures
			case "for some features":
				return r.RegressionUse == RegSomeFeatures
			default:
				return r.RegressionUse == RegNone
			}
		})
}

// Table2_7 — reasons against regression-driven experiments.
func (p *Population) Table2_7() *Table {
	base := p.filter(func(r *Respondent) bool { return r.RegressionUse == RegNone })
	labels := []string{
		string(ReasonOther), string(ReasonExpertise), string(ReasonNoSense),
		string(ReasonCustomers), string(ReasonArchitecture),
	}
	return buildTable("Table 2.7 — reasons against regression-driven experiments",
		base, labels, func(r *Respondent, label string) bool {
			return r.ReasonsRegression[Reason(label)]
		})
}

// Table2_8 — reasons against business-driven experiments.
func (p *Population) Table2_8() *Table {
	base := p.filter(func(r *Respondent) bool { return !r.UsesABTesting })
	labels := []string{
		string(ReasonOther), string(ReasonDontKnow), string(ReasonKnowledge),
		string(ReasonPolicy), string(ReasonUsers), string(ReasonInvestments),
		string(ReasonArchitecture),
	}
	return buildTable("Table 2.8 — reasons against business-driven experiments",
		base, labels, func(r *Respondent, label string) bool {
			return r.ReasonsBusiness[Reason(label)]
		})
}

// ABTestingAdoption returns the fraction of respondents using A/B
// testing (the paper reports 23%).
func (p *Population) ABTestingAdoption() float64 {
	var n int
	for i := range p.Respondents {
		if p.Respondents[i].UsesABTesting {
			n++
		}
	}
	return float64(n) / float64(len(p.Respondents))
}

// Demographics renders the Fig 2.3 counts.
func (p *Population) Demographics() string {
	sizes := map[string]int{}
	apps := map[string]int{}
	for i := range p.Respondents {
		r := &p.Respondents[i]
		sizes[r.Size.String()]++
		apps[r.App.String()]++
	}
	var b strings.Builder
	b.WriteString("Figure 2.3 — survey demographics\n")
	b.WriteString("company size:\n")
	for _, k := range sortedKeys(sizes) {
		fmt.Fprintf(&b, "  %-22s %d\n", k, sizes[k])
	}
	b.WriteString("application type:\n")
	for _, k := range sortedKeys(apps) {
		fmt.Fprintf(&b, "  %-22s %d\n", k, apps[k])
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AllTables renders every reproduced table.
func (p *Population) AllTables() string {
	var b strings.Builder
	b.WriteString(RenderTable2_1())
	b.WriteString("\n")
	b.WriteString(p.Demographics())
	b.WriteString("\n")
	for _, t := range []*Table{
		p.Table2_2(), p.Table2_3(), p.Table2_4(),
		p.Table2_6(), p.Table2_7(), p.Table2_8(),
	} {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "A/B testing adoption (Section 2.6.2): %.0f%%\n\n", 100*p.ABTestingAdoption())
	b.WriteString(RenderTable2_9())
	return b.String()
}

// Pct looks up a row's percentage for a stratum (-1 when missing);
// tests use it to compare against the paper's published values.
func (t *Table) Pct(label, stratum string) float64 {
	for _, r := range t.Rows {
		if r.Label == label {
			if v, ok := r.Pct[stratum]; ok {
				return v
			}
			return -1
		}
	}
	return -1
}
