package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
	"contexp/internal/wire"
)

// newBinaryEnv is newTracingEnv with a configurable body cap, for
// exercising the binary ingestion limits.
func newBinaryEnv(t *testing.T, maxBody int64) (*env, *tracing.LiveCollector) {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	collector := tracing.NewLiveCollector(10_000)
	monitor := health.NewMonitor(collector, -1)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
		Topology:             monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:       engine,
		Table:        table,
		Store:        store,
		MaxBodyBytes: maxBody,
		Traces:       collector,
		Health:       monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}, collector
}

func (e *env) postBinary(path string, frame []byte) (int, string) {
	e.t.Helper()
	resp, err := e.ts.Client().Post(e.ts.URL+path, wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	_, _ = body.ReadFrom(resp.Body)
	return resp.StatusCode, body.String()
}

func binMetricsFrame(samples ...metrics.Sample) []byte {
	var e wire.MetricsEncoder
	return append([]byte(nil), e.Encode(samples)...)
}

func binSpansFrame(spans ...tracing.Span) []byte {
	var e wire.SpansEncoder
	return append([]byte(nil), e.Encode(spans)...)
}

func goodSample(i int) metrics.Sample {
	return metrics.Sample{
		Metric: "response_time",
		Scope:  metrics.Scope{Service: "svc", Version: "v1", Variant: "baseline"},
		Value:  float64(20 + i),
	}
}

func goodSpan(i int) tracing.Span {
	return tracing.Span{
		TraceID: tracing.TraceID(i + 1), SpanID: tracing.SpanID(i + 1),
		Service: "svc", Version: "v1", Endpoint: "GET /",
		Duration: 12 * time.Millisecond,
	}
}

func TestBinaryIngestHappyPath(t *testing.T) {
	e, collector := newBinaryEnv(t, 1<<20)

	code, body := e.postBinary("/v1/metrics", binMetricsFrame(goodSample(0), goodSample(1)))
	if code != http.StatusAccepted || !strings.Contains(body, `"accepted": 2`) {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if e.store.SeriesCount() == 0 {
		t.Fatal("store recorded no series")
	}

	code, body = e.postBinary("/v1/spans", binSpansFrame(goodSpan(0), goodSpan(1), goodSpan(2)))
	if code != http.StatusAccepted || !strings.Contains(body, `"accepted": 3`) {
		t.Fatalf("spans: %d %s", code, body)
	}
	if n := collector.SpanCount(); n != 3 {
		t.Fatalf("collector has %d spans, want 3", n)
	}
}

// TestBinaryIngestErrorPaths drives every malformed-frame class through
// both endpoints: each must 4xx without panicking and without recording
// anything (no partial ingestion).
func TestBinaryIngestErrorPaths(t *testing.T) {
	goodM := binMetricsFrame(goodSample(0))
	goodS := binSpansFrame(goodSpan(0))
	wrongVersion := append([]byte(nil), goodM...)
	wrongVersion[2] = 9
	truncated := goodM[:len(goodM)-5]
	badDict := append([]byte(nil), goodM...)
	binary.LittleEndian.PutUint32(badDict[wire.HeaderSize:], 0xFFFFFFF0)

	// A 256 KiB frame against a 4 KiB body cap.
	big := make([]metrics.Sample, 0, 4096)
	for i := 0; i < 4096; i++ {
		s := goodSample(i)
		s.Metric = fmt.Sprintf("metric-%d", i)
		big = append(big, s)
	}
	oversized := binMetricsFrame(big...)

	partialM := binMetricsFrame(goodSample(0),
		metrics.Sample{Metric: "", Scope: metrics.Scope{Service: "svc", Version: "v1"}})
	partialS := binSpansFrame(goodSpan(0),
		tracing.Span{TraceID: 0, SpanID: 9, Service: "svc", Version: "v1", Endpoint: "GET /"})

	tests := []struct {
		name     string
		path     string
		frame    []byte
		wantCode int
		wantSub  string
	}{
		{"oversized batch", "/v1/metrics", oversized, http.StatusRequestEntityTooLarge, "larger than"},
		{"truncated frame", "/v1/metrics", truncated, http.StatusBadRequest, "length"},
		{"wrong version header", "/v1/metrics", wrongVersion, http.StatusBadRequest, "version"},
		{"kind cross-posted to metrics", "/v1/metrics", goodS, http.StatusBadRequest, "kind"},
		{"kind cross-posted to spans", "/v1/spans", goodM, http.StatusBadRequest, "kind"},
		{"garbage bytes", "/v1/spans", []byte("not a frame at all"), http.StatusBadRequest, "magic"},
		{"hostile dictionary count", "/v1/metrics", badDict, http.StatusBadRequest, "dictionary"},
		{"empty metrics frame", "/v1/metrics", binMetricsFrame(), http.StatusBadRequest, "no observations"},
		{"empty spans frame", "/v1/spans", binSpansFrame(), http.StatusBadRequest, "no spans"},
		{"invalid sample rejects whole batch", "/v1/metrics", partialM, http.StatusBadRequest, "required"},
		{"invalid span rejects whole batch", "/v1/spans", partialS, http.StatusBadRequest, "required"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, collector := newBinaryEnv(t, 4096)
			code, body := e.postBinary(tt.path, tt.frame)
			if code != tt.wantCode {
				t.Fatalf("status = %d (%s), want %d", code, body, tt.wantCode)
			}
			if !strings.Contains(body, tt.wantSub) {
				t.Fatalf("body %q does not mention %q", body, tt.wantSub)
			}
			if n := e.store.SeriesCount(); n != 0 {
				t.Fatalf("store recorded %d series from a rejected batch", n)
			}
			if n := collector.SpanCount(); n != 0 {
				t.Fatalf("collector recorded %d spans from a rejected batch", n)
			}
		})
	}
}

// TestMixedJSONAndBinaryOneConnection interleaves JSON and binary
// batches over one keep-alive client: content negotiation is per
// request, and a malformed binary frame between two JSON batches must
// not poison the connection or the JSON path.
func TestMixedJSONAndBinaryOneConnection(t *testing.T) {
	e, collector := newBinaryEnv(t, 1<<20)

	jsonBody := `{"observations":[{"metric":"response_time","service":"svc","version":"v1","value":21}]}`
	if code, body := e.do("POST", "/v1/metrics", jsonBody); code != http.StatusAccepted {
		t.Fatalf("json metrics: %d %s", code, body)
	}
	if code, body := e.postBinary("/v1/metrics", binMetricsFrame(goodSample(1))); code != http.StatusAccepted {
		t.Fatalf("binary metrics: %d %s", code, body)
	}
	if code, _ := e.postBinary("/v1/metrics", []byte("garbage")); code != http.StatusBadRequest {
		t.Fatal("garbage frame must 400")
	}
	if code, body := e.do("POST", "/v1/metrics", jsonBody); code != http.StatusAccepted {
		t.Fatalf("json after bad binary: %d %s", code, body)
	}

	jsonSpans := `{"spans":[{"traceId":50,"spanId":51,"service":"svc","version":"v1","endpoint":"GET /","durationMs":3}]}`
	if code, body := e.do("POST", "/v1/spans", jsonSpans); code != http.StatusAccepted {
		t.Fatalf("json spans: %d %s", code, body)
	}
	if code, body := e.postBinary("/v1/spans", binSpansFrame(goodSpan(7))); code != http.StatusAccepted {
		t.Fatalf("binary spans: %d %s", code, body)
	}
	if n := collector.SpanCount(); n != 2 {
		t.Fatalf("collector has %d spans, want 2", n)
	}
}

// BenchmarkIngestHTTP measures the full HTTP ingestion path for a
// 256-observation batch, JSON vs binary — the end-to-end number behind
// the codec's per-sample wins.
func BenchmarkIngestHTTP(b *testing.B) {
	newBench := func(b *testing.B) *httptest.Server {
		table := router.NewTable()
		store := metrics.NewStore(0)
		engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(Config{Engine: engine, Table: table, Store: store})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		return ts
	}

	samples := make([]metrics.Sample, 256)
	obs := make([]Observation, 256)
	for i := range samples {
		samples[i] = goodSample(i % 16)
		samples[i].Metric = fmt.Sprintf("metric-%d", i%4)
		obs[i] = Observation{
			Metric: samples[i].Metric, Service: "svc", Version: "v1",
			Variant: "baseline", Value: samples[i].Value,
		}
	}
	jsonBody, err := json.Marshal(map[string][]Observation{"observations": obs})
	if err != nil {
		b.Fatal(err)
	}
	frame := binMetricsFrame(samples...)

	post := func(b *testing.B, ts *httptest.Server, contentType string, body []byte) {
		b.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/metrics", contentType, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sink bytes.Buffer
		_, _ = sink.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("status %d: %s", resp.StatusCode, sink.String())
		}
	}

	b.Run("json", func(b *testing.B) {
		ts := newBench(b)
		post(b, ts, "application/json", jsonBody) // warm the connection
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts, "application/json", jsonBody)
		}
	})
	b.Run("binary", func(b *testing.B) {
		ts := newBench(b)
		post(b, ts, wire.ContentType, frame)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts, wire.ContentType, frame)
		}
	})
}
