package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleRunEvents streams a run's audit trail as server-sent events.
// Each bifrost.Event becomes one SSE message whose event field is the
// bifrost event type and whose data is the EventView JSON; a final
// "run-status" message carries the terminal RunStatus. The stream ends
// when the run finishes or the client disconnects.
//
// The engine keeps the full event log per run — including history
// rebuilt from the write-ahead journal after a restart — so a client
// connecting mid-run, after the run finished, or after a crash
// recovery still receives every event from the beginning: the stream
// is a replay plus a live tail.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.cfg.Engine.Get(reqRunKey(r))
	if !ok {
		writeError(w, http.StatusNotFound, "no run named %q", r.PathValue("name"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sent := 0
	emit := func() {
		events := run.Events()
		for ; sent < len(events); sent++ {
			writeSSE(w, sent, string(events[sent].Type), eventView(events[sent]))
		}
		flusher.Flush()
	}
	emit()

	ticker := time.NewTicker(s.cfg.EventPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-run.Done():
			emit()
			writeSSE(w, sent, "run-status", map[string]string{"status": run.Status().String()})
			flusher.Flush()
			return
		case <-ticker.C:
			emit()
		}
	}
}

// writeSSE writes one server-sent event. Data is a single JSON line, so
// no further framing is needed.
func writeSSE(w http.ResponseWriter, id int, event string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, payload)
}
