package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/wire"
)

// newFleetEnv is newEnv plus a fleet hub mounted on the server.
func newFleetEnv(t *testing.T) (*env, *fleet.Hub) {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := fleet.New(fleet.Config{Table: table, HeartbeatInterval: time.Hour})
	t.Cleanup(hub.Close)
	s, err := New(Config{
		Engine: engine,
		Table:  table,
		Store:  store,
		Fleet:  hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}, hub
}

func TestRoutingWatchStreamsFrames(t *testing.T) {
	e, _ := newFleetEnv(t)
	if err := e.table.Set(router.Route{
		Service:  "svc",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(e.ts.URL + "/v1/routing/watch?agent=a1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.StreamContentType {
		t.Fatalf("Content-Type = %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	frame, err := wire.ReadFrame(br, nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Kind(frame) != wire.KindSnapshot {
		t.Fatalf("first frame kind = %d, want snapshot", wire.Kind(frame))
	}
	replica := router.NewTable()
	var sd wire.SnapshotDecoder
	snap, err := sd.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if replica.String() != e.table.String() {
		t.Fatalf("replica = %q, want %q", replica.String(), e.table.String())
	}

	// A table mutation shows up as a delta frame on the live stream.
	if err := e.table.SetWeights("svc", []router.Backend{
		{Version: "v1", Weight: 0.5}, {Version: "v2", Weight: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	frame, err = wire.ReadFrame(br, frame, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Kind(frame) != wire.KindDelta {
		t.Fatalf("second frame kind = %d, want delta", wire.Kind(frame))
	}
	var dd wire.DeltaDecoder
	delta, err := dd.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if replica.String() != e.table.String() || replica.Version() != e.table.Version() {
		t.Fatalf("replica diverged after delta:\n%s\nwant\n%s", replica.String(), e.table.String())
	}
}

func TestRoutingWatchRequiresAgentID(t *testing.T) {
	e, _ := newFleetEnv(t)
	resp, err := http.Get(e.ts.URL + "/v1/routing/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}

func TestAgentHeartbeatAndRegistry(t *testing.T) {
	e, hub := newFleetEnv(t)
	if err := e.table.Set(router.Route{
		Service:  "svc",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	// Wait for the hub to publish version 1 so lag math is stable.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Version() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("hub never published")
		}
		time.Sleep(time.Millisecond)
	}

	hb := Heartbeat{ID: "edge-1", Addr: "10.0.0.1:7080", Version: 1, Resolves: 42}
	body, _ := json.Marshal(hb)
	resp, err := http.Post(e.ts.URL+"/v1/agents/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("heartbeat status = %s", resp.Status)
	}
	var ack struct {
		CurrentVersion uint64 `json:"currentVersion"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.CurrentVersion != 1 {
		t.Fatalf("ack currentVersion = %d", ack.CurrentVersion)
	}

	resp2, err := http.Get(e.ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var listing struct {
		CurrentVersion uint64             `json:"currentVersion"`
		Agents         []fleet.AgentState `json:"items"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.CurrentVersion != 1 || len(listing.Agents) != 1 {
		t.Fatalf("listing = %+v", listing)
	}
	a := listing.Agents[0]
	if a.ID != "edge-1" || a.AppliedVersion != 1 || a.Lag != 0 || a.Resolves != 42 {
		t.Fatalf("agent = %+v", a)
	}
}

func TestHeartbeatRejectsMissingID(t *testing.T) {
	e, _ := newFleetEnv(t)
	resp, err := http.Post(e.ts.URL+"/v1/agents/heartbeat", "application/json",
		bytes.NewReader([]byte(`{"version": 3}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}

func TestHealthReportsFleet(t *testing.T) {
	e, _ := newFleetEnv(t)
	hb := Heartbeat{ID: "edge-1", Version: 0, Stale: true}
	body, _ := json.Marshal(hb)
	resp, err := http.Post(e.ts.URL+"/v1/agents/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp2, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h Health
	if err := json.NewDecoder(resp2.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Fleet == nil {
		t.Fatal("healthz missing fleet section")
	}
	if h.Fleet.Agents != 1 || h.Fleet.StaleAgents != 1 {
		t.Fatalf("fleet health = %+v", h.Fleet)
	}
}

// TestFleetEndpointsAbsentWithoutHub pins the optional wiring: a server
// built without a hub must not expose the fleet surface.
func TestFleetEndpointsAbsentWithoutHub(t *testing.T) {
	e := newEnv(t)
	resp, err := http.Get(e.ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}
