package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/expmodel"
	"contexp/internal/loadgen"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/tracing"
	"contexp/internal/wire"
)

// DemoStrategyDSL is the canary → gradual-rollout strategy the demo
// enacts against the simulated shop: release recommendation v2 (the
// personalized recommender) to 10% of users, and if its tail latency
// holds, roll it out to everyone in three steps. The durations are
// demo-scale (a run completes in under a minute) so phase transitions
// are watchable with curl.
const DemoStrategyDSL = `
# Release the personalized recommender (v2) to everyone, carefully.
strategy "demo-canary-rollout" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"

    phase "canary" {
        practice    = canary
        traffic     = 10%
        duration    = 20s
        min-samples = 20
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
            window    = 20s
            interval  = 5s
        }
        on success      -> phase "rollout"
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 2
    }

    phase "rollout" {
        practice      = gradual-rollout
        steps         = 25%, 50%, 100%
        step-duration = 10s
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
            window    = 10s
            interval  = 5s
        }
        on success -> promote
        on failure -> rollback
    }
}
`

// DemoConfig parameterizes StartDemo.
type DemoConfig struct {
	// RPS is the mean request rate of the synthetic user population
	// (default 25).
	RPS float64
	// LatencyScale compresses the simulated endpoint latencies so the
	// demo is light on CPU (default 0.1: a 20 ms endpoint takes 2 ms).
	LatencyScale float64
	// PopulationSize is the number of distinct users (default 500).
	PopulationSize int
	// Seed fixes population, latencies, and arrivals.
	Seed int64
	// StrategyDSL overrides DemoStrategyDSL.
	StrategyDSL string
	// Enact, when true, submits the demo strategy immediately.
	Enact bool
	// Traces, when set, turns the live topology pipeline on: the shop's
	// backends emit spans into the collector (joined by the trace IDs
	// the load driver mints per user request), feeding `kind = topology`
	// checks and GET /v1/runs/{name}/health.
	Traces *tracing.LiveCollector
	// Faults, when set, injects the schedule into the shop's backends
	// (latency spikes, error storms, blackouts, slow restarts); /healthz
	// reports the live fault state. Typically built from a builtin
	// chaos scenario via --demo-faults.
	Faults *microsim.Injector
	// TelemetryURL, when set, reroutes the shop's self-reported
	// telemetry through the binary wire protocol: the backends and the
	// load driver buffer their metric samples and spans into a
	// wire.Client that posts application/x-contexp-batch frames to this
	// contexpd base URL (typically the daemon's own listen address)
	// instead of recording in-process. The telemetry lands in the same
	// store and collector — but via POST /v1/metrics and /v1/spans,
	// exactly the path an externally deployed application would use.
	TelemetryURL string
	// Logf receives demo progress lines (the load generator's seed line
	// among them); nil discards them.
	Logf func(format string, args ...any)
}

// Demo is a running demo environment: the simulated shop deployed as
// real HTTP servers behind per-service router.Proxy instances, plus a
// load generator playing the user population against the entry proxy.
type Demo struct {
	app       *microsim.HTTPApplication
	topology  *microsim.Application
	entryURL  string
	faults    *microsim.Injector
	telemetry *wire.Client

	requests        atomic.Int64
	transportErrors atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// StartDemo boots the demo environment onto the given table and store
// (the same ones the engine and server use, so experiments reroute the
// demo's live traffic) and starts the load driver. Stop() releases
// everything.
func StartDemo(engine *bifrost.Engine, table *router.Table, store *metrics.Store, cfg DemoConfig) (*Demo, error) {
	if cfg.RPS <= 0 {
		cfg.RPS = 25
	}
	if cfg.LatencyScale <= 0 {
		cfg.LatencyScale = 0.1
	}
	if cfg.PopulationSize <= 0 {
		cfg.PopulationSize = 500
	}
	if cfg.StrategyDSL == "" {
		cfg.StrategyDSL = DemoStrategyDSL
	}

	app, err := microsim.ShopApplication()
	if err != nil {
		return nil, fmt.Errorf("server: building shop application: %w", err)
	}
	if err := microsim.InstallBaselineRoutes(app, table); err != nil {
		return nil, fmt.Errorf("server: installing baseline routes: %w", err)
	}
	var telemetry *wire.Client
	httpCfg := microsim.HTTPConfig{
		LatencyScale: cfg.LatencyScale,
		Seed:         cfg.Seed,
		Traces:       cfg.Traces,
		Faults:       cfg.Faults,
	}
	if cfg.TelemetryURL != "" {
		telemetry = wire.NewClient(cfg.TelemetryURL, nil, 0)
		httpCfg.Telemetry = telemetry
		httpCfg.Spans = telemetry
	}
	httpApp, err := microsim.StartHTTP(app, table, store, httpCfg)
	if err != nil {
		return nil, fmt.Errorf("server: starting shop servers: %w", err)
	}

	pop, err := loadgen.NewPopulation(loadgen.PopulationConfig{
		Size: cfg.PopulationSize,
		Groups: map[expmodel.UserGroup]float64{
			"beta":  0.10,
			"staff": 0.02,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		httpApp.Close()
		return nil, fmt.Errorf("server: building population: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	d := &Demo{
		app:       httpApp,
		topology:  app,
		entryURL:  httpApp.EntryURL(),
		faults:    cfg.Faults,
		telemetry: telemetry,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	go d.drive(ctx, pop, cfg)

	if cfg.Enact {
		strategy, err := bifrost.ParseStrategy(cfg.StrategyDSL)
		if err != nil {
			d.Stop()
			return nil, fmt.Errorf("server: parsing demo strategy: %w", err)
		}
		// A live run of this strategy may already exist — typically one
		// recovered from a --data-dir journal after a mid-demo restart.
		// That run IS the demo enactment; keep driving traffic at it
		// instead of failing the boot on a name collision.
		if existing, ok := engine.Get(strategy.Name); ok && existing.Status() == bifrost.StatusRunning {
			return d, nil
		}
		if _, err := engine.Launch(strategy); err != nil {
			// The service-conflict variant of the same restart: a
			// recovered (or restored-from-queue) run owns the demo
			// strategy's service. The demo keeps driving traffic at the
			// live run rather than failing the boot.
			if errors.Is(err, bifrost.ErrServiceBusy) {
				return d, nil
			}
			d.Stop()
			return nil, fmt.Errorf("server: launching demo strategy: %w", err)
		}
	}
	return d, nil
}

// drive plays the user population against the entry proxy at wall-clock
// pace until the context is canceled. loadgen generates the arrival
// process; the Target paces each request to its arrival instant and
// issues it over real HTTP, so every hop flows through the proxies and
// is subject to experiment routing.
func (d *Demo) drive(ctx context.Context, pop *loadgen.Population, cfg DemoConfig) {
	defer close(d.done)
	client := &http.Client{Timeout: 10 * time.Second}
	target := loadgen.TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		if wait := time.Until(at); wait > 0 {
			select {
			case <-ctx.Done():
				return 0, false, ctx.Err()
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			return 0, false, ctx.Err()
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, d.entryURL, nil)
		if err != nil {
			return 0, false, err
		}
		// Mint the trace identity at the client, like a browser's
		// traceparent: each generated user request is one trace.
		if cfg.Traces != nil {
			httpReq.Header.Set(router.HeaderTraceID,
				strconv.FormatUint(uint64(cfg.Traces.NextTraceID()), 16))
		}
		httpReq.Header.Set("X-User-ID", req.UserID)
		if len(req.Groups) > 0 {
			groups := ""
			for i, g := range req.Groups {
				if i > 0 {
					groups += ","
				}
				groups += string(g)
			}
			httpReq.Header.Set("X-User-Groups", groups)
		}
		start := time.Now()
		resp, err := client.Do(httpReq)
		if err != nil {
			d.transportErrors.Add(1)
			return 0, false, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d.requests.Add(1)
		return time.Since(start), resp.StatusCode >= 500, nil
	})

	// Run the generator in short chunks so cancellation is prompt and
	// the arrival process re-anchors to the wall clock (a slow chunk
	// does not accumulate lag).
	seed := cfg.Seed
	for ctx.Err() == nil {
		// Log only the first chunk's seed line: later chunks derive their
		// seeds from it, so one line is enough to reproduce the stream.
		logf := cfg.Logf
		if seed != cfg.Seed {
			logf = nil
		}
		runCfg := loadgen.Config{
			RPS:      cfg.RPS,
			Duration: 2 * time.Second,
			Start:    time.Now(),
			Seed:     seed,
			Logf:     logf,
		}
		if d.telemetry != nil {
			// Ship the client-observed latencies over the wire too, and
			// flush each chunk's leftovers so telemetry stays fresh even
			// below the batch threshold.
			runCfg.Sink = d.telemetry
		}
		_, _ = loadgen.Run(runCfg, pop, target)
		if d.telemetry != nil {
			_ = d.telemetry.Flush()
		}
		seed++
	}
}

// EntryURL returns the URL load is driven against (the entry service's
// proxy).
func (d *Demo) EntryURL() string { return d.entryURL }

// Stop cancels the load driver and shuts the simulated shop down.
func (d *Demo) Stop() {
	d.cancel()
	<-d.done
	d.app.Close()
	if d.telemetry != nil {
		// Best-effort final flush; the control plane may already be down.
		_ = d.telemetry.Flush()
	}
}

// DemoHealth is the /healthz view of the demo environment.
type DemoHealth struct {
	Services        []string `json:"services"`
	EntryURL        string   `json:"entryURL"`
	RequestsServed  int64    `json:"requestsServed"`
	TransportErrors int64    `json:"transportErrors"`
	// MirrorDrops counts dark-launch mirror jobs the routing proxies
	// discarded on full queues: lost candidate coverage that would
	// otherwise be invisible.
	MirrorDrops uint64 `json:"mirrorDrops"`
	// Faults is the live chaos state when a fault schedule is injected:
	// every configured fault with its window, whether it is active right
	// now, and how many calls it has perturbed so far.
	Faults []microsim.FaultStatus `json:"faults,omitempty"`
	// Telemetry reports the wire-telemetry client when the demo ships
	// its telemetry as binary batch frames (DemoConfig.TelemetryURL).
	Telemetry *DemoTelemetry `json:"telemetry,omitempty"`
}

// DemoTelemetry is the /healthz view of the demo's wire-telemetry
// client: how many binary batch frames it has posted and how many
// posts failed.
type DemoTelemetry struct {
	Flushes uint64 `json:"flushes"`
	Errors  uint64 `json:"errors"`
}

// Health reports the demo's state.
func (d *Demo) Health() *DemoHealth {
	h := &DemoHealth{
		Services:        d.topology.Services(),
		EntryURL:        d.entryURL,
		RequestsServed:  d.requests.Load(),
		TransportErrors: d.transportErrors.Load(),
		MirrorDrops:     d.app.MirrorDrops(),
		Faults:          d.faults.Snapshot(time.Now()),
	}
	if d.telemetry != nil {
		h.Telemetry = &DemoTelemetry{
			Flushes: d.telemetry.Flushes(),
			Errors:  d.telemetry.Errors(),
		}
	}
	return h
}
