package server

import (
	"net/http"
	"strconv"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/tenancy"
)

// This file serves the live scheduler: the queue of admitted-but-
// waiting strategies, the running set, the optimizer's projected
// placement, and a change stream.
//
//	GET /v1/schedule                 queue + running + projection (JSON)
//	GET /v1/schedule?format=gantt    ASCII Gantt chart (text/plain)
//	GET /v1/schedule/events          schedule snapshots as SSE
//
// The endpoints exist only when the server is configured with a
// Scheduler.

// handleSchedule reports the scheduler snapshot. With ?format=gantt it
// renders the placement as the ASCII chart Fenrir's offline scheduling
// example prints (one row per experiment, bar height = traffic share).
// When auth is on, the JSON view is scoped to the caller's entries; the
// gantt chart stays whole-plant (it names runs by tenant-qualified key
// only — operator-grade metadata, consistent with /v1/admin/tenants).
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "gantt" {
		width := 72
		if ws := r.URL.Query().Get("width"); ws != "" {
			if n, err := strconv.Atoi(ws); err == nil && n > 8 && n <= 512 {
				width = n
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.cfg.Scheduler.Gantt(width)))
		return
	}
	snap := s.cfg.Scheduler.Snapshot()
	if s.cfg.Auth != nil {
		snap = scopeSnapshot(snap, reqTenant(r))
	}
	writeJSON(w, http.StatusOK, snap)
}

// scopeSnapshot trims a schedule snapshot to one tenant's entries.
func scopeSnapshot(snap bifrost.ScheduleSnapshot, tenant string) bifrost.ScheduleSnapshot {
	running := make([]bifrost.ScheduledRunView, 0, len(snap.Running))
	for _, rv := range snap.Running {
		if rv.Tenant == tenant {
			running = append(running, rv)
		}
	}
	queue := make([]bifrost.QueueEntryView, 0, len(snap.Queue))
	for _, qv := range snap.Queue {
		if qv.Tenant == tenant {
			queue = append(queue, qv)
		}
	}
	recent := make([]bifrost.QueueEvent, 0, len(snap.Recent))
	for _, ev := range snap.Recent {
		if owner, _ := tenancy.Split(ev.Name); owner == tenant {
			recent = append(recent, ev)
		}
	}
	snap.Running, snap.Queue, snap.Recent = running, queue, recent
	return snap
}

// handleScheduleEvents streams schedule changes as server-sent events:
// one "schedule" message per observable change (submission, launch,
// cancellation, replanning), carrying the full snapshot. The first
// message is the current state, so a client never starts blind.
func (s *Server) handleScheduleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	tenant := reqTenant(r)
	emit := func(snap bifrost.ScheduleSnapshot) {
		if s.cfg.Auth != nil {
			snap = scopeSnapshot(snap, tenant)
		}
		writeSSE(w, int(snap.Version), "schedule", snap)
		flusher.Flush()
	}
	last := s.cfg.Scheduler.Snapshot()
	emit(last)

	// Each tick takes a fresh snapshot rather than polling Version():
	// Snapshot itself notices (and versions) changes no pump observed,
	// such as runs launched around the scheduler finishing or starting.
	ticker := time.NewTicker(s.cfg.EventPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if snap := s.cfg.Scheduler.Snapshot(); snap.Version != last.Version {
				last = snap
				emit(snap)
			}
		}
	}
}
