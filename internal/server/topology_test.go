package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

// newTracingEnv is newEnv with the live topology pipeline wired in:
// bounded collector, monitor, engine assessor, and the span/health API.
func newTracingEnv(t *testing.T, settle time.Duration) (*env, *tracing.LiveCollector, *health.Monitor) {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	collector := tracing.NewLiveCollector(10_000)
	monitor := health.NewMonitor(collector, settle)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
		Topology:             monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 20 * time.Millisecond,
		Traces:            collector,
		Health:            monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}, collector, monitor
}

// spanBatch renders one trace (root plus callees) as a /v1/spans body.
func spanBatch(trace uint64, rootSvc, rootVer string, callees ...[2]string) string {
	var b strings.Builder
	b.WriteString(`{"spans":[`)
	fmt.Fprintf(&b, `{"traceId":%d,"spanId":%d,"service":%q,"version":%q,"endpoint":"GET /","durationMs":12}`,
		trace, trace*100, rootSvc, rootVer)
	for i, c := range callees {
		fmt.Fprintf(&b, `,{"traceId":%d,"spanId":%d,"parentId":%d,"service":%q,"version":%q,"endpoint":"GET /dep","durationMs":4}`,
			trace, trace*100+uint64(i)+1, trace*100, c[0], c[1])
	}
	b.WriteString(`]}`)
	return b.String()
}

func TestIngestSpansAndRunHealth(t *testing.T) {
	e, _, _ := newTracingEnv(t, -1)
	e.seedMetrics()
	if code, body := e.do(http.MethodPost, "/v1/strategies", longDSL); code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	defer func() {
		e.do(http.MethodDelete, "/v1/runs/long", "")
		e.waitStatus("long", "aborted", 5*time.Second)
	}()

	// Two baseline users and one experimental user whose trace shows a
	// new downstream dependency of svc@v2.
	for i, batch := range []string{
		spanBatch(1, "svc", "v1"),
		spanBatch(2, "svc", "v1"),
		spanBatch(3, "svc", "v2", [2]string{"billing", "v1"}),
	} {
		code, body := e.do(http.MethodPost, "/v1/spans", batch)
		if code != http.StatusAccepted {
			t.Fatalf("spans %d: %d: %s", i, code, body)
		}
		var resp map[string]int
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		if resp["dropped"] != 0 {
			t.Fatalf("spans %d dropped: %+v", i, resp)
		}
	}

	code, body := e.do(http.MethodGet, "/v1/runs/long/health", "")
	if code != http.StatusOK {
		t.Fatalf("health: %d: %s", code, body)
	}
	var view health.AssessmentView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.BaselineTraces != 2 || view.CandidateTraces != 1 {
		t.Fatalf("traces = %d/%d, want 2/1", view.BaselineTraces, view.CandidateTraces)
	}
	if view.ChangesByClass["call-new-endpoint"] == 0 {
		t.Fatalf("no call-new-endpoint change: %+v", view.ChangesByClass)
	}

	// Rendered report form.
	code, body = e.do(http.MethodGet, "/v1/runs/long/health?format=report", "")
	if code != http.StatusOK || !strings.Contains(body, "topological difference") {
		t.Fatalf("report: %d: %s", code, body)
	}

	// Unknown runs 404.
	if code, _ := e.do(http.MethodGet, "/v1/runs/nope/health", ""); code != http.StatusNotFound {
		t.Fatalf("unknown run health: %d", code)
	}

	// /healthz reports the tracing pipeline.
	code, body = e.do(http.MethodGet, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Tracing == nil {
		t.Fatal("healthz missing tracing section")
	}
	if h.Tracing.FoldedTraces != 3 || h.Tracing.MonitoredRuns != 1 {
		t.Errorf("tracing health = %+v", h.Tracing)
	}
	if h.Tracing.SpanCap != 10_000 {
		t.Errorf("span cap = %d", h.Tracing.SpanCap)
	}
}

func TestIngestSpansValidation(t *testing.T) {
	e, _, _ := newTracingEnv(t, -1)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty batch", `{"spans":[]}`, http.StatusBadRequest},
		{"not json", `]`, http.StatusBadRequest},
		{"missing ids", `{"spans":[{"service":"s","version":"v","endpoint":"e","durationMs":1}]}`, http.StatusBadRequest},
		{"missing service", `{"spans":[{"traceId":1,"spanId":2,"version":"v","endpoint":"e"}]}`, http.StatusBadRequest},
		{"ok", `{"spans":[{"traceId":1,"spanId":2,"service":"s","version":"v","endpoint":"e","durationMs":1}]}`, http.StatusAccepted},
	}
	for _, tc := range cases {
		if code, body := e.do(http.MethodPost, "/v1/spans", tc.body); code != tc.want {
			t.Errorf("%s: %d (want %d): %s", tc.name, code, tc.want, body)
		}
	}
}

func TestSpansEndpointAbsentWithoutCollector(t *testing.T) {
	e := newEnv(t)
	code, _ := e.do(http.MethodPost, "/v1/spans", `{"spans":[]}`)
	if code != http.StatusNotFound && code != http.StatusMethodNotAllowed {
		t.Fatalf("spans endpoint responded %d without a collector", code)
	}
	if code, _ := e.do(http.MethodGet, "/v1/runs/x/health", ""); code != http.StatusNotFound {
		t.Fatalf("health endpoint responded %d without a monitor", code)
	}
}

// demoTopologyDSL gates the recommendation v2 release on the structural
// comparison: version updates are expected, anything else — like v2's
// new dependency on the users service — trips the check and rolls the
// release back.
const demoTopologyDSL = `
strategy "rec-v2-structural" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice    = canary
        traffic     = 50%
        duration    = 20s
        check "structure" {
            kind       = topology
            min-traces = 5
            allow      = updated-callee-version, updated-caller-version, updated-version
            interval   = 250ms
        }
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 3
    }
}
`

// demoMetricDSL is the scalar twin: same release, same traffic, gated
// only on latency — blind to the structural change.
const demoMetricDSL = `
strategy "rec-v2-metric" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 50%
        duration = 1s
        check "latency" {
            metric    = response_time
            aggregate = mean
            max       = 1000
            window    = 10s
            interval  = 200ms
        }
        on success      -> promote
        on inconclusive -> retry
        max-retries = 10
    }
}
`

// TestDemoTopologyCheckRollsBack is the acceptance flow: under demo
// traffic, the strategy gating on `kind = topology` detects the
// candidate recommender's new users-service dependency and rolls back,
// while the metric-only strategy promotes the same release because its
// latency holds. Structural signals catch what scalar metrics miss.
func TestDemoTopologyCheckRollsBack(t *testing.T) {
	e, collector, _ := newTracingEnv(t, 50*time.Millisecond)
	demo, err := StartDemo(e.engine, e.table, e.store, DemoConfig{
		RPS:          120,
		LatencyScale: 0.02,
		Seed:         7,
		Enact:        false,
		Traces:       collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer demo.Stop()
	e.server.SetDemo(demo)

	// Structural gate: rolls back on the new dependency.
	if code, body := e.do(http.MethodPost, "/v1/strategies", demoTopologyDSL); code != http.StatusCreated {
		t.Fatalf("submit structural: %d: %s", code, body)
	}
	e.waitStatus("rec-v2-structural", "rolled-back", 20*time.Second)

	run, _ := e.engine.Get("rec-v2-structural")
	var verdictDetail string
	for _, ev := range run.Events() {
		if ev.Type == bifrost.EventTopologyVerdict && ev.Outcome == bifrost.OutcomeFail {
			verdictDetail = ev.Detail
		}
	}
	if !strings.Contains(verdictDetail, "call-new-endpoint") ||
		!strings.Contains(verdictDetail, "users@v1") {
		t.Fatalf("failing verdict does not name the new dependency: %q", verdictDetail)
	}

	// The run's health surface shows the assessment that tripped it.
	code, body := e.do(http.MethodGet, "/v1/runs/rec-v2-structural/health", "")
	if code != http.StatusOK {
		t.Fatalf("health: %d: %s", code, body)
	}
	var view health.AssessmentView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if !view.Frozen || view.ChangesByClass["call-new-endpoint"] == 0 {
		t.Fatalf("assessment after rollback = %+v", view.ChangesByClass)
	}

	// Metric twin: same release passes the scalar gate.
	if code, body := e.do(http.MethodPost, "/v1/strategies", demoMetricDSL); code != http.StatusCreated {
		t.Fatalf("submit metric: %d: %s", code, body)
	}
	e.waitStatus("rec-v2-metric", "succeeded", 20*time.Second)
}
