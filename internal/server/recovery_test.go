package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// newJournalEnv is newEnv with a write-ahead journal wired through
// engine and server.
func newJournalEnv(t *testing.T, jnl journal.Journal) *env {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
		Journal:              jnl,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 20 * time.Millisecond,
		Journal:           jnl,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}
}

func TestListRunsLaunchOrder(t *testing.T) {
	e := newEnv(t)
	e.seedMetrics()
	// Launch in an order that name-sorting would scramble. Each strategy
	// gets its own service: concurrent live runs on one service are
	// rejected (bifrost.ErrServiceBusy).
	for _, name := range []string{"zulu", "alpha", "mike"} {
		dsl := strings.Replace(longDSL, `strategy "long"`, fmt.Sprintf("strategy %q", name), 1)
		dsl = strings.Replace(dsl, `service   = "svc"`, fmt.Sprintf("service   = %q", "svc-"+name), 1)
		if code, body := e.do(http.MethodPost, "/v1/strategies", dsl); code != http.StatusCreated {
			t.Fatalf("submit %s: %d: %s", name, code, body)
		}
	}
	code, body := e.do(http.MethodGet, "/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, body)
	}
	var resp struct {
		Runs []RunSummary `json:"items"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	want := []string{"zulu", "alpha", "mike"}
	if len(resp.Runs) != len(want) {
		t.Fatalf("listed %d runs", len(resp.Runs))
	}
	for i, r := range resp.Runs {
		if r.Name != want[i] {
			t.Errorf("runs[%d] = %q, want %q (launch order, not name order)", i, r.Name, want[i])
		}
	}
	for _, name := range want {
		e.do(http.MethodDelete, "/v1/runs/"+name, "")
	}
}

// TestServerServesRecoveredRun is the acceptance flow at the HTTP
// layer: a daemon dies mid-run; the next daemon recovers from the
// journal and serves the run's full pre-crash history — list, detail,
// and SSE replay — while the engine settles it without intervention.
func TestServerServesRecoveredRun(t *testing.T) {
	jnl := journal.NewMemory()
	e := newJournalEnv(t, jnl)
	e.seedMetrics()
	if code, body := e.do(http.MethodPost, "/v1/strategies", longDSL); code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	// Let the run journal its launch, phase entry, and some checks, then
	// "crash" (the first env is simply abandoned).
	deadline := time.Now().Add(5 * time.Second)
	for {
		run, ok := e.engine.Get("long")
		if ok && len(run.Events()) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never produced events")
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := jnl.Snapshot()
	preRun, _ := e.engine.Get("long")
	preEvents := len(preRun.Events())

	e2 := newJournalEnv(t, snap)
	e2.seedMetrics()
	rep, err := e2.engine.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Fatalf("report = %+v", rep)
	}

	// Detail view: full pre-crash history plus recovery events.
	code, body := e2.do(http.MethodGet, "/v1/runs/long", "")
	if code != http.StatusOK {
		t.Fatalf("get run: %d: %s", code, body)
	}
	var detail RunDetail
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatal(err)
	}
	if !detail.Recovered {
		t.Error("run not marked recovered")
	}
	if len(detail.EventLog) < preEvents {
		t.Errorf("served %d events, pre-crash log had %d", len(detail.EventLog), preEvents)
	}
	if detail.EventLog[0].Type != string(bifrost.EventRunLaunched) {
		t.Errorf("first event = %s, want run-launched", detail.EventLog[0].Type)
	}

	// SSE: the stream replays the recovered history before going live.
	req, err := http.NewRequest(http.MethodGet, e2.ts.URL+"/v1/runs/long/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e2.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	var stream strings.Builder
	streamDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(streamDeadline) &&
		!strings.Contains(stream.String(), string(bifrost.EventPhaseEntered)) {
		n, err := resp.Body.Read(buf)
		stream.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	for _, want := range []string{"run-launched", "phase-entered", "traffic-applied"} {
		if !strings.Contains(stream.String(), want) {
			t.Errorf("SSE replay missing %q", want)
		}
	}

	// Settle the run so the env tears down cleanly.
	e2.do(http.MethodDelete, "/v1/runs/long", "")
	e2.waitStatus("long", "aborted", 5*time.Second)
}

func TestHealthzReportsJournal(t *testing.T) {
	jnl := journal.NewMemory()
	e := newJournalEnv(t, jnl)
	e.seedMetrics()
	if code, body := e.do(http.MethodPost, "/v1/strategies", fastDSL); code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	e.waitStatus("fast", "succeeded", 5*time.Second)

	code, body := e.do(http.MethodGet, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Journal == nil {
		t.Fatal("healthz missing journal section")
	}
	if h.Journal.Records == 0 {
		t.Error("journal records = 0 after a full run")
	}
	if h.Engine.JournalErrors != 0 {
		t.Errorf("journal errors = %d", h.Engine.JournalErrors)
	}
}
