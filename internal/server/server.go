// Package server is the HTTP control plane of the framework: the
// middleware face of Bifrost. Where the library packages execute
// strategies in-process, this package turns them into a long-running
// service — the deployment model of the paper's Section 4.4, where
// strategies written in the experimentation-as-code DSL are submitted
// to a daemon that enacts them against live traffic.
//
// The API surface:
//
//	POST   /v1/strategies          submit a DSL strategy; starts (or queues) a run
//	GET    /v1/runs                list runs (live and finished)
//	GET    /v1/runs/{name}         inspect one run, including its events
//	DELETE /v1/runs/{name}         abort a live run (or dequeue a queued one)
//	GET    /v1/runs/{name}/events  stream run events as server-sent events
//	GET    /v1/schedule            scheduler queue + projected placement (?format=gantt)
//	GET    /v1/schedule/events     stream schedule snapshots as server-sent events
//	POST   /v1/metrics             ingest metric observations
//	POST   /v1/spans               ingest trace spans (batched)
//	GET    /v1/runs/{name}/health  live topology assessment of a run
//	GET    /v1/routes              dump the routing table
//	GET    /v1/routing/watch       stream routing snapshots/deltas to an edge agent
//	GET    /v1/agents              connected-agent registry (applied versions, lag)
//	POST   /v1/agents/heartbeat    agent lease renewal
//	GET    /v1/admin/tenants       per-tenant usage (runs, series, request budget)
//	GET    /healthz                self-reported component health (auth-exempt)
//
// Every /v1/* request passes through a middleware chain (middleware.go):
// request-ID minting, structured logging, bearer-token auth resolving
// the calling tenant, and per-tenant rate limiting. With no auth
// resolver configured all callers are the default tenant — the
// pre-tenancy behavior, byte for byte. Errors use a typed envelope,
// {"error": {"code", "message"}}, with stable machine-readable codes.
//
// A Server owns no goroutines of its own beyond the ones net/http
// starts per request; the Bifrost engine drives runs, and the optional
// Demo (see demo.go) drives simulated traffic.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fleet"
	"contexp/internal/health"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tenancy"
	"contexp/internal/tracing"
	"contexp/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Engine executes submitted strategies (required).
	Engine *bifrost.Engine
	// Table is the routing table the engine manipulates (required).
	Table *router.Table
	// Store is the metric store checks query and /v1/metrics feeds
	// (required).
	Store *metrics.Store
	// EventPollInterval is how often the SSE endpoint re-reads a run's
	// event log (default 250ms).
	EventPollInterval time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Journal, when set, is the engine's write-ahead journal; /healthz
	// reports its size and sync activity. Optional.
	Journal journal.Journal
	// Scheduler, when set, admits submissions instead of launching them
	// directly: conflicting strategies queue (202) rather than error,
	// and the /v1/schedule surface comes alive. Optional.
	Scheduler *bifrost.Scheduler
	// Traces, when set, receives spans from POST /v1/spans — the span
	// ingestion path real (non-simulated) services use — and is reported
	// in /healthz. Optional.
	Traces *tracing.LiveCollector
	// Health, when set, serves the live topology assessment at
	// GET /v1/runs/{name}/health. Optional; typically the same
	// health.Monitor the engine's topology checks evaluate against.
	Health *health.Monitor
	// Fleet, when set, distributes routing snapshots to edge agents:
	// GET /v1/routing/watch streams frames, GET /v1/agents lists the
	// fleet, POST /v1/agents/heartbeat renews agent leases. Optional.
	Fleet *fleet.Hub
	// Auth, when set, requires a bearer token on every /v1/* request and
	// resolves it to the calling tenant. Nil means every caller is the
	// default tenant (the --demo and test posture). Optional.
	Auth *tenancy.Resolver
	// RateLimit, when set, charges each /v1/* request against the
	// calling tenant's token bucket; throttled callers get 429 with
	// Retry-After. Optional.
	RateLimit *tenancy.Limiter
	// Logf, when set, receives one structured line per request (method,
	// path, status, duration, tenant, request ID). Optional.
	Logf func(format string, args ...any)
	// StatusCacheTTL bounds how long /healthz and /v1/admin/tenants may
	// serve one assembled status snapshot. Assembling the snapshot walks
	// every run and every tenant's footprint; under load-balancer probes
	// and fleet dashboards polling hundreds of times a second that walk
	// would dominate, so both endpoints share a snapshot rebuilt at most
	// once per TTL (single-flight: concurrent expirations rebuild once).
	// 0 applies the 1s default; negative disables caching.
	StatusCacheTTL time.Duration
}

// Server serves the control-plane API.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler
	start   time.Time

	// statusCache is the shared /healthz + /v1/admin/tenants snapshot;
	// statusMu single-flights its rebuilds (see Config.StatusCacheTTL).
	statusMu    sync.Mutex
	statusCache atomic.Pointer[statusSnapshot]

	// demo, when set, is reported by /healthz and drives traffic.
	demo *Demo
}

// New creates a Server. The caller mounts Handler() on an http.Server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil || cfg.Table == nil || cfg.Store == nil {
		return nil, errors.New("server: engine, table, and store are required")
	}
	if cfg.EventPollInterval <= 0 {
		cfg.EventPollInterval = 250 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/strategies", s.handleSubmitStrategy)
	s.mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	s.mux.HandleFunc("GET /v1/runs/{name}", s.handleGetRun)
	s.mux.HandleFunc("DELETE /v1/runs/{name}", s.handleAbortRun)
	s.mux.HandleFunc("GET /v1/runs/{name}/events", s.handleRunEvents)
	s.mux.HandleFunc("POST /v1/metrics", s.handleIngestMetrics)
	s.mux.HandleFunc("GET /v1/routes", s.handleRoutes)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Scheduler != nil {
		s.mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
		s.mux.HandleFunc("GET /v1/schedule/events", s.handleScheduleEvents)
	}
	if cfg.Traces != nil {
		s.mux.HandleFunc("POST /v1/spans", s.handleIngestSpans)
	}
	if cfg.Health != nil {
		s.mux.HandleFunc("GET /v1/runs/{name}/health", s.handleRunHealth)
	}
	if cfg.Fleet != nil {
		s.mux.HandleFunc("GET /v1/routing/watch", s.handleRoutingWatch)
		s.mux.HandleFunc("GET /v1/agents", s.handleAgents)
		s.mux.HandleFunc("POST /v1/agents/heartbeat", s.handleAgentHeartbeat)
	}
	s.mux.HandleFunc("GET /v1/admin/tenants", s.handleAdminTenants)
	s.handler = s.chain()
	return s, nil
}

// Handler returns the API handler: the middleware chain wrapped around
// the route mux.
func (s *Server) Handler() http.Handler { return s.handler }

// SetDemo attaches a running demo so /healthz can report it.
func (s *Server) SetDemo(d *Demo) { s.demo = d }

// --- JSON views ---

// RunSummary is the list/inspect view of a run.
type RunSummary struct {
	Name      string   `json:"name"`
	Tenant    string   `json:"tenant,omitempty"`
	Service   string   `json:"service"`
	Baseline  string   `json:"baseline"`
	Candidate string   `json:"candidate"`
	Status    string   `json:"status"`
	Phase     string   `json:"phase,omitempty"`
	Phases    []string `json:"phases"`
	Events    int      `json:"events"`
	// Recovered marks runs rebuilt from the write-ahead journal after a
	// restart rather than launched by this process.
	Recovered bool `json:"recovered,omitempty"`

	// seq carries the run's launch sequence through list pagination; it
	// is surfaced only as the page's nextCursor, never serialized.
	seq uint64
}

// RunDetail adds the audit trail and the rendered state machine.
type RunDetail struct {
	RunSummary
	EventLog     []EventView `json:"eventLog"`
	StateMachine string      `json:"stateMachine"`
}

// EventView is the JSON form of one bifrost.Event.
type EventView struct {
	At      time.Time `json:"at"`
	Type    string    `json:"type"`
	Phase   string    `json:"phase,omitempty"`
	Check   string    `json:"check,omitempty"`
	Outcome string    `json:"outcome,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

func eventView(ev bifrost.Event) EventView {
	v := EventView{
		At:     ev.At,
		Type:   string(ev.Type),
		Phase:  ev.Phase,
		Check:  ev.Check,
		Detail: ev.Detail,
	}
	if ev.Outcome != 0 {
		v.Outcome = ev.Outcome.String()
	}
	return v
}

func runSummary(r *bifrost.Run) RunSummary {
	st := r.Strategy()
	phases := make([]string, len(st.Phases))
	for i := range st.Phases {
		phases[i] = st.Phases[i].Name
	}
	return RunSummary{
		Name:      st.Name,
		Tenant:    st.Tenant,
		Service:   st.Service,
		Baseline:  st.Baseline,
		Candidate: st.Candidate,
		Status:    r.Status().String(),
		Phase:     r.CurrentPhase(),
		Phases:    phases,
		Events:    len(r.Events()),
		Recovered: r.Recovered(),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the typed error envelope with the default code for
// the status (see errorCode in middleware.go).
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeErrorCode(w, code, errorCode(code), format, args...)
}

// writeErrorCode emits the envelope with an explicit machine-readable
// code, for statuses with more than one cause (409 is "conflict" for a
// duplicate name but "busy" for a service owned by another live run).
func writeErrorCode(w http.ResponseWriter, status int, errCode, format string, args ...any) {
	writeJSON(w, status, map[string]ErrorBody{"error": {
		Code:    errCode,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeErrorTo writes the envelope body to an already-started response
// (the 404/405 interceptor, which has called WriteHeader by the time
// the body is written).
func writeErrorTo(w io.Writer, errCode, message string) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]ErrorBody{"error": {Code: errCode, Message: message}})
}

// --- handlers ---

// handleSubmitStrategy accepts a DSL strategy as the request body,
// validates it, and launches a run.
func (s *Server) handleSubmitStrategy(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"strategy larger than %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	strategy, err := bifrost.ParseStrategy(string(src))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The DSL never names a tenant: the run belongs to whoever submitted
	// it, stamped from the authenticated principal.
	strategy.Tenant = tenancy.FromContext(r.Context())
	if s.cfg.Scheduler != nil {
		// Scheduler path: conflicting submissions queue instead of
		// erroring. A queued strategy is 202 Accepted with its queue
		// entry; an immediately-launched one is 201 as before.
		res, err := s.cfg.Scheduler.Submit(strategy)
		switch {
		case err != nil && strings.Contains(err.Error(), "already"):
			writeError(w, http.StatusConflict, "%v", err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		case res.Queued:
			w.Header().Set("Location", "/v1/schedule")
			writeJSON(w, http.StatusAccepted, res.Entry)
			return
		}
		w.Header().Set("Location", "/v1/runs/"+strategy.Name)
		writeJSON(w, http.StatusCreated, runSummary(res.Run))
		return
	}
	run, err := s.cfg.Engine.Launch(strategy)
	if err != nil {
		// The strategy already parsed and validated, so Launch can only
		// fail on a live-run name collision or service conflict (checked
		// under the engine lock) or a routing-table rejection.
		if errors.Is(err, bifrost.ErrServiceBusy) {
			writeErrorCode(w, http.StatusConflict, "busy", "%v", err)
			return
		}
		if strings.Contains(err.Error(), "already running") {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+strategy.Name)
	writeJSON(w, http.StatusCreated, runSummary(run))
}

// reqTenant is the canonical tenant of the calling principal: resolved
// by the auth middleware, or the default tenant when auth is off.
func reqTenant(r *http.Request) string { return tenancy.FromContext(r.Context()) }

// reqRunKey qualifies the {name} path segment with the caller's
// tenant, yielding the engine/scheduler key. A caller can only ever
// name its own runs: tenant B asking for tenant A's run name qualifies
// to a key in B's namespace and misses.
func reqRunKey(r *http.Request) string {
	return tenancy.Qualify(reqTenant(r), r.PathValue("name"))
}

// listParams are the shared cursor-pagination controls of the list
// endpoints (?limit=, ?cursor=); responses are {"items": [...]} plus
// "nextCursor" when the listing was cut short.
type listParams struct {
	limit  int
	cursor uint64
	hasCur bool
}

const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

func parseListParams(r *http.Request) (listParams, error) {
	p := listParams{limit: defaultListLimit}
	q := r.URL.Query()
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return p, fmt.Errorf("limit must be a positive integer, got %q", raw)
		}
		p.limit = min(n, maxListLimit)
	}
	if raw := q.Get("cursor"); raw != "" {
		c, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return p, fmt.Errorf("malformed cursor %q", raw)
		}
		p.cursor = c
		p.hasCur = true
	}
	return p, nil
}

// handleListRuns lists runs in launch order (Engine.Runs already sorts
// by launch sequence), so the list reads as a chronology — including
// runs recovered from the journal, which keep their pre-restart order.
// Cursor pagination rides the launch sequence: ?cursor= is the opaque
// nextCursor of the previous page. ?state= filters by run status, and
// ?tenant= (meaningful only when auth is off, i.e. for an operator
// surface — authenticated callers always see exactly their own runs)
// filters by tenant.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	p, err := parseListParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	state := q.Get("state")
	authed := s.cfg.Auth != nil
	tenantFilter, filterByTenant := "", false
	if authed {
		tenantFilter, filterByTenant = reqTenant(r), true
	} else if q.Has("tenant") {
		tenantFilter, filterByTenant = tenancy.Canonical(q.Get("tenant")), true
	}

	items := make([]RunSummary, 0, p.limit)
	var nextCursor string
	for _, run := range s.cfg.Engine.Runs() {
		st := run.Strategy()
		if filterByTenant && st.Tenant != tenantFilter {
			continue
		}
		if state != "" && run.Status().String() != state {
			continue
		}
		if p.hasCur && run.Seq() <= p.cursor {
			continue
		}
		if len(items) == p.limit {
			nextCursor = strconv.FormatUint(items[len(items)-1].seq, 10)
			break
		}
		sum := runSummary(run)
		sum.seq = run.Seq()
		items = append(items, sum)
	}
	resp := map[string]any{"items": items}
	if nextCursor != "" {
		resp["nextCursor"] = nextCursor
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.cfg.Engine.Get(reqRunKey(r))
	if !ok {
		writeError(w, http.StatusNotFound, "no run named %q", r.PathValue("name"))
		return
	}
	events := run.Events()
	detail := RunDetail{
		RunSummary:   runSummary(run),
		EventLog:     make([]EventView, len(events)),
		StateMachine: run.Strategy().StateMachine(),
	}
	for i, ev := range events {
		detail.EventLog[i] = eventView(ev)
	}
	writeJSON(w, http.StatusOK, detail)
}

// handleAbortRun cancels a live run — or, when a scheduler is present
// and the name matches a queued submission that never launched,
// withdraws it from the queue. Aborting a finished run (including a
// second abort of the same run) is a conflict.
func (s *Server) handleAbortRun(w http.ResponseWriter, r *http.Request) {
	// Queued-but-not-launched submissions are checked first: after a
	// finished run's name is reused for a queued resubmission, the
	// abort targets the waiting entry, not the finished run.
	if s.cfg.Scheduler != nil && s.cfg.Scheduler.Cancel(reqRunKey(r)) == nil {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"name":   r.PathValue("name"),
			"status": "dequeued",
		})
		return
	}
	run, ok := s.cfg.Engine.Get(reqRunKey(r))
	if !ok {
		writeError(w, http.StatusNotFound, "no run named %q", r.PathValue("name"))
		return
	}
	if st := run.Status(); st != bifrost.StatusRunning {
		writeError(w, http.StatusConflict, "run %q already finished: %s", r.PathValue("name"), st)
		return
	}
	run.Abort()
	writeJSON(w, http.StatusAccepted, map[string]string{
		"name":   r.PathValue("name"),
		"status": "aborting",
	})
}

// Observation is one ingested metric sample. At defaults to the server's
// current time, matching what a self-reporting backend would stamp.
type Observation struct {
	Metric  string    `json:"metric"`
	Service string    `json:"service"`
	Version string    `json:"version"`
	Variant string    `json:"variant,omitempty"`
	Value   float64   `json:"value"`
	At      time.Time `json:"at,omitzero"`
}

// --- binary ingestion plumbing ---
//
// Both telemetry handlers content-negotiate on Content-Type: frames
// tagged application/x-contexp-batch take the pooled zero-alloc binary
// path; everything else flows through the original JSON decoding,
// byte for byte unchanged.

// frameBufPool holds the request-body scratch buffers of the binary
// ingestion path, so steady-state ingestion reads frames without
// per-request buffer churn.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// isBinaryBatch reports whether the request carries a binary batch
// frame (parameters after the media type are tolerated).
func isBinaryBatch(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == wire.ContentType || strings.HasPrefix(ct, wire.ContentType+";")
}

// readFrame reads the request body into a pooled buffer, mapping
// oversize to 413. On false, the error response is already written.
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	buf := frameBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if _, err := buf.ReadFrom(body); err != nil {
		frameBufPool.Put(buf)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch larger than %d bytes", s.cfg.MaxBodyBytes)
		} else {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return buf, true
}

// handleIngestMetricsBinary is the binary twin of handleIngestMetrics:
// pooled frame buffer, pooled columnar decoder, same validation and
// no-partial-recording contract — the batch reaches the store only
// after every sample validated.
func (s *Server) handleIngestMetricsBinary(w http.ResponseWriter, r *http.Request) {
	buf, ok := s.readFrame(w, r)
	if !ok {
		return
	}
	defer frameBufPool.Put(buf)
	dec := wire.GetMetricsDecoder()
	defer wire.PutMetricsDecoder(dec)
	samples, err := dec.Decode(buf.Bytes())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	for i := range samples {
		if samples[i].Metric == "" || samples[i].Scope.Service == "" || samples[i].Scope.Version == "" {
			writeError(w, http.StatusBadRequest,
				"observation %d: metric, service, and version are required", i)
			return
		}
	}
	now := time.Now()
	tenant := reqTenant(r)
	for i := range samples {
		if samples[i].At.IsZero() {
			samples[i].At = now
		}
		// The wire format never carries a tenant; the series namespace
		// comes from the authenticated principal, not the payload.
		samples[i].Scope.Tenant = tenant
	}
	s.cfg.Store.RecordBatch(samples)
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(samples)})
}

// handleIngestMetrics records a batch of observations, the ingestion
// path real services use in place of the simulator's self-reporting.
// The whole batch goes to the store in one RecordBatch call, so
// same-series runs are appended under a single lock acquisition.
func (s *Server) handleIngestMetrics(w http.ResponseWriter, r *http.Request) {
	if isBinaryBatch(r) {
		s.handleIngestMetricsBinary(w, r)
		return
	}
	var batch struct {
		Observations []Observation `json:"observations"`
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch larger than %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(batch.Observations) == 0 {
		writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	for i, o := range batch.Observations {
		if o.Metric == "" || o.Service == "" || o.Version == "" {
			writeError(w, http.StatusBadRequest,
				"observation %d: metric, service, and version are required", i)
			return
		}
	}
	now := time.Now()
	tenant := reqTenant(r)
	samples := make([]metrics.Sample, len(batch.Observations))
	for i, o := range batch.Observations {
		at := o.At
		if at.IsZero() {
			at = now
		}
		samples[i] = metrics.Sample{
			Metric: o.Metric,
			Scope:  metrics.Scope{Tenant: tenant, Service: o.Service, Version: o.Version, Variant: o.Variant},
			At:     at,
			Value:  o.Value,
		}
	}
	s.cfg.Store.RecordBatch(samples)
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(batch.Observations)})
}

// RouteView is the JSON form of one service's route.
type RouteView struct {
	Rules      []RuleView    `json:"rules,omitempty"`
	Backends   []BackendView `json:"backends"`
	Mirrors    []string      `json:"mirrors,omitempty"`
	StickySalt string        `json:"stickySalt,omitempty"`
}

// RuleView is the JSON form of one routing rule.
type RuleView struct {
	Name    string `json:"name"`
	Match   string `json:"match"`
	Version string `json:"version"`
}

// BackendView is one arm of a weighted split.
type BackendView struct {
	Version string  `json:"version"`
	Weight  float64 `json:"weight"`
}

// handleRoutes dumps the routing table. Routed services are keyed by
// tenant-qualified name ("tenant/service"); when auth is on, the view
// is scoped to the caller's slice of the table.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	services := s.cfg.Table.Services()
	view := make(map[string]RouteView, len(services))
	for _, svc := range services {
		if s.cfg.Auth != nil {
			if owner, _ := tenancy.Split(svc); owner != reqTenant(r) {
				continue
			}
		}
		route, err := s.cfg.Table.Route(svc)
		if err != nil {
			continue // removed between Services() and Route()
		}
		rv := RouteView{StickySalt: route.StickySalt, Mirrors: route.Mirrors}
		for _, rule := range route.Rules {
			rv.Rules = append(rv.Rules, RuleView{Name: rule.Name, Match: rule.Match.String(), Version: rule.Version})
		}
		for _, b := range route.Backends {
			rv.Backends = append(rv.Backends, BackendView{Version: b.Version, Weight: b.Weight})
		}
		view[svc] = rv
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tableVersion":    s.cfg.Table.Version(),
		"snapshotVersion": s.cfg.Table.Version(),
		"storeSeries":     s.cfg.Store.SeriesCount(),
		"storeShards":     s.cfg.Store.ShardCount(),
		"services":        view,
	})
}

// Health is the self-reported state of every component, following the
// pattern of health endpoints that expose per-component detail rather
// than a bare status code.
type Health struct {
	Status    string           `json:"status"`
	Uptime    string           `json:"uptime"`
	Engine    EngineHealth     `json:"engine"`
	Store     StoreHealth      `json:"store"`
	Router    RouterHealth     `json:"router"`
	Journal   *JournalHealth   `json:"journal,omitempty"`
	Scheduler *SchedulerHealth `json:"scheduler,omitempty"`
	Tracing   *TracingHealth   `json:"tracing,omitempty"`
	Fleet     *FleetHealth     `json:"fleet,omitempty"`
	Demo      *DemoHealth      `json:"demo,omitempty"`
	// Tenants reports per-tenant usage (runs, metric series, request
	// budget) whenever more than the default tenant is visible.
	Tenants []TenantUsage `json:"tenants,omitempty"`
}

// TenantUsage is one tenant's footprint on the control plane: how many
// runs it owns (live and finished), how many metric series it is
// paying for, and how its request budget is faring.
type TenantUsage struct {
	Name string `json:"name"`
	// Runs counts the tenant's runs known to the engine; LiveRuns the
	// subset still executing.
	Runs     int `json:"runs"`
	LiveRuns int `json:"liveRuns"`
	// Series counts the tenant's metric series currently in the store.
	Series int `json:"series"`
	// Requests and Throttled mirror the rate limiter's counters; zero
	// when no limiter is configured.
	Requests  uint64 `json:"requests"`
	Throttled uint64 `json:"throttled"`
}

// TracingHealth reports the live span pipeline: the bounded collector
// feeding the topology analysis plane. SpansDropped growing means the
// interaction graphs see less traffic than the services served — the
// structural twin of Proxy.MirrorDrops.
type TracingHealth struct {
	BufferedSpans int    `json:"bufferedSpans"`
	PendingTraces int    `json:"pendingTraces"`
	SpanCap       int    `json:"spanCap"`
	SpansDropped  uint64 `json:"spansDropped"`
	// HarvestedTraces counts traces handed to the analysis plane;
	// FoldedTraces counts those that were valid and folded into graphs;
	// BrokenTraces counts harvested traces failing validation.
	HarvestedTraces int64 `json:"harvestedTraces"`
	FoldedTraces    int64 `json:"foldedTraces"`
	BrokenTraces    int64 `json:"brokenTraces"`
	// MonitoredRuns is how many runs have a live topology assessment.
	MonitoredRuns int `json:"monitoredRuns"`
}

// SchedulerHealth reports the live experiment scheduler.
type SchedulerHealth struct {
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	MaxConcurrent int     `json:"maxConcurrent"`
	Capacity      float64 `json:"capacity"`
	Version       uint64  `json:"version"`
	// Launches and Dequeues count queue entries handed to the engine
	// and withdrawn before launch, over the daemon's lifetime.
	Launches int64 `json:"launches"`
	Dequeues int64 `json:"dequeues"`
	// JournalErrors counts queue lifecycle records that failed to reach
	// the write-ahead journal.
	JournalErrors int64 `json:"journalErrors"`
}

// EngineHealth reports the Bifrost engine.
type EngineHealth struct {
	RunsByStatus map[string]int `json:"runsByStatus"`
	Evaluations  int64          `json:"evaluations"`
	BusyTime     string         `json:"busyTime"`
	// JournalErrors counts run events that failed to reach the
	// write-ahead journal; non-zero means the durable audit trail has
	// gaps.
	JournalErrors int64 `json:"journalErrors"`
	// EvalPlane reports the evaluation dispatcher: pool width,
	// tick-cache coalescing counters, and inline-fallback evaluations.
	EvalPlane bifrost.EvalPlaneStats `json:"evalPlane"`
}

// JournalHealth reports the write-ahead journal backing run state.
type JournalHealth struct {
	Records  uint64 `json:"records"`
	Bytes    uint64 `json:"bytes"`
	Segments int    `json:"segments"`
	Syncs    uint64 `json:"syncs"`
	// Truncations counts torn record tails dropped during replays — the
	// residue of crashes mid-append.
	Truncations uint64 `json:"truncations"`
}

// StoreHealth reports the metric store: how many series exist and how
// many lock shards they are spread over.
type StoreHealth struct {
	Series int `json:"series"`
	Shards int `json:"shards"`
}

// RouterHealth reports the routing table. TableVersion and
// SnapshotVersion are the same counter: the version of the immutable
// routing snapshot currently published to the data plane.
type RouterHealth struct {
	Services        []string `json:"services"`
	TableVersion    uint64   `json:"tableVersion"`
	SnapshotVersion uint64   `json:"snapshotVersion"`
}

// statusSnapshot is one assembled status view shared by /healthz and
// /v1/admin/tenants. It is immutable once published.
type statusSnapshot struct {
	at     time.Time
	health Health
	usage  []TenantUsage
}

// defaultStatusCacheTTL is how long a status snapshot stays fresh when
// Config.StatusCacheTTL is zero.
const defaultStatusCacheTTL = time.Second

// status returns the current snapshot, rebuilding it at most once per
// TTL. Concurrent callers racing an expired snapshot rebuild it once
// (single flight); everyone else reads the published pointer lock-free.
func (s *Server) status() *statusSnapshot {
	ttl := s.cfg.StatusCacheTTL
	if ttl == 0 {
		ttl = defaultStatusCacheTTL
	}
	if ttl > 0 {
		if snap := s.statusCache.Load(); snap != nil && time.Since(snap.at) < ttl {
			return snap
		}
	}
	s.statusMu.Lock()
	defer s.statusMu.Unlock()
	if ttl > 0 {
		if snap := s.statusCache.Load(); snap != nil && time.Since(snap.at) < ttl {
			return snap
		}
	}
	snap := s.buildStatus()
	s.statusCache.Store(snap)
	return snap
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.status().health)
}

// buildStatus assembles a fresh status snapshot from every component.
func (s *Server) buildStatus() *statusSnapshot {
	byStatus := make(map[string]int)
	for _, run := range s.cfg.Engine.Runs() {
		byStatus[run.Status().String()]++
	}
	evals, busy := s.cfg.Engine.EvalStats()
	h := Health{
		Status: "ok",
		Uptime: time.Since(s.start).Round(time.Millisecond).String(),
		Engine: EngineHealth{
			RunsByStatus:  byStatus,
			Evaluations:   evals,
			BusyTime:      busy.Round(time.Microsecond).String(),
			JournalErrors: s.cfg.Engine.JournalErrors(),
			EvalPlane:     s.cfg.Engine.EvalPlane(),
		},
		Store: StoreHealth{
			Series: s.cfg.Store.SeriesCount(),
			Shards: s.cfg.Store.ShardCount(),
		},
		Router: RouterHealth{
			Services:        s.cfg.Table.Services(),
			TableVersion:    s.cfg.Table.Version(),
			SnapshotVersion: s.cfg.Table.Version(),
		},
	}
	if st, ok := s.cfg.Journal.(journal.Stater); ok {
		stats := st.Stats()
		h.Journal = &JournalHealth{
			Records:     stats.Records,
			Bytes:       stats.Bytes,
			Segments:    stats.Segments,
			Syncs:       stats.Syncs,
			Truncations: stats.Truncations,
		}
	}
	if s.cfg.Scheduler != nil {
		snap := s.cfg.Scheduler.Snapshot()
		h.Scheduler = &SchedulerHealth{
			Queued:        len(snap.Queue),
			Running:       len(snap.Running),
			MaxConcurrent: snap.MaxConcurrent,
			Capacity:      snap.Capacity,
			Version:       snap.Version,
			Launches:      s.cfg.Scheduler.Launches(),
			Dequeues:      s.cfg.Scheduler.Dequeues(),
			JournalErrors: s.cfg.Scheduler.JournalErrors(),
		}
	}
	if s.cfg.Traces != nil {
		th := &TracingHealth{
			BufferedSpans:   s.cfg.Traces.SpanCount(),
			PendingTraces:   s.cfg.Traces.PendingTraces(),
			SpanCap:         s.cfg.Traces.Cap(),
			SpansDropped:    s.cfg.Traces.Drops(),
			HarvestedTraces: s.cfg.Traces.HarvestedTraces(),
		}
		if s.cfg.Health != nil {
			th.FoldedTraces = s.cfg.Health.FoldedTraces()
			th.BrokenTraces = s.cfg.Health.BrokenTraces()
			th.MonitoredRuns = s.cfg.Health.Runs()
		}
		h.Tracing = th
	}
	if s.cfg.Fleet != nil {
		h.Fleet = fleetHealth(s.cfg.Fleet)
	}
	if s.demo != nil {
		h.Demo = s.demo.Health()
	}
	usage := s.tenantUsage()
	if len(usage) > 1 || (len(usage) == 1 && usage[0].Name != tenancy.Display("")) {
		h.Tenants = usage
	}
	return &statusSnapshot{at: time.Now(), health: h, usage: usage}
}

// tenantUsage assembles the per-tenant footprint from every plane that
// namespaces by tenant: the engine's runs, the store's series, the
// limiter's counters, and the auth resolver's configured tenants (so a
// provisioned-but-idle tenant still shows up with zeros).
func (s *Server) tenantUsage() []TenantUsage {
	acc := make(map[string]*TenantUsage)
	get := func(tenant string) *TenantUsage {
		name := tenancy.Display(tenant)
		u, ok := acc[name]
		if !ok {
			u = &TenantUsage{Name: name}
			acc[name] = u
		}
		return u
	}
	for _, run := range s.cfg.Engine.Runs() {
		u := get(run.Strategy().Tenant)
		u.Runs++
		if run.Status() == bifrost.StatusRunning {
			u.LiveRuns++
		}
	}
	for tenant, n := range s.cfg.Store.TenantSeries() {
		get(tenant).Series = n
	}
	if s.cfg.RateLimit != nil {
		for tenant, usage := range s.cfg.RateLimit.Stats() {
			u := get(tenant)
			u.Requests = usage.Requests
			u.Throttled = usage.Throttled
		}
	}
	if s.cfg.Auth != nil {
		for _, tenant := range s.cfg.Auth.Tenants() {
			get(tenant)
		}
	}
	out := make([]TenantUsage, 0, len(acc))
	for _, u := range acc {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// handleAdminTenants is the ops view of the tenancy plane: every known
// tenant (configured, or merely present in some plane) with its usage.
// It is intentionally visible to any authenticated caller — tenant
// names and coarse counts are operator-grade metadata here, not
// secrets; deployments needing stricter separation front this route
// with their own proxy rules.
func (s *Server) handleAdminTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"items": s.status().usage})
}
