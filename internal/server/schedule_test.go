package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// newSchedulerEnv is newEnv with a live scheduler (and optionally a
// journal) wired through engine and server.
func newSchedulerEnv(t *testing.T, jnl journal.Journal) *env {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
		Journal:              jnl,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bifrost.NewScheduler(bifrost.SchedulerConfig{
		Engine:         engine,
		Journal:        jnl,
		SlotDuration:   100 * time.Millisecond,
		HorizonSlots:   2400,
		OptimizeBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 20 * time.Millisecond,
		Journal:           jnl,
		Scheduler:         sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}
}

// serviceDSL renders a long-holding strategy on the given service.
func serviceDSL(name, service string) string {
	return fmt.Sprintf(`
strategy %q {
    service   = %q
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 10%%
        duration = 30s
        on success -> promote
    }
}
`, name, service)
}

// TestScheduleEndToEnd is the HTTP acceptance flow: disjoint services
// enact concurrently; a same-service submission queues (202), shows up
// in /v1/schedule and the Gantt rendering, and launches once the
// blocking run is aborted.
func TestScheduleEndToEnd(t *testing.T) {
	e := newSchedulerEnv(t, nil)

	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("a", "svc-a")); code != http.StatusCreated {
		t.Fatalf("submit a: %d: %s", code, body)
	}
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("b", "svc-b")); code != http.StatusCreated {
		t.Fatalf("submit b (disjoint service): %d: %s", code, body)
	}
	code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("c", "svc-a"))
	if code != http.StatusAccepted {
		t.Fatalf("submit c (same service as a): %d: %s", code, body)
	}
	var entry bifrost.QueueEntryView
	if err := json.Unmarshal([]byte(body), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.State != "queued" || !strings.Contains(entry.Reason, "svc-a") {
		t.Fatalf("queue entry = %+v", entry)
	}

	// /v1/schedule reflects two running, one queued.
	code, body = e.do(http.MethodGet, "/v1/schedule", "")
	if code != http.StatusOK {
		t.Fatalf("schedule: %d: %s", code, body)
	}
	var snap bifrost.ScheduleSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Running) != 2 || len(snap.Queue) != 1 || snap.Queue[0].Name != "c" {
		t.Fatalf("snapshot: %d running %d queued (%+v)", len(snap.Running), len(snap.Queue), snap.Queue)
	}
	sawQueued := false
	for _, ev := range snap.Recent {
		if ev.Type == bifrost.EventRunQueued && ev.Name == "c" {
			sawQueued = true
		}
	}
	if !sawQueued {
		t.Error("snapshot should expose c's run-queued lifecycle event")
	}

	code, body = e.do(http.MethodGet, "/v1/schedule?format=gantt", "")
	if code != http.StatusOK || !strings.Contains(body, "c") || !strings.Contains(body, "|") {
		t.Fatalf("gantt: %d:\n%s", code, body)
	}

	// Aborting the blocker frees svc-a; the queue launches c.
	if code, body := e.do(http.MethodDelete, "/v1/runs/a", ""); code != http.StatusAccepted {
		t.Fatalf("abort a: %d: %s", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if run, ok := e.engine.Get("c"); ok && run.Status() == bifrost.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued strategy never launched after the blocker was aborted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScheduleDequeue(t *testing.T) {
	e := newSchedulerEnv(t, nil)
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("live", "svc")); code != http.StatusCreated {
		t.Fatalf("submit live: %d: %s", code, body)
	}
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("wait", "svc")); code != http.StatusAccepted {
		t.Fatalf("submit wait: %d: %s", code, body)
	}
	// Duplicate queued name conflicts.
	if code, _ := e.do(http.MethodPost, "/v1/strategies", serviceDSL("wait", "other")); code != http.StatusConflict {
		t.Fatalf("duplicate queued submit: %d", code)
	}
	// DELETE on the queued (never launched) name dequeues it.
	code, body := e.do(http.MethodDelete, "/v1/runs/wait", "")
	if code != http.StatusAccepted || !strings.Contains(body, "dequeued") {
		t.Fatalf("dequeue: %d: %s", code, body)
	}
	code, body = e.do(http.MethodGet, "/v1/schedule", "")
	if code != http.StatusOK {
		t.Fatalf("schedule after dequeue: %d: %s", code, body)
	}
	var snap bifrost.ScheduleSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Queue) != 0 {
		t.Fatalf("queue after dequeue = %+v", snap.Queue)
	}
	// healthz reports the scheduler.
	code, body = e.do(http.MethodGet, "/healthz", "")
	if code != http.StatusOK || !strings.Contains(body, `"scheduler"`) {
		t.Fatalf("healthz: %d: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Scheduler == nil || h.Scheduler.Running != 1 || h.Scheduler.Queued != 0 {
		t.Fatalf("scheduler health = %+v", h.Scheduler)
	}
}

// TestScheduleSSE reads the schedule change stream: the initial
// snapshot arrives immediately, and a new submission produces another
// event.
func TestScheduleSSE(t *testing.T) {
	e := newSchedulerEnv(t, nil)
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("one", "svc")); code != http.StatusCreated {
		t.Fatalf("submit one: %d: %s", code, body)
	}

	resp, err := http.Get(e.ts.URL + "/v1/schedule/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan string, 16)
	go func() {
		scanner := bufio.NewScanner(resp.Body)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "data: ") {
				events <- strings.TrimPrefix(line, "data: ")
			}
		}
	}()

	first := <-events
	var snap bifrost.ScheduleSnapshot
	if err := json.Unmarshal([]byte(first), &snap); err != nil {
		t.Fatalf("initial snapshot: %v in %q", err, first)
	}
	if len(snap.Running) != 1 {
		t.Fatalf("initial snapshot running = %d", len(snap.Running))
	}

	// A queueing submission bumps the scheduler version → new event.
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("two", "svc")); code != http.StatusAccepted {
		t.Fatalf("submit two: %d: %s", code, body)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case data := <-events:
			if err := json.Unmarshal([]byte(data), &snap); err != nil {
				t.Fatal(err)
			}
			if len(snap.Queue) == 1 && snap.Queue[0].Name == "two" {
				return // change observed
			}
		case <-deadline:
			t.Fatal("schedule SSE never reported the queued submission")
		}
	}
}

// TestScheduleQueueSurvivesRestart is the acceptance criterion at the
// server layer: a queued submission outlives a daemon restart via the
// journal, stays queued behind the recovered blocker, and is
// launchable after the blocker concludes.
func TestScheduleQueueSurvivesRestart(t *testing.T) {
	jnl := journal.NewMemory()
	e := newSchedulerEnv(t, jnl)
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("blocker", "svc")); code != http.StatusCreated {
		t.Fatalf("submit blocker: %d: %s", code, body)
	}
	if code, body := e.do(http.MethodPost, "/v1/strategies", serviceDSL("pending", "svc")); code != http.StatusAccepted {
		t.Fatalf("submit pending: %d: %s", code, body)
	}

	// "Restart": replay the journal into a fresh engine + scheduler,
	// the boot sequence contexpd runs with --data-dir.
	snap := jnl.Snapshot()
	e2 := newSchedulerEnv(t, snap)
	if _, err := e2.engine.Recover(snap); err != nil {
		t.Fatal(err)
	}
	pending, errs := bifrost.RecoverQueue(snap)
	if len(errs) > 0 {
		t.Fatalf("recover queue: %v", errs)
	}
	e2.server.cfg.Scheduler.Restore(pending)

	code, body := e2.do(http.MethodGet, "/v1/schedule", "")
	if code != http.StatusOK {
		t.Fatalf("schedule: %d: %s", code, body)
	}
	var view bifrost.ScheduleSnapshot
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Queue) != 1 || view.Queue[0].Name != "pending" || !view.Queue[0].Recovered {
		t.Fatalf("restored queue = %+v", view.Queue)
	}
	if len(view.Running) != 1 || view.Running[0].Name != "blocker" {
		t.Fatalf("restored running = %+v", view.Running)
	}

	// The recovered blocker concluding lets the restored entry launch.
	if code, body := e2.do(http.MethodDelete, "/v1/runs/blocker", ""); code != http.StatusAccepted {
		t.Fatalf("abort blocker: %d: %s", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if run, ok := e2.engine.Get("pending"); ok && run.Status() == bifrost.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restored submission never launched")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
