package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tenancy"
)

// newCustomEnv is newEnv with a Config hook, for tests that exercise
// the middleware chain (auth, rate limiting, request logging).
func newCustomEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 20 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}
}

// doAs issues a request carrying a bearer token (empty token = no
// Authorization header) plus any extra headers, returning status, body,
// and response headers.
func (e *env) doAs(method, path, token, body string, hdr map[string]string) (int, string, http.Header) {
	e.t.Helper()
	req, err := http.NewRequest(method, e.ts.URL+path, strings.NewReader(body))
	if err != nil {
		e.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, string(out), resp.Header
}

// envelopeCode extracts the stable error code from a typed error body.
func envelopeCode(t *testing.T, body string) string {
	t.Helper()
	var envl struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &envl); err != nil {
		t.Fatalf("body is not a typed error envelope: %v\n%s", err, body)
	}
	if envl.Error.Code == "" {
		t.Fatalf("envelope has no error code: %s", body)
	}
	return envl.Error.Code
}

const testTokens = "acme=tok-a,beta=tok-b"

func testResolver(t *testing.T) *tenancy.Resolver {
	t.Helper()
	res, err := tenancy.ParseTokens(testTokens)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAuthMiddleware(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	e := newCustomEnv(t, func(c *Config) {
		c.Auth = testResolver(t)
		c.Logf = func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})

	code, body, hdr := e.doAs(http.MethodGet, "/v1/runs", "", "", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("no token: want 401, got %d: %s", code, body)
	}
	if got := envelopeCode(t, body); got != "unauthorized" {
		t.Fatalf("no token: want code unauthorized, got %q", got)
	}
	if hdr.Get("WWW-Authenticate") == "" {
		t.Fatal("401 should carry WWW-Authenticate")
	}

	code, body, _ = e.doAs(http.MethodGet, "/v1/runs", "nope", "", nil)
	if code != http.StatusUnauthorized || envelopeCode(t, body) != "unauthorized" {
		t.Fatalf("unknown token: want 401 unauthorized, got %d: %s", code, body)
	}

	code, body, _ = e.doAs(http.MethodGet, "/v1/runs", "tok-a", "", nil)
	if code != http.StatusOK {
		t.Fatalf("valid token: want 200, got %d: %s", code, body)
	}

	// The access log carries the resolved tenant even though auth runs
	// downstream of the logger.
	mu.Lock()
	logged := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(logged, "tenant=acme") {
		t.Fatalf("access log should carry the resolved tenant, got:\n%s", logged)
	}

	// The ops surface stays open: probes need no credentials.
	code, body, _ = e.doAs(http.MethodGet, "/healthz", "", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz should be auth-exempt, got %d: %s", code, body)
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	// Burst of 1 with a near-zero refill: the second guarded request in
	// the window must throttle.
	e := newCustomEnv(t, func(c *Config) { c.RateLimit = tenancy.NewLimiter(0.000001, 1) })

	code, body, _ := e.doAs(http.MethodGet, "/v1/runs", "", "", nil)
	if code != http.StatusOK {
		t.Fatalf("first request: want 200, got %d: %s", code, body)
	}
	code, body, hdr := e.doAs(http.MethodGet, "/v1/runs", "", "", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: want 429, got %d: %s", code, body)
	}
	if got := envelopeCode(t, body); got != "rate_limited" {
		t.Fatalf("want code rate_limited, got %q", got)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("429 should carry an integer Retry-After >= 1, got %q", hdr.Get("Retry-After"))
	}

	// /healthz is not charged against the budget.
	for i := 0; i < 3; i++ {
		if code, body, _ := e.doAs(http.MethodGet, "/healthz", "", "", nil); code != http.StatusOK {
			t.Fatalf("/healthz should be rate-limit-exempt, got %d: %s", code, body)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	e := newCustomEnv(t, func(c *Config) {
		c.Logf = func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})

	// An inbound correlation ID flows through to the response header and
	// the access log.
	_, _, hdr := e.doAs(http.MethodGet, "/v1/runs", "", "", map[string]string{"X-Request-Id": "corr-123"})
	if got := hdr.Get("X-Request-Id"); got != "corr-123" {
		t.Fatalf("inbound request ID should echo back, got %q", got)
	}
	mu.Lock()
	logged := strings.Join(lines, "\n")
	mu.Unlock()
	if !strings.Contains(logged, "req=corr-123") {
		t.Fatalf("access log should carry the request ID, got:\n%s", logged)
	}

	// Without one, the edge mints an ID.
	_, _, hdr = e.doAs(http.MethodGet, "/v1/runs", "", "", nil)
	if hdr.Get("X-Request-Id") == "" {
		t.Fatal("server should mint a request ID when none arrives")
	}

	// Garbage inbound IDs (whitespace, oversized) are replaced, not echoed.
	_, _, hdr = e.doAs(http.MethodGet, "/v1/runs", "", "", map[string]string{"X-Request-Id": "has space"})
	if got := hdr.Get("X-Request-Id"); got == "has space" || got == "" {
		t.Fatalf("unsane inbound ID should be replaced, got %q", got)
	}
}

func TestMuxErrorsAreTypedEnvelopes(t *testing.T) {
	e := newEnv(t)

	code, body, hdr := e.doAs(http.MethodGet, "/v1/definitely-not-a-route", "", "", nil)
	if code != http.StatusNotFound {
		t.Fatalf("want 404, got %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("mux 404 should be JSON, got Content-Type %q", ct)
	}
	if got := envelopeCode(t, body); got != "not_found" {
		t.Fatalf("want code not_found, got %q", got)
	}

	code, body, hdr = e.doAs(http.MethodDelete, "/v1/runs", "", "", nil)
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("want 405, got %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("mux 405 should be JSON, got Content-Type %q", ct)
	}
	if got := envelopeCode(t, body); got != "method_not_allowed" {
		t.Fatalf("want code method_not_allowed, got %q", got)
	}
}

// listPage is the shared paginated list shape.
type listPage struct {
	Items      []RunSummary `json:"items"`
	NextCursor string       `json:"nextCursor"`
}

func decodePage(t *testing.T, body string) listPage {
	t.Helper()
	var p listPage
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("decoding list page: %v\n%s", err, body)
	}
	return p
}

func TestCrossTenantIsolation(t *testing.T) {
	e := newCustomEnv(t, func(c *Config) { c.Auth = testResolver(t) })

	// Both tenants run the same-named strategy against the same-named
	// service. Neither sees the other: no busy cross-talk.
	code, body, _ := e.doAs(http.MethodPost, "/v1/strategies", "tok-a", longDSL, nil)
	if code != http.StatusCreated {
		t.Fatalf("acme submit: want 201, got %d: %s", code, body)
	}
	code, body, _ = e.doAs(http.MethodPost, "/v1/strategies", "tok-b", longDSL, nil)
	if code != http.StatusCreated {
		t.Fatalf("beta submit of the same strategy/service: want 201, got %d: %s", code, body)
	}

	// Each tenant lists exactly its own run.
	for _, tc := range []struct{ token, tenant string }{{"tok-a", "acme"}, {"tok-b", "beta"}} {
		code, body, _ := e.doAs(http.MethodGet, "/v1/runs", tc.token, "", nil)
		if code != http.StatusOK {
			t.Fatalf("%s list: got %d: %s", tc.tenant, code, body)
		}
		page := decodePage(t, body)
		if len(page.Items) != 1 || page.Items[0].Tenant != tc.tenant || page.Items[0].Name != "long" {
			t.Fatalf("%s should see exactly its own run, got %+v", tc.tenant, page.Items)
		}
	}

	// Within a tenant the service-conflict contract still holds, with
	// the specific "busy" code.
	second := strings.Replace(longDSL, `"long"`, `"long2"`, 1)
	code, body, _ = e.doAs(http.MethodPost, "/v1/strategies", "tok-a", second, nil)
	if code != http.StatusConflict {
		t.Fatalf("same-tenant same-service: want 409, got %d: %s", code, body)
	}
	if got := envelopeCode(t, body); got != "busy" {
		t.Fatalf("want code busy, got %q", got)
	}

	// beta aborts "long": only beta's run dies.
	code, body, _ = e.doAs(http.MethodDelete, "/v1/runs/long", "tok-b", "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("beta abort: want 202, got %d: %s", code, body)
	}
	code, body, _ = e.doAs(http.MethodGet, "/v1/runs/long", "tok-a", "", nil)
	if code != http.StatusOK {
		t.Fatalf("acme's run should survive beta's abort: %d: %s", code, body)
	}
	var detail RunDetail
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Status != "running" {
		t.Fatalf("acme's run should still be running, got %s", detail.Status)
	}

	// Ingested metrics land in the submitting tenant's namespace even
	// though the payload never names a tenant.
	obs := `{"observations":[{"metric":"response_time","service":"svc","version":"v1","value":12}]}`
	code, body, _ = e.doAs(http.MethodPost, "/v1/metrics", "tok-a", obs, nil)
	if code != http.StatusAccepted {
		t.Fatalf("acme metrics ingest: want 202, got %d: %s", code, body)
	}
	series := e.store.TenantSeries()
	if series["acme"] == 0 {
		t.Fatalf("acme's ingested series should be tenant-stamped, got %v", series)
	}
	if series["beta"] != 0 {
		t.Fatalf("beta should have no series, got %v", series)
	}
}

func TestListRunsPaginationAndFilter(t *testing.T) {
	e := newEnv(t) // auth-free: ?tenant= is live as an operator filter

	tenants := []string{"", "", "acme", "acme", "beta"}
	for i, tn := range tenants {
		src := strings.Replace(longDSL, `"long"`, fmt.Sprintf("%q", fmt.Sprintf("long%d", i)), 1)
		src = strings.Replace(src, `"svc"`, fmt.Sprintf("%q", fmt.Sprintf("svc%d", i)), 1)
		st, err := bifrost.ParseStrategy(src)
		if err != nil {
			t.Fatal(err)
		}
		st.Tenant = tn
		if _, err := e.engine.Launch(st); err != nil {
			t.Fatal(err)
		}
	}

	// Page through with limit=2: 2 + 2 + 1, launch order preserved.
	var names []string
	cursor := ""
	for page := 0; ; page++ {
		path := "/v1/runs?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		code, body := e.do(http.MethodGet, path, "")
		if code != http.StatusOK {
			t.Fatalf("page %d: got %d: %s", page, code, body)
		}
		p := decodePage(t, body)
		if page < 2 && len(p.Items) != 2 {
			t.Fatalf("page %d: want 2 items, got %d", page, len(p.Items))
		}
		for _, it := range p.Items {
			names = append(names, it.Name)
		}
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
		if page > 3 {
			t.Fatal("pagination did not terminate")
		}
	}
	want := []string{"long0", "long1", "long2", "long3", "long4"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("paged names %v, want %v", names, want)
	}

	// Operator tenant filter.
	code, body := e.do(http.MethodGet, "/v1/runs?tenant=acme", "")
	if code != http.StatusOK {
		t.Fatalf("tenant filter: got %d: %s", code, body)
	}
	if p := decodePage(t, body); len(p.Items) != 2 {
		t.Fatalf("tenant=acme: want 2 runs, got %+v", p.Items)
	}
	code, body = e.do(http.MethodGet, "/v1/runs?tenant=default", "")
	if code != http.StatusOK {
		t.Fatalf("default filter: got %d: %s", code, body)
	}
	if p := decodePage(t, body); len(p.Items) != 2 {
		t.Fatalf("tenant=default: want 2 runs, got %+v", p.Items)
	}

	// State filter.
	code, body = e.do(http.MethodGet, "/v1/runs?state=running", "")
	if code != http.StatusOK {
		t.Fatalf("state filter: got %d: %s", code, body)
	}
	if p := decodePage(t, body); len(p.Items) != 5 {
		t.Fatalf("state=running: want 5 runs, got %d", len(p.Items))
	}
	code, body = e.do(http.MethodGet, "/v1/runs?state=succeeded", "")
	if code != http.StatusOK {
		t.Fatalf("state filter: got %d: %s", code, body)
	}
	if p := decodePage(t, body); len(p.Items) != 0 {
		t.Fatalf("state=succeeded: want 0 runs, got %d", len(p.Items))
	}

	// Bad cursor and bad limit are invalid_request, not 500s.
	code, body = e.do(http.MethodGet, "/v1/runs?cursor=banana", "")
	if code != http.StatusBadRequest || envelopeCode(t, body) != "invalid_request" {
		t.Fatalf("bad cursor: want 400 invalid_request, got %d: %s", code, body)
	}
	code, body = e.do(http.MethodGet, "/v1/runs?limit=-3", "")
	if code != http.StatusBadRequest || envelopeCode(t, body) != "invalid_request" {
		t.Fatalf("bad limit: want 400 invalid_request, got %d: %s", code, body)
	}
}

func TestAdminTenantsAndHealthUsage(t *testing.T) {
	e := newCustomEnv(t, func(c *Config) {
		c.Auth = testResolver(t)
		c.RateLimit = tenancy.NewLimiter(1000, 1000)
	})

	if code, body, _ := e.doAs(http.MethodPost, "/v1/strategies", "tok-a", longDSL, nil); code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", code, body)
	}

	code, body, _ := e.doAs(http.MethodGet, "/v1/admin/tenants", "tok-b", "", nil)
	if code != http.StatusOK {
		t.Fatalf("admin tenants: got %d: %s", code, body)
	}
	var listing struct {
		Items []TenantUsage `json:"items"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]TenantUsage, len(listing.Items))
	for _, u := range listing.Items {
		byName[u.Name] = u
	}
	if byName["acme"].Runs != 1 || byName["acme"].LiveRuns != 1 {
		t.Fatalf("acme usage should show its live run, got %+v", byName["acme"])
	}
	if _, ok := byName["beta"]; !ok {
		t.Fatalf("configured tenants should be listed even when idle, got %+v", listing.Items)
	}
	if byName["acme"].Requests == 0 {
		t.Fatalf("request counters should accumulate, got %+v", byName["acme"])
	}

	// /healthz surfaces the same per-tenant usage once tenants exist.
	code, body, _ = e.doAs(http.MethodGet, "/healthz", "", "", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: got %d: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Tenants) < 2 {
		t.Fatalf("healthz should list per-tenant usage, got %+v", h.Tenants)
	}
}
