package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"contexp/internal/tenancy"
	"contexp/internal/tracing"
	"contexp/internal/wire"
)

// This file is the tracing face of the control plane: batched span
// ingestion into the bounded live collector (the Zipkin-ingest stand-in
// of the Chapter 5 pipeline) and the per-run topology assessment
// surface the analysis plane computes from those spans.

// SpanObservation is one ingested span, the wire form of tracing.Span.
// At defaults to the server's current time minus the duration.
type SpanObservation struct {
	TraceID  uint64    `json:"traceId"`
	SpanID   uint64    `json:"spanId"`
	ParentID uint64    `json:"parentId,omitempty"` // 0 for root spans
	Service  string    `json:"service"`
	Version  string    `json:"version"`
	Endpoint string    `json:"endpoint"`
	At       time.Time `json:"at,omitzero"`
	// DurationMs is the span's duration in milliseconds.
	DurationMs float64 `json:"durationMs"`
	Error      bool    `json:"error,omitempty"`
}

// handleIngestSpansBinary is the binary twin of handleIngestSpans:
// pooled frame buffer, pooled columnar decoder, identical validation
// before anything reaches the collector.
func (s *Server) handleIngestSpansBinary(w http.ResponseWriter, r *http.Request) {
	buf, ok := s.readFrame(w, r)
	if !ok {
		return
	}
	defer frameBufPool.Put(buf)
	dec := wire.GetSpansDecoder()
	defer wire.PutSpansDecoder(dec)
	spans, err := dec.Decode(buf.Bytes())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(spans) == 0 {
		writeError(w, http.StatusBadRequest, "no spans")
		return
	}
	for i := range spans {
		if spans[i].TraceID == 0 || spans[i].SpanID == 0 {
			writeError(w, http.StatusBadRequest, "span %d: traceId and spanId are required", i)
			return
		}
		if spans[i].Service == "" || spans[i].Version == "" || spans[i].Endpoint == "" {
			writeError(w, http.StatusBadRequest,
				"span %d: service, version, and endpoint are required", i)
			return
		}
	}
	now := time.Now()
	tenant := reqTenant(r)
	for i := range spans {
		if spans[i].Start.IsZero() {
			spans[i].Start = now.Add(-spans[i].Duration)
		}
		// Namespace the span into the submitting tenant's topology: run
		// assessments register tenant-qualified service names, so tenant
		// spans must match them (and can never pollute another tenant's
		// interaction graph).
		spans[i].Service = tenancy.Qualify(tenant, spans[i].Service)
	}
	accepted := s.cfg.Traces.RecordBatch(spans)
	writeJSON(w, http.StatusAccepted, map[string]int{
		"accepted": accepted,
		"dropped":  len(spans) - accepted,
	})
}

// handleIngestSpans records a batch of spans into the live collector —
// the ingestion path real instrumented services use in place of the
// simulator's in-process self-reporting. Spans beyond the collector's
// cap are dropped (and counted), never blocking the sender.
func (s *Server) handleIngestSpans(w http.ResponseWriter, r *http.Request) {
	if isBinaryBatch(r) {
		s.handleIngestSpansBinary(w, r)
		return
	}
	var batch struct {
		Spans []SpanObservation `json:"spans"`
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch larger than %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(batch.Spans) == 0 {
		writeError(w, http.StatusBadRequest, "no spans")
		return
	}
	for i, o := range batch.Spans {
		if o.TraceID == 0 || o.SpanID == 0 {
			writeError(w, http.StatusBadRequest, "span %d: traceId and spanId are required", i)
			return
		}
		if o.Service == "" || o.Version == "" || o.Endpoint == "" {
			writeError(w, http.StatusBadRequest,
				"span %d: service, version, and endpoint are required", i)
			return
		}
	}
	now := time.Now()
	tenant := reqTenant(r)
	spans := make([]tracing.Span, len(batch.Spans))
	for i, o := range batch.Spans {
		dur := time.Duration(o.DurationMs * float64(time.Millisecond))
		at := o.At
		if at.IsZero() {
			at = now.Add(-dur)
		}
		spans[i] = tracing.Span{
			TraceID:  tracing.TraceID(o.TraceID),
			SpanID:   tracing.SpanID(o.SpanID),
			ParentID: tracing.SpanID(o.ParentID),
			Service:  tenancy.Qualify(tenant, o.Service),
			Version:  o.Version,
			Endpoint: o.Endpoint,
			Start:    at,
			Duration: dur,
			Err:      o.Error,
		}
	}
	accepted := s.cfg.Traces.RecordBatch(spans)
	writeJSON(w, http.StatusAccepted, map[string]int{
		"accepted": accepted,
		"dropped":  len(batch.Spans) - accepted,
	})
}

// handleRunHealth serves the live topology assessment of one run: the
// incremental baseline/candidate interaction graphs, the classified and
// ranked changes, and the rendered report (?format=report for the text
// form). The assessment exists for every run launched while live
// tracing is enabled, metric-only strategies included.
func (s *Server) handleRunHealth(w http.ResponseWriter, r *http.Request) {
	key := reqRunKey(r)
	if _, ok := s.cfg.Engine.Get(key); !ok {
		writeError(w, http.StatusNotFound, "no run named %q", r.PathValue("name"))
		return
	}
	view, err := s.cfg.Health.View(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if r.URL.Query().Get("format") == "report" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(view.Report))
		return
	}
	writeJSON(w, http.StatusOK, view)
}
