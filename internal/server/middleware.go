package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"contexp/internal/tenancy"
)

// This file is the control plane's HTTP edge: a pluggable middleware
// chain wrapped around the API mux. Order matters and is fixed:
//
//	request ID → logging → auth → rate limit → JSON 404/405 → mux
//
// Request IDs are minted (or accepted) first so every log line and
// error can carry one; logging wraps everything downstream so rejected
// requests (401, 429) are logged too; auth resolves the bearer token to
// a tenant before the limiter charges that tenant's bucket; and the
// envelope interceptor converts the mux's plain-text 404/405 defaults
// into the API's typed error envelope.

// --- typed error envelope ---

// ErrorBody is the typed error envelope every non-2xx API response
// carries: {"error": {"code", "message", "details"}}. Code is a stable
// machine-readable string; Message is for humans.
type ErrorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// errorCode maps an HTTP status to its default envelope code; handlers
// with a more specific code (e.g. "busy" vs generic "conflict") use
// writeErrorCode directly.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "rate_limited"
	default:
		return "internal"
	}
}

// --- request identity ---

// reqSeq numbers requests within the process for minted request IDs.
var reqSeq atomic.Uint64

// requestID accepts a sane inbound X-Request-Id (so a caller's
// correlation ID flows through) or mints one.
func (s *Server) requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id != "" && len(id) <= 64 && !strings.ContainsAny(id, " \t\r\n") {
		return id
	}
	return fmt.Sprintf("%08x-%06d", uint32(s.start.UnixNano()), reqSeq.Add(1))
}

// --- middleware chain ---

// chain builds the edge stack around the mux. Called once from New.
func (s *Server) chain() http.Handler {
	var h http.Handler = &envelopeHandler{next: s.mux}
	h = s.rateLimitMiddleware(h)
	h = s.authMiddleware(h)
	h = s.loggingMiddleware(h)
	h = s.requestIDMiddleware(h)
	return h
}

// guarded reports whether the edge guards (auth, rate limit) apply to
// a path. Only the API surface is guarded: /healthz stays open so
// probes and load balancers never need credentials.
func guarded(path string) bool { return strings.HasPrefix(path, "/v1/") }

func (s *Server) requestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID(r)
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(tenancy.WithRequestID(r.Context(), id)))
	})
}

// logState is a mutable cell the logging middleware plants in the
// request context so the auth middleware (which runs downstream, on a
// derived request the logger never sees) can report the resolved
// tenant back up for the access-log line.
type logState struct{ tenant string }

type logStateKey struct{}

func (s *Server) loggingMiddleware(next http.Handler) http.Handler {
	if s.cfg.Logf == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ls := &logState{}
		r = r.WithContext(context.WithValue(r.Context(), logStateKey{}, ls))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.cfg.Logf("http %s %s status=%d bytes=%d dur=%s tenant=%s req=%s",
			r.Method, r.URL.Path, rec.status, rec.bytes,
			time.Since(start).Round(time.Microsecond),
			tenancy.Display(ls.tenant),
			tenancy.RequestIDFromContext(r.Context()))
	})
}

// authMiddleware resolves the bearer token to a tenant. With no
// resolver configured every caller is the default tenant (the
// pre-tenancy, --demo, and test posture); with one configured, every
// guarded request must present a known token.
func (s *Server) authMiddleware(next http.Handler) http.Handler {
	if s.cfg.Auth == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !guarded(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		token := bearerToken(r)
		if token == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="contexp"`)
			writeErrorCode(w, http.StatusUnauthorized, "unauthorized",
				"missing bearer token (Authorization: Bearer <token>)")
			return
		}
		tenant, ok := s.cfg.Auth.Resolve(token)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="contexp"`)
			writeErrorCode(w, http.StatusUnauthorized, "unauthorized", "unknown token")
			return
		}
		if ls, ok := r.Context().Value(logStateKey{}).(*logState); ok {
			ls.tenant = tenant
		}
		next.ServeHTTP(w, r.WithContext(tenancy.WithTenant(r.Context(), tenant)))
	})
}

func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return strings.TrimSpace(auth[len(prefix):])
	}
	return ""
}

// rateLimitMiddleware charges each guarded request against the
// caller's tenant bucket; throttled requests get 429 with Retry-After.
func (s *Server) rateLimitMiddleware(next http.Handler) http.Handler {
	if s.cfg.RateLimit == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !guarded(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		tenant := tenancy.FromContext(r.Context())
		ok, retryAfter := s.cfg.RateLimit.Allow(tenant, time.Now())
		if !ok {
			secs := int(retryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeErrorCode(w, http.StatusTooManyRequests, "rate_limited",
				"tenant %s over its request budget; retry in %ds",
				tenancy.Display(tenant), secs)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// --- response writer wrappers ---
//
// Both wrappers forward Flush so the SSE and routing-watch streams
// keep working through the chain.

// statusRecorder captures the response status and size for the log
// line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.wrote = true
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// envelopeHandler converts the mux's own plain-text 404 (no route) and
// 405 (wrong method) bodies into the typed error envelope, so every
// error the API surface produces has the same shape. Handler-written
// errors pass through untouched: writeJSON sets the JSON content type
// before WriteHeader, which is the tell.
type envelopeHandler struct {
	next http.Handler
}

func (eh *envelopeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	eh.next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
}

type envelopeWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

func (ew *envelopeWriter) WriteHeader(code int) {
	if ew.wroteHeader {
		return
	}
	ew.wroteHeader = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(ew.Header().Get("Content-Type"), "application/json") {
		ew.intercepted = true
		ew.Header().Set("Content-Type", "application/json")
		ew.Header().Del("Content-Length")
		ew.Header().Del("X-Content-Type-Options")
		ew.ResponseWriter.WriteHeader(code)
		msg := "no such route"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed for this route"
		}
		writeErrorTo(ew.ResponseWriter, errorCode(code), msg)
		return
	}
	ew.ResponseWriter.WriteHeader(code)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.intercepted {
		// Swallow the mux's plain-text body; the envelope already went out.
		return len(b), nil
	}
	return ew.ResponseWriter.Write(b)
}

func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
