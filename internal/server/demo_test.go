package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

// shopCanaryDSL is a demo-scale version of the quickstart strategy:
// canary the personalized recommender at 25%, then roll it out in two
// steps. Durations are compressed so the test finishes in seconds.
const shopCanaryDSL = `
strategy "shop-canary" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice    = canary
        traffic     = 25%
        duration    = 2s
        min-samples = 5
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 500
            window    = 4s
            interval  = 500ms
        }
        on success      -> phase "rollout"
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 4
    }
    phase "rollout" {
        practice      = gradual-rollout
        steps         = 50%, 100%
        step-duration = 1s
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 500
            window    = 2s
            interval  = 500ms
        }
        on success -> promote
        on failure -> rollback
    }
}
`

// TestDemoEndToEnd is the acceptance-path smoke test: boot demo mode,
// submit a canary → gradual-rollout strategy over HTTP, watch it reach
// promotion through the API, and verify the routing table, the SSE
// stream, and the health report reflect the live system.
func TestDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("demo smoke test runs real wall-clock phases")
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	demo, err := StartDemo(engine, table, store, DemoConfig{
		RPS:            40,
		LatencyScale:   0.02,
		PopulationSize: 100,
		Seed:           7,
		Enact:          false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer demo.Stop()
	s.SetDemo(demo)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	e := &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}

	// Let the load driver warm up so the canary has traffic to observe.
	time.Sleep(500 * time.Millisecond)

	code, body := e.do(http.MethodPost, "/v1/strategies", shopCanaryDSL)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	e.waitStatus("shop-canary", "succeeded", 45*time.Second)

	// Promotion must be visible in the routing table.
	_, body = e.do(http.MethodGet, "/v1/routes", "")
	var routes struct {
		Services map[string]RouteView `json:"services"`
	}
	if err := json.Unmarshal([]byte(body), &routes); err != nil {
		t.Fatal(err)
	}
	rec, ok := routes.Services["recommendation"]
	if !ok {
		t.Fatalf("no recommendation route: %s", body)
	}
	if len(rec.Backends) != 1 || rec.Backends[0].Version != "v2" {
		t.Errorf("post-promotion recommendation backends = %+v, want v2 only", rec.Backends)
	}

	// The SSE stream replays the whole run: both phases, rollout steps,
	// and the terminal status.
	resp, err := ts.Client().Get(ts.URL + "/v1/runs/shop-canary/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, terminal := readSSE(t, resp.Body, 10*time.Second)
	if terminal != `{"status":"succeeded"}` {
		t.Errorf("terminal frame = %s", terminal)
	}
	if events["phase-entered"] < 2 {
		t.Errorf("expected both phases in the stream, got %v", events)
	}
	if events["rollout-step"] < 2 {
		t.Errorf("expected rollout steps in the stream, got %v", events)
	}

	// Health reports the demo environment and its traffic.
	_, body = e.do(http.MethodGet, "/healthz", "")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Demo == nil {
		t.Fatal("healthz should report the demo")
	}
	if h.Demo.RequestsServed == 0 {
		t.Error("demo served no requests")
	}
	if len(h.Demo.Services) == 0 || !strings.Contains(strings.Join(h.Demo.Services, ","), "recommendation") {
		t.Errorf("demo services = %v", h.Demo.Services)
	}
}

// TestDemoEnact covers the --demo default path: StartDemo itself
// launches the bundled strategy.
func TestDemoEnact(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real HTTP servers")
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// A strategy that aborts immediately keeps the test fast: we only
	// verify the enact path wires parse + launch.
	demo, err := StartDemo(engine, table, store, DemoConfig{
		RPS:            10,
		LatencyScale:   0.02,
		PopulationSize: 20,
		Seed:           1,
		Enact:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer demo.Stop()

	run, ok := engine.Get("demo-canary-rollout")
	if !ok {
		t.Fatal("enact did not launch the demo strategy")
	}
	if run.Status() != bifrost.StatusRunning {
		t.Errorf("demo run status = %v", run.Status())
	}
	run.Abort()
	select {
	case <-run.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("aborted demo run never finished")
	}
}

// TestDemoSkipsEnactWhenRunAlreadyLive covers the --data-dir restart
// path: a recovered live run of the demo strategy must not make the
// demo's auto-enactment fail the boot on a name collision.
func TestDemoSkipsEnactWhenRunAlreadyLive(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real HTTP servers")
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := bifrost.ParseStrategy(DemoStrategyDSL)
	if err != nil {
		t.Fatal(err)
	}
	live, err := engine.Launch(strategy)
	if err != nil {
		t.Fatal(err)
	}
	demo, err := StartDemo(engine, table, store, DemoConfig{
		RPS: 1, Seed: 1, Enact: true, LatencyScale: 0.01, PopulationSize: 10,
	})
	if err != nil {
		t.Fatalf("StartDemo with a live same-name run: %v", err)
	}
	demo.Stop()
	live.Abort()
	<-live.Done()
}

// TestDemoFaultSurface verifies injected chaos is both effective (an
// error storm on the recommender really fails user requests) and
// observable: /healthz's demo section reports each configured fault
// with its window, live-vs-pending state, and how many calls it has
// perturbed.
func TestDemoFaultSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real HTTP servers")
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{Table: table, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	injector, err := microsim.NewInjector(time.Now(), []microsim.Fault{
		{
			Kind: microsim.FaultErrorStorm, Service: "recommendation",
			Start: 0, Duration: time.Hour, ErrorRate: 1,
		},
		{
			Kind: microsim.FaultBlackout, Service: "catalog",
			Start: 2 * time.Hour, Duration: time.Hour,
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var logLines []string
	demo, err := StartDemo(engine, table, store, DemoConfig{
		RPS:            60,
		LatencyScale:   0.02,
		PopulationSize: 50,
		Seed:           3,
		Faults:         injector,
		Logf:           func(format string, args ...any) { logLines = append(logLines, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer demo.Stop()

	deadline := time.Now().Add(15 * time.Second)
	var h *DemoHealth
	for {
		h = demo.Health()
		if len(h.Faults) == 2 && h.Faults[0].Applied > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault never surfaced in health: %+v", h.Faults)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Snapshot orders active faults first: the storm is live, the
	// blackout is hours away.
	if h.Faults[0].Kind != "error-storm" || !h.Faults[0].Active {
		t.Errorf("first fault should be the active storm: %+v", h.Faults[0])
	}
	if h.Faults[1].Kind != "blackout" || h.Faults[1].Active {
		t.Errorf("second fault should be the pending blackout: %+v", h.Faults[1])
	}
	if h.Faults[0].Target != "recommendation" {
		t.Errorf("storm target = %q", h.Faults[0].Target)
	}

	// The forced failures are user-visible: the entry endpoint depends on
	// the recommender, so requests 500.
	resp, err := http.Get(demo.EntryURL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Errorf("entry request during a total recommender error storm returned %d", resp.StatusCode)
	}

	// The load generator announced its seed (satellite visibility).
	found := false
	for _, line := range logLines {
		if strings.Contains(line, "seed=3") {
			found = true
		}
	}
	if !found {
		t.Errorf("no seed line in demo logs: %q", logLines)
	}
}

// TestDemoWireTelemetry boots the demo with TelemetryURL aimed at the
// control plane's own API: the shop's metrics and spans must arrive in
// the store and collector exclusively through the binary ingestion
// endpoints, and /healthz must report the wire client's flushes.
func TestDemoWireTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real HTTP servers")
	}
	table := router.NewTable()
	store := metrics.NewStore(0)
	collector := tracing.NewLiveCollector(100_000)
	monitor := health.NewMonitor(collector, -1)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 500 * time.Millisecond,
		Topology:             monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine: engine,
		Table:  table,
		Store:  store,
		Traces: collector,
		Health: monitor,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	demo, err := StartDemo(engine, table, store, DemoConfig{
		RPS:            60,
		LatencyScale:   0.02,
		PopulationSize: 50,
		Seed:           11,
		Enact:          false,
		Traces:         collector,
		TelemetryURL:   ts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer demo.Stop()
	s.SetDemo(demo)

	// The backends buffer telemetry into the wire client and flush at
	// the batch threshold (or at each 2s load chunk). Wait until both
	// telemetry kinds have crossed the wire.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if store.SeriesCount() > 0 && collector.SpanCount() > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if store.SeriesCount() == 0 {
		t.Fatal("no metric series arrived over the wire")
	}
	if collector.SpanCount() == 0 {
		t.Fatal("no spans arrived over the wire")
	}

	h := demo.Health()
	if h.Telemetry == nil {
		t.Fatal("demo health should report the wire-telemetry client")
	}
	if h.Telemetry.Flushes == 0 {
		t.Error("wire client reported zero flushes despite delivered telemetry")
	}
	if h.Telemetry.Errors != 0 {
		t.Errorf("wire client reported %d transport errors", h.Telemetry.Errors)
	}
}
