package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"contexp/internal/fleet"
	"contexp/internal/wire"
)

// --- distributed data plane surface ---
//
// GET  /v1/routing/watch      long-lived stream of routing frames
// GET  /v1/agents             connected-agent registry
// POST /v1/agents/heartbeat   agent lease renewal + applied-version ack
//
// The watch stream speaks the wire snapshot codec: on connect the agent
// receives either a full snapshot or (when it reports a recent enough
// lastApplied version) the delta chain from there, then one delta per
// table swap and periodic heartbeats. Frames are self-delimiting, so
// the stream is just frames back to back with a flush after each.

// handleRoutingWatch streams routing frames to one agent until the
// agent disconnects, the hub drops it for lagging, or the daemon shuts
// down.
func (s *Server) handleRoutingWatch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("agent")
	if id == "" {
		writeError(w, http.StatusBadRequest, "agent query parameter is required")
		return
	}
	var lastApplied uint64
	if raw := r.URL.Query().Get("lastApplied"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "lastApplied: %v", err)
			return
		}
		lastApplied = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub, err := s.cfg.Fleet.Watch(id, r.RemoteAddr, lastApplied)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer s.cfg.Fleet.Unwatch(sub)

	w.Header().Set("Content-Type", wire.StreamContentType)
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case frame, open := <-sub.Frames():
			if !open {
				return // hub shutdown or lag drop: agent reconnects and catches up
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleAgents lists the fleet registry, in the same {items, nextCursor}
// shape as GET /v1/runs. Agents sort by ID, so the cursor is simply the
// last ID of the previous page.
func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultListLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", raw)
			return
		}
		limit = min(n, maxListLimit)
	}
	cursor := q.Get("cursor")

	agents := s.cfg.Fleet.Agents()
	items := agents[:0:0]
	var nextCursor string
	for _, a := range agents {
		if cursor != "" && a.ID <= cursor {
			continue
		}
		if len(items) == limit {
			nextCursor = items[len(items)-1].ID
			break
		}
		items = append(items, a)
	}
	resp := map[string]any{
		"currentVersion": s.cfg.Fleet.Version(),
		"items":          items,
	}
	if nextCursor != "" {
		resp["nextCursor"] = nextCursor
	}
	writeJSON(w, http.StatusOK, resp)
}

// Heartbeat is an agent's periodic self-report: which snapshot version
// its table has applied, how much traffic it has resolved, and whether
// it considers itself stale (fail-static mode after losing the watch
// stream).
type Heartbeat struct {
	ID       string `json:"id"`
	Addr     string `json:"addr,omitempty"`
	Version  uint64 `json:"version"`
	Resolves uint64 `json:"resolves"`
	Stale    bool   `json:"stale,omitempty"`
}

// handleAgentHeartbeat records a Heartbeat in the fleet registry.
func (s *Server) handleAgentHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&hb); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"heartbeat larger than %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if hb.ID == "" {
		writeError(w, http.StatusBadRequest, "id is required")
		return
	}
	s.cfg.Fleet.Ack(hb.ID, hb.Addr, hb.Version, hb.Resolves, hb.Stale)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"currentVersion": s.cfg.Fleet.Version(),
	})
}

// FleetHealth reports the distributed data plane: the published
// snapshot version, live watch streams, and fan-out counters.
type FleetHealth struct {
	CurrentVersion uint64 `json:"currentVersion"`
	Watchers       int    `json:"watchers"`
	Agents         int    `json:"agents"`
	// ConnectedAgents counts registry entries with a live watch stream;
	// StaleAgents counts agents self-reporting fail-static mode.
	ConnectedAgents int `json:"connectedAgents"`
	StaleAgents     int `json:"staleAgents"`
	// MaxLag is the largest applied-version lag across agents that have
	// acked at least once.
	MaxLag     uint64 `json:"maxLag"`
	Broadcasts uint64 `json:"broadcasts"`
	Heartbeats uint64 `json:"heartbeats"`
	Snapshots  uint64 `json:"snapshots"`
	CatchUps   uint64 `json:"catchUps"`
	Lagged     uint64 `json:"lagged"`
}

// fleetHealth condenses the hub's stats and registry for /healthz.
func fleetHealth(h *fleet.Hub) *FleetHealth {
	st := h.Stats()
	fh := &FleetHealth{
		CurrentVersion: st.CurrentVersion,
		Watchers:       st.Watchers,
		Agents:         st.Agents,
		Broadcasts:     st.Broadcasts,
		Heartbeats:     st.Heartbeats,
		Snapshots:      st.Snapshots,
		CatchUps:       st.CatchUps,
		Lagged:         st.Lagged,
	}
	for _, a := range h.Agents() {
		if a.Connected {
			fh.ConnectedAgents++
		}
		if a.Stale {
			fh.StaleAgents++
		}
		if !a.LastAck.IsZero() && a.Lag > fh.MaxLag {
			fh.MaxLag = a.Lag
		}
	}
	return fh
}
