package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// fastDSL finishes in well under a second when response_time data for
// svc/v1 and svc/v2 is present.
const fastDSL = `
strategy "fast" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 50%
        duration = 200ms
        check "latency" {
            metric    = response_time
            aggregate = mean
            max       = 100
            window    = 1m
            interval  = 100ms
        }
        on success -> promote
        on failure -> rollback
    }
}
`

// longDSL holds its phase for 30s so tests can observe and abort a live
// run.
const longDSL = `
strategy "long" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "hold" {
        practice = canary
        traffic  = 50%
        duration = 30s
        on success -> promote
    }
}
`

type env struct {
	t      *testing.T
	ts     *httptest.Server
	table  *router.Table
	store  *metrics.Store
	engine *bifrost.Engine
	server *Server
}

func newEnv(t *testing.T) *env {
	t.Helper()
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := bifrost.NewEngine(bifrost.Config{
		Table:                table,
		Store:                store,
		DefaultCheckInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:            engine,
		Table:             table,
		Store:             store,
		EventPollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts, table: table, store: store, engine: engine, server: s}
}

// seedMetrics records healthy response times for both versions of svc
// so fastDSL's check passes.
func (e *env) seedMetrics() {
	now := time.Now()
	for i := 0; i < 10; i++ {
		e.store.Record("response_time", metrics.Scope{Service: "svc", Version: "v1"}, now, 20)
		e.store.Record("response_time", metrics.Scope{Service: "svc", Version: "v2"}, now, 25)
	}
}

func (e *env) do(method, path, body string) (int, string) {
	e.t.Helper()
	req, err := http.NewRequest(method, e.ts.URL+path, strings.NewReader(body))
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// waitStatus polls the run until it reports the wanted status.
func (e *env) waitStatus(name, want string, timeout time.Duration) {
	e.t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		code, body := e.do(http.MethodGet, "/v1/runs/"+name, "")
		if code != http.StatusOK {
			e.t.Fatalf("GET run %s: status %d: %s", name, code, body)
		}
		var detail RunDetail
		if err := json.Unmarshal([]byte(body), &detail); err != nil {
			e.t.Fatal(err)
		}
		last = detail.Status
		if last == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	e.t.Fatalf("run %s never reached %q (last status %q)", name, want, last)
}

func TestSubmitStrategy(t *testing.T) {
	tests := []struct {
		name     string
		setup    func(e *env)
		body     string
		wantCode int
		wantSub  string
	}{
		{
			name:     "happy path",
			setup:    func(e *env) { e.seedMetrics() },
			body:     fastDSL,
			wantCode: http.StatusCreated,
			wantSub:  `"name": "fast"`,
		},
		{
			name:     "bad DSL",
			body:     `strategy "broken" {`,
			wantCode: http.StatusBadRequest,
			wantSub:  "bifrost",
		},
		{
			name:     "empty body",
			body:     "",
			wantCode: http.StatusBadRequest,
			wantSub:  "error",
		},
		{
			name:     "semantically invalid",
			body:     `strategy "x" { service="s" baseline="v1" candidate="v1" }`,
			wantCode: http.StatusBadRequest,
			wantSub:  "baseline and candidate",
		},
		{
			name:     "oversized body",
			body:     `strategy "big" { # ` + strings.Repeat("x", 1<<20) + "\n}",
			wantCode: http.StatusRequestEntityTooLarge,
			wantSub:  "larger than",
		},
		{
			name: "duplicate live run",
			setup: func(e *env) {
				if code, body := e.do(http.MethodPost, "/v1/strategies", longDSL); code != http.StatusCreated {
					e.t.Fatalf("priming submit: %d: %s", code, body)
				}
			},
			body:     longDSL,
			wantCode: http.StatusConflict,
			wantSub:  "already running",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := newEnv(t)
			if tt.setup != nil {
				tt.setup(e)
			}
			code, body := e.do(http.MethodPost, "/v1/strategies", tt.body)
			if code != tt.wantCode {
				t.Fatalf("status = %d, want %d; body: %s", code, tt.wantCode, body)
			}
			if !strings.Contains(body, tt.wantSub) {
				t.Errorf("body %q missing %q", body, tt.wantSub)
			}
		})
	}
}

func TestRunLifecycleToPromotion(t *testing.T) {
	e := newEnv(t)
	e.seedMetrics()
	code, body := e.do(http.MethodPost, "/v1/strategies", fastDSL)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	e.waitStatus("fast", "succeeded", 5*time.Second)

	// The audit trail includes phase entry and the finish marker.
	_, body = e.do(http.MethodGet, "/v1/runs/fast", "")
	for _, want := range []string{"phase-entered", "run-finished", `"canary"`} {
		if !strings.Contains(body, want) {
			t.Errorf("run detail missing %q: %s", want, body)
		}
	}

	// Promotion routes 100% of svc to the candidate.
	code, body = e.do(http.MethodGet, "/v1/routes", "")
	if code != http.StatusOK {
		t.Fatalf("routes: %d", code)
	}
	var routes struct {
		TableVersion uint64               `json:"tableVersion"`
		Services     map[string]RouteView `json:"services"`
	}
	if err := json.Unmarshal([]byte(body), &routes); err != nil {
		t.Fatal(err)
	}
	rv, ok := routes.Services["svc"]
	if !ok {
		t.Fatalf("no route for svc in %s", body)
	}
	if len(rv.Backends) != 1 || rv.Backends[0].Version != "v2" || rv.Backends[0].Weight != 1 {
		t.Errorf("post-promotion backends = %+v, want v2 at weight 1", rv.Backends)
	}
	if routes.TableVersion == 0 {
		t.Error("table version should have advanced")
	}

	// The run list includes the finished run.
	_, body = e.do(http.MethodGet, "/v1/runs", "")
	if !strings.Contains(body, `"fast"`) || !strings.Contains(body, `"succeeded"`) {
		t.Errorf("run list missing finished run: %s", body)
	}
}

func TestUnknownRun(t *testing.T) {
	e := newEnv(t)
	for _, tt := range []struct{ method, path string }{
		{http.MethodGet, "/v1/runs/ghost"},
		{http.MethodDelete, "/v1/runs/ghost"},
		{http.MethodGet, "/v1/runs/ghost/events"},
	} {
		code, body := e.do(tt.method, tt.path, "")
		if code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404; body: %s", tt.method, tt.path, code, body)
		}
		if !strings.Contains(body, "ghost") {
			t.Errorf("%s %s error should name the run: %s", tt.method, tt.path, body)
		}
	}
}

func TestAbortAndDoubleAbort(t *testing.T) {
	e := newEnv(t)
	if code, body := e.do(http.MethodPost, "/v1/strategies", longDSL); code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}
	code, body := e.do(http.MethodDelete, "/v1/runs/long", "")
	if code != http.StatusAccepted {
		t.Fatalf("abort = %d, want 202; body: %s", code, body)
	}
	e.waitStatus("long", "aborted", 5*time.Second)

	code, body = e.do(http.MethodDelete, "/v1/runs/long", "")
	if code != http.StatusConflict {
		t.Fatalf("double abort = %d, want 409; body: %s", code, body)
	}
	if !strings.Contains(body, "aborted") {
		t.Errorf("conflict body should report the terminal status: %s", body)
	}
}

func TestIngestMetrics(t *testing.T) {
	tests := []struct {
		name     string
		body     string
		wantCode int
		wantSub  string
	}{
		{
			name: "happy path",
			body: `{"observations":[
				{"metric":"response_time","service":"api","version":"v1","value":12.5},
				{"metric":"response_time","service":"api","version":"v2","variant":"dark","value":14.0}]}`,
			wantCode: http.StatusAccepted,
			wantSub:  `"accepted": 2`,
		},
		{
			name:     "missing fields",
			body:     `{"observations":[{"metric":"","service":"api","version":"v1","value":1}]}`,
			wantCode: http.StatusBadRequest,
			wantSub:  "observation 0",
		},
		{
			name:     "malformed JSON",
			body:     `{"observations": [`,
			wantCode: http.StatusBadRequest,
			wantSub:  "decoding body",
		},
		{
			name:     "empty batch",
			body:     `{"observations": []}`,
			wantCode: http.StatusBadRequest,
			wantSub:  "no observations",
		},
		{
			name: "oversized batch",
			body: `{"observations":[{"metric":"` + strings.Repeat("m", 1<<20) +
				`","service":"api","version":"v1","value":1}]}`,
			wantCode: http.StatusRequestEntityTooLarge,
			wantSub:  "larger than",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := newEnv(t)
			code, body := e.do(http.MethodPost, "/v1/metrics", tt.body)
			if code != tt.wantCode {
				t.Fatalf("status = %d, want %d; body: %s", code, tt.wantCode, body)
			}
			if !strings.Contains(body, tt.wantSub) {
				t.Errorf("body %q missing %q", body, tt.wantSub)
			}
			if tt.wantCode == http.StatusAccepted {
				got, err := e.store.Query("response_time",
					metrics.Scope{Service: "api", Version: "v1"},
					time.Now().Add(-time.Minute), metrics.AggMean)
				if err != nil || got != 12.5 {
					t.Errorf("stored value = %v, %v; want 12.5", got, err)
				}
				got, err = e.store.Query("response_time",
					metrics.Scope{Service: "api", Version: "v2", Variant: "dark"},
					time.Now().Add(-time.Minute), metrics.AggMean)
				if err != nil || got != 14.0 {
					t.Errorf("dark-variant value = %v, %v; want 14", got, err)
				}
			}
		})
	}
}

func TestRoutesRendersRulesAndMirrors(t *testing.T) {
	e := newEnv(t)
	err := e.table.Set(router.Route{
		Service: "catalog",
		Rules: []router.Rule{
			{Name: "beta-users", Match: router.GroupMatcher{Group: "beta"}, Version: "v2"},
		},
		Backends:   []router.Backend{{Version: "v1", Weight: 0.9}, {Version: "v2", Weight: 0.1}},
		Mirrors:    []string{"v3"},
		StickySalt: "exp-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	code, body := e.do(http.MethodGet, "/v1/routes", "")
	if code != http.StatusOK {
		t.Fatalf("routes: %d", code)
	}
	for _, want := range []string{"beta-users", "group=beta", `"v3"`, "exp-1", "0.9"} {
		if !strings.Contains(body, want) {
			t.Errorf("routes body missing %q: %s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	e := newEnv(t)
	e.seedMetrics()
	code, body := e.do(http.MethodGet, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Store.Series != 2 {
		t.Errorf("series = %d, want 2", h.Store.Series)
	}
	if h.Store.Shards != e.store.ShardCount() {
		t.Errorf("shards = %d, want %d", h.Store.Shards, e.store.ShardCount())
	}
	if h.Router.SnapshotVersion != e.table.Version() {
		t.Errorf("snapshotVersion = %d, want %d", h.Router.SnapshotVersion, e.table.Version())
	}
	if h.Router.SnapshotVersion != h.Router.TableVersion {
		t.Errorf("snapshotVersion %d != tableVersion %d",
			h.Router.SnapshotVersion, h.Router.TableVersion)
	}
	if h.Demo != nil {
		t.Error("no demo attached, but demo health reported")
	}
}

// TestRoutesReportsSnapshotAndStoreCounts covers the data-plane
// introspection fields of /v1/routes: the published routing-snapshot
// version plus the metric store's series and shard counts.
func TestRoutesReportsSnapshotAndStoreCounts(t *testing.T) {
	e := newEnv(t)
	e.seedMetrics()
	if err := e.table.Set(router.Route{
		Service:  "catalog",
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	code, body := e.do(http.MethodGet, "/v1/routes", "")
	if code != http.StatusOK {
		t.Fatalf("routes: %d", code)
	}
	var view struct {
		TableVersion    uint64 `json:"tableVersion"`
		SnapshotVersion uint64 `json:"snapshotVersion"`
		StoreSeries     int    `json:"storeSeries"`
		StoreShards     int    `json:"storeShards"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.SnapshotVersion != e.table.Version() || view.SnapshotVersion == 0 {
		t.Errorf("snapshotVersion = %d, want %d", view.SnapshotVersion, e.table.Version())
	}
	if view.TableVersion != view.SnapshotVersion {
		t.Errorf("tableVersion %d != snapshotVersion %d", view.TableVersion, view.SnapshotVersion)
	}
	if view.StoreSeries != e.store.SeriesCount() || view.StoreSeries == 0 {
		t.Errorf("storeSeries = %d, want %d", view.StoreSeries, e.store.SeriesCount())
	}
	if view.StoreShards != e.store.ShardCount() {
		t.Errorf("storeShards = %d, want %d", view.StoreShards, e.store.ShardCount())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New should reject a config without engine/table/store")
	}
}

// TestSSEStreamsRunEvents submits a run and reads its event stream to
// completion: phase entry, check results, and the terminal run-status
// frame must all arrive.
func TestSSEStreamsRunEvents(t *testing.T) {
	e := newEnv(t)
	e.seedMetrics()
	if code, body := e.do(http.MethodPost, "/v1/strategies", fastDSL); code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", code, body)
	}

	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/runs/fast/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	events, terminal := readSSE(t, resp.Body, 10*time.Second)
	if terminal != `{"status":"succeeded"}` {
		t.Errorf("terminal frame = %s", terminal)
	}
	for _, want := range []string{"phase-entered", "check-result", "run-finished"} {
		if _, ok := events[want]; !ok {
			t.Errorf("stream missing event type %q (got %v)", want, events)
		}
	}
}

// readSSE consumes a server-sent event stream until the run-status
// frame, returning the observed event types and the terminal payload.
func readSSE(t *testing.T, body io.Reader, timeout time.Duration) (map[string]int, string) {
	t.Helper()
	type result struct {
		events   map[string]int
		terminal string
		err      error
	}
	ch := make(chan result, 1)
	go func() {
		events := make(map[string]int)
		scanner := bufio.NewScanner(body)
		current := ""
		for scanner.Scan() {
			line := scanner.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				current = strings.TrimPrefix(line, "event: ")
				events[current]++
			case strings.HasPrefix(line, "data: ") && current == "run-status":
				ch <- result{events: events, terminal: strings.TrimPrefix(line, "data: ")}
				return
			}
		}
		ch <- result{events: events, err: fmt.Errorf("stream ended without run-status: %v", scanner.Err())}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		return res.events, res.terminal
	case <-time.After(timeout):
		t.Fatal("timed out reading SSE stream")
		return nil, ""
	}
}
