package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"contexp/internal/metrics"
)

func healthOf(t *testing.T, body string) Health {
	t.Helper()
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("bad health payload: %v\n%s", err, body)
	}
	return h
}

// TestStatusCacheCoalescesReads verifies /healthz serves one assembled
// snapshot for the TTL window: state changes between two requests
// inside the window are invisible, and a fresh snapshot appears after
// expiry.
func TestStatusCacheCoalescesReads(t *testing.T) {
	e := newCustomEnv(t, func(c *Config) { c.StatusCacheTTL = 200 * time.Millisecond })

	code, body := e.do(http.MethodGet, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	before := healthOf(t, body)
	if before.Store.Series != 0 {
		t.Fatalf("fresh store should report 0 series, got %d", before.Store.Series)
	}

	// Mutate state the snapshot covers.
	e.store.Record("rt", metrics.Scope{Service: "svc", Version: "v1"}, time.Now(), 1)

	if _, body = e.do(http.MethodGet, "/healthz", ""); healthOf(t, body).Store.Series != 0 {
		t.Fatal("second read inside the TTL should serve the cached snapshot")
	}

	time.Sleep(250 * time.Millisecond)
	if _, body = e.do(http.MethodGet, "/healthz", ""); healthOf(t, body).Store.Series != 1 {
		t.Fatal("read after TTL expiry should rebuild the snapshot")
	}
}

// TestStatusCacheDisabled verifies a negative TTL turns the snapshot
// cache off entirely.
func TestStatusCacheDisabled(t *testing.T) {
	e := newCustomEnv(t, func(c *Config) { c.StatusCacheTTL = -1 })

	if _, body := e.do(http.MethodGet, "/healthz", ""); healthOf(t, body).Store.Series != 0 {
		t.Fatal("fresh store should report 0 series")
	}
	e.store.Record("rt", metrics.Scope{Service: "svc", Version: "v1"}, time.Now(), 1)
	if _, body := e.do(http.MethodGet, "/healthz", ""); healthOf(t, body).Store.Series != 1 {
		t.Fatal("with caching disabled every read should rebuild")
	}
}

// TestStatusSharedWithAdminTenants verifies /v1/admin/tenants reads the
// same snapshot /healthz does — one assembly serves both surfaces.
func TestStatusSharedWithAdminTenants(t *testing.T) {
	e := newCustomEnv(t, nil) // default 1s TTL

	// Prime via the admin surface.
	if code, _ := e.do(http.MethodGet, "/v1/admin/tenants", ""); code != http.StatusOK {
		t.Fatalf("admin tenants: %d", code)
	}
	e.store.Record("rt", metrics.Scope{Service: "svc", Version: "v1"}, time.Now(), 1)
	// The healthz that follows must reuse the snapshot the admin call
	// primed.
	if _, body := e.do(http.MethodGet, "/healthz", ""); healthOf(t, body).Store.Series != 0 {
		t.Fatal("healthz should share the snapshot primed by /v1/admin/tenants")
	}
}

// TestHealthReportsEvalPlane verifies the dispatcher's counters ride
// along in the engine health section.
func TestHealthReportsEvalPlane(t *testing.T) {
	e := newEnv(t)
	_, body := e.do(http.MethodGet, "/healthz", "")
	h := healthOf(t, body)
	if h.Engine.EvalPlane.Workers < 1 {
		t.Fatalf("evalPlane.workers = %d; want >= 1", h.Engine.EvalPlane.Workers)
	}
}
