package fnvx

import (
	"hash/fnv"
	"testing"
)

// TestMatchesStdlib pins the inlined fold to the stdlib hash/fnv
// stream: sticky user→arm assignments depend on this equivalence.
func TestMatchesStdlib(t *testing.T) {
	inputs := []string{"", "a", "user-12345", "catalog\x00salt", "héllo"}
	for _, in := range inputs {
		std := fnv.New64a()
		_, _ = std.Write([]byte(in))
		if got := String(Offset64, in); got != std.Sum64() {
			t.Errorf("String(%q) = %d, stdlib %d", in, got, std.Sum64())
		}
	}
	std := fnv.New64a()
	_, _ = std.Write([]byte{0x42})
	if got := Byte(Offset64, 0x42); got != std.Sum64() {
		t.Errorf("Byte = %d, stdlib %d", got, std.Sum64())
	}
}
