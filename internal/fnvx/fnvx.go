// Package fnvx is an allocation-free FNV-1a hash primitive shared by
// the data-plane hot paths (router sticky assignment, metrics shard
// selection). The stdlib hash/fnv forces a heap-allocated hash.Hash64;
// these helpers fold bytes and strings into a plain uint64 instead.
package fnvx

// Offset64 is the FNV-1a 64-bit offset basis.
const Offset64 uint64 = 14695981039346656037

// Prime64 is the FNV-1a 64-bit prime.
const Prime64 uint64 = 1099511628211

// String folds s into h.
func String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= Prime64
	}
	return h
}

// Bytes folds b into h.
func Bytes(h uint64, b []byte) uint64 {
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= Prime64
	}
	return h
}

// Byte folds one byte into h.
func Byte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= Prime64
	return h
}
