package loadgen

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"contexp/internal/router"
	"contexp/internal/traffic"
)

func TestConstantRate(t *testing.T) {
	r := ConstantRate(42)
	if got := r(0); got != 42 {
		t.Errorf("rate(0) = %v", got)
	}
	if got := r(time.Hour); got != 42 {
		t.Errorf("rate(1h) = %v", got)
	}
}

func TestRampRate(t *testing.T) {
	r := RampRate(10, 110, 100*time.Second)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{50 * time.Second, 60},
		{100 * time.Second, 110},
		{200 * time.Second, 110},
	}
	for _, c := range cases {
		if got := r(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ramp(%s) = %v, want %v", c.at, got, c.want)
		}
	}
	// Degenerate window holds the target immediately.
	if got := RampRate(5, 9, 0)(0); got != 9 {
		t.Errorf("zero-window ramp = %v, want 9", got)
	}
}

func TestSpike(t *testing.T) {
	r := Spike(ConstantRate(100), 4, 20*time.Second, 10*time.Second)
	if got := r(10 * time.Second); got != 100 {
		t.Errorf("before window = %v", got)
	}
	if got := r(20 * time.Second); got != 400 {
		t.Errorf("window start = %v", got)
	}
	if got := r(29 * time.Second); got != 400 {
		t.Errorf("inside window = %v", got)
	}
	if got := r(30 * time.Second); got != 100 {
		t.Errorf("window end (exclusive) = %v", got)
	}
}

func TestDiurnalRate(t *testing.T) {
	period := 10 * time.Minute
	r := DiurnalRate(100, 0.5, period, 2*time.Minute)
	if got := r(2 * time.Minute); math.Abs(got-150) > 1e-6 {
		t.Errorf("peak = %v, want 150", got)
	}
	if got := r(7 * time.Minute); math.Abs(got-50) > 1e-6 {
		t.Errorf("trough = %v, want 50", got)
	}
	// Amplitude clamps so the trough never goes negative.
	r = DiurnalRate(100, 3, period, 0)
	if got := r(period / 2); got < 0 {
		t.Errorf("clamped trough = %v, want >= 0", got)
	}
}

func TestProfileRate(t *testing.T) {
	p := &traffic.Profile{
		Start:      tBase,
		SlotLength: 10 * time.Second,
		Slots:      []float64{100, 400, 0, 200},
	}
	r := ProfileRate(p, 1)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{9 * time.Second, 10},
		{10 * time.Second, 40},
		{25 * time.Second, 0},
		{35 * time.Second, 20},
		{40 * time.Second, 0}, // beyond the profile
	}
	for _, c := range cases {
		if got := r(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("profile rate(%s) = %v, want %v", c.at, got, c.want)
		}
	}
	// Half-scale replay halves the rate.
	if got := ProfileRate(p, 0.5)(0); math.Abs(got-5) > 1e-9 {
		t.Errorf("scaled rate = %v, want 5", got)
	}
}

// countingTarget buckets arrivals into 1-second bins.
type countingTarget struct {
	start time.Time
	bins  []int
}

func (c *countingTarget) Do(req *router.Request, at time.Time) (time.Duration, bool, error) {
	i := int(at.Sub(c.start) / time.Second)
	if i >= 0 && i < len(c.bins) {
		c.bins[i]++
	}
	return time.Millisecond, false, nil
}

func (c *countingTarget) window(from, to int) int {
	n := 0
	for i := from; i < to && i < len(c.bins); i++ {
		n += c.bins[i]
	}
	return n
}

func TestThinningFollowsRate(t *testing.T) {
	// Flash crowd: 50 rps, x4 during [20s, 30s).
	tgt := &countingTarget{start: tBase, bins: make([]int, 60)}
	res, err := Run(Config{
		Rate:     Spike(ConstantRate(50), 4, 20*time.Second, 10*time.Second),
		Duration: 60 * time.Second,
		Start:    tBase,
		Seed:     7,
	}, pop(t, 100), tgt)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name     string
		from, to int
		want     float64
	}{
		{"before burst", 0, 20, 1000},
		{"burst", 20, 30, 2000},
		{"after burst", 30, 60, 1500},
	}
	for _, c := range checks {
		got := float64(tgt.window(c.from, c.to))
		// 4 sigma of a Poisson count.
		tol := 4 * math.Sqrt(c.want)
		if math.Abs(got-c.want) > tol {
			t.Errorf("%s: %v arrivals, want %v ± %v", c.name, got, c.want, tol)
		}
	}
	if len(res.Samples) != tgt.window(0, 60) {
		t.Errorf("samples %d != binned arrivals %d", len(res.Samples), tgt.window(0, 60))
	}
}

func TestThinningDeterministic(t *testing.T) {
	rate := DiurnalRate(80, 0.6, time.Minute, 0)
	run := func() []Sample {
		res, err := Run(Config{
			Rate:     rate,
			Duration: 90 * time.Second,
			Start:    tBase,
			Seed:     11,
		}, pop(t, 50), TargetFunc(func(*router.Request, time.Time) (time.Duration, bool, error) {
			return time.Millisecond, false, nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("reruns differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].At.Equal(b[i].At) {
			t.Fatalf("arrival %d differs: %s vs %s", i, a[i].At, b[i].At)
		}
	}
}

func TestUniformRateSpacing(t *testing.T) {
	// Uniform + constant Rate spaces arrivals exactly like the
	// homogeneous Uniform path.
	mk := func(cfg Config) []Sample {
		res, err := Run(cfg, pop(t, 10), TargetFunc(func(*router.Request, time.Time) (time.Duration, bool, error) {
			return time.Millisecond, false, nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Samples
	}
	base := Config{RPS: 25, Duration: 10 * time.Second, Start: tBase, Seed: 3, Uniform: true}
	viaRate := base
	viaRate.RPS = 0
	viaRate.Rate = ConstantRate(25)
	a, b := mk(base), mk(viaRate)
	if len(a) != len(b) {
		t.Fatalf("arrival counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].At.Equal(b[i].At) {
			t.Fatalf("arrival %d differs: %s vs %s", i, a[i].At, b[i].At)
		}
	}
}

func TestRunLogsSeed(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(fmt.Sprintf(format, args...)))
	}
	_, err := Run(Config{
		RPS: 10, Duration: time.Second, Start: tBase, Seed: 424242, Logf: logf,
	}, pop(t, 10), TargetFunc(func(*router.Request, time.Time) (time.Duration, bool, error) {
		return time.Millisecond, false, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no log lines emitted")
	}
	if !strings.Contains(lines[0], "seed=424242") {
		t.Errorf("start line %q does not carry the seed", lines[0])
	}
}
