package loadgen

import (
	"math"
	"time"

	"contexp/internal/traffic"
)

// Rate is a time-varying arrival intensity: requests per second as a
// function of elapsed time since the start of the run. A Rate turns the
// generator from a homogeneous Poisson process into a non-homogeneous
// one (sampled by Lewis-Shedler thinning), which is what lets one
// workload definition express ramps, flash crowds, diurnal cycles, and
// replayed production traces.
//
// A Rate must be non-negative; intervals where it returns 0 produce no
// arrivals.
type Rate func(elapsed time.Duration) float64

// ConstantRate arrives at a steady rps — the same process as Config.RPS,
// expressed as a Rate so it composes with Spike and friends.
func ConstantRate(rps float64) Rate {
	return func(time.Duration) float64 { return rps }
}

// RampRate interpolates linearly from `from` rps at elapsed 0 to `to`
// rps at elapsed `over`, holding `to` afterwards. It models gradual
// organic growth (or decay, when to < from).
func RampRate(from, to float64, over time.Duration) Rate {
	return func(elapsed time.Duration) float64 {
		if over <= 0 || elapsed >= over {
			return to
		}
		if elapsed <= 0 {
			return from
		}
		frac := float64(elapsed) / float64(over)
		return from + (to-from)*frac
	}
}

// Spike multiplies base by factor inside the square window
// [start, start+width) — a flash crowd: traffic jumps, holds, and drops
// back. Factors below 1 model brownouts instead.
func Spike(base Rate, factor float64, start, width time.Duration) Rate {
	return func(elapsed time.Duration) float64 {
		r := base(elapsed)
		if elapsed >= start && elapsed < start+width {
			r *= factor
		}
		return r
	}
}

// DiurnalRate is a day/night sinusoid around base: rate(t) =
// base * (1 + amplitude*cos(2π*(t-peak)/period)). Amplitude is clamped
// to [0,1] so the trough never goes negative; peak is the elapsed offset
// of the daily maximum. With period = 24h this is the same shape the
// traffic generator uses for its synthetic profiles, compressed to
// whatever period the scenario can afford.
func DiurnalRate(base, amplitude float64, period, peak time.Duration) Rate {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 1 {
		amplitude = 1
	}
	return func(elapsed time.Duration) float64 {
		if period <= 0 {
			return base
		}
		phase := 2 * math.Pi * float64(elapsed-peak) / float64(period)
		return base * (1 + amplitude*math.Cos(phase))
	}
}

// ProfileRate replays a recorded traffic profile as an arrival process:
// during slot i the rate is scale * Slots[i] / SlotLength, so with
// scale = 1 a full replay issues (up to sampling noise) exactly the
// recorded per-slot volumes. Elapsed time 0 maps to the profile start;
// beyond the last slot the rate is 0.
func ProfileRate(p *traffic.Profile, scale float64) Rate {
	if scale <= 0 {
		scale = 1
	}
	return func(elapsed time.Duration) float64 {
		if p == nil || p.SlotLength <= 0 || elapsed < 0 {
			return 0
		}
		i := int(elapsed / p.SlotLength)
		if i >= p.NumSlots() {
			return 0
		}
		return scale * p.Slots[i] / p.SlotLength.Seconds()
	}
}

// maxRateScan is the number of sample points used to bound a Rate for
// thinning. Piecewise-constant and smooth rates are bounded exactly
// enough at this granularity; pathological needle-shaped rates would be
// under-sampled, which only biases a needle's arrivals low — it never
// breaks the generator.
const maxRateScan = 4096

// peakRate estimates max rate(t) over [0, duration] by scanning.
func peakRate(rate Rate, duration time.Duration) float64 {
	step := duration / maxRateScan
	if step <= 0 {
		step = time.Nanosecond
	}
	peak := 0.0
	for el := time.Duration(0); el <= duration; el += step {
		if r := rate(el); r > peak {
			peak = r
		}
	}
	return peak
}
