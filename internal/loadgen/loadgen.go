// Package loadgen generates the user workload that drives the
// evaluations: an open-loop arrival process (Poisson by default) over a
// fixed user population with group memberships. It stands in for the
// end users of the paper's testbed.
//
// The generator targets anything implementing Target; the in-process
// microsim.Sim and a real-HTTP adapter both qualify, so the same
// workload definition drives simulated and wire-level experiments.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// Target executes one request at a virtual or real instant and reports
// the observed latency and whether the request failed.
type Target interface {
	Do(req *router.Request, at time.Time) (latency time.Duration, failed bool, err error)
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(req *router.Request, at time.Time) (time.Duration, bool, error)

var _ Target = TargetFunc(nil)

// Do implements Target.
func (f TargetFunc) Do(req *router.Request, at time.Time) (time.Duration, bool, error) {
	return f(req, at)
}

// Population is a fixed set of users with group memberships, from which
// the generator samples request identities.
type Population struct {
	users  []user
	rng    *rand.Rand
	groups []expmodel.UserGroup
}

type user struct {
	id     string
	groups []expmodel.UserGroup
}

// PopulationConfig parameterizes NewPopulation.
type PopulationConfig struct {
	// Size is the number of distinct users.
	Size int
	// Groups assigns each listed group independently with the given
	// probability to each user.
	Groups map[expmodel.UserGroup]float64
	// Seed fixes the assignment.
	Seed int64
}

// NewPopulation creates a user population.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, errors.New("loadgen: population size must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Deterministic group iteration order.
	groupList := make([]expmodel.UserGroup, 0, len(cfg.Groups))
	for g := range cfg.Groups {
		groupList = append(groupList, g)
	}
	sortGroups(groupList)
	p := &Population{rng: rng, groups: groupList}
	p.users = make([]user, cfg.Size)
	for i := range p.users {
		u := user{id: fmt.Sprintf("user-%06d", i)}
		for _, g := range groupList {
			if rng.Float64() < cfg.Groups[g] {
				u.groups = append(u.groups, g)
			}
		}
		p.users[i] = u
	}
	return p, nil
}

func sortGroups(gs []expmodel.UserGroup) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j] < gs[j-1]; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// Size returns the number of users.
func (p *Population) Size() int { return len(p.users) }

// Sample draws a uniformly random user request.
func (p *Population) Sample() *router.Request {
	u := p.users[p.rng.Intn(len(p.users))]
	return &router.Request{UserID: u.id, Groups: u.groups, Header: map[string]string{}}
}

// GroupShare returns the fraction of users in group g.
func (p *Population) GroupShare(g expmodel.UserGroup) float64 {
	if len(p.users) == 0 {
		return 0
	}
	var n int
	for _, u := range p.users {
		for _, have := range u.groups {
			if have == g {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(p.users))
}

// Config parameterizes a load run.
type Config struct {
	// RPS is the mean arrival rate (requests per second). Ignored when
	// Rate is set.
	RPS float64
	// Rate, when non-nil, replaces the constant RPS with a time-varying
	// intensity (ramps, bursts, diurnal cycles, CSV replay — see Rate).
	// Poisson arrivals are then sampled by thinning against the peak
	// rate; Uniform arrivals space deterministically at 1/rate.
	Rate Rate
	// Duration is the (virtual) time span of the run.
	Duration time.Duration
	// Start is the virtual start instant.
	Start time.Time
	// Seed fixes the arrival process.
	Seed int64
	// Uniform switches from Poisson to evenly spaced arrivals, used by
	// latency-overhead measurements that want minimal arrival jitter.
	Uniform bool
	// Store, when non-nil, receives client-observed telemetry for every
	// completed request — the end-user vantage point, complementing the
	// services' self-reported metrics. Observations are flushed to the
	// store in batches (RecordBatch) so the generator does not pay one
	// store round-trip per request.
	Store *metrics.Store
	// Sink, when non-nil, receives the same batched client telemetry as
	// Store. A wire.Client satisfies it, so the generator can ship its
	// observations to a remote contexpd as binary batch frames instead
	// of (or alongside) recording in-process.
	Sink MetricSink
	// Metric is the latency series name recorded into Store
	// (default "client_latency", milliseconds).
	Metric string
	// MetricScope identifies the recording scope (default service
	// "loadgen", version "client").
	MetricScope metrics.Scope
	// Logf, when non-nil, receives a start-of-run line carrying the RNG
	// seed and arrival parameters, so any failure observed in CI can be
	// reproduced byte-for-byte locally.
	Logf func(format string, args ...any)
}

// MetricSink receives batched telemetry. *metrics.Store and
// *wire.Client both satisfy it.
type MetricSink interface {
	RecordBatch(samples []metrics.Sample)
}

// flushEvery bounds the client-telemetry batch the generator buffers
// before handing it to the store.
const flushEvery = 256

// Sample is one completed request.
type Sample struct {
	At      time.Time
	Latency time.Duration
	Failed  bool
}

// Result is the outcome of a load run.
type Result struct {
	Samples []Sample
	// Errors counts requests whose Target returned a transport error
	// (as opposed to an application failure).
	Errors int
}

// Latencies extracts the latency column in milliseconds.
func (r *Result) Latencies() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = float64(s.Latency) / float64(time.Millisecond)
	}
	return out
}

// FailureRate returns the fraction of samples with application failures.
func (r *Result) FailureRate() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var n int
	for _, s := range r.Samples {
		if s.Failed {
			n++
		}
	}
	return float64(n) / float64(len(r.Samples))
}

// Run executes the workload synchronously against target: arrivals are
// generated up front, each request is issued at its virtual arrival
// instant. Wall-clock pacing is the caller's concern (the simulated
// substrates need none).
func Run(cfg Config, pop *Population, target Target) (*Result, error) {
	if cfg.RPS <= 0 && cfg.Rate == nil {
		return nil, errors.New("loadgen: RPS must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: duration must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	metric := cfg.Metric
	if metric == "" {
		metric = "client_latency"
	}
	scope := cfg.MetricScope
	if scope == (metrics.Scope{}) {
		scope = metrics.Scope{Service: "loadgen", Version: "client"}
	}
	telemetry := cfg.Store != nil || cfg.Sink != nil
	var pending []metrics.Sample
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if cfg.Store != nil {
			cfg.Store.RecordBatch(pending)
		}
		if cfg.Sink != nil {
			cfg.Sink.RecordBatch(pending)
		}
		pending = pending[:0]
	}
	issue := func(at time.Time) {
		req := pop.Sample()
		latency, failed, err := target.Do(req, at)
		if err != nil {
			res.Errors++
			return
		}
		res.Samples = append(res.Samples, Sample{At: at, Latency: latency, Failed: failed})
		if telemetry {
			pending = append(pending, metrics.Sample{
				Metric: metric, Scope: scope, At: at,
				Value: float64(latency) / float64(time.Millisecond),
			})
			if len(pending) >= flushEvery {
				flush()
			}
		}
	}

	process := "poisson"
	if cfg.Uniform {
		process = "uniform"
	}
	if cfg.Logf != nil {
		if cfg.Rate != nil {
			cfg.Logf("loadgen: run start: seed=%d duration=%s process=%s rate=time-varying",
				cfg.Seed, cfg.Duration, process)
		} else {
			cfg.Logf("loadgen: run start: seed=%d duration=%s process=%s rps=%g",
				cfg.Seed, cfg.Duration, process, cfg.RPS)
		}
	}

	at := cfg.Start
	end := cfg.Start.Add(cfg.Duration)
	switch {
	case cfg.Rate == nil:
		// Homogeneous process: the original, byte-for-byte stable path
		// (thinning would consume extra RNG draws and shift every
		// existing seeded arrival stream).
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		for at.Before(end) {
			issue(at)
			if cfg.Uniform {
				at = at.Add(interval)
			} else {
				gap := time.Duration(rng.ExpFloat64() * float64(interval))
				if gap <= 0 {
					gap = time.Nanosecond
				}
				at = at.Add(gap)
			}
		}
	case cfg.Uniform:
		// Deterministic spacing at the instantaneous rate: the next
		// arrival after t lands at t + 1/rate(t). Zero-rate stretches
		// are skipped in bounded steps without issuing.
		idle := cfg.Duration / maxRateScan
		if idle < time.Millisecond {
			idle = time.Millisecond
		}
		for at.Before(end) {
			r := cfg.Rate(at.Sub(cfg.Start))
			if r <= 0 {
				at = at.Add(idle)
				continue
			}
			issue(at)
			at = at.Add(time.Duration(float64(time.Second) / r))
		}
	default:
		// Non-homogeneous Poisson by Lewis-Shedler thinning: sample a
		// homogeneous process at the peak rate, accept each candidate
		// arrival with probability rate(t)/peak.
		peak := peakRate(cfg.Rate, cfg.Duration)
		if peak > 0 {
			peakInterval := float64(time.Second) / peak
			for {
				gap := time.Duration(rng.ExpFloat64() * peakInterval)
				if gap <= 0 {
					gap = time.Nanosecond
				}
				at = at.Add(gap)
				if !at.Before(end) {
					break
				}
				if rng.Float64()*peak <= cfg.Rate(at.Sub(cfg.Start)) {
					issue(at)
				}
			}
		}
	}
	flush()
	return res, nil
}
