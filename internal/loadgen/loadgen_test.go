package loadgen

import (
	"errors"
	"math"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

var tBase = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

func pop(t *testing.T, size int) *Population {
	t.Helper()
	p, err := NewPopulation(PopulationConfig{
		Size:   size,
		Groups: map[expmodel.UserGroup]float64{"beta": 0.1, "eu": 0.5},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation(PopulationConfig{Size: 0}); err == nil {
		t.Error("size 0 should fail")
	}
}

func TestPopulationGroupShares(t *testing.T) {
	p := pop(t, 10000)
	if p.Size() != 10000 {
		t.Errorf("Size = %d", p.Size())
	}
	if got := p.GroupShare("beta"); math.Abs(got-0.1) > 0.02 {
		t.Errorf("beta share = %v, want ≈ 0.1", got)
	}
	if got := p.GroupShare("eu"); math.Abs(got-0.5) > 0.02 {
		t.Errorf("eu share = %v, want ≈ 0.5", got)
	}
	if got := p.GroupShare("ghost"); got != 0 {
		t.Errorf("ghost share = %v", got)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	p1 := pop(t, 100)
	p2 := pop(t, 100)
	for i := 0; i < 50; i++ {
		a, b := p1.Sample(), p2.Sample()
		if a.UserID != b.UserID || len(a.Groups) != len(b.Groups) {
			t.Fatal("same seed should generate identical populations and samples")
		}
	}
}

func TestRunProducesExpectedVolume(t *testing.T) {
	p := pop(t, 100)
	var count int
	target := TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		count++
		return 10 * time.Millisecond, false, nil
	})
	res, err := Run(Config{RPS: 100, Duration: 10 * time.Second, Start: tBase, Seed: 1}, p, target)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson arrivals: expect ~1000 ± a few sigma.
	if n := len(res.Samples); n < 850 || n > 1150 {
		t.Errorf("samples = %d, want ≈ 1000", n)
	}
	if count != len(res.Samples) {
		t.Errorf("target calls %d != samples %d", count, len(res.Samples))
	}
	// Arrivals are within the window and monotone.
	for i, s := range res.Samples {
		if s.At.Before(tBase) || !s.At.Before(tBase.Add(10*time.Second)) {
			t.Fatalf("sample %d outside window: %v", i, s.At)
		}
		if i > 0 && s.At.Before(res.Samples[i-1].At) {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestRunUniform(t *testing.T) {
	p := pop(t, 10)
	target := TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		return time.Millisecond, false, nil
	})
	res, err := Run(Config{RPS: 10, Duration: time.Second, Start: tBase, Uniform: true}, p, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Errorf("uniform samples = %d, want exactly 10", len(res.Samples))
	}
	gap := res.Samples[1].At.Sub(res.Samples[0].At)
	if gap != 100*time.Millisecond {
		t.Errorf("uniform gap = %v", gap)
	}
}

func TestRunValidation(t *testing.T) {
	p := pop(t, 10)
	target := TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		return 0, false, nil
	})
	if _, err := Run(Config{RPS: 0, Duration: time.Second}, p, target); err == nil {
		t.Error("RPS 0 should fail")
	}
	if _, err := Run(Config{RPS: 1, Duration: 0}, p, target); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestRunCountsTransportErrors(t *testing.T) {
	p := pop(t, 10)
	var i int
	target := TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		i++
		if i%2 == 0 {
			return 0, false, errors.New("boom")
		}
		return time.Millisecond, i%3 == 0, nil
	})
	res, err := Run(Config{RPS: 100, Duration: time.Second, Start: tBase, Uniform: true}, p, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 50 {
		t.Errorf("Errors = %d, want 50", res.Errors)
	}
	if len(res.Samples) != 50 {
		t.Errorf("Samples = %d, want 50", len(res.Samples))
	}
	if res.FailureRate() == 0 {
		t.Error("expected some application failures")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Samples: []Sample{
		{Latency: 10 * time.Millisecond},
		{Latency: 20 * time.Millisecond, Failed: true},
	}}
	ls := r.Latencies()
	if len(ls) != 2 || ls[0] != 10 || ls[1] != 20 {
		t.Errorf("Latencies = %v", ls)
	}
	if r.FailureRate() != 0.5 {
		t.Errorf("FailureRate = %v", r.FailureRate())
	}
	empty := &Result{}
	if empty.FailureRate() != 0 {
		t.Error("empty FailureRate should be 0")
	}
}

// TestRunRecordsClientTelemetry: with a Store configured, the generator
// flushes one client-latency observation per completed request in
// batches, under the default metric and scope.
func TestRunRecordsClientTelemetry(t *testing.T) {
	p := pop(t, 50)
	store := metrics.NewStore(0)
	target := TargetFunc(func(req *router.Request, at time.Time) (time.Duration, bool, error) {
		return 7 * time.Millisecond, false, nil
	})
	res, err := Run(Config{
		RPS: 500, Duration: time.Second, Start: tBase, Uniform: true,
		Store: store,
	}, p, target)
	if err != nil {
		t.Fatal(err)
	}
	scope := metrics.Scope{Service: "loadgen", Version: "client"}
	count, err := store.Query("client_latency", scope, time.Time{}, metrics.AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if int(count) != len(res.Samples) {
		t.Errorf("recorded %v observations, want %d", count, len(res.Samples))
	}
	if mean, err := store.Query("client_latency", scope, time.Time{}, metrics.AggMean); err != nil || mean != 7 {
		t.Errorf("mean = %v, %v; want 7", mean, err)
	}
	// A custom metric and scope are honored.
	store2 := metrics.NewStore(0)
	custom := metrics.Scope{Service: "edge", Version: "lb-1"}
	if _, err := Run(Config{
		RPS: 100, Duration: 100 * time.Millisecond, Start: tBase, Uniform: true,
		Store: store2, Metric: "e2e_latency", MetricScope: custom,
	}, p, target); err != nil {
		t.Fatal(err)
	}
	if got, err := store2.Query("e2e_latency", custom, time.Time{}, metrics.AggCount); err != nil || got == 0 {
		t.Errorf("custom scope count = %v, %v", got, err)
	}
}
