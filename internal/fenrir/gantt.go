package fenrir

import (
	"fmt"
	"strings"
)

// Gantt renders a schedule as an ASCII chart: one row per experiment,
// one column per `slotsPerCol` slots, bar height encoding the traffic
// share. It is the textual counterpart of the schedule visualizations
// release engineers use to sanity-check Fenrir's output.
//
//	exp-01  |      ▃▃▃▃▃▃▃▃                                |  canary 12%
//	exp-02  |            ██████                            |  ab-test 28%
func (p *Problem) Gantt(s *Schedule, width int) string {
	horizon := p.Profile.NumSlots()
	if width <= 0 {
		width = 72
	}
	if width > horizon {
		width = horizon
	}
	slotsPerCol := float64(horizon) / float64(width)

	var b strings.Builder
	// Time axis: day marks.
	fmt.Fprintf(&b, "%-8s |", "day")
	for col := 0; col < width; col++ {
		slot := int(float64(col) * slotsPerCol)
		if slot%24 < int(slotsPerCol) {
			day := slot/24 + 1
			b.WriteByte('0' + byte(day%10))
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteString("|\n")

	for i := range p.Experiments {
		e := &p.Experiments[i]
		g := s.Genes[i]
		fmt.Fprintf(&b, "%-8s |", e.ID)
		for col := 0; col < width; col++ {
			lo := int(float64(col) * slotsPerCol)
			hi := int(float64(col+1) * slotsPerCol)
			if hi <= lo {
				hi = lo + 1
			}
			active := g.Start < hi && g.End() > lo
			if !active {
				b.WriteByte(' ')
				continue
			}
			b.WriteRune(shareGlyph(g.Share))
		}
		fmt.Fprintf(&b, "|  %s %.0f%%\n", e.Practice, g.Share*100)
	}
	return b.String()
}

// shareGlyph maps a traffic share to a bar glyph.
func shareGlyph(share float64) rune {
	switch {
	case share >= 0.3:
		return '█'
	case share >= 0.2:
		return '▆'
	case share >= 0.1:
		return '▄'
	default:
		return '▂'
	}
}

// UtilizationProfile returns the per-slot total allocated share of a
// schedule, for plotting against the capacity ceiling.
func (p *Problem) UtilizationProfile(s *Schedule) []float64 {
	out := make([]float64, p.Profile.NumSlots())
	for i := range s.Genes {
		g := s.Genes[i]
		for t := g.Start; t < g.End() && t < len(out); t++ {
			if t >= 0 {
				out[t] += g.Share
			}
		}
	}
	return out
}

// PeakUtilization returns the maximum per-slot allocation and its slot.
func (p *Problem) PeakUtilization(s *Schedule) (float64, int) {
	var peak float64
	var at int
	for t, u := range p.UtilizationProfile(s) {
		if u > peak {
			peak, at = u, t
		}
	}
	return peak, at
}
