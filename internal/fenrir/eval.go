package fenrir

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"contexp/internal/stats"
	"contexp/internal/traffic"
)

// This file is the Chapter 3 evaluation harness: it regenerates the
// data behind Fig 3.3 (traffic profile and consumption), Fig 3.4 and
// Table 3.2 (fitness for 15 experiments), Fig 3.5 and Table 3.3
// (scaling the number of experiments), and Fig 3.6 (reevaluation).
// Budgets are scaled so a full run takes seconds instead of the paper's
// cloud-hours; the comparison unit (fitness evaluations) is identical
// across algorithms, which preserves the relative results.

// EvalConfig controls the harness.
type EvalConfig struct {
	// Budget is the number of fitness evaluations per optimizer run.
	Budget int
	// Runs is the number of independent seeds per configuration.
	Runs int
	// Days is the traffic-profile length.
	Days int
	// Seed bases all scenario generation.
	Seed int64
}

// DefaultEvalConfig runs in a few seconds on a laptop.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{Budget: 3000, Runs: 5, Days: 14, Seed: 1}
}

// evalProfile builds the evaluation traffic profile.
func evalProfile(cfg EvalConfig) (*traffic.Profile, error) {
	pc := traffic.DefaultGeneratorConfig()
	pc.Seed = cfg.Seed
	return traffic.Generate(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), cfg.Days, pc)
}

// evalProblem builds a scheduling problem with n experiments of a class.
func evalProblem(cfg EvalConfig, n int, class SampleSizeClass, seedOffset int64) (*Problem, error) {
	profile, err := evalProfile(cfg)
	if err != nil {
		return nil, err
	}
	exps, err := GenerateExperiments(GeneratorConfig{
		N: n, Class: class, Seed: cfg.Seed + seedOffset, Horizon: profile.NumSlots(),
	})
	if err != nil {
		return nil, err
	}
	p := &Problem{Experiments: exps, Profile: profile, Capacity: 0.8}
	return p, p.Validate()
}

// evalOptimizers returns the four algorithms of Section 3.5.
func evalOptimizers() []Optimizer {
	return []Optimizer{
		&GeneticAlgorithm{},
		RandomSampling{},
		LocalSearch{},
		SimulatedAnnealing{},
	}
}

// AlgorithmResult aggregates one algorithm's runs on one configuration.
type AlgorithmResult struct {
	Algorithm string
	// FitnessFrac holds best-fitness / max-fitness per run.
	FitnessFrac []float64
	// Elapsed holds wall time per run.
	Elapsed []time.Duration
}

// Summary of the fitness fractions.
func (r *AlgorithmResult) Summary() stats.Summary { return stats.Summarize(r.FitnessFrac) }

// MeanElapsed returns the average wall time.
func (r *AlgorithmResult) MeanElapsed() time.Duration {
	if len(r.Elapsed) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.Elapsed {
		sum += d
	}
	return sum / time.Duration(len(r.Elapsed))
}

func runAlgorithms(p *Problem, cfg EvalConfig, initial *Schedule) ([]AlgorithmResult, error) {
	maxF := p.MaxFitness()
	out := make([]AlgorithmResult, 0, 4)
	for _, opt := range evalOptimizers() {
		res := AlgorithmResult{Algorithm: opt.Name()}
		for run := 0; run < cfg.Runs; run++ {
			s, st := opt.Optimize(p, cfg.Budget, cfg.Seed+int64(run)*101, initial)
			frac := 0.0
			if p.Valid(s) {
				frac = st.BestFitness / maxF
			}
			res.FitnessFrac = append(res.FitnessFrac, frac)
			res.Elapsed = append(res.Elapsed, st.Elapsed)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure3_3 reproduces the example traffic profile and its consumption
// under a GA-optimized schedule of 15 experiments.
type Figure3_3 struct {
	Profile     *traffic.Profile
	Consumption []float64 // share consumed per slot under the schedule
	Schedule    string    // formatted schedule table
	Valid       bool
}

// EvalFigure3_3 runs the Fig 3.3 scenario.
func EvalFigure3_3(cfg EvalConfig) (*Figure3_3, error) {
	p, err := evalProblem(cfg, 15, SamplesMedium, 0)
	if err != nil {
		return nil, err
	}
	ga := &GeneticAlgorithm{}
	s, _ := ga.Optimize(p, cfg.Budget, cfg.Seed, nil)
	consumption := make([]float64, p.Profile.NumSlots())
	for i := range s.Genes {
		g := s.Genes[i]
		for t := g.Start; t < g.End() && t < len(consumption); t++ {
			consumption[t] += g.Share
		}
	}
	return &Figure3_3{
		Profile:     p.Profile,
		Consumption: consumption,
		Schedule:    p.FormatSchedule(s),
		Valid:       p.Valid(s),
	}, nil
}

// Render formats the figure as text (profile and consumption sparklines).
func (f *Figure3_3) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3.3 — traffic profile and consumption (14 days, hourly)\n")
	b.WriteString("profile:     " + f.Profile.Sparkline(112) + "\n")
	cons := &traffic.Profile{Slots: f.Consumption}
	b.WriteString("consumption: " + cons.Sparkline(112) + "\n\n")
	b.WriteString(f.Schedule)
	return b.String()
}

// Figure3_4 holds the per-algorithm fitness distributions for scheduling
// 15 experiments (Fig 3.4) and their basic statistics (Table 3.2).
type Figure3_4 struct {
	Results []AlgorithmResult
}

// EvalFigure3_4 runs the Fig 3.4 / Table 3.2 scenario.
func EvalFigure3_4(cfg EvalConfig) (*Figure3_4, error) {
	p, err := evalProblem(cfg, 15, SamplesMedium, 0)
	if err != nil {
		return nil, err
	}
	results, err := runAlgorithms(p, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Figure3_4{Results: results}, nil
}

// Render formats figure and table.
func (f *Figure3_4) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3.4 / Table 3.2 — fitness for 15 experiments (fraction of max)\n")
	fmt.Fprintf(&b, "%-14s %6s %6s %6s %6s %6s\n", "algorithm", "mean", "sd", "min", "med", "max")
	for _, r := range f.Results {
		s := r.Summary()
		fmt.Fprintf(&b, "%-14s %6.3f %6.3f %6.3f %6.3f %6.3f\n",
			r.Algorithm, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
	}
	return b.String()
}

// Best returns the algorithm with the highest mean fitness fraction.
func (f *Figure3_4) Best() string {
	best, bestMean := "", -1.0
	for _, r := range f.Results {
		if m := stats.Mean(r.FitnessFrac); m > bestMean {
			best, bestMean = r.Algorithm, m
		}
	}
	return best
}

// Figure3_5Cell is one (n, class) configuration of the scaling study.
type Figure3_5Cell struct {
	N       int
	Class   SampleSizeClass
	Results []AlgorithmResult
}

// Figure3_5 is the scaling study: fitness (Fig 3.5) and execution time
// (Table 3.3) across the number of experiments and sample-size classes.
type Figure3_5 struct {
	Cells []Figure3_5Cell
}

// EvalFigure3_5 runs the scaling study. ns defaults to {10, 20, 30, 40}.
func EvalFigure3_5(cfg EvalConfig, ns []int) (*Figure3_5, error) {
	if len(ns) == 0 {
		ns = []int{10, 20, 30, 40}
	}
	classes := []SampleSizeClass{SamplesLow, SamplesMedium, SamplesHigh}
	fig := &Figure3_5{}
	for _, n := range ns {
		for _, class := range classes {
			p, err := evalProblem(cfg, n, class, int64(n)*10+int64(class))
			if err != nil {
				return nil, err
			}
			results, err := runAlgorithms(p, cfg, nil)
			if err != nil {
				return nil, err
			}
			fig.Cells = append(fig.Cells, Figure3_5Cell{N: n, Class: class, Results: results})
		}
	}
	return fig, nil
}

// Render formats the fitness matrix.
func (f *Figure3_5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3.5 — mean fitness fraction by #experiments and sample-size class\n")
	fmt.Fprintf(&b, "%4s %-8s", "n", "class")
	if len(f.Cells) > 0 {
		for _, r := range f.Cells[0].Results {
			fmt.Fprintf(&b, " %12s", r.Algorithm)
		}
	}
	b.WriteString("\n")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%4d %-8s", c.N, c.Class)
		for _, r := range c.Results {
			fmt.Fprintf(&b, " %12.3f", stats.Mean(r.FitnessFrac))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable3_3 formats mean execution times per configuration.
func (f *Figure3_5) RenderTable3_3() string {
	var b strings.Builder
	b.WriteString("Table 3.3 — mean execution time per run\n")
	fmt.Fprintf(&b, "%4s %-8s", "n", "class")
	if len(f.Cells) > 0 {
		for _, r := range f.Cells[0].Results {
			fmt.Fprintf(&b, " %12s", r.Algorithm)
		}
	}
	b.WriteString("\n")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%4d %-8s", c.N, c.Class)
		for _, r := range c.Results {
			fmt.Fprintf(&b, " %12s", r.MeanElapsed().Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MeanFitness returns the mean fitness fraction of an algorithm in the
// cell for (n, class), or -1 when absent.
func (f *Figure3_5) MeanFitness(n int, class SampleSizeClass, algorithm string) float64 {
	for _, c := range f.Cells {
		if c.N != n || c.Class != class {
			continue
		}
		for _, r := range c.Results {
			if r.Algorithm == algorithm {
				return stats.Mean(r.FitnessFrac)
			}
		}
	}
	return -1
}

// Figure3_6 is the reevaluation study: an existing GA schedule is
// reevaluated mid-execution with canceled and newly added experiments,
// and each algorithm re-optimizes from the seed.
type Figure3_6 struct {
	Results []AlgorithmResult
	// Finished and Canceled record what the reevaluation point saw.
	Finished int
	Frozen   int
	Added    int
}

// EvalFigure3_6 runs the reevaluation scenario.
func EvalFigure3_6(cfg EvalConfig) (*Figure3_6, error) {
	p, err := evalProblem(cfg, 15, SamplesMedium, 0)
	if err != nil {
		return nil, err
	}
	ga := &GeneticAlgorithm{}
	s, _ := ga.Optimize(p, cfg.Budget, cfg.Seed, nil)

	// Reevaluate at the median experiment midpoint.
	mids := make([]int, len(s.Genes))
	for i, g := range s.Genes {
		mids[i] = g.Start + g.Duration/2
	}
	sort.Ints(mids)
	now := mids[len(mids)/2]
	if now >= p.Profile.NumSlots() {
		now = p.Profile.NumSlots() / 2
	}

	added, err := GenerateExperiments(GeneratorConfig{
		N: 5, Class: SamplesMedium, Seed: cfg.Seed + 999, Horizon: p.Profile.NumSlots(),
	})
	if err != nil {
		return nil, err
	}
	for i := range added {
		added[i].ID = fmt.Sprintf("added-%02d", i+1)
	}
	canceled := []string{p.Experiments[1].ID, p.Experiments[3].ID}

	res, err := Reevaluate(p, s, ReevalInput{Now: now, Canceled: canceled, Added: added})
	if err != nil {
		return nil, err
	}
	results, err := runAlgorithms(res.Problem, cfg, res.Seed)
	if err != nil {
		return nil, err
	}
	return &Figure3_6{
		Results:  results,
		Finished: len(res.Finished),
		Frozen:   FrozenCount(res.Seed),
		Added:    len(added),
	}, nil
}

// Render formats the reevaluation figure.
func (f *Figure3_6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.6 — fitness after reevaluation (%d finished, %d running/frozen, %d added)\n",
		f.Finished, f.Frozen, f.Added)
	fmt.Fprintf(&b, "%-14s %6s %6s %6s\n", "algorithm", "mean", "min", "max")
	for _, r := range f.Results {
		s := r.Summary()
		fmt.Fprintf(&b, "%-14s %6.3f %6.3f %6.3f\n", r.Algorithm, s.Mean, s.Min, s.Max)
	}
	return b.String()
}

// Table3_1 renders the generated experiment inputs (the reproduction of
// the paper's "input data for experiments" table).
func Table3_1(cfg EvalConfig) (string, error) {
	p, err := evalProblem(cfg, 15, SamplesMedium, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 3.1 — input data for experiments\n")
	fmt.Fprintf(&b, "%-8s %-16s %10s %5s %5s %7s %7s  %s\n",
		"ID", "practice", "samples", "dMin", "dMax", "shMin", "shMax", "groups")
	for _, e := range p.Experiments {
		groups := make([]string, len(e.CandidateGroups))
		for i, g := range e.CandidateGroups {
			groups[i] = string(g)
		}
		fmt.Fprintf(&b, "%-8s %-16s %10.0f %5d %5d %6.1f%% %6.1f%%  %s\n",
			e.ID, e.Practice, e.RequiredSamples, e.MinDuration, e.MaxDuration,
			e.MinShare*100, e.MaxShare*100, strings.Join(groups, ","))
	}
	return b.String(), nil
}
