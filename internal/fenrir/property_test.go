package fenrir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: any valid schedule's fitness lies in (0, MaxFitness].
func TestFitnessBoundsProperty(t *testing.T) {
	p := mediumProblem(t, 8, SamplesLow)
	maxF := p.MaxFitness()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := p.RandomSchedule(rng)
		fit := p.Fitness(s)
		if p.Valid(s) {
			return fit > 0 && fit <= maxF+1e-9
		}
		return fit < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Fitness and Check agree — zero violations iff positive
// fitness.
func TestFitnessCheckConsistencyProperty(t *testing.T) {
	p := mediumProblem(t, 6, SamplesMedium)
	f := func(seed int64, mutations uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := p.RandomSchedule(rng)
		// Random walk through mutation space, checking consistency at
		// every step.
		for i := 0; i < int(mutations%16); i++ {
			s = mutateSchedule(p, s, 0.3, rng)
			violations := len(p.Check(s))
			fit := p.Fitness(s)
			if (violations == 0) != (fit > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: constructive schedules never break per-experiment bounds
// even when the global constraints are unsatisfiable.
func TestConstructiveRespectsExperimentBoundsProperty(t *testing.T) {
	p := mediumProblem(t, 12, SamplesHigh)
	horizon := p.Profile.NumSlots()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := p.RandomSchedule(rng)
		for i := range p.Experiments {
			e := &p.Experiments[i]
			g := s.Genes[i]
			if g.Start < e.EarliestStart || g.End() > horizon {
				return false
			}
			if g.Duration < e.MinDuration || g.Duration > e.MaxDuration {
				return false
			}
			if g.GroupMask == 0 || g.GroupMask >= 1<<uint(len(e.CandidateGroups)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: crossover never mixes genes across experiment boundaries —
// every child gene equals the corresponding gene of one parent.
func TestCrossoverGeneIntegrityProperty(t *testing.T) {
	p := mediumProblem(t, 10, SamplesLow)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := p.RandomSchedule(rng)
		b := p.RandomSchedule(rng)
		child := crossover(a, b, rng)
		for i := range child.Genes {
			if child.Genes[i] != a.Genes[i] && child.Genes[i] != b.Genes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: generated experiments are always individually satisfiable
// against the calibration volume.
func TestGeneratorSatisfiabilityProperty(t *testing.T) {
	f := func(seed int64, nRaw, classRaw uint8) bool {
		n := 1 + int(nRaw%50)
		class := SampleSizeClass(1 + classRaw%3)
		exps, err := GenerateExperiments(GeneratorConfig{
			N: n, Class: class, Seed: seed, Horizon: 336,
		})
		if err != nil {
			return false
		}
		for _, e := range exps {
			if e.Validate(336) != nil {
				return false
			}
			// Collectible on the trough estimate used by the generator.
			if e.MaxShare*float64(e.MaxDuration)*0.4*50_000 < e.RequiredSamples {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
