// Package fenrir implements the paper's planning-phase contribution
// (Chapter 3): search-based scheduling of continuous experiments.
// Scheduling is formulated as an optimization problem over a traffic
// profile — every experiment must collect its required sample size,
// experiments touching the same user groups must not overlap, per-slot
// traffic allocation is capped to preserve a control population — and
// solved with a genetic algorithm that is compared against random
// sampling, local search, and simulated annealing.
package fenrir

import (
	"errors"
	"fmt"
	"math/rand"

	"contexp/internal/expmodel"
	"contexp/internal/traffic"
)

// Experiment is the planning-phase view of a continuous experiment: the
// input data of the scheduling problem (Table 3.1).
type Experiment struct {
	// ID uniquely identifies the experiment within a Problem.
	ID string
	// Practice classifies the experiment (canary, A/B test, ...).
	Practice expmodel.Practice
	// RequiredSamples is the number of data points (user requests) the
	// experiment must collect for statistically valid conclusions.
	RequiredSamples float64
	// MinDuration and MaxDuration bound the execution length in slots.
	MinDuration, MaxDuration int
	// EarliestStart is the first slot the experiment may start in.
	EarliestStart int
	// Deadline, when positive, is the slot by which the experiment must
	// have finished (exclusive end bound).
	Deadline int
	// MinShare and MaxShare bound the traffic share the experiment may
	// consume per slot.
	MinShare, MaxShare float64
	// CandidateGroups are the user groups the experiment may be run on.
	// At least one must be assigned; overlapping experiments must use
	// disjoint groups (users must not be part of two experiments).
	CandidateGroups []expmodel.UserGroup
	// PreferredGroups is the subset of CandidateGroups the experiment
	// would ideally cover; the coverage objective rewards assigning them.
	PreferredGroups []expmodel.UserGroup
	// Priority weighs the experiment in the fitness function.
	Priority float64
}

// Validate checks internal consistency of the experiment definition.
func (e *Experiment) Validate(horizon int) error {
	switch {
	case e.ID == "":
		return errors.New("fenrir: experiment without ID")
	case e.RequiredSamples <= 0:
		return fmt.Errorf("fenrir: %s: required samples must be positive", e.ID)
	case e.MinDuration <= 0 || e.MaxDuration < e.MinDuration:
		return fmt.Errorf("fenrir: %s: invalid duration bounds [%d,%d]", e.ID, e.MinDuration, e.MaxDuration)
	case e.EarliestStart < 0 || e.EarliestStart >= horizon:
		return fmt.Errorf("fenrir: %s: earliest start %d outside horizon %d", e.ID, e.EarliestStart, horizon)
	case e.Deadline != 0 && e.Deadline <= e.EarliestStart:
		return fmt.Errorf("fenrir: %s: deadline %d before earliest start %d", e.ID, e.Deadline, e.EarliestStart)
	case e.MinShare <= 0 || e.MaxShare < e.MinShare || e.MaxShare > 1:
		return fmt.Errorf("fenrir: %s: invalid share bounds [%v,%v]", e.ID, e.MinShare, e.MaxShare)
	case len(e.CandidateGroups) == 0:
		return fmt.Errorf("fenrir: %s: no candidate groups", e.ID)
	case len(e.CandidateGroups) > 63:
		return fmt.Errorf("fenrir: %s: more than 63 candidate groups", e.ID)
	case e.Priority <= 0:
		return fmt.Errorf("fenrir: %s: priority must be positive", e.ID)
	}
	for _, pg := range e.PreferredGroups {
		found := false
		for _, cg := range e.CandidateGroups {
			if cg == pg {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("fenrir: %s: preferred group %q not among candidates", e.ID, pg)
		}
	}
	return nil
}

// latestEnd returns the exclusive end bound of the experiment.
func (e *Experiment) latestEnd(horizon int) int {
	if e.Deadline > 0 && e.Deadline < horizon {
		return e.Deadline
	}
	return horizon
}

// groupsFromMask decodes a candidate-group bitmask.
func (e *Experiment) groupsFromMask(mask uint64) []expmodel.UserGroup {
	out := make([]expmodel.UserGroup, 0, len(e.CandidateGroups))
	for i, g := range e.CandidateGroups {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, g)
		}
	}
	return out
}

// Problem bundles everything the optimizers need: the experiments to
// schedule, the traffic profile, and the per-slot capacity ceiling that
// reserves a control population.
type Problem struct {
	Experiments []Experiment
	Profile     *traffic.Profile
	// Capacity is the maximum summed traffic share per slot (e.g. 0.8
	// keeps at least 20% of users out of all experiments).
	Capacity float64
	// Weights of the three fitness objectives; zero values default to
	// DefaultWeights.
	Weights Weights
}

// Weights balances the three objectives of Section 3.4.3.
type Weights struct {
	Duration float64 // shorter experiments score higher
	Start    float64 // earlier starts score higher
	Coverage float64 // covering preferred groups scores higher
}

// DefaultWeights mirrors the paper's equal treatment of the objectives.
func DefaultWeights() Weights {
	return Weights{Duration: 1, Start: 1, Coverage: 1}
}

// Validate checks the problem definition.
func (p *Problem) Validate() error {
	if p.Profile == nil || p.Profile.NumSlots() == 0 {
		return errors.New("fenrir: problem without traffic profile")
	}
	if p.Capacity <= 0 || p.Capacity > 1 {
		return fmt.Errorf("fenrir: capacity %v outside (0,1]", p.Capacity)
	}
	seen := make(map[string]bool, len(p.Experiments))
	for i := range p.Experiments {
		e := &p.Experiments[i]
		if err := e.Validate(p.Profile.NumSlots()); err != nil {
			return err
		}
		if seen[e.ID] {
			return fmt.Errorf("fenrir: duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	return nil
}

func (p *Problem) weights() Weights {
	w := p.Weights
	if w.Duration == 0 && w.Start == 0 && w.Coverage == 0 {
		return DefaultWeights()
	}
	return w
}

// SampleSizeClass buckets the evaluation's experiment generators
// (Section 3.6.1 distinguishes low, medium, and high required sample
// sizes).
type SampleSizeClass int

// Sample size classes of the evaluation scenarios.
const (
	SamplesLow SampleSizeClass = iota + 1
	SamplesMedium
	SamplesHigh
)

// String names the class.
func (c SampleSizeClass) String() string {
	switch c {
	case SamplesLow:
		return "low"
	case SamplesMedium:
		return "medium"
	case SamplesHigh:
		return "high"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// GeneratorConfig parameterizes GenerateExperiments.
type GeneratorConfig struct {
	N     int
	Class SampleSizeClass
	// GroupPool is the global list of user groups experiments draw
	// their candidate groups from.
	GroupPool []expmodel.UserGroup
	Seed      int64
	// Horizon (slots) bounds earliest-start randomization.
	Horizon int
	// SlotVolume is the expected experimentable traffic per slot the
	// generator calibrates against (default 50,000, matching
	// traffic.DefaultGeneratorConfig). Each generated experiment is
	// individually satisfiable: its share and duration bounds suffice
	// to collect its required samples on a conservative (trough-level)
	// estimate of the profile.
	SlotVolume float64
}

// DefaultGroupPool is the user-group universe of the evaluation
// scenarios: regions, device classes, and cohort segments. The pool is
// sized so that the group-exclusivity constraint is binding but does
// not render large scenarios infeasible.
func DefaultGroupPool() []expmodel.UserGroup {
	return []expmodel.UserGroup{
		"eu", "us", "apac", "latam", "mea",
		"mobile", "desktop", "tablet",
		"beta", "loyal", "trial", "power",
	}
}

// GenerateExperiments creates a reproducible synthetic experiment set in
// the style of the paper's evaluation input (Table 3.1): durations from
// hours to days, small traffic shares, and required sample sizes drawn
// from the chosen class.
func GenerateExperiments(cfg GeneratorConfig) ([]Experiment, error) {
	if cfg.N <= 0 {
		return nil, errors.New("fenrir: N must be positive")
	}
	if cfg.Horizon <= 24 {
		return nil, errors.New("fenrir: horizon must exceed one day of slots")
	}
	if len(cfg.GroupPool) == 0 {
		cfg.GroupPool = DefaultGroupPool()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Sample-size classes are calibrated against the default profile
	// (~50k experimentable requests per hour): high-class experiments
	// need tens of slots at substantial shares, which makes large
	// scenarios tight — but, unlike arbitrarily large demands, still
	// schedulable (the paper's 40-experiment/high scenario reaches 62%
	// of max fitness, i.e. valid schedules exist).
	var sampleLo, sampleHi float64
	switch cfg.Class {
	case SamplesLow:
		sampleLo, sampleHi = 10_000, 40_000
	case SamplesMedium:
		sampleLo, sampleHi = 40_000, 120_000
	case SamplesHigh:
		sampleLo, sampleHi = 100_000, 250_000
	default:
		return nil, fmt.Errorf("fenrir: unknown sample size class %v", cfg.Class)
	}

	practices := []expmodel.Practice{
		expmodel.PracticeCanary, expmodel.PracticeABTest,
		expmodel.PracticeDarkLaunch, expmodel.PracticeGradualRollout,
	}
	out := make([]Experiment, cfg.N)
	for i := range out {
		minDur := 2 + rng.Intn(6)            // 2-7 slots
		maxDur := minDur + 24 + rng.Intn(48) // roomy upper bounds
		nGroups := 1 + rng.Intn(2)           // 1-2 candidate groups
		perm := rng.Perm(len(cfg.GroupPool))
		candidates := make([]expmodel.UserGroup, nGroups)
		for j := 0; j < nGroups; j++ {
			candidates[j] = cfg.GroupPool[perm[j]]
		}
		nPref := rng.Intn(nGroups + 1) // 0 .. nGroups preferred
		if nPref > nGroups {
			nPref = nGroups
		}
		preferred := append([]expmodel.UserGroup(nil), candidates[:nPref]...)

		e := Experiment{
			ID:              fmt.Sprintf("exp-%02d", i+1),
			Practice:        practices[rng.Intn(len(practices))],
			RequiredSamples: sampleLo + rng.Float64()*(sampleHi-sampleLo),
			MinDuration:     minDur,
			MaxDuration:     maxDur,
			EarliestStart:   rng.Intn(cfg.Horizon / 4),
			MinShare:        0.01 + rng.Float64()*0.04, // 1-5%
			MaxShare:        0.15 + rng.Float64()*0.25, // 15-40%
			CandidateGroups: candidates,
			PreferredGroups: preferred,
			Priority:        1,
		}
		ensureSatisfiable(&e, cfg)
		out[i] = e
	}
	return out, nil
}

// ensureSatisfiable widens an experiment's duration (and, if still
// short, share) bounds until its required samples are collectible on a
// trough-level volume estimate: 40% of the nominal slot volume, which
// is below the default profile's weekend-night minimum. An experiment
// that cannot satisfy its own sample size renders the whole scheduling
// instance infeasible, which is never the intent of the evaluation
// scenarios.
func ensureSatisfiable(e *Experiment, cfg GeneratorConfig) {
	volume := cfg.SlotVolume
	if volume <= 0 {
		volume = 50_000
	}
	trough := 0.4 * volume
	maxStart := e.EarliestStart
	collectible := func() float64 {
		return e.MaxShare * float64(e.MaxDuration) * trough
	}
	// First extend the duration bound (cheapest relaxation).
	for collectible() < e.RequiredSamples && maxStart+e.MaxDuration < cfg.Horizon {
		e.MaxDuration++
	}
	// Then raise the share ceiling up to 60%.
	for collectible() < e.RequiredSamples && e.MaxShare < 0.6 {
		e.MaxShare += 0.05
	}
	// As a last resort clamp the demand itself.
	if c := collectible(); c < e.RequiredSamples {
		e.RequiredSamples = c * 0.95
	}
}
