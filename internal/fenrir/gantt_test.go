package fenrir

import (
	"strings"
	"testing"
)

func TestGantt(t *testing.T) {
	p := smallProblem()
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.25, GroupMask: 0b01},
		{Start: 20, Duration: 10, Share: 0.08, GroupMask: 0b10},
	}}
	out := p.Gantt(s, 48)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // axis + 2 experiments
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "▆") {
		t.Errorf("experiment a row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "▂") {
		t.Errorf("experiment b row should use the low-share glyph: %q", lines[2])
	}
	if !strings.Contains(lines[1], "canary") {
		t.Errorf("practice annotation missing: %q", lines[1])
	}
}

func TestGanttWidthClamp(t *testing.T) {
	p := smallProblem()
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.25, GroupMask: 0b01},
		{Start: 20, Duration: 10, Share: 0.08, GroupMask: 0b10},
	}}
	// Width wider than horizon clamps; zero width uses the default.
	if out := p.Gantt(s, 100000); out == "" {
		t.Error("oversized width produced empty chart")
	}
	if out := p.Gantt(s, 0); out == "" {
		t.Error("default width produced empty chart")
	}
}

func TestUtilizationProfileAndPeak(t *testing.T) {
	p := smallProblem()
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.3, GroupMask: 0b01},
		{Start: 5, Duration: 10, Share: 0.2, GroupMask: 0b10},
	}}
	util := p.UtilizationProfile(s)
	if util[0] != 0.3 || util[7] != 0.5 || util[12] != 0.2 || util[20] != 0 {
		t.Errorf("utilization = %v %v %v %v", util[0], util[7], util[12], util[20])
	}
	peak, at := p.PeakUtilization(s)
	if peak != 0.5 || at < 5 || at >= 10 {
		t.Errorf("peak = %v at %d", peak, at)
	}
}

func TestShareGlyphLevels(t *testing.T) {
	tests := []struct {
		share float64
		want  rune
	}{
		{0.35, '█'}, {0.25, '▆'}, {0.15, '▄'}, {0.05, '▂'},
	}
	for _, tt := range tests {
		if got := shareGlyph(tt.share); got != tt.want {
			t.Errorf("shareGlyph(%v) = %c, want %c", tt.share, got, tt.want)
		}
	}
}
