package fenrir

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Gene is one experiment's execution plan within a schedule: the value
// encoding of the chromosome representation (Fig 3.1). Index alignment
// with Problem.Experiments identifies the experiment.
type Gene struct {
	// Start is the first slot of execution.
	Start int
	// Duration is the execution length in slots (uninterrupted — the
	// non-interruption constraint is structural in this encoding).
	Duration int
	// Share is the traffic share consumed in every slot of execution.
	Share float64
	// GroupMask selects the assigned user groups as a bitmask over the
	// experiment's CandidateGroups.
	GroupMask uint64
	// Frozen marks genes of already-running experiments during
	// reevaluation: optimizers must not modify them.
	Frozen bool
}

// End returns the exclusive end slot.
func (g Gene) End() int { return g.Start + g.Duration }

// Schedule assigns a gene to every experiment of a problem.
type Schedule struct {
	Genes []Gene
}

// Clone deep-copies the schedule.
func (s *Schedule) Clone() *Schedule {
	genes := make([]Gene, len(s.Genes))
	copy(genes, s.Genes)
	return &Schedule{Genes: genes}
}

// Violation describes one broken constraint.
type Violation struct {
	ExperimentID string
	Reason       string
}

func (v Violation) String() string {
	if v.ExperimentID == "" {
		return v.Reason
	}
	return v.ExperimentID + ": " + v.Reason
}

// Check validates the schedule against all experiment-level and
// overarching constraints of Section 3.4.4 and returns every violation
// found (empty result means the schedule is valid).
func (p *Problem) Check(s *Schedule) []Violation {
	var out []Violation
	if len(s.Genes) != len(p.Experiments) {
		return []Violation{{Reason: fmt.Sprintf("gene count %d != experiment count %d", len(s.Genes), len(p.Experiments))}}
	}
	horizon := p.Profile.NumSlots()

	// Experiment constraints.
	for i := range p.Experiments {
		e := &p.Experiments[i]
		g := s.Genes[i]
		if g.Start < e.EarliestStart {
			out = append(out, Violation{e.ID, fmt.Sprintf("starts at %d before earliest %d", g.Start, e.EarliestStart)})
		}
		if g.Duration < e.MinDuration || g.Duration > e.MaxDuration {
			out = append(out, Violation{e.ID, fmt.Sprintf("duration %d outside [%d,%d]", g.Duration, e.MinDuration, e.MaxDuration)})
		}
		if g.End() > e.latestEnd(horizon) {
			out = append(out, Violation{e.ID, fmt.Sprintf("ends at %d after bound %d", g.End(), e.latestEnd(horizon))})
		}
		if g.Share < e.MinShare || g.Share > e.MaxShare {
			out = append(out, Violation{e.ID, fmt.Sprintf("share %.3f outside [%.3f,%.3f]", g.Share, e.MinShare, e.MaxShare)})
		}
		if g.GroupMask == 0 || g.GroupMask >= 1<<uint(len(e.CandidateGroups)) {
			out = append(out, Violation{e.ID, fmt.Sprintf("group mask %#x invalid for %d candidates", g.GroupMask, len(e.CandidateGroups))})
			continue
		}
		if collected := p.collected(e, g); collected < e.RequiredSamples {
			out = append(out, Violation{e.ID, fmt.Sprintf("collects %.0f of %.0f required samples", collected, e.RequiredSamples)})
		}
	}

	// Overarching constraint: per-slot capacity.
	usage := make([]float64, horizon)
	for i := range s.Genes {
		g := s.Genes[i]
		for t := g.Start; t < g.End() && t < horizon; t++ {
			if t >= 0 {
				usage[t] += g.Share
			}
		}
	}
	for t, u := range usage {
		if u > p.Capacity+1e-9 {
			out = append(out, Violation{"", fmt.Sprintf("slot %d allocates %.3f > capacity %.3f", t, u, p.Capacity)})
		}
	}

	// Overarching constraint: overlapping experiments must use disjoint
	// user groups (a user is in at most one experiment at a time).
	for i := 0; i < len(s.Genes); i++ {
		for j := i + 1; j < len(s.Genes); j++ {
			gi, gj := s.Genes[i], s.Genes[j]
			if gi.Start >= gj.End() || gj.Start >= gi.End() {
				continue // no time overlap
			}
			if p.groupsIntersect(i, gi.GroupMask, j, gj.GroupMask) {
				out = append(out, Violation{
					p.Experiments[i].ID,
					fmt.Sprintf("overlaps %s on shared user groups", p.Experiments[j].ID),
				})
			}
		}
	}
	return out
}

// Valid reports whether the schedule satisfies every constraint.
func (p *Problem) Valid(s *Schedule) bool { return len(p.Check(s)) == 0 }

// collected returns the samples experiment e gathers under gene g.
func (p *Problem) collected(e *Experiment, g Gene) float64 {
	return g.Share * p.Profile.Window(g.Start, g.Duration)
}

// groupsIntersect reports whether the assigned groups of experiments i
// and j (under the given masks) share a user group.
func (p *Problem) groupsIntersect(i int, maskI uint64, j int, maskJ uint64) bool {
	ei, ej := &p.Experiments[i], &p.Experiments[j]
	for bi, gi := range ei.CandidateGroups {
		if maskI&(1<<uint(bi)) == 0 {
			continue
		}
		for bj, gj := range ej.CandidateGroups {
			if maskJ&(1<<uint(bj)) == 0 {
				continue
			}
			if gi == gj {
				return true
			}
		}
	}
	return false
}

// Fitness scores a schedule per Section 3.4.3: the sum over experiments
// of priority-weighted duration, start-time, and coverage objectives.
// Invalid schedules score negative infinity–like penalties: the count of
// violations scaled below any valid score, which gives search a gradient
// toward validity.
func (p *Problem) Fitness(s *Schedule) float64 {
	violations := p.Check(s)
	if len(violations) > 0 {
		return -float64(len(violations))
	}
	w := p.weights()
	var total float64
	horizon := p.Profile.NumSlots()
	for i := range p.Experiments {
		e := &p.Experiments[i]
		g := s.Genes[i]
		total += e.Priority * (w.Duration*durationScore(e, g) +
			w.Start*startScore(e, g, horizon) +
			w.Coverage*coverageScore(e, g))
	}
	return total
}

// MaxFitness returns the theoretical upper bound of Fitness, used to
// report scores as a fraction of the maximum (as the paper does: "the GA
// reaches 62% of the maximal fitness score").
func (p *Problem) MaxFitness() float64 {
	w := p.weights()
	var total float64
	for i := range p.Experiments {
		total += p.Experiments[i].Priority * (w.Duration + w.Start + w.Coverage)
	}
	return total
}

func durationScore(e *Experiment, g Gene) float64 {
	if e.MaxDuration == e.MinDuration {
		return 1
	}
	return float64(e.MaxDuration-g.Duration) / float64(e.MaxDuration-e.MinDuration)
}

func startScore(e *Experiment, g Gene, horizon int) float64 {
	latest := e.latestEnd(horizon) - g.Duration
	if latest <= e.EarliestStart {
		return 1
	}
	return float64(latest-g.Start) / float64(latest-e.EarliestStart)
}

func coverageScore(e *Experiment, g Gene) float64 {
	if len(e.PreferredGroups) == 0 {
		return 1
	}
	assigned := e.groupsFromMask(g.GroupMask)
	var covered int
	for _, pg := range e.PreferredGroups {
		for _, ag := range assigned {
			if pg == ag {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(e.PreferredGroups))
}

// String renders the schedule as a compact table (the textual Gantt the
// scheduling example prints).
func (p *Problem) FormatSchedule(s *Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-16s %6s %5s %7s  %s\n", "ID", "practice", "start", "len", "share", "groups")
	for i := range p.Experiments {
		e := &p.Experiments[i]
		g := s.Genes[i]
		groups := e.groupsFromMask(g.GroupMask)
		names := make([]string, len(groups))
		for j, grp := range groups {
			names[j] = string(grp)
		}
		fmt.Fprintf(&b, "%-8s %-16s %6d %5d %6.1f%%  %s\n",
			e.ID, e.Practice, g.Start, g.Duration, g.Share*100, strings.Join(names, ","))
	}
	return b.String()
}

// RandomSchedule constructively generates a schedule: experiments are
// placed one by one (in random order) into feasible slots, shares, and
// groups, tracking slot usage and group occupancy so the result is
// usually valid. The constructive bias matters: with high required
// sample sizes, uniformly random genes are almost never valid.
func (p *Problem) RandomSchedule(rng *rand.Rand) *Schedule {
	return p.RandomScheduleFrom(rng, nil)
}

// RandomScheduleFrom is RandomSchedule with frozen genes carried over
// from seed: those genes are committed first (verbatim) and the
// remaining experiments are placed around them. Optimizers use it during
// reevaluation so already-running experiments are never moved.
func (p *Problem) RandomScheduleFrom(rng *rand.Rand, seed *Schedule) *Schedule {
	horizon := p.Profile.NumSlots()
	s := &Schedule{Genes: make([]Gene, len(p.Experiments))}
	usage := make([]float64, horizon)
	// groupBusy[group][slot] tracks occupancy.
	groupBusy := make(map[string][]bool)

	frozen := make([]bool, len(p.Experiments))
	if seed != nil && len(seed.Genes) == len(p.Experiments) {
		for i, g := range seed.Genes {
			if g.Frozen {
				frozen[i] = true
				s.Genes[i] = g
				commit(usage, groupBusy, &p.Experiments[i], g)
			}
		}
	}

	// First-fit decreasing: most demanding experiments are placed first
	// while capacity is plentiful. Half the time a random order is used
	// instead, which keeps GA populations diverse.
	order := rng.Perm(len(p.Experiments))
	if rng.Intn(2) == 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return p.Experiments[order[a]].RequiredSamples > p.Experiments[order[b]].RequiredSamples
		})
	}
	for _, idx := range order {
		if frozen[idx] {
			continue
		}
		e := &p.Experiments[idx]
		g, ok := p.placeExperiment(e, rng, usage, groupBusy)
		if !ok {
			// Leave an intentionally invalid gene; the fitness penalty
			// steers search away from this configuration.
			g = Gene{Start: e.EarliestStart, Duration: e.MinDuration, Share: e.MinShare, GroupMask: 1}
		}
		s.Genes[idx] = g
	}
	return s
}

// placeExperiment tries up to placementAttempts placements that satisfy
// all constraints given current usage, committing the first fit. The
// key to making tight instances schedulable is capacity thrift: the
// share is set to the minimum that still collects the required sample
// size (plus slight jitter), never to an arbitrary random value — the
// same first-fit-with-minimal-demand idea classic bin-packing uses.
const placementAttempts = 80

func (p *Problem) placeExperiment(e *Experiment, rng *rand.Rand, usage []float64, groupBusy map[string][]bool) (Gene, bool) {
	horizon := p.Profile.NumSlots()
	latestEnd := e.latestEnd(horizon)
	maxDur := e.MaxDuration
	if e.EarliestStart+e.MinDuration > latestEnd {
		return Gene{}, false
	}
	if e.EarliestStart+maxDur > latestEnd {
		maxDur = latestEnd - e.EarliestStart
	}
	for attempt := 0; attempt < placementAttempts; attempt++ {
		// Early attempts favor long durations (low per-slot demand);
		// later attempts explore the full range.
		var dur int
		if attempt < placementAttempts/3 {
			dur = maxDur - rng.Intn(maxDur-e.MinDuration+1)/3
		} else {
			dur = e.MinDuration + rng.Intn(maxDur-e.MinDuration+1)
		}
		start := e.EarliestStart
		if span := latestEnd - dur - e.EarliestStart; span > 0 {
			start += rng.Intn(span + 1)
		}
		window := p.Profile.Window(start, dur)
		if window <= 0 {
			continue
		}
		// Minimal share collecting the required samples, with headroom
		// so profile noise does not trip the constraint check.
		needed := e.RequiredSamples / window * (1 + 0.02 + 0.05*rng.Float64())
		share := needed
		if share < e.MinShare {
			share = e.MinShare
		}
		if share > e.MaxShare {
			continue // this window is too small; try another placement
		}

		mask := placementMask(e, rng, attempt)
		g := Gene{Start: start, Duration: dur, Share: share, GroupMask: mask}
		if p.collected(e, g) < e.RequiredSamples {
			continue
		}
		if !fits(usage, g, p.Capacity) {
			continue
		}
		if groupsOccupied(groupBusy, e, g) {
			continue
		}
		commit(usage, groupBusy, e, g)
		return g, true
	}
	return Gene{}, false
}

// placementMask picks assigned groups: preferred groups first (coverage
// objective), falling back to a random single group — the fewer groups
// an experiment holds, the fewer exclusivity conflicts it creates.
func placementMask(e *Experiment, rng *rand.Rand, attempt int) uint64 {
	if len(e.PreferredGroups) > 0 && attempt%2 == 0 {
		var mask uint64
		for bi, cg := range e.CandidateGroups {
			for _, pg := range e.PreferredGroups {
				if cg == pg {
					mask |= 1 << uint(bi)
				}
			}
		}
		if mask != 0 {
			return mask
		}
	}
	return 1 << uint(rng.Intn(len(e.CandidateGroups)))
}

func fits(usage []float64, g Gene, capacity float64) bool {
	for t := g.Start; t < g.End() && t < len(usage); t++ {
		if usage[t]+g.Share > capacity+1e-9 {
			return false
		}
	}
	return true
}

func groupsOccupied(groupBusy map[string][]bool, e *Experiment, g Gene) bool {
	for bi, cg := range e.CandidateGroups {
		if g.GroupMask&(1<<uint(bi)) == 0 {
			continue
		}
		busy := groupBusy[string(cg)]
		for t := g.Start; t < g.End() && t < len(busy); t++ {
			if busy[t] {
				return true
			}
		}
	}
	return false
}

func commit(usage []float64, groupBusy map[string][]bool, e *Experiment, g Gene) {
	for t := g.Start; t < g.End() && t < len(usage); t++ {
		usage[t] += g.Share
	}
	for bi, cg := range e.CandidateGroups {
		if g.GroupMask&(1<<uint(bi)) == 0 {
			continue
		}
		busy := groupBusy[string(cg)]
		if busy == nil {
			busy = make([]bool, len(usage))
			groupBusy[string(cg)] = busy
		}
		for t := g.Start; t < g.End() && t < len(busy); t++ {
			busy[t] = true
		}
	}
}
