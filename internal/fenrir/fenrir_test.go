package fenrir

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/traffic"
)

func flatProfile(slots int, volume float64) *traffic.Profile {
	vs := make([]float64, slots)
	for i := range vs {
		vs[i] = volume
	}
	return &traffic.Profile{
		Start:      time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC),
		SlotLength: time.Hour,
		Slots:      vs,
	}
}

// smallProblem: two experiments on a flat profile, generously satisfiable.
func smallProblem() *Problem {
	return &Problem{
		Profile:  flatProfile(96, 10000),
		Capacity: 0.8,
		Experiments: []Experiment{
			{
				ID: "a", Practice: expmodel.PracticeCanary, RequiredSamples: 5000,
				MinDuration: 2, MaxDuration: 24, EarliestStart: 0,
				MinShare: 0.05, MaxShare: 0.3,
				CandidateGroups: []expmodel.UserGroup{"eu", "us"},
				PreferredGroups: []expmodel.UserGroup{"eu"},
				Priority:        1,
			},
			{
				ID: "b", Practice: expmodel.PracticeABTest, RequiredSamples: 8000,
				MinDuration: 3, MaxDuration: 24, EarliestStart: 0,
				MinShare: 0.05, MaxShare: 0.3,
				CandidateGroups: []expmodel.UserGroup{"us", "apac"},
				Priority:        1,
			},
		},
	}
}

func TestExperimentValidate(t *testing.T) {
	base := smallProblem().Experiments[0]
	tests := []struct {
		name   string
		mutate func(*Experiment)
	}{
		{"empty id", func(e *Experiment) { e.ID = "" }},
		{"zero samples", func(e *Experiment) { e.RequiredSamples = 0 }},
		{"bad durations", func(e *Experiment) { e.MaxDuration = e.MinDuration - 1 }},
		{"negative start", func(e *Experiment) { e.EarliestStart = -1 }},
		{"start past horizon", func(e *Experiment) { e.EarliestStart = 10000 }},
		{"deadline before start", func(e *Experiment) { e.EarliestStart = 5; e.Deadline = 3 }},
		{"zero share", func(e *Experiment) { e.MinShare = 0 }},
		{"share above one", func(e *Experiment) { e.MaxShare = 1.5 }},
		{"no groups", func(e *Experiment) { e.CandidateGroups = nil }},
		{"preferred not candidate", func(e *Experiment) { e.PreferredGroups = []expmodel.UserGroup{"mars"} }},
		{"zero priority", func(e *Experiment) { e.Priority = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := base
			e.CandidateGroups = append([]expmodel.UserGroup(nil), base.CandidateGroups...)
			tt.mutate(&e)
			if err := e.Validate(96); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := base.Validate(96); err != nil {
		t.Errorf("valid experiment rejected: %v", err)
	}
}

func TestProblemValidate(t *testing.T) {
	p := smallProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Capacity = 0
	if err := p.Validate(); err == nil {
		t.Error("capacity 0 should fail")
	}
	p = smallProblem()
	p.Experiments[1].ID = "a"
	if err := p.Validate(); err == nil {
		t.Error("duplicate IDs should fail")
	}
	p = smallProblem()
	p.Profile = nil
	if err := p.Validate(); err == nil {
		t.Error("missing profile should fail")
	}
}

func TestCheckConstraints(t *testing.T) {
	p := smallProblem()
	valid := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b01}, // a on eu
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b11}, // b on us+apac
	}}
	if vs := p.Check(valid); len(vs) != 0 {
		t.Fatalf("valid schedule flagged: %v", vs)
	}

	tests := []struct {
		name    string
		genes   []Gene
		wantSub string
	}{
		{"early start", []Gene{
			{Start: -1, Duration: 10, Share: 0.1, GroupMask: 1},
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "before earliest"},
		{"short duration", []Gene{
			{Start: 0, Duration: 1, Share: 0.1, GroupMask: 1},
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "duration"},
		{"past horizon", []Gene{
			{Start: 90, Duration: 10, Share: 0.3, GroupMask: 1},
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "after bound"},
		{"share bounds", []Gene{
			{Start: 0, Duration: 10, Share: 0.9, GroupMask: 1},
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "share"},
		{"zero mask", []Gene{
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0},
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "group mask"},
		{"insufficient samples", []Gene{
			{Start: 0, Duration: 2, Share: 0.05, GroupMask: 1}, // 2*10000*0.05 = 1000 < 5000
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
		}, "required samples"},
		{"group overlap", []Gene{
			{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10}, // a on us
			{Start: 5, Duration: 10, Share: 0.1, GroupMask: 0b01}, // b on us
		}, "shared user groups"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vs := p.Check(&Schedule{Genes: tt.genes})
			if len(vs) == 0 {
				t.Fatal("expected violation")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.String(), tt.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v missing %q", vs, tt.wantSub)
			}
		})
	}
}

func TestCheckCapacity(t *testing.T) {
	p := smallProblem()
	p.Capacity = 0.15
	// Two experiments at 0.1 each in the same slots exceed 0.15 (groups disjoint).
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b01},
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
	}}
	vs := p.Check(s)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "capacity") {
			found = true
		}
	}
	if !found {
		t.Errorf("capacity violation not reported: %v", vs)
	}
}

func TestCheckNonOverlappingSharedGroupsOK(t *testing.T) {
	p := smallProblem()
	// Both touch "us" but at disjoint times: fine.
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 5, Share: 0.1, GroupMask: 0b10},
		{Start: 5, Duration: 10, Share: 0.1, GroupMask: 0b01},
	}}
	if vs := p.Check(s); len(vs) != 0 {
		t.Errorf("sequential shared-group schedule flagged: %v", vs)
	}
}

func TestFitness(t *testing.T) {
	p := smallProblem()
	good := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 2, Share: 0.25, GroupMask: 0b01}, // 2*10000*0.25=5000 exactly
		{Start: 0, Duration: 3, Share: 0.3, GroupMask: 0b11},  // 9000 >= 8000
	}}
	f := p.Fitness(good)
	if f <= 0 {
		t.Fatalf("fitness = %v for valid schedule (violations: %v)", f, p.Check(good))
	}
	if max := p.MaxFitness(); f > max {
		t.Errorf("fitness %v exceeds max %v", f, max)
	}
	// Shortest duration + earliest start + full coverage should be near max.
	if f < 0.95*p.MaxFitness() {
		t.Errorf("near-ideal schedule scores only %v of %v", f, p.MaxFitness())
	}

	// A longer, later schedule scores lower.
	worse := &Schedule{Genes: []Gene{
		{Start: 40, Duration: 20, Share: 0.25, GroupMask: 0b10}, // a on us (not preferred)
		{Start: 40, Duration: 20, Share: 0.3, GroupMask: 0b10},  // b on apac
	}}
	if vs := p.Check(worse); len(vs) != 0 {
		t.Fatalf("worse schedule unexpectedly invalid: %v", vs)
	}
	if p.Fitness(worse) >= f {
		t.Errorf("worse schedule scored %v >= %v", p.Fitness(worse), f)
	}
}

func TestFitnessInvalidNegative(t *testing.T) {
	p := smallProblem()
	invalid := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 1, Share: 0.01, GroupMask: 1},
		{Start: 0, Duration: 1, Share: 0.01, GroupMask: 1},
	}}
	if f := p.Fitness(invalid); f >= 0 {
		t.Errorf("invalid schedule fitness = %v, want negative", f)
	}
	// More violations -> more negative.
	lessInvalid := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b01},
		{Start: 0, Duration: 1, Share: 0.01, GroupMask: 0b10},
	}}
	if p.Fitness(lessInvalid) <= p.Fitness(invalid) {
		t.Error("fitness should order schedules by violation count")
	}
}

func TestRandomScheduleMostlyValid(t *testing.T) {
	p := smallProblem()
	rng := rand.New(rand.NewSource(1))
	valid := 0
	const n = 100
	for i := 0; i < n; i++ {
		if p.Valid(p.RandomSchedule(rng)) {
			valid++
		}
	}
	if valid < n*8/10 {
		t.Errorf("only %d/%d constructive schedules valid", valid, n)
	}
}

func TestGenerateExperiments(t *testing.T) {
	for _, class := range []SampleSizeClass{SamplesLow, SamplesMedium, SamplesHigh} {
		exps, err := GenerateExperiments(GeneratorConfig{N: 15, Class: class, Seed: 1, Horizon: 336})
		if err != nil {
			t.Fatal(err)
		}
		if len(exps) != 15 {
			t.Fatalf("got %d experiments", len(exps))
		}
		for _, e := range exps {
			if err := e.Validate(336); err != nil {
				t.Errorf("generated experiment invalid: %v", err)
			}
		}
	}
	if _, err := GenerateExperiments(GeneratorConfig{N: 0, Class: SamplesLow, Horizon: 336}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := GenerateExperiments(GeneratorConfig{N: 5, Class: 0, Horizon: 336}); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := GenerateExperiments(GeneratorConfig{N: 5, Class: SamplesLow, Horizon: 10}); err == nil {
		t.Error("tiny horizon should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := GenerateExperiments(GeneratorConfig{N: 10, Class: SamplesMedium, Seed: 7, Horizon: 336})
	b, _ := GenerateExperiments(GeneratorConfig{N: 10, Class: SamplesMedium, Seed: 7, Horizon: 336})
	for i := range a {
		if a[i].RequiredSamples != b[i].RequiredSamples || a[i].MinDuration != b[i].MinDuration {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestSampleSizeClassString(t *testing.T) {
	if SamplesLow.String() != "low" || SamplesHigh.String() != "high" || SamplesMedium.String() != "medium" {
		t.Error("bad class names")
	}
	if SampleSizeClass(9).String() == "" {
		t.Error("unknown class should stringify")
	}
}

func TestFormatSchedule(t *testing.T) {
	p := smallProblem()
	s := &Schedule{Genes: []Gene{
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b01},
		{Start: 0, Duration: 10, Share: 0.1, GroupMask: 0b10},
	}}
	out := p.FormatSchedule(s)
	if !strings.Contains(out, "exp") && !strings.Contains(out, "a") {
		t.Errorf("FormatSchedule output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "canary") {
		t.Errorf("practice missing from output:\n%s", out)
	}
}

func TestScheduleClone(t *testing.T) {
	s := &Schedule{Genes: []Gene{{Start: 1}}}
	c := s.Clone()
	c.Genes[0].Start = 99
	if s.Genes[0].Start != 1 {
		t.Error("Clone aliases genes")
	}
}

func TestMaxFitnessScalesWithWeights(t *testing.T) {
	p := smallProblem()
	base := p.MaxFitness()
	p.Weights = Weights{Duration: 2, Start: 2, Coverage: 2}
	if got := p.MaxFitness(); math.Abs(got-2*base) > 1e-9 {
		t.Errorf("MaxFitness with doubled weights = %v, want %v", got, 2*base)
	}
}
