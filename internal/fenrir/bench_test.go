package fenrir

import (
	"math/rand"
	"testing"
)

func BenchmarkFitness(b *testing.B) {
	for _, n := range []int{10, 40} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			p := mediumProblem(b, n, SamplesMedium)
			rng := rand.New(rand.NewSource(1))
			s := p.RandomSchedule(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Fitness(s)
			}
		})
	}
}

func BenchmarkRandomSchedule(b *testing.B) {
	p := mediumProblem(b, 20, SamplesMedium)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RandomSchedule(rng)
	}
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
