package fenrir

import (
	"fmt"
)

// Reevaluation models Section 3.6.4: experiments are uncertain — they
// finish, get canceled, and new ones arrive — so an existing schedule is
// periodically reevaluated at a point in (schedule) time. Finished
// experiments leave the problem, canceled ones free their resources,
// running ones are frozen in place, pending ones become re-optimizable
// with their earliest start clamped to now, and newly arrived
// experiments join the problem.

// ReevalInput describes a reevaluation request.
type ReevalInput struct {
	// Now is the current slot: everything before it already happened.
	Now int
	// Canceled lists experiment IDs withdrawn before completion.
	Canceled []string
	// Added are new experiments to schedule alongside the survivors.
	Added []Experiment
}

// ReevalResult is the reduced problem plus its seed schedule.
type ReevalResult struct {
	Problem *Problem
	// Seed carries the surviving genes (frozen for running experiments)
	// and constructive placements for added ones; optimizers use it as
	// the warm start the paper's reevaluation scenario benefits from.
	Seed *Schedule
	// Finished lists experiments that completed before Now.
	Finished []string
	// Dropped lists canceled experiment IDs that were actually present.
	Dropped []string
}

// Reevaluate builds the follow-up scheduling problem from an existing
// schedule at slot `now`.
func Reevaluate(p *Problem, s *Schedule, in ReevalInput) (*ReevalResult, error) {
	if len(s.Genes) != len(p.Experiments) {
		return nil, fmt.Errorf("fenrir: schedule has %d genes for %d experiments", len(s.Genes), len(p.Experiments))
	}
	horizon := p.Profile.NumSlots()
	if in.Now < 0 || in.Now >= horizon {
		return nil, fmt.Errorf("fenrir: reevaluation slot %d outside horizon %d", in.Now, horizon)
	}
	canceled := make(map[string]bool, len(in.Canceled))
	for _, id := range in.Canceled {
		canceled[id] = true
	}

	res := &ReevalResult{}
	next := &Problem{Profile: p.Profile, Capacity: p.Capacity, Weights: p.Weights}
	var seedGenes []Gene

	for i := range p.Experiments {
		e := p.Experiments[i]
		g := s.Genes[i]
		switch {
		case canceled[e.ID]:
			res.Dropped = append(res.Dropped, e.ID)
		case g.End() <= in.Now:
			res.Finished = append(res.Finished, e.ID)
		case g.Start <= in.Now:
			// Running: keep as-is and freeze; optimizers must not move
			// an experiment that is already exposed to users (restarting
			// would skew its collected data).
			g.Frozen = true
			next.Experiments = append(next.Experiments, e)
			seedGenes = append(seedGenes, g)
		default:
			// Pending: re-optimizable, but it cannot start in the past.
			if e.EarliestStart < in.Now {
				e.EarliestStart = in.Now
			}
			if g.Start < e.EarliestStart {
				g.Start = e.EarliestStart
				if g.End() > e.latestEnd(horizon) {
					g.Duration = e.latestEnd(horizon) - g.Start
					if g.Duration < e.MinDuration {
						g.Duration = e.MinDuration
					}
				}
			}
			next.Experiments = append(next.Experiments, e)
			seedGenes = append(seedGenes, g)
		}
	}

	for _, e := range in.Added {
		if e.EarliestStart < in.Now {
			e.EarliestStart = in.Now
		}
		next.Experiments = append(next.Experiments, e)
		// Neutral placeholder gene; ValidateSeed below re-places it.
		seedGenes = append(seedGenes, Gene{
			Start:    e.EarliestStart,
			Duration: e.MinDuration,
			Share:    e.MinShare,
			// All candidate groups assigned maximizes the chance the
			// sample-size constraint is satisfiable before optimization.
			GroupMask: (uint64(1) << uint(len(e.CandidateGroups))) - 1,
		})
	}

	if err := next.Validate(); err != nil {
		return nil, err
	}
	res.Problem = next
	res.Seed = &Schedule{Genes: seedGenes}
	return res, nil
}

// FrozenCount returns the number of frozen genes in a schedule.
func FrozenCount(s *Schedule) int {
	var n int
	for _, g := range s.Genes {
		if g.Frozen {
			n++
		}
	}
	return n
}
