package fenrir

import (
	"strings"
	"testing"
)

// fastEval keeps harness tests quick.
func fastEval() EvalConfig {
	return EvalConfig{Budget: 600, Runs: 2, Days: 14, Seed: 1}
}

func TestEvalFigure3_3(t *testing.T) {
	fig, err := EvalFigure3_3(fastEval())
	if err != nil {
		t.Fatal(err)
	}
	if !fig.Valid {
		t.Error("figure 3.3 schedule should be valid")
	}
	if len(fig.Consumption) != fig.Profile.NumSlots() {
		t.Error("consumption length mismatch")
	}
	var any bool
	for _, c := range fig.Consumption {
		if c < 0 || c > 0.8+1e-9 {
			t.Fatalf("consumption %v outside [0, capacity]", c)
		}
		if c > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no traffic consumed at all")
	}
	out := fig.Render()
	for _, want := range []string{"profile:", "consumption:", "exp-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestEvalFigure3_4(t *testing.T) {
	fig, err := EvalFigure3_4(fastEval())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Results) != 4 {
		t.Fatalf("results = %d algorithms", len(fig.Results))
	}
	for _, r := range fig.Results {
		if len(r.FitnessFrac) != 2 {
			t.Errorf("%s: %d runs", r.Algorithm, len(r.FitnessFrac))
		}
		for _, f := range r.FitnessFrac {
			if f < 0 || f > 1 {
				t.Errorf("%s fitness fraction %v outside [0,1]", r.Algorithm, f)
			}
		}
	}
	out := fig.Render()
	if !strings.Contains(out, "GA") || !strings.Contains(out, "Random") {
		t.Errorf("render missing algorithms:\n%s", out)
	}
	if fig.Best() == "" {
		t.Error("Best() empty")
	}
}

func TestEvalFigure3_5SmallGrid(t *testing.T) {
	fig, err := EvalFigure3_5(fastEval(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != 3 { // one n × three classes
		t.Fatalf("cells = %d", len(fig.Cells))
	}
	if got := fig.MeanFitness(10, SamplesLow, "GA"); got < 0 {
		t.Error("MeanFitness lookup failed")
	}
	if got := fig.MeanFitness(99, SamplesLow, "GA"); got != -1 {
		t.Error("missing cell should return -1")
	}
	out := fig.Render()
	if !strings.Contains(out, "low") || !strings.Contains(out, "high") {
		t.Errorf("render missing classes:\n%s", out)
	}
	tbl := fig.RenderTable3_3()
	if !strings.Contains(tbl, "execution time") {
		t.Errorf("table render:\n%s", tbl)
	}
}

func TestEvalFigure3_6(t *testing.T) {
	fig, err := EvalFigure3_6(fastEval())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Results) != 4 {
		t.Fatalf("results = %d", len(fig.Results))
	}
	if fig.Added != 5 {
		t.Errorf("Added = %d", fig.Added)
	}
	if fig.Frozen == 0 {
		t.Error("expected at least one frozen (running) experiment at reevaluation")
	}
	if !strings.Contains(fig.Render(), "reevaluation") {
		t.Error("render missing title")
	}
}

func TestTable3_1(t *testing.T) {
	out, err := Table3_1(fastEval())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exp-15") {
		t.Errorf("table missing experiments:\n%s", out)
	}
}
