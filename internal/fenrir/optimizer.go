package fenrir

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Optimizer searches for a schedule with maximal fitness under a fixed
// budget of fitness evaluations — the fairness unit the evaluation
// compares algorithms at (Section 3.6.1).
type Optimizer interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Optimize runs the search. initial, when non-nil, seeds the search
	// (used by schedule reevaluation); it must have one gene per
	// experiment. The returned schedule is the best found.
	Optimize(p *Problem, budget int, seed int64, initial *Schedule) (*Schedule, Stats)
}

// Stats reports how a search run went.
type Stats struct {
	Evaluations int
	Elapsed     time.Duration
	BestFitness float64
}

// mutateGene perturbs one field of a gene, staying within the
// experiment's own bounds (global constraints are the fitness
// function's business). Frozen genes are returned unchanged.
func mutateGene(p *Problem, e *Experiment, g Gene, rng *rand.Rand) Gene {
	if g.Frozen {
		return g
	}
	horizon := p.Profile.NumSlots()
	latestEnd := e.latestEnd(horizon)
	switch rng.Intn(4) {
	case 0: // shift start
		span := latestEnd - g.Duration - e.EarliestStart
		if span > 0 {
			delta := rng.Intn(2*span+1) - span
			g.Start += delta / 4 // local move
			if g.Start < e.EarliestStart {
				g.Start = e.EarliestStart
			}
			if g.Start+g.Duration > latestEnd {
				g.Start = latestEnd - g.Duration
			}
		}
	case 1: // resize duration
		delta := rng.Intn(7) - 3
		g.Duration += delta
		if g.Duration < e.MinDuration {
			g.Duration = e.MinDuration
		}
		if g.Duration > e.MaxDuration {
			g.Duration = e.MaxDuration
		}
		if g.Start+g.Duration > latestEnd {
			g.Duration = latestEnd - g.Start
			if g.Duration < e.MinDuration {
				g.Duration = e.MinDuration
				g.Start = latestEnd - g.Duration
				if g.Start < e.EarliestStart {
					g.Start = e.EarliestStart
				}
			}
		}
	case 2: // rescale share
		g.Share += (rng.Float64() - 0.5) * (e.MaxShare - e.MinShare) / 2
		if g.Share < e.MinShare {
			g.Share = e.MinShare
		}
		if g.Share > e.MaxShare {
			g.Share = e.MaxShare
		}
	default: // flip one group bit
		bit := uint64(1) << uint(rng.Intn(len(e.CandidateGroups)))
		g.GroupMask ^= bit
		if g.GroupMask == 0 {
			g.GroupMask = bit // never empty
		}
	}
	return g
}

// mutateSchedule mutates each gene with the given per-gene probability
// (at least one gene is always mutated).
func mutateSchedule(p *Problem, s *Schedule, prob float64, rng *rand.Rand) *Schedule {
	out := s.Clone()
	mutated := false
	for i := range out.Genes {
		if out.Genes[i].Frozen {
			continue
		}
		if rng.Float64() < prob {
			out.Genes[i] = mutateGene(p, &p.Experiments[i], out.Genes[i], rng)
			mutated = true
		}
	}
	if !mutated {
		// Force one mutation on a random non-frozen gene.
		free := make([]int, 0, len(out.Genes))
		for i := range out.Genes {
			if !out.Genes[i].Frozen {
				free = append(free, i)
			}
		}
		if len(free) > 0 {
			i := free[rng.Intn(len(free))]
			out.Genes[i] = mutateGene(p, &p.Experiments[i], out.Genes[i], rng)
		}
	}
	return out
}

// evaluator counts fitness evaluations against a budget.
type evaluator struct {
	p *Problem

	mu    sync.Mutex
	used  int
	limit int
}

func newEvaluator(p *Problem, budget int) *evaluator {
	return &evaluator{p: p, limit: budget}
}

// eval spends one evaluation; returns false when the budget is gone.
func (e *evaluator) eval(s *Schedule) (float64, bool) {
	e.mu.Lock()
	if e.used >= e.limit {
		e.mu.Unlock()
		return 0, false
	}
	e.used++
	e.mu.Unlock()
	return e.p.Fitness(s), true
}

func (e *evaluator) spent() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

func (e *evaluator) exhausted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used >= e.limit
}

// GeneticAlgorithm is Fenrir's optimizer: generational GA with
// tournament selection, one-point crossover at experiment boundaries
// (Fig 3.2), per-gene mutation, elitism, and parallel fitness
// evaluation across the population — the property that lets it finish
// well before the sequential algorithms at equal budgets (Table 3.3).
type GeneticAlgorithm struct {
	// PopulationSize defaults to 40.
	PopulationSize int
	// CrossoverRate defaults to 0.9.
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability. Zero selects
	// the adaptive default of ≈1.5 mutated genes per offspring, which
	// scales with the number of experiments.
	MutationRate float64
	// Elite is the number of individuals carried over unchanged
	// (default 2).
	Elite int
	// Repair, when true, uses the repairing crossover ablation
	// (DESIGN.md decision 2) instead of the paper's simple crossover.
	Repair bool
	// Parallelism bounds concurrent fitness evaluations (default
	// GOMAXPROCS).
	Parallelism int
}

var _ Optimizer = (*GeneticAlgorithm)(nil)

// Name implements Optimizer.
func (ga *GeneticAlgorithm) Name() string {
	if ga.Repair {
		return "GA+repair"
	}
	return "GA"
}

func (ga *GeneticAlgorithm) defaults() GeneticAlgorithm {
	out := *ga
	if out.PopulationSize <= 0 {
		out.PopulationSize = 40
	}
	if out.CrossoverRate <= 0 {
		out.CrossoverRate = 0.9
	}
	if out.Elite <= 0 {
		out.Elite = 2
	}
	if out.Parallelism <= 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
	}
	return out
}

type individual struct {
	s       *Schedule
	fitness float64
}

// Optimize implements Optimizer.
func (ga *GeneticAlgorithm) Optimize(p *Problem, budget int, seed int64, initial *Schedule) (*Schedule, Stats) {
	cfg := ga.defaults()
	if cfg.MutationRate <= 0 {
		cfg.MutationRate = 1.5 / float64(len(p.Experiments)+1)
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	ev := newEvaluator(p, budget)

	pop := make([]individual, cfg.PopulationSize)
	for i := range pop {
		if i == 0 && initial != nil {
			pop[i].s = initial.Clone()
		} else {
			pop[i].s = p.RandomScheduleFrom(rng, initial)
		}
	}
	ga.evalParallel(pop, ev, cfg.Parallelism)
	best := bestOf(pop)

	for !ev.exhausted() {
		next := make([]individual, 0, cfg.PopulationSize)
		// Elitism.
		sortByFitness(pop)
		for i := 0; i < cfg.Elite && i < len(pop); i++ {
			next = append(next, individual{s: pop[i].s.Clone(), fitness: pop[i].fitness})
		}
		for len(next) < cfg.PopulationSize {
			a := tournament(pop, rng)
			b := tournament(pop, rng)
			child := a.s.Clone()
			if rng.Float64() < cfg.CrossoverRate {
				child = crossover(a.s, b.s, rng)
				if cfg.Repair {
					repairSchedule(p, child, rng)
				}
			}
			child = mutateSchedule(p, child, cfg.MutationRate, rng)
			next = append(next, individual{s: child, fitness: math.Inf(-1)})
		}
		// Parallel evaluation of the non-elite offspring.
		ga.evalParallel(next[cfg.Elite:], ev, cfg.Parallelism)
		pop = next
		if b := bestOf(pop); b.fitness > best.fitness {
			best = individual{s: b.s.Clone(), fitness: b.fitness}
		}
	}
	return best.s, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: best.fitness}
}

// evalParallel evaluates every individual in pop concurrently, chunking
// the population across `parallelism` workers (goroutine-per-chunk keeps
// the scheduling overhead negligible relative to fitness evaluation).
// Callers pass only individuals that need (re-)evaluation; elites are
// excluded by slicing. This population-level parallelism is what gives
// the GA its wall-clock advantage on multi-core machines (Table 3.3);
// on a single core it degrades gracefully to sequential evaluation.
func (ga *GeneticAlgorithm) evalParallel(pop []individual, ev *evaluator, parallelism int) {
	if parallelism <= 1 || len(pop) < 2 {
		for i := range pop {
			if f, ok := ev.eval(pop[i].s); ok {
				pop[i].fitness = f
			} else {
				pop[i].fitness = math.Inf(-1)
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(pop) + parallelism - 1) / parallelism
	for lo := 0; lo < len(pop); lo += chunk {
		hi := lo + chunk
		if hi > len(pop) {
			hi = len(pop)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if f, ok := ev.eval(pop[i].s); ok {
					pop[i].fitness = f
				} else {
					pop[i].fitness = math.Inf(-1)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness > best.fitness {
			best = ind
		}
	}
	return best
}

func sortByFitness(pop []individual) {
	// Insertion sort: populations are small and mostly sorted across
	// generations.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].fitness > pop[j-1].fitness; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

func tournament(pop []individual, rng *rand.Rand) individual {
	const k = 3
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

// crossover is the paper's "rather simple strategy": a one-point cut at
// an experiment boundary, taking genes left of the cut from a and right
// of it from b (Fig 3.2). Offspring frequently violate the overarching
// constraints — Section 3.7 names this as the GA's main improvement
// opportunity, which the Repair option explores.
func crossover(a, b *Schedule, rng *rand.Rand) *Schedule {
	child := a.Clone()
	if len(child.Genes) < 2 {
		return child
	}
	cut := 1 + rng.Intn(len(child.Genes)-1)
	for i := cut; i < len(child.Genes); i++ {
		if !child.Genes[i].Frozen {
			child.Genes[i] = b.Genes[i]
		}
	}
	return child
}

// repairSchedule greedily resolves capacity and group-overlap conflicts
// by shrinking shares and re-placing conflicting genes. Best effort: the
// result may still be invalid, but far less often than raw crossover.
func repairSchedule(p *Problem, s *Schedule, rng *rand.Rand) {
	horizon := p.Profile.NumSlots()
	usage := make([]float64, horizon)
	groupBusy := make(map[string][]bool)
	for i := range s.Genes {
		e := &p.Experiments[i]
		g := s.Genes[i]
		conflict := !fits(usage, g, p.Capacity) || groupsOccupied(groupBusy, e, g) ||
			p.collected(e, g) < e.RequiredSamples
		if conflict && !g.Frozen {
			if ng, ok := p.placeExperiment(e, rng, usage, groupBusy); ok {
				s.Genes[i] = ng
				continue
			}
		}
		commit(usage, groupBusy, e, g)
	}
}

// RandomSampling draws budget constructive random schedules and keeps
// the best — the weakest baseline of Section 3.5.2.
type RandomSampling struct{}

var _ Optimizer = RandomSampling{}

// Name implements Optimizer.
func (RandomSampling) Name() string { return "Random" }

// Optimize implements Optimizer.
func (RandomSampling) Optimize(p *Problem, budget int, seed int64, initial *Schedule) (*Schedule, Stats) {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	ev := newEvaluator(p, budget)

	var best *Schedule
	bestF := math.Inf(-1)
	if initial != nil {
		if f, ok := ev.eval(initial); ok {
			best, bestF = initial.Clone(), f
		}
	}
	for !ev.exhausted() {
		s := p.RandomScheduleFrom(rng, initial)
		f, ok := ev.eval(s)
		if !ok {
			break
		}
		if f > bestF {
			best, bestF = s, f
		}
	}
	return best, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: bestF}
}

// LocalSearch is steepest-free first-improvement hill climbing with
// random restarts (Section 3.5.3).
type LocalSearch struct {
	// Stagnation is how many non-improving neighbors trigger a restart
	// (default 200).
	Stagnation int
}

var _ Optimizer = LocalSearch{}

// Name implements Optimizer.
func (LocalSearch) Name() string { return "LocalSearch" }

// Optimize implements Optimizer.
func (ls LocalSearch) Optimize(p *Problem, budget int, seed int64, initial *Schedule) (*Schedule, Stats) {
	stagLimit := ls.Stagnation
	if stagLimit <= 0 {
		stagLimit = 200
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	ev := newEvaluator(p, budget)

	newStart := func() *Schedule {
		if initial != nil && rng.Float64() < 0.5 {
			return mutateSchedule(p, initial, 0.1, rng)
		}
		return p.RandomScheduleFrom(rng, initial)
	}

	best := newStart()
	bestF, ok := ev.eval(best)
	if !ok {
		return best, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: bestF}
	}
	cur, curF := best.Clone(), bestF
	stagnation := 0
	for !ev.exhausted() {
		neighbor := mutateSchedule(p, cur, 2.0/float64(len(cur.Genes)+1), rng)
		f, evalOK := ev.eval(neighbor)
		if !evalOK {
			break
		}
		if f > curF {
			cur, curF = neighbor, f
			stagnation = 0
			if f > bestF {
				best, bestF = neighbor.Clone(), f
			}
		} else {
			stagnation++
			if stagnation >= stagLimit {
				cur = newStart()
				if f2, ok2 := ev.eval(cur); ok2 {
					curF = f2
					if f2 > bestF {
						best, bestF = cur.Clone(), f2
					}
				}
				stagnation = 0
			}
		}
	}
	return best, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: bestF}
}

// SimulatedAnnealing with geometric cooling (Section 3.5.4).
type SimulatedAnnealing struct {
	// InitialTemp defaults to 2.0 (fitness units).
	InitialTemp float64
	// Cooling is the geometric factor per step (default chosen so the
	// temperature reaches ~0.01 at budget exhaustion).
	Cooling float64
}

var _ Optimizer = SimulatedAnnealing{}

// Name implements Optimizer.
func (SimulatedAnnealing) Name() string { return "SimAnnealing" }

// Optimize implements Optimizer.
func (sa SimulatedAnnealing) Optimize(p *Problem, budget int, seed int64, initial *Schedule) (*Schedule, Stats) {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	ev := newEvaluator(p, budget)

	temp := sa.InitialTemp
	if temp <= 0 {
		temp = 2.0
	}
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Reach temp*1e-3 after `budget` steps.
		cooling = math.Pow(1e-3, 1/math.Max(float64(budget), 1))
	}

	var cur *Schedule
	if initial != nil {
		cur = initial.Clone()
	} else {
		cur = p.RandomScheduleFrom(rng, initial)
	}
	curF, ok := ev.eval(cur)
	if !ok {
		return cur, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: curF}
	}
	best, bestF := cur.Clone(), curF

	// Reheat: when the chain is stuck in the infeasible region for a
	// long streak, restart from a fresh constructive schedule at a
	// raised temperature. Without this the single-chain SA occasionally
	// never finds a valid schedule on tight instances.
	const invalidStreakLimit = 400
	invalidStreak := 0

	for !ev.exhausted() {
		neighbor := mutateSchedule(p, cur, 2.0/float64(len(cur.Genes)+1), rng)
		f, evalOK := ev.eval(neighbor)
		if !evalOK {
			break
		}
		if f > curF || rng.Float64() < math.Exp((f-curF)/temp) {
			cur, curF = neighbor, f
			if f > bestF {
				best, bestF = neighbor.Clone(), f
			}
		}
		if curF < 0 {
			invalidStreak++
			if invalidStreak >= invalidStreakLimit {
				cur = p.RandomScheduleFrom(rng, initial)
				if f2, ok2 := ev.eval(cur); ok2 {
					curF = f2
					if f2 > bestF {
						best, bestF = cur.Clone(), f2
					}
				}
				temp = math.Max(temp, 0.5)
				invalidStreak = 0
			}
		} else {
			invalidStreak = 0
		}
		temp *= cooling
	}
	return best, Stats{Evaluations: ev.spent(), Elapsed: time.Since(start), BestFitness: bestF}
}
