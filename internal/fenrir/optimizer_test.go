package fenrir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"contexp/internal/traffic"
)

// mediumProblem builds a reproducible 10-experiment problem on a
// seasonal profile.
func mediumProblem(t testing.TB, n int, class SampleSizeClass) *Problem {
	t.Helper()
	profile, err := traffic.Generate(flatProfile(1, 1).Start, 14, traffic.DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	exps, err := GenerateExperiments(GeneratorConfig{
		N: n, Class: class, Seed: 42, Horizon: profile.NumSlots(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{Experiments: exps, Profile: profile, Capacity: 0.8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func allOptimizers() []Optimizer {
	return []Optimizer{
		&GeneticAlgorithm{},
		RandomSampling{},
		LocalSearch{},
		SimulatedAnnealing{},
	}
}

func TestOptimizersFindValidSchedules(t *testing.T) {
	p := mediumProblem(t, 10, SamplesLow)
	for _, opt := range allOptimizers() {
		opt := opt
		t.Run(opt.Name(), func(t *testing.T) {
			t.Parallel()
			s, stats := opt.Optimize(p, 2000, 1, nil)
			if s == nil {
				t.Fatal("nil schedule")
			}
			if !p.Valid(s) {
				t.Fatalf("%s produced invalid schedule: %v", opt.Name(), p.Check(s)[:min(3, len(p.Check(s)))])
			}
			if stats.BestFitness <= 0 {
				t.Errorf("best fitness = %v", stats.BestFitness)
			}
			if stats.Evaluations > 2000 {
				t.Errorf("budget exceeded: %d evaluations", stats.Evaluations)
			}
			frac := stats.BestFitness / p.MaxFitness()
			if frac < 0.3 {
				t.Errorf("%s reached only %.0f%% of max fitness", opt.Name(), frac*100)
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGABeatsRandomSampling(t *testing.T) {
	p := mediumProblem(t, 15, SamplesMedium)
	ga := &GeneticAlgorithm{}
	rs := RandomSampling{}
	const budget = 3000
	var gaScore, rsScore float64
	for seed := int64(1); seed <= 3; seed++ {
		_, s1 := ga.Optimize(p, budget, seed, nil)
		_, s2 := rs.Optimize(p, budget, seed, nil)
		gaScore += s1.BestFitness
		rsScore += s2.BestFitness
	}
	if gaScore <= rsScore {
		t.Errorf("GA (%v) did not beat random sampling (%v)", gaScore/3, rsScore/3)
	}
}

func TestOptimizersDeterministicPerSeed(t *testing.T) {
	p := mediumProblem(t, 8, SamplesLow)
	for _, opt := range []Optimizer{RandomSampling{}, LocalSearch{}, SimulatedAnnealing{}} {
		_, s1 := opt.Optimize(p, 500, 7, nil)
		_, s2 := opt.Optimize(p, 500, 7, nil)
		if s1.BestFitness != s2.BestFitness {
			t.Errorf("%s not deterministic: %v vs %v", opt.Name(), s1.BestFitness, s2.BestFitness)
		}
	}
}

func TestGARespectsFrozenGenes(t *testing.T) {
	p := mediumProblem(t, 8, SamplesLow)
	rng := rand.New(rand.NewSource(3))
	seedSchedule := p.RandomSchedule(rng)
	frozen := seedSchedule.Genes[0]
	frozen.Frozen = true
	seedSchedule.Genes[0] = frozen

	for _, opt := range allOptimizers() {
		s, _ := opt.Optimize(p, 1000, 5, seedSchedule)
		g := s.Genes[0]
		if g.Start != frozen.Start || g.Duration != frozen.Duration ||
			g.Share != frozen.Share || g.GroupMask != frozen.GroupMask {
			t.Errorf("%s modified a frozen gene: %+v -> %+v", opt.Name(), frozen, g)
		}
	}
}

func TestCrossoverPreservesGeneCount(t *testing.T) {
	p := mediumProblem(t, 6, SamplesLow)
	rng := rand.New(rand.NewSource(1))
	a := p.RandomSchedule(rng)
	b := p.RandomSchedule(rng)
	child := crossover(a, b, rng)
	if len(child.Genes) != len(a.Genes) {
		t.Fatalf("child has %d genes", len(child.Genes))
	}
	// Child genes come from either parent.
	for i := range child.Genes {
		g := child.Genes[i]
		if g != a.Genes[i] && g != b.Genes[i] {
			t.Errorf("gene %d from neither parent", i)
		}
	}
}

func TestMutateGeneStaysInBounds(t *testing.T) {
	p := smallProblem()
	e := &p.Experiments[0]
	f := func(seed int64, start, dur uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gene{
			Start:     int(start) % 80,
			Duration:  e.MinDuration + int(dur)%(e.MaxDuration-e.MinDuration+1),
			Share:     0.1,
			GroupMask: 1,
		}
		if g.Start < e.EarliestStart {
			g.Start = e.EarliestStart
		}
		for i := 0; i < 50; i++ {
			g = mutateGene(p, e, g, rng)
			if g.Duration < e.MinDuration || g.Duration > e.MaxDuration {
				return false
			}
			if g.Share < e.MinShare || g.Share > e.MaxShare {
				return false
			}
			if g.GroupMask == 0 || g.GroupMask >= 1<<uint(len(e.CandidateGroups)) {
				return false
			}
			if g.Start < e.EarliestStart {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMutateFrozenGeneUnchanged(t *testing.T) {
	p := smallProblem()
	rng := rand.New(rand.NewSource(1))
	g := Gene{Start: 3, Duration: 5, Share: 0.1, GroupMask: 1, Frozen: true}
	for i := 0; i < 20; i++ {
		if got := mutateGene(p, &p.Experiments[0], g, rng); got != g {
			t.Fatal("mutateGene modified frozen gene")
		}
	}
}

func TestGARepairImprovesValidity(t *testing.T) {
	p := mediumProblem(t, 20, SamplesMedium)
	plain := &GeneticAlgorithm{}
	repair := &GeneticAlgorithm{Repair: true}
	const budget = 2000
	_, sPlain := plain.Optimize(p, budget, 11, nil)
	_, sRepair := repair.Optimize(p, budget, 11, nil)
	// Repair should never be much worse; usually better on tight problems.
	if sRepair.BestFitness < sPlain.BestFitness*0.8 {
		t.Errorf("repairing crossover regressed badly: %v vs %v", sRepair.BestFitness, sPlain.BestFitness)
	}
}

func TestOptimizerStatsElapsed(t *testing.T) {
	p := mediumProblem(t, 5, SamplesLow)
	_, stats := RandomSampling{}.Optimize(p, 100, 1, nil)
	if stats.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
	if stats.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestReevaluate(t *testing.T) {
	p := mediumProblem(t, 10, SamplesLow)
	ga := &GeneticAlgorithm{}
	s, _ := ga.Optimize(p, 2000, 1, nil)
	if !p.Valid(s) {
		t.Fatal("precondition: schedule invalid")
	}

	// Pick a reevaluation point that has at least one running experiment.
	now := 0
	for _, g := range s.Genes {
		if g.Start+g.Duration/2 > now {
			now = g.Start + g.Duration/2
		}
	}
	if now >= p.Profile.NumSlots() {
		now = p.Profile.NumSlots() - 1
	}

	added, err := GenerateExperiments(GeneratorConfig{N: 3, Class: SamplesLow, Seed: 99, Horizon: p.Profile.NumSlots()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range added {
		added[i].ID = "new-" + added[i].ID
	}
	res, err := Reevaluate(p, s, ReevalInput{
		Now:      now,
		Canceled: []string{p.Experiments[0].ID},
		Added:    added,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 {
		t.Errorf("Dropped = %v", res.Dropped)
	}
	wantCount := len(p.Experiments) - 1 - len(res.Finished) + len(added)
	if got := len(res.Problem.Experiments); got != wantCount {
		t.Errorf("surviving experiments = %d, want %d", got, wantCount)
	}
	if len(res.Seed.Genes) != len(res.Problem.Experiments) {
		t.Error("seed genes misaligned")
	}
	// Running experiments are frozen.
	for i, e := range res.Problem.Experiments {
		g := res.Seed.Genes[i]
		if g.Frozen {
			if g.Start > now {
				t.Errorf("%s frozen but starts at %d > now %d", e.ID, g.Start, now)
			}
		} else if g.Start < now && g.Start > 0 {
			// Pending experiments must have been clamped to >= now
			// (unless their gene legitimately starts at slot >= now).
			t.Errorf("%s not frozen but starts at %d < now %d", e.ID, g.Start, now)
		}
	}
	// The reduced problem can be re-optimized from the seed.
	s2, stats := ga.Optimize(res.Problem, 2000, 2, res.Seed)
	if !res.Problem.Valid(s2) {
		t.Fatalf("reoptimized schedule invalid: %v", res.Problem.Check(s2)[:min(3, len(res.Problem.Check(s2)))])
	}
	if stats.BestFitness <= 0 {
		t.Errorf("reoptimized fitness = %v", stats.BestFitness)
	}
}

func TestReevaluateErrors(t *testing.T) {
	p := smallProblem()
	s := &Schedule{Genes: []Gene{{}}}
	if _, err := Reevaluate(p, s, ReevalInput{Now: 5}); err == nil {
		t.Error("gene count mismatch should fail")
	}
	s2 := &Schedule{Genes: make([]Gene, len(p.Experiments))}
	if _, err := Reevaluate(p, s2, ReevalInput{Now: -1}); err == nil {
		t.Error("negative now should fail")
	}
	if _, err := Reevaluate(p, s2, ReevalInput{Now: 9999}); err == nil {
		t.Error("now past horizon should fail")
	}
}

func TestFrozenCount(t *testing.T) {
	s := &Schedule{Genes: []Gene{{Frozen: true}, {}, {Frozen: true}}}
	if FrozenCount(s) != 2 {
		t.Errorf("FrozenCount = %d", FrozenCount(s))
	}
}
