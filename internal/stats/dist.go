package stats

import (
	"math"
	"math/rand"
)

// This file provides the random samplers used by the simulation
// substrates: lognormal service times (the canonical latency model for
// microservice endpoints), exponential inter-arrival times for open-loop
// load generation, and Pareto tails for heavy-tailed payloads.

// LogNormal samples service times whose logarithm is normally
// distributed. Mu and Sigma parameterize the underlying normal.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// LogNormalFromMeanP95 constructs a LogNormal whose mean is `mean` and
// whose 95th percentile is approximately p95. This is how microsim
// calibrates endpoint latency distributions from the two numbers the
// paper reports (mean and tail of service response times).
func LogNormalFromMeanP95(mean, p95 float64) LogNormal {
	if mean <= 0 || p95 <= mean {
		// Fall back to a narrow distribution around the mean.
		return LogNormal{Mu: math.Log(math.Max(mean, 1e-9)), Sigma: 0.05}
	}
	// mean = exp(mu + sigma^2/2); p95 = exp(mu + 1.645 sigma).
	// => log(p95/mean) = 1.645 sigma - sigma^2/2; solve the quadratic.
	const z = 1.6448536269514722
	r := math.Log(p95 / mean)
	// sigma^2/2 - z sigma + r = 0 -> sigma = z - sqrt(z^2 - 2r)
	disc := z*z - 2*r
	var sigma float64
	if disc <= 0 {
		sigma = z // extremely heavy tail requested; saturate
	} else {
		sigma = z - math.Sqrt(disc)
	}
	if sigma < 0.01 {
		sigma = 0.01
	}
	mu := math.Log(mean) - sigma*sigma/2
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample draws one value using rng.
func (d LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (d LogNormal) Mean() float64 {
	return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
}

// Quantile returns the p-quantile of the distribution.
func (d LogNormal) Quantile(p float64) float64 {
	return math.Exp(d.Mu + d.Sigma*normalQuantile(p))
}

// Exponential samples with the given rate (events per unit time).
type Exponential struct {
	Rate float64
}

// Sample draws one inter-arrival interval.
func (d Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / d.Rate
}

// Pareto samples a heavy-tailed distribution with minimum xm and shape
// alpha (> 1 for a finite mean).
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws one value.
func (d Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}
