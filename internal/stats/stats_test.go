package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single observation should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Sum(xs) != 9 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty slice should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
	if Quantile([]float64{42}, 0.9) != 42 {
		t.Error("Quantile of single element should be that element")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	// Property: quantiles are monotone in p and bounded by min/max.
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 1))
		p2 = math.Abs(math.Mod(p2, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := Quantile(xs, p1), Quantile(xs, p2)
		return q1 <= q2 && q1 >= Min(xs) && q2 <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("Summarize(nil).N = %d", empty.N)
	}
}

func TestBoxPlot(t *testing.T) {
	// 1..9 with one extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxPlot(xs)
	if b.OutliersHigh != 1 {
		t.Errorf("OutliersHigh = %d, want 1", b.OutliersHigh)
	}
	if b.Max != 9 {
		t.Errorf("upper whisker = %v, want 9", b.Max)
	}
	if b.Min != 1 {
		t.Errorf("lower whisker = %v, want 1", b.Min)
	}
	if !(b.Q1 <= b.Median && b.Median <= b.Q3) {
		t.Errorf("quartiles out of order: %+v", b)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Window 1 returns a copy.
	cp := MovingAverage(xs, 1)
	cp[0] = 99
	if xs[0] == 99 {
		t.Error("MovingAverage(_, 1) aliases its input")
	}
}

func TestEWMA(t *testing.T) {
	xs := []float64{10, 20, 30}
	got := EWMA(xs, 0.5)
	if got[0] != 10 || got[1] != 15 || got[2] != 22.5 {
		t.Errorf("EWMA = %v", got)
	}
	if len(EWMA(nil, 0.5)) != 0 {
		t.Error("EWMA(nil) should be empty")
	}
}

func TestWelchT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1 // shifted by one sd
	}
	res, err := WelchT(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("expected significant difference, p = %v", res.PValue)
	}

	// Same distribution: should usually not be significant.
	c := make([]float64, 200)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	res2, err := WelchT(a, c, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PValue < 0.001 {
		t.Errorf("unexpectedly tiny p-value for identical distributions: %v", res2.PValue)
	}
}

func TestWelchTErrors(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}, 0.05); err == nil {
		t.Error("expected error for sample with < 2 observations")
	}
}

func TestWelchTConstantSamples(t *testing.T) {
	same := []float64{5, 5, 5}
	res, err := WelchT(same, same, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("identical constant samples should not be significant")
	}
	res, err = WelchT(same, []float64{7, 7, 7}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Error("different constant samples should be significant")
	}
}

func TestMannWhitneyU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.ExpFloat64()
		b[i] = rng.ExpFloat64() * 3
	}
	res, err := MannWhitneyU(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("expected significant shift, p = %v", res.PValue)
	}
	if _, err := MannWhitneyU(nil, a, 0.05); err == nil {
		t.Error("expected error on empty sample")
	}
}

func TestMannWhitneyUTies(t *testing.T) {
	// All ties: p-value must be 1.
	a := []float64{1, 1, 1}
	res, err := MannWhitneyU(a, a, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("all-tie samples should not be significant, p = %v", res.PValue)
	}
}

func TestTwoProportionZ(t *testing.T) {
	// 10% vs 15% conversion with large n: clearly significant.
	res, err := TwoProportionZ(1000, 10000, 1500, 10000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("expected significance, p = %v", res.PValue)
	}
	// Identical rates: not significant.
	res, err = TwoProportionZ(100, 1000, 100, 1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("identical rates flagged significant")
	}
	if _, err := TwoProportionZ(0, 0, 1, 10, 0.05); err == nil {
		t.Error("expected error on zero trials")
	}
}

func TestMinSampleSizeProportion(t *testing.T) {
	// Classic example: baseline 10%, detect +2pp at alpha=.05 power=.8
	// should require a few thousand per variant (textbook ~3,800).
	n, err := MinSampleSizeProportion(0.10, 0.02, 0.05, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3000 || n > 5000 {
		t.Errorf("sample size = %d, want in [3000, 5000]", n)
	}
	// Larger effects need fewer samples.
	n2, err := MinSampleSizeProportion(0.10, 0.05, 0.05, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if n2 >= n {
		t.Errorf("larger MDE should need fewer samples: %d >= %d", n2, n)
	}
	if _, err := MinSampleSizeProportion(0, 0.05, 0.05, 0.8); err == nil {
		t.Error("expected error for invalid baseline")
	}
	if _, err := MinSampleSizeProportion(0.99, 0.05, 0.05, 0.8); err == nil {
		t.Error("expected error for effect pushing rate above 1")
	}
}

func TestMinSampleSizeMean(t *testing.T) {
	n, err := MinSampleSizeMean(10, 1, 0.05, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	// 2*(1.96+0.84)^2*100 ≈ 1570.
	if n < 1400 || n > 1700 {
		t.Errorf("sample size = %d, want ≈ 1570", n)
	}
	if _, err := MinSampleSizeMean(0, 1, 0.05, 0.8); err == nil {
		t.Error("expected error for sigma <= 0")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99} {
		z := normalQuantile(p)
		back := 1 - normalSF(z)
		if !almostEqual(back, p, 1e-6) {
			t.Errorf("round trip p=%v: got %v", p, back)
		}
	}
	if normalQuantile(0.5) != 0 {
		t.Errorf("median of standard normal should be 0, got %v", normalQuantile(0.5))
	}
}

func TestStudentTSF(t *testing.T) {
	// With huge df, t converges to normal: P(T > 1.96) ≈ 0.025.
	if got := studentTSF(1.96, 1e6); !almostEqual(got, 0.025, 1e-3) {
		t.Errorf("studentTSF(1.96, 1e6) = %v", got)
	}
	// Known value: P(T > 2.228) with df=10 ≈ 0.025 (t-table).
	if got := studentTSF(2.228, 10); !almostEqual(got, 0.025, 2e-3) {
		t.Errorf("studentTSF(2.228, 10) = %v", got)
	}
	if studentTSF(math.Inf(1), 5) != 0 {
		t.Error("survival at +inf should be 0")
	}
}
