// Package stats provides the descriptive and inferential statistics used
// across the continuous-experimentation framework: summary statistics,
// quantiles, five-number summaries for box plots, moving averages,
// hypothesis tests, power analysis for experiment sample sizes, and the
// nDCG ranking-quality metric used by the health-assessment evaluation.
//
// All functions operate on plain float64 slices and never mutate their
// inputs unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
// It returns 0 for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs, or 0 when xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or 0 when xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (R type-7, the default of most
// statistics environments). It returns 0 for an empty sample. The input
// slice is not modified.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantileSorted is like Quantile but requires xs to be sorted ascending,
// avoiding the copy. It returns 0 for an empty sample.
func QuantileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quantileSorted(xs, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Summary bundles the descriptive statistics reported in the paper's
// tables (e.g., Table 3.2 and Table 4.1).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs in a single pass over a sorted copy.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      n,
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
		Max:    sorted[n-1],
	}
}

// BoxPlot is the five-number summary plus whiskers and outliers used to
// reproduce the paper's box-plot figures (Fig 4.7, 4.9, 5.10) in text form.
type BoxPlot struct {
	Min          float64 // lower whisker (smallest value >= Q1 - 1.5 IQR)
	Q1           float64
	Median       float64
	Q3           float64
	Max          float64 // upper whisker (largest value <= Q3 + 1.5 IQR)
	OutliersLow  int
	OutliersHigh int
}

// NewBoxPlot computes the Tukey box plot of xs.
func NewBoxPlot(xs []float64) BoxPlot {
	n := len(xs)
	if n == 0 {
		return BoxPlot{}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	q1 := quantileSorted(sorted, 0.25)
	q3 := quantileSorted(sorted, 0.75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr

	b := BoxPlot{Q1: q1, Median: quantileSorted(sorted, 0.5), Q3: q3}
	b.Min = sorted[n-1]
	b.Max = sorted[0]
	for _, x := range sorted {
		switch {
		case x < loFence:
			b.OutliersLow++
		case x > hiFence:
			b.OutliersHigh++
		default:
			if x < b.Min {
				b.Min = x
			}
			if x > b.Max {
				b.Max = x
			}
		}
	}
	// Degenerate case: everything was an outlier on one side.
	if b.Min > b.Max {
		b.Min, b.Max = sorted[0], sorted[n-1]
	}
	return b
}

// MovingAverage returns the simple moving average of xs with the given
// window size. Element i of the result averages xs[max(0,i-window+1) .. i],
// matching the "3-second moving average" plots of Fig 4.6. A window of 0 or
// 1 returns a copy of xs.
func MovingAverage(xs []float64, window int) []float64 {
	if window <= 1 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0, 1]. The first element seeds the average.
func EWMA(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}
