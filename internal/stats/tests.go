package stats

import (
	"errors"
	"math"
	"sort"
)

// This file contains the inferential statistics used to interpret
// experiment data: Welch's t-test and the Mann-Whitney U test for
// comparing variants of business-driven experiments, and the
// two-proportion z-test with its power analysis used by the planning
// phase to derive minimum sample sizes (cf. Kohavi et al.'s rules of
// thumb cited throughout the paper).

// TestResult is the outcome of a two-sample hypothesis test.
type TestResult struct {
	Statistic   float64 // test statistic (t, z, or standardized U)
	PValue      float64 // two-sided p-value
	Significant bool    // PValue < alpha at the time of the test
	Alpha       float64
}

// WelchT performs Welch's unequal-variance t-test on two samples and
// returns a two-sided result at significance level alpha.
func WelchT(a, b []float64, alpha float64) (TestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TestResult{}, errors.New("stats: WelchT requires at least 2 observations per sample")
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return TestResult{Statistic: 0, PValue: 1, Alpha: alpha}, nil
		}
		return TestResult{Statistic: math.Inf(1), PValue: 0, Significant: true, Alpha: alpha}, nil
	}
	t := (ma - mb) / se
	// Welch-Satterthwaite degrees of freedom.
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1))
	df := num / den
	p := 2 * studentTSF(math.Abs(t), df)
	return TestResult{Statistic: t, PValue: p, Significant: p < alpha, Alpha: alpha}, nil
}

// MannWhitneyU performs the Mann-Whitney U test (normal approximation with
// tie correction) on two samples, returning a two-sided result.
func MannWhitneyU(a, b []float64, alpha float64) (TestResult, error) {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return TestResult{}, ErrEmpty
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, na+nb)
	for _, x := range a {
		all = append(all, obs{x, true})
	}
	for _, x := range b {
		all = append(all, obs{x, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie correction term.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of ranks i+1 .. j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var ra float64
	for i, o := range all {
		if o.fromA {
			ra += ranks[i]
		}
	}
	fa, fb := float64(na), float64(nb)
	u := ra - fa*(fa+1)/2
	mu := fa * fb / 2
	n := fa + fb
	sigma2 := fa * fb / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return TestResult{Statistic: 0, PValue: 1, Alpha: alpha}, nil
	}
	z := (u - mu) / math.Sqrt(sigma2)
	p := 2 * normalSF(math.Abs(z))
	return TestResult{Statistic: z, PValue: p, Significant: p < alpha, Alpha: alpha}, nil
}

// TwoProportionZ tests whether two conversion rates differ: successes sa of
// na trials vs. sb of nb trials.
func TwoProportionZ(sa, na, sb, nb int, alpha float64) (TestResult, error) {
	if na == 0 || nb == 0 {
		return TestResult{}, ErrEmpty
	}
	pa := float64(sa) / float64(na)
	pb := float64(sb) / float64(nb)
	pool := float64(sa+sb) / float64(na+nb)
	se := math.Sqrt(pool * (1 - pool) * (1/float64(na) + 1/float64(nb)))
	if se == 0 {
		return TestResult{Statistic: 0, PValue: 1, Alpha: alpha}, nil
	}
	z := (pa - pb) / se
	p := 2 * normalSF(math.Abs(z))
	return TestResult{Statistic: z, PValue: p, Significant: p < alpha, Alpha: alpha}, nil
}

// MinSampleSizeProportion returns the per-variant sample size needed to
// detect an absolute lift `mde` over baseline rate p0 with significance
// alpha and power (1-beta), using the standard two-proportion formula.
// This is the "established statistical formula" the paper refers to for
// deriving required sample sizes in the planning phase.
func MinSampleSizeProportion(p0, mde, alpha, power float64) (int, error) {
	if p0 <= 0 || p0 >= 1 {
		return 0, errors.New("stats: baseline rate must be in (0,1)")
	}
	p1 := p0 + mde
	if p1 <= 0 || p1 >= 1 || mde == 0 {
		return 0, errors.New("stats: effect size out of range")
	}
	zAlpha := normalQuantile(1 - alpha/2)
	zBeta := normalQuantile(power)
	pBar := (p0 + p1) / 2
	num := zAlpha*math.Sqrt(2*pBar*(1-pBar)) + zBeta*math.Sqrt(p0*(1-p0)+p1*(1-p1))
	n := num * num / (mde * mde)
	return int(math.Ceil(n)), nil
}

// MinSampleSizeMean returns the per-variant sample size needed to detect a
// difference of `mde` in means given standard deviation sigma.
func MinSampleSizeMean(sigma, mde, alpha, power float64) (int, error) {
	if sigma <= 0 || mde <= 0 {
		return 0, errors.New("stats: sigma and mde must be positive")
	}
	zAlpha := normalQuantile(1 - alpha/2)
	zBeta := normalQuantile(power)
	n := 2 * (zAlpha + zBeta) * (zAlpha + zBeta) * sigma * sigma / (mde * mde)
	return int(math.Ceil(n)), nil
}

// normalSF returns the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// normalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (|err| < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// studentTSF returns the survival function P(T > t) of Student's t
// distribution with df degrees of freedom, via the regularized incomplete
// beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Use symmetry for faster convergence.
	lbetaSym := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - lbetaSym*betaCF(b, a, 1-x)
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
