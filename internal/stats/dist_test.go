package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalFromMeanP95(t *testing.T) {
	d := LogNormalFromMeanP95(20, 60)
	if got := d.Mean(); !almostEqual(got, 20, 1e-9) {
		t.Errorf("Mean = %v, want 20", got)
	}
	if got := d.Quantile(0.95); !almostEqual(got, 60, 1e-6) {
		t.Errorf("P95 = %v, want 60", got)
	}
}

func TestLogNormalFromMeanP95Degenerate(t *testing.T) {
	// p95 <= mean falls back to narrow distribution around the mean.
	d := LogNormalFromMeanP95(20, 10)
	if m := d.Mean(); m < 19 || m > 21 {
		t.Errorf("fallback mean = %v, want ≈ 20", m)
	}
	// Zero mean must not produce NaN.
	d0 := LogNormalFromMeanP95(0, 0)
	if math.IsNaN(d0.Mu) {
		t.Error("degenerate input produced NaN mu")
	}
}

func TestLogNormalSampleMoments(t *testing.T) {
	d := LogNormalFromMeanP95(30, 90)
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var sum float64
	samples := make([]float64, n)
	for i := range samples {
		v := d.Sample(rng)
		if v <= 0 {
			t.Fatal("lognormal sample must be positive")
		}
		samples[i] = v
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-30)/30 > 0.05 {
		t.Errorf("empirical mean = %v, want ≈ 30", mean)
	}
	p95 := Quantile(samples, 0.95)
	if math.Abs(p95-90)/90 > 0.05 {
		t.Errorf("empirical p95 = %v, want ≈ 90", p95)
	}
}

func TestExponentialSample(t *testing.T) {
	d := Exponential{Rate: 100} // mean inter-arrival 0.01
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 {
			t.Fatal("negative inter-arrival")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.01)/0.01 > 0.05 {
		t.Errorf("mean inter-arrival = %v, want ≈ 0.01", mean)
	}
}

func TestParetoSample(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 3}
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 {
			t.Fatalf("Pareto sample below Xm: %v", v)
		}
		sum += v
	}
	// Mean of Pareto(1, 3) = alpha*xm/(alpha-1) = 1.5.
	mean := sum / n
	if math.Abs(mean-1.5)/1.5 > 0.05 {
		t.Errorf("mean = %v, want ≈ 1.5", mean)
	}
}

func TestNDCG(t *testing.T) {
	tests := []struct {
		name  string
		gains []float64
		ideal []float64
		k     int
		want  float64
		tol   float64
	}{
		{"perfect", []float64{3, 2, 1}, []float64{1, 2, 3}, 3, 1, 1e-12},
		{"no relevant items", []float64{0, 0}, []float64{0, 0}, 2, 1, 1e-12},
		// DCG = 3 + 7/log2(3) + 0.5; IDCG = 7 + 3/log2(3) + 0.5.
		{"single swap", []float64{2, 3, 1}, []float64{1, 2, 3}, 3, 0.8428, 0.001},
		{"cutoff shorter than list", []float64{3, 0, 2}, []float64{3, 2, 0}, 1, 1, 1e-12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NDCG(tt.gains, tt.ideal, tt.k)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("NDCG = %v, want %v ± %v", got, tt.want, tt.tol)
			}
		})
	}
}

func TestNDCGBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		ideal := make([]float64, n)
		for i := range ideal {
			ideal[i] = float64(rng.Intn(4))
		}
		gains := make([]float64, n)
		copy(gains, ideal)
		rng.Shuffle(n, func(i, j int) { gains[i], gains[j] = gains[j], gains[i] })
		got := NDCG(gains, ideal, 5)
		if got < 0 || got > 1+1e-12 {
			t.Fatalf("NDCG out of bounds: %v (gains %v ideal %v)", got, gains, ideal)
		}
	}
}
