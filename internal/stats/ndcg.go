package stats

import "math"

// NDCG computes the normalized discounted cumulative gain at cutoff k for
// a ranking. `gains` holds the relevance of the item placed at each rank
// position (gains[0] is the top-ranked item); `ideal` holds the full set
// of relevance values available (in any order). This is the ranking-quality
// metric (Järvelin and Kekäläinen) the paper uses to evaluate the change
// ranking heuristics (Figs 5.6 and 5.8 report nDCG5 scores).
//
// The exponential gain variant (2^rel - 1) is used, matching standard
// information-retrieval practice. NDCG returns a value in [0, 1]; when the
// ideal DCG is zero (no relevant items exist) it returns 1, since any
// ranking of irrelevant items is vacuously perfect.
func NDCG(gains, ideal []float64, k int) float64 {
	dcg := dcgAt(gains, k)
	idealSorted := make([]float64, len(ideal))
	copy(idealSorted, ideal)
	sortDesc(idealSorted)
	idcg := dcgAt(idealSorted, k)
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

func dcgAt(gains []float64, k int) float64 {
	if k > len(gains) {
		k = len(gains)
	}
	var dcg float64
	for i := 0; i < k; i++ {
		gain := math.Pow(2, gains[i]) - 1
		dcg += gain / math.Log2(float64(i)+2)
	}
	return dcg
}

func sortDesc(xs []float64) {
	// Insertion sort is fine: relevance lists at cutoff 5 are tiny, and
	// the ideal list rarely exceeds a few dozen changes.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
