// Package health implements the paper's analysis-phase contribution
// (Chapter 5): topology-aware experiment health assessment. It
// constructs the topological difference between the interaction graphs
// of a baseline and an experimental variant, classifies the surfaced
// changes into the fundamental and composed change types of
// Section 5.4.3, and ranks them by potential negative impact using
// three heuristics (subtree complexity, response-time analysis, and a
// hybrid) in six variations, evaluated with nDCG@5.
package health

import (
	"fmt"
	"sort"
	"strings"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// ChangeType classifies a topological change (Section 5.4.3).
type ChangeType int

// Fundamental change types.
const (
	// ChangeCallNewEndpoint: the experimental variant calls an endpoint
	// that did not exist anywhere in the baseline topology.
	ChangeCallNewEndpoint ChangeType = iota + 1
	// ChangeCallExistingEndpoint: a new call edge to an endpoint the
	// baseline already exposed.
	ChangeCallExistingEndpoint
	// ChangeRemoveCall: a baseline call edge the experimental variant
	// no longer makes.
	ChangeRemoveCall

	// Composed change types (combinations of fundamental ones caused by
	// version updates).

	// ChangeUpdatedCallerVersion: same logical interaction, new caller
	// version.
	ChangeUpdatedCallerVersion
	// ChangeUpdatedCalleeVersion: same logical interaction, new callee
	// version.
	ChangeUpdatedCalleeVersion
	// ChangeUpdatedVersion: both endpoints updated.
	ChangeUpdatedVersion
)

// String names the change type.
func (t ChangeType) String() string {
	switch t {
	case ChangeCallNewEndpoint:
		return "call-new-endpoint"
	case ChangeCallExistingEndpoint:
		return "call-existing-endpoint"
	case ChangeRemoveCall:
		return "remove-call"
	case ChangeUpdatedCallerVersion:
		return "updated-caller-version"
	case ChangeUpdatedCalleeVersion:
		return "updated-callee-version"
	case ChangeUpdatedVersion:
		return "updated-version"
	default:
		return fmt.Sprintf("change(%d)", int(t))
	}
}

// ParseChangeType resolves a change-class name (the String() form, e.g.
// "call-new-endpoint") back to its ChangeType — the form the DSL's
// `allow` attribute uses.
func ParseChangeType(name string) (ChangeType, error) {
	for t := ChangeCallNewEndpoint; t <= ChangeUpdatedVersion; t++ {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("health: unknown change class %q (known: %s)",
		name, strings.Join(ChangeClassNames(), ", "))
}

// ChangeClassNames lists every change class name in declaration order.
func ChangeClassNames() []string {
	out := make([]string, 0, int(ChangeUpdatedVersion))
	for t := ChangeCallNewEndpoint; t <= ChangeUpdatedVersion; t++ {
		out = append(out, t.String())
	}
	return out
}

// Uncertainty maps change types to the scalar weights of the paper's
// uncertainty concept: consuming a completely new service introduces
// more uncertainty than updating the version of an existing one, which
// introduces more than removing a call (Section 1.2.4).
func (t ChangeType) Uncertainty() float64 {
	switch t {
	case ChangeCallNewEndpoint:
		return 1.0
	case ChangeUpdatedVersion:
		return 0.8
	case ChangeUpdatedCalleeVersion:
		return 0.7
	case ChangeUpdatedCallerVersion:
		return 0.5
	case ChangeCallExistingEndpoint:
		return 0.4
	case ChangeRemoveCall:
		return 0.3
	default:
		return 0.1
	}
}

// Change is one identified topological change.
type Change struct {
	Type ChangeType
	// Edge is the concrete changed interaction: in the experimental
	// graph for additions/updates, in the baseline for removals.
	Edge topology.EdgeKey
	// Subject is the node the change is attributed to (the callee for
	// call and callee-version changes, the caller for caller-version
	// changes).
	Subject tracing.NodeKey
}

// ID renders a stable identifier used to match ground-truth relevance
// labels in the ranking evaluation.
func (c Change) ID() string {
	return c.Type.String() + "|" + c.Edge.String()
}

// String renders the change.
func (c Change) String() string {
	return fmt.Sprintf("%s: %s", c.Type, c.Edge)
}

// Diff is the topological difference of two interaction graphs
// (Section 5.5.1).
type Diff struct {
	Base, Exp *topology.Graph
	Changes   []Change
	// AddedNodes / RemovedNodes / UpdatedServices summarize node-level
	// status for the visualization (green/red/yellow in Fig 1.3).
	AddedNodes   []tracing.NodeKey
	RemovedNodes []tracing.NodeKey
	// UpdatedServices are services whose version set changed.
	UpdatedServices []string
}

// logicalEdge identifies an interaction ignoring versions.
type logicalEdge struct {
	FromSvc, FromEp string
	ToSvc, ToEp     string
}

func logical(e topology.EdgeKey) logicalEdge {
	return logicalEdge{
		FromSvc: e.From.Service, FromEp: e.From.Endpoint,
		ToSvc: e.To.Service, ToEp: e.To.Endpoint,
	}
}

// logicalEndpoint identifies an endpoint ignoring versions.
type logicalEndpoint struct {
	Svc, Ep string
}

// Compare constructs the topological difference between the baseline
// and experimental graphs and classifies every change.
func Compare(base, exp *topology.Graph) *Diff {
	d := &Diff{Base: base, Exp: exp}

	baseEdges := make(map[topology.EdgeKey]bool, len(base.Edges))
	baseLogical := make(map[logicalEdge][]topology.EdgeKey)
	for ek := range base.Edges {
		baseEdges[ek] = true
		le := logical(ek)
		baseLogical[le] = append(baseLogical[le], ek)
	}
	expLogical := make(map[logicalEdge]bool, len(exp.Edges))
	for ek := range exp.Edges {
		expLogical[logical(ek)] = true
	}
	baseEndpoints := make(map[logicalEndpoint]bool, len(base.Nodes))
	baseVersions := make(map[logicalEndpoint]map[string]bool)
	for nk := range base.Nodes {
		le := logicalEndpoint{nk.Service, nk.Endpoint}
		baseEndpoints[le] = true
		if baseVersions[le] == nil {
			baseVersions[le] = make(map[string]bool)
		}
		baseVersions[le][nk.Version] = true
	}

	// Additions and version updates: iterate experimental edges in
	// deterministic order.
	for _, ek := range exp.SortedEdges() {
		if baseEdges[ek] {
			continue // unchanged
		}
		le := logical(ek)
		if _, ok := baseLogical[le]; ok {
			callerNew := !baseVersions[logicalEndpoint{ek.From.Service, ek.From.Endpoint}][ek.From.Version]
			calleeNew := !baseVersions[logicalEndpoint{ek.To.Service, ek.To.Endpoint}][ek.To.Version]
			switch {
			case callerNew && calleeNew:
				d.Changes = append(d.Changes, Change{Type: ChangeUpdatedVersion, Edge: ek, Subject: ek.To})
			case calleeNew:
				d.Changes = append(d.Changes, Change{Type: ChangeUpdatedCalleeVersion, Edge: ek, Subject: ek.To})
			case callerNew:
				d.Changes = append(d.Changes, Change{Type: ChangeUpdatedCallerVersion, Edge: ek, Subject: ek.From})
			default:
				// New pairing of versions that both existed: treat as a
				// new call to an existing endpoint.
				d.Changes = append(d.Changes, Change{Type: ChangeCallExistingEndpoint, Edge: ek, Subject: ek.To})
			}
			continue
		}
		if baseEndpoints[logicalEndpoint{ek.To.Service, ek.To.Endpoint}] {
			d.Changes = append(d.Changes, Change{Type: ChangeCallExistingEndpoint, Edge: ek, Subject: ek.To})
		} else {
			d.Changes = append(d.Changes, Change{Type: ChangeCallNewEndpoint, Edge: ek, Subject: ek.To})
		}
	}

	// Removals: baseline edges whose logical interaction disappeared.
	for _, ek := range base.SortedEdges() {
		if _, stillThere := exp.Edges[ek]; stillThere {
			continue
		}
		if expLogical[logical(ek)] {
			continue // explained by a version update above
		}
		d.Changes = append(d.Changes, Change{Type: ChangeRemoveCall, Edge: ek, Subject: ek.To})
	}

	d.summarizeNodes()
	return d
}

func (d *Diff) summarizeNodes() {
	baseNodes := make(map[tracing.NodeKey]bool, len(d.Base.Nodes))
	for nk := range d.Base.Nodes {
		baseNodes[nk] = true
	}
	for _, nk := range d.Exp.SortedNodes() {
		if !baseNodes[nk] {
			d.AddedNodes = append(d.AddedNodes, nk)
		}
	}
	expNodes := make(map[tracing.NodeKey]bool, len(d.Exp.Nodes))
	for nk := range d.Exp.Nodes {
		expNodes[nk] = true
	}
	for _, nk := range d.Base.SortedNodes() {
		if !expNodes[nk] {
			d.RemovedNodes = append(d.RemovedNodes, nk)
		}
	}
	baseVers := d.Base.ServiceVersions()
	expVers := d.Exp.ServiceVersions()
	seen := make(map[string]bool)
	for svc, evs := range expVers {
		bvs := baseVers[svc]
		if len(bvs) == 0 {
			continue // whole service is new; covered by AddedNodes
		}
		bset := make(map[string]bool, len(bvs))
		for _, v := range bvs {
			bset[v] = true
		}
		for _, v := range evs {
			if !bset[v] && !seen[svc] {
				seen[svc] = true
				d.UpdatedServices = append(d.UpdatedServices, svc)
			}
		}
	}
	sort.Strings(d.UpdatedServices)
}

// CountByType returns how many changes of each type were identified.
func (d *Diff) CountByType() map[ChangeType]int {
	out := make(map[ChangeType]int)
	for _, c := range d.Changes {
		out[c.Type]++
	}
	return out
}

// Render produces the textual counterpart of the diff visualization
// (Fig 1.3 / Fig 5.2): added nodes green (+), removed red (-), updated
// services yellow (~), followed by the classified changes.
func (d *Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topological difference: %d changes, +%d nodes, -%d nodes, ~%d services\n",
		len(d.Changes), len(d.AddedNodes), len(d.RemovedNodes), len(d.UpdatedServices))
	for _, nk := range d.AddedNodes {
		fmt.Fprintf(&b, "  + %s\n", nk)
	}
	for _, nk := range d.RemovedNodes {
		fmt.Fprintf(&b, "  - %s\n", nk)
	}
	for _, svc := range d.UpdatedServices {
		fmt.Fprintf(&b, "  ~ %s\n", svc)
	}
	for _, c := range d.Changes {
		fmt.Fprintf(&b, "  * %s\n", c)
	}
	return b.String()
}
