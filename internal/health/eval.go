package health

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/microsim"
	"contexp/internal/router"
	"contexp/internal/stats"
	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// This file is the Chapter 5 evaluation harness.
//
// Section 5.7 (ranking quality): two release scenarios on the
// microservice case-study application, each with and without an
// injected performance degradation; the six heuristic variations are
// scored with nDCG@5 against a ground-truth relevance labeling
// (Figs 5.6 and 5.8). As in the paper, the relevance labels encode the
// evaluator's judgment of which changes a developer should inspect
// first; they are defined per scenario in this file.
//
// Section 5.8 (performance): heuristic execution times on synthetic
// interaction graphs of 500–10,000 endpoints with varying shapes and
// change frequencies (Figs 5.9 and 5.10).

// Relevance labels a change's ground-truth importance on the 0–3 scale
// customary for nDCG.
type Relevance func(Change) float64

// HeuristicScore is one heuristic's ranking quality on one scenario.
type HeuristicScore struct {
	Heuristic string
	NDCG5     float64
	// Top lists the first ranked changes (for inspection).
	Top []string
}

// ScenarioResult is a full ranking-quality evaluation of one scenario.
type ScenarioResult struct {
	Scenario string
	Degraded bool
	Diff     *Diff
	Scores   []HeuristicScore
}

// Render formats the scenario's nDCG table.
func (r *ScenarioResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (degradation=%v): %d changes\n", r.Scenario, r.Degraded, len(r.Diff.Changes))
	fmt.Fprintf(&b, "%-18s %6s  %s\n", "heuristic", "nDCG5", "top-ranked")
	for _, s := range r.Scores {
		top := ""
		if len(s.Top) > 0 {
			top = s.Top[0]
		}
		fmt.Fprintf(&b, "%-18s %6.3f  %s\n", s.Heuristic, s.NDCG5, top)
	}
	return b.String()
}

// Score evaluates every heuristic against the ground truth.
func scoreHeuristics(d *Diff, rel Relevance) []HeuristicScore {
	ideal := make([]float64, len(d.Changes))
	for i, c := range d.Changes {
		ideal[i] = rel(c)
	}
	out := make([]HeuristicScore, 0, 6)
	for _, h := range AllHeuristics() {
		ranked := Rank(h, d)
		gains := make([]float64, len(ranked))
		top := make([]string, 0, 3)
		for i, c := range ranked {
			gains[i] = rel(c)
			if i < 3 {
				top = append(top, c.String())
			}
		}
		out = append(out, HeuristicScore{
			Heuristic: h.Name(),
			NDCG5:     stats.NDCG(gains, ideal, 5),
			Top:       top,
		})
	}
	return out
}

// scenarioTraces runs the simulated application twice — all-baseline
// and with the experiment's routing — and returns both interaction
// graphs.
func scenarioTraces(app *microsim.Application, experimentRoutes func(*router.Table) error, traces int, seed int64) (*topology.Graph, *topology.Graph, error) {
	start := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	runOnce := func(route func(*router.Table) error, variant tracing.Variant) (*topology.Graph, error) {
		table := router.NewTable()
		if err := microsim.InstallBaselineRoutes(app, table); err != nil {
			return nil, err
		}
		if route != nil {
			if err := route(table); err != nil {
				return nil, err
			}
		}
		collector := tracing.NewCollector()
		sim := microsim.NewSim(app, table, collector, metrics.NewStore(1024), seed)
		for i := 0; i < traces; i++ {
			req := &router.Request{UserID: fmt.Sprintf("user-%04d", i)}
			if _, err := sim.Execute(req, start.Add(time.Duration(i)*time.Second)); err != nil {
				return nil, err
			}
		}
		return topology.Build(variant, collector.Traces("")), nil
	}
	base, err := runOnce(nil, tracing.VariantBaseline)
	if err != nil {
		return nil, nil, err
	}
	exp, err := runOnce(experimentRoutes, tracing.VariantExperiment)
	if err != nil {
		return nil, nil, err
	}
	return base, exp, nil
}

// EvalScenario1 reproduces Section 5.7.2: the sample application with
// the recommendation-v2 release (new dependency on the user-history
// endpoint plus a version update). With degraded=true the new version
// carries a strong latency regression.
func EvalScenario1(traces int, degraded bool, seed int64) (*ScenarioResult, error) {
	app, err := microsim.ShopApplication()
	if err != nil {
		return nil, err
	}
	if degraded {
		// Replace the v2 recommender's latency with a 6x regression.
		sv, err := app.Lookup("recommendation", "v2")
		if err != nil {
			return nil, err
		}
		ep := sv.Endpoints["GET /recommendations"]
		ep.Latency = stats.LogNormalFromMeanP95(60, 150)
	}
	routeExperiment := func(t *router.Table) error {
		return t.SetWeights("recommendation", []router.Backend{{Version: "v2", Weight: 1}})
	}
	base, exp, err := scenarioTraces(app, routeExperiment, traces, seed)
	if err != nil {
		return nil, err
	}
	d := Compare(base, exp)

	rel := func(c Change) float64 {
		switch {
		case c.Type == ChangeCallNewEndpoint && c.Subject.Service == "users":
			// The brand-new dependency: always worth inspecting; the
			// top concern when nothing is degraded.
			if degraded {
				return 2
			}
			return 3
		case c.Type == ChangeUpdatedCalleeVersion && c.Subject.Service == "recommendation":
			// The updated service: the root cause when degraded.
			if degraded {
				return 3
			}
			return 2
		case c.Subject.Service == "recommendation" || c.Edge.From.Service == "recommendation":
			return 1
		default:
			return 0
		}
	}
	return &ScenarioResult{
		Scenario: "scenario-1 (sample application)",
		Degraded: degraded,
		Diff:     d,
		Scores:   scoreHeuristics(d, rel),
	}, nil
}

// EvalScenario2 reproduces Section 5.7.3: multiple breaking changes at
// once — catalog v2 drops its inventory call and adds a dependency on a
// brand-new pricing service, while recommendation v2 rolls out in
// parallel. With degraded=true catalog v2 carries the regression.
func EvalScenario2(traces int, degraded bool, seed int64) (*ScenarioResult, error) {
	app, err := microsim.ShopApplication()
	if err != nil {
		return nil, err
	}
	// New pricing service (baseline never calls it).
	if err := app.AddService("pricing", "v1").
		Endpoint("GET /price", 7, 18).Err(); err != nil {
		return nil, err
	}
	// catalog v2: inventory call removed, pricing call added.
	meanMs := 12.0
	if degraded {
		meanMs = 80
	}
	if err := app.AddService("catalog", "v2").
		Endpoint("GET /products", meanMs, meanMs*2.5).
		Calls("pricing", "GET /price").
		Endpoint("GET /product", 9, 22).
		Calls("pricing", "GET /price").Err(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}

	routeExperiment := func(t *router.Table) error {
		if err := t.SetWeights("catalog", []router.Backend{{Version: "v2", Weight: 1}}); err != nil {
			return err
		}
		return t.SetWeights("recommendation", []router.Backend{{Version: "v2", Weight: 1}})
	}
	base, exp, err := scenarioTraces(app, routeExperiment, traces, seed)
	if err != nil {
		return nil, err
	}
	d := Compare(base, exp)

	rel := func(c Change) float64 {
		switch {
		case c.Type == ChangeUpdatedCalleeVersion && c.Subject.Service == "catalog":
			if degraded {
				return 3
			}
			return 2
		case c.Type == ChangeCallNewEndpoint && c.Subject.Service == "pricing":
			if degraded {
				return 2
			}
			return 3
		case c.Type == ChangeRemoveCall && c.Subject.Service == "inventory":
			return 1
		case c.Subject.Service == "recommendation" || c.Type == ChangeCallNewEndpoint:
			return 1
		case c.Edge.From.Service == "catalog" || c.Edge.From.Service == "recommendation":
			return 1
		default:
			return 0
		}
	}
	return &ScenarioResult{
		Scenario: "scenario-2 (breaking changes)",
		Degraded: degraded,
		Diff:     d,
		Scores:   scoreHeuristics(d, rel),
	}, nil
}

// Figure5_6 bundles both sub-scenarios of a scenario.
type Figure5_6 struct {
	Title   string
	Results []*ScenarioResult
}

// EvalFigure5_6 runs scenario 1 with and without degradation.
func EvalFigure5_6(traces int, seed int64) (*Figure5_6, error) {
	return evalScenarioPair("Figure 5.6 — scenario 1 nDCG5", EvalScenario1, traces, seed)
}

// EvalFigure5_8 runs scenario 2 with and without degradation.
func EvalFigure5_8(traces int, seed int64) (*Figure5_6, error) {
	return evalScenarioPair("Figure 5.8 — scenario 2 nDCG5", EvalScenario2, traces, seed)
}

func evalScenarioPair(title string, f func(int, bool, int64) (*ScenarioResult, error), traces int, seed int64) (*Figure5_6, error) {
	healthy, err := f(traces, false, seed)
	if err != nil {
		return nil, err
	}
	degraded, err := f(traces, true, seed)
	if err != nil {
		return nil, err
	}
	return &Figure5_6{Title: title, Results: []*ScenarioResult{healthy, degraded}}, nil
}

// Render formats both sub-scenarios plus the cross-scenario mean.
func (f *Figure5_6) Render() string {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	for _, r := range f.Results {
		b.WriteString(r.Render())
		b.WriteString("\n")
	}
	b.WriteString("mean nDCG5 across sub-scenarios:\n")
	for name, mean := range f.MeanByHeuristic() {
		fmt.Fprintf(&b, "  %-18s %6.3f\n", name, mean)
	}
	return b.String()
}

// MeanByHeuristic averages nDCG5 over the sub-scenarios.
func (f *Figure5_6) MeanByHeuristic() map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, r := range f.Results {
		for _, s := range r.Scores {
			sums[s.Heuristic] += s.NDCG5
			counts[s.Heuristic]++
		}
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}

// --- performance evaluation (Section 5.8) ---

// GraphGenConfig parameterizes the synthetic interaction graphs.
type GraphGenConfig struct {
	// Endpoints is the total endpoint count (e.g. 1,000 services with
	// 10 endpoints each = 10,000).
	Endpoints int
	// EndpointsPerService defaults to 10.
	EndpointsPerService int
	// Fanout is the mean number of downstream services per service;
	// low fanout yields deep graphs, high fanout broad ones (default 3).
	Fanout int
	// ChangeFraction of services receive a version update in the
	// experimental graph; a tenth as many services are added and edges
	// removed (default 0.1).
	ChangeFraction float64
	Seed           int64
}

// GenerateGraphPair builds a baseline interaction graph and an
// experimental variant with the configured change frequency.
func GenerateGraphPair(cfg GraphGenConfig) (*topology.Graph, *topology.Graph, error) {
	if cfg.Endpoints <= 0 {
		return nil, nil, fmt.Errorf("health: endpoints must be positive")
	}
	if cfg.EndpointsPerService <= 0 {
		cfg.EndpointsPerService = 10
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.ChangeFraction <= 0 {
		cfg.ChangeFraction = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nServices := cfg.Endpoints / cfg.EndpointsPerService
	if nServices < 2 {
		nServices = 2
	}

	base := topology.NewGraph(tracing.VariantBaseline)
	// Endpoint keys per service.
	endpoints := make([][]tracing.NodeKey, nServices)
	for s := 0; s < nServices; s++ {
		eps := make([]tracing.NodeKey, cfg.EndpointsPerService)
		for e := range eps {
			eps[e] = tracing.NodeKey{
				Service:  fmt.Sprintf("svc-%04d", s),
				Version:  "v1",
				Endpoint: fmt.Sprintf("ep-%02d", e),
			}
		}
		endpoints[s] = eps
	}
	addNode := func(g *topology.Graph, nk tracing.NodeKey, meanMs float64) {
		n := g.Nodes[nk]
		if n == nil {
			dur := time.Duration(meanMs * float64(time.Millisecond))
			g.Nodes[nk] = &topology.Node{
				Key: nk, Calls: 100, TotalDuration: 100 * dur,
				Durations: []time.Duration{dur},
			}
		}
	}
	addEdge := func(g *topology.Graph, from, to tracing.NodeKey) {
		ek := topology.EdgeKey{From: from, To: to}
		if g.Edges[ek] == nil {
			g.Edges[ek] = &topology.Edge{Key: ek, Calls: 100}
		}
	}

	// Tree-ish topology: service s calls up to Fanout services with
	// higher indices (guarantees acyclicity), one endpoint pair each.
	for s := 0; s < nServices; s++ {
		for _, ep := range endpoints[s] {
			addNode(base, ep, 5+rng.Float64()*20)
		}
		if s == 0 {
			base.Roots[endpoints[0][0]] = true
		}
		fan := 1 + rng.Intn(cfg.Fanout*2-1) // mean ≈ Fanout
		for f := 0; f < fan && s+1 < nServices; f++ {
			callee := s + 1 + rng.Intn(nServices-s-1)
			from := endpoints[s][rng.Intn(len(endpoints[s]))]
			to := endpoints[callee][rng.Intn(len(endpoints[callee]))]
			addEdge(base, from, to)
		}
	}

	// Experimental graph: copy, then mutate.
	exp := topology.NewGraph(tracing.VariantExperiment)
	for nk, n := range base.Nodes {
		cp := *n
		exp.Nodes[nk] = &cp
	}
	for ek, e := range base.Edges {
		cp := *e
		exp.Edges[ek] = &cp
	}
	for nk := range base.Roots {
		exp.Roots[nk] = true
	}

	bump := func(nk tracing.NodeKey) tracing.NodeKey {
		nk.Version = "v2"
		return nk
	}
	nChanged := int(float64(nServices) * cfg.ChangeFraction)
	changed := make(map[string]bool, nChanged)
	for _, s := range rng.Perm(nServices)[:nChanged] {
		changed[fmt.Sprintf("svc-%04d", s)] = true
	}
	// Version-bump changed services: rewrite their nodes and incident
	// edges.
	for nk, n := range base.Nodes {
		if !changed[nk.Service] {
			continue
		}
		delete(exp.Nodes, nk)
		cp := *n
		cp.Key = bump(nk)
		exp.Nodes[cp.Key] = &cp
	}
	for ek := range base.Edges {
		fromChanged := changed[ek.From.Service]
		toChanged := changed[ek.To.Service]
		if !fromChanged && !toChanged {
			continue
		}
		delete(exp.Edges, ek)
		nk := ek
		if fromChanged {
			nk.From = bump(nk.From)
		}
		if toChanged {
			nk.To = bump(nk.To)
		}
		exp.Edges[nk] = &topology.Edge{Key: nk, Calls: 100}
	}
	// A few brand-new services and removed edges.
	extra := nChanged/10 + 1
	for i := 0; i < extra; i++ {
		newSvc := tracing.NodeKey{
			Service:  fmt.Sprintf("svc-new-%02d", i),
			Version:  "v1",
			Endpoint: "ep-00",
		}
		addNode(exp, newSvc, 10)
		caller := endpoints[rng.Intn(nServices)][0]
		if changed[caller.Service] {
			caller = bump(caller)
		}
		addEdge(exp, caller, newSvc)
	}
	removed := 0
	for _, ek := range base.SortedEdges() {
		if removed >= extra {
			break
		}
		if changed[ek.From.Service] || changed[ek.To.Service] {
			continue
		}
		delete(exp.Edges, ek)
		removed++
	}
	return base, exp, nil
}

// PerfPoint is one performance measurement.
type PerfPoint struct {
	Endpoints      int
	ChangeFraction float64
	Changes        int
	// CompareTime is the diff-construction time.
	CompareTime time.Duration
	// HeuristicTimes maps heuristic name to ranking time.
	HeuristicTimes map[string]time.Duration
}

// Figure5_9 is the scalability sweep over graph sizes.
type Figure5_9 struct {
	Points []PerfPoint
}

// EvalFigure5_9 measures heuristic runtimes for growing graphs.
func EvalFigure5_9(sizes []int, seed int64) (*Figure5_9, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 1000, 2000, 4000, 10000}
	}
	fig := &Figure5_9{}
	for _, size := range sizes {
		p, err := perfPoint(GraphGenConfig{Endpoints: size, ChangeFraction: 0.1, Seed: seed})
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, *p)
	}
	return fig, nil
}

// Figure5_10 varies the change frequency on a fixed graph size.
type Figure5_10 struct {
	Endpoints int
	Points    []PerfPoint
}

// EvalFigure5_10 measures runtime stability across change frequencies.
func EvalFigure5_10(endpoints int, fractions []float64, seed int64) (*Figure5_10, error) {
	if endpoints <= 0 {
		endpoints = 4000
	}
	if len(fractions) == 0 {
		fractions = []float64{0.01, 0.05, 0.1, 0.2}
	}
	fig := &Figure5_10{Endpoints: endpoints}
	for _, f := range fractions {
		p, err := perfPoint(GraphGenConfig{Endpoints: endpoints, ChangeFraction: f, Seed: seed})
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, *p)
	}
	return fig, nil
}

func perfPoint(cfg GraphGenConfig) (*PerfPoint, error) {
	base, exp, err := GenerateGraphPair(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	d := Compare(base, exp)
	compareTime := time.Since(start)

	times := make(map[string]time.Duration, 6)
	for _, h := range AllHeuristics() {
		hs := time.Now()
		Rank(h, d)
		times[h.Name()] = time.Since(hs)
	}
	return &PerfPoint{
		Endpoints:      cfg.Endpoints,
		ChangeFraction: cfg.ChangeFraction,
		Changes:        len(d.Changes),
		CompareTime:    compareTime,
		HeuristicTimes: times,
	}, nil
}

// Render formats the scalability table.
func (f *Figure5_9) Render() string {
	return renderPerf("Figure 5.9 — heuristic execution time vs. graph size", f.Points, false)
}

// Render formats the change-frequency table.
func (f *Figure5_10) Render() string {
	title := fmt.Sprintf("Figure 5.10 — execution time vs. change frequency (%d endpoints)", f.Endpoints)
	return renderPerf(title, f.Points, true)
}

func renderPerf(title string, points []PerfPoint, byFraction bool) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	names := make([]string, 0, 6)
	for _, h := range AllHeuristics() {
		names = append(names, h.Name())
	}
	if byFraction {
		fmt.Fprintf(&b, "%9s %8s %10s", "chg-frac", "changes", "compare")
	} else {
		fmt.Fprintf(&b, "%9s %8s %10s", "endpoints", "changes", "compare")
	}
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n)
	}
	b.WriteString("\n")
	for _, p := range points {
		if byFraction {
			fmt.Fprintf(&b, "%9.2f %8d %10s", p.ChangeFraction, p.Changes, p.CompareTime.Round(time.Microsecond))
		} else {
			fmt.Fprintf(&b, "%9d %8d %10s", p.Endpoints, p.Changes, p.CompareTime.Round(time.Microsecond))
		}
		for _, n := range names {
			fmt.Fprintf(&b, " %16s", p.HeuristicTimes[n].Round(time.Microsecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}
