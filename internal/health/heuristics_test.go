package health

import (
	"testing"
	"time"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// degradedDiff builds a diff where rec@v2 is both structurally central
// and strongly degraded, while a second change (new leaf endpoint) is
// structurally trivial.
func degradedDiff() *Diff {
	lat := map[tracing.NodeKey]float64{recV1: 10, recV2: 80, catV1: 10, feV1: 30, usrV1: 5}
	base := baselineGraph(lat)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV2},
		{recV2, catV1},
		{recV2, usrV1}, // new leaf dependency
	}, lat)
	return Compare(base, exp)
}

func TestAllHeuristicsCount(t *testing.T) {
	hs := AllHeuristics()
	if len(hs) != 6 {
		t.Fatalf("heuristic variations = %d, want 6", len(hs))
	}
	seen := map[string]bool{}
	for _, h := range hs {
		if seen[h.Name()] {
			t.Errorf("duplicate heuristic name %q", h.Name())
		}
		seen[h.Name()] = true
	}
}

func TestRankReturnsAllChangesOrdered(t *testing.T) {
	d := degradedDiff()
	for _, h := range AllHeuristics() {
		ranked := Rank(h, d)
		if len(ranked) != len(d.Changes) {
			t.Fatalf("%s: ranked %d of %d changes", h.Name(), len(ranked), len(d.Changes))
		}
		scores := h.Score(d)
		if len(scores) != len(d.Changes) {
			t.Fatalf("%s: %d scores for %d changes", h.Name(), len(scores), len(d.Changes))
		}
	}
}

func TestRankDeterministic(t *testing.T) {
	d := degradedDiff()
	for _, h := range AllHeuristics() {
		r1 := Rank(h, d)
		r2 := Rank(h, d)
		for i := range r1 {
			if r1[i].ID() != r2[i].ID() {
				t.Fatalf("%s: nondeterministic ranking", h.Name())
			}
		}
	}
}

func TestSubtreeComplexityPrefersCentralChanges(t *testing.T) {
	d := degradedDiff()
	// The updated rec@v2 subtree (rec + catalog + users) is larger than
	// the new users leaf, and its uncertainty is lower (0.7 vs 1.0) but
	// 0.7*3 > 1.0*1.
	ranked := Rank(SubtreeComplexity{}, d)
	if ranked[0].Subject.Service != "rec" {
		t.Errorf("top change = %v, want the rec version update", ranked[0])
	}
}

func TestResponseTimeAnalysisFindsRootCause(t *testing.T) {
	d := degradedDiff()
	for _, h := range []Heuristic{ResponseTimeAnalysis{}, ResponseTimeAnalysis{Relative: true}} {
		ranked := Rank(h, d)
		// rec slowed from 10ms to 80ms; everything else is unchanged. The
		// top-ranked change must concern rec.
		if ranked[0].Subject.Service != "rec" {
			t.Errorf("%s: top change = %v, want rec", h.Name(), ranked[0])
		}
		scores := h.Score(d)
		var recScore, otherMax float64
		for i, c := range d.Changes {
			if c.Subject.Service == "rec" && c.Type == ChangeUpdatedCalleeVersion {
				recScore = scores[i]
			} else if scores[i] > otherMax {
				otherMax = scores[i]
			}
		}
		if recScore <= otherMax {
			t.Errorf("%s: rec score %v not above others %v", h.Name(), recScore, otherMax)
		}
	}
}

func TestResponseTimeDiscountsCascadingEffects(t *testing.T) {
	// Baseline: fe -> rec -> cat. Experiment: same shapes with version
	// updates on both rec and cat, but only cat is actually slow; rec's
	// inclusive latency grows purely because it waits on cat.
	catV2 := nk("catalog", "v2", "GET /p")
	lat := map[tracing.NodeKey]float64{
		feV1: 100, recV1: 40, catV1: 10,
		recV2: 70, // 40ms own + 30ms waiting on slow catalog
		catV2: 40, // the true regression: +30ms
	}
	base := baselineGraph(lat)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV2},
		{recV2, catV2},
	}, lat)
	d := Compare(base, exp)
	h := ResponseTimeAnalysis{}
	scores := h.Score(d)
	var catScore, recScore float64
	for i, c := range d.Changes {
		switch c.Subject.Service {
		case "catalog":
			catScore = scores[i]
		case "rec":
			recScore = scores[i]
		}
	}
	// rec's +30ms is fully explained by catalog's +30ms; its exclusive
	// delta is ~0 while catalog keeps its full delta.
	if catScore <= recScore {
		t.Errorf("root cause not isolated: catalog %v <= rec %v", catScore, recScore)
	}
}

func TestHybridCombinesBoth(t *testing.T) {
	d := degradedDiff()
	h := Hybrid{Alpha: 0.5}
	scores := h.Score(d)
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("hybrid score %v outside [0,1]", s)
		}
	}
	if Rank(h, d)[0].Subject.Service != "rec" {
		t.Error("hybrid should also surface the degraded central change first")
	}
}

func TestHybridAlphaDefaultsAndName(t *testing.T) {
	if (Hybrid{}).alpha() != 0.5 {
		t.Error("default alpha should be 0.5")
	}
	if (Hybrid{Alpha: 0.7}).Name() != "hybrid-0.7" {
		t.Errorf("name = %q", Hybrid{Alpha: 0.7}.Name())
	}
	if (Hybrid{Alpha: 0.5}).Name() != "hybrid-0.5" {
		t.Errorf("name = %q", Hybrid{Alpha: 0.5}.Name())
	}
}

func TestNormalize(t *testing.T) {
	out := normalize([]float64{2, 4, 6})
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Errorf("normalize = %v", out)
	}
	same := normalize([]float64{3, 3})
	if same[0] != 0 || same[1] != 0 {
		t.Errorf("all-equal normalize = %v", same)
	}
	if len(normalize(nil)) != 0 {
		t.Error("empty normalize should be empty")
	}
}

func TestRemoveCallScoredOnBaselineGraph(t *testing.T) {
	base := baselineGraph(nil)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV1},
	}, nil)
	d := Compare(base, exp)
	scores := SubtreeComplexity{}.Score(d)
	if len(scores) != 1 || scores[0] <= 0 {
		t.Errorf("remove-call should score from the baseline subtree: %v", scores)
	}
}

func TestMeanForLogical(t *testing.T) {
	g := topology.NewGraph("")
	add := func(k tracing.NodeKey, ms float64, calls int) {
		dur := time.Duration(ms * float64(time.Millisecond))
		g.Nodes[k] = &topology.Node{Key: k, Calls: calls, TotalDuration: time.Duration(calls) * dur}
	}
	add(recV1, 10, 10)
	add(recV2, 40, 10)

	// preferNewest picks v2.
	v, ok := meanForLogical(g, "rec", "GET /recs", true)
	if !ok || v != 40 {
		t.Errorf("preferNewest = %v, %v", v, ok)
	}
	// averaged: (10*10 + 40*10) / 20 = 25.
	v, ok = meanForLogical(g, "rec", "GET /recs", false)
	if !ok || v != 25 {
		t.Errorf("averaged = %v, %v", v, ok)
	}
	if _, ok := meanForLogical(g, "ghost", "x", true); ok {
		t.Error("missing endpoint should report !ok")
	}
}
