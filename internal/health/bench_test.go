package health

import "testing"

func BenchmarkCompare2000Endpoints(b *testing.B) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 2000, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Compare(base, exp); len(d.Changes) == 0 {
			b.Fatal("no changes")
		}
	}
}

func BenchmarkRankHeuristics(b *testing.B) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 2000, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d := Compare(base, exp)
	for _, h := range AllHeuristics() {
		h := h
		b.Run(h.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Rank(h, d)
			}
		})
	}
}
