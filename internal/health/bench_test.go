package health

import (
	"fmt"
	"testing"

	"contexp/internal/tracing"
)

func BenchmarkCompare2000Endpoints(b *testing.B) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 2000, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Compare(base, exp); len(d.Changes) == 0 {
			b.Fatal("no changes")
		}
	}
}

// BenchmarkIncrementalDiff measures the live assessment unit at the
// same scale as BenchmarkCompare2000Endpoints: fold one fresh trace
// into the candidate graph, then re-derive the full diff through the
// incremental maintenance. Where Compare re-walks both graphs (~ms),
// this pays only for the changed endpoints.
func BenchmarkIncrementalDiff(b *testing.B) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 2000, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	inc := NewIncrementalDiff(base, exp)
	if d := inc.Diff(); len(d.Changes) == 0 {
		b.Fatal("no changes")
	}
	root := nk("frontend", "v1", "GET /")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := chainTrace(tracing.TraceID(1_000_000+i),
			root, nk("svc-live", "v2", fmt.Sprintf("GET /op-%d", i)))
		if err := exp.AddTrace(&tr); err != nil {
			b.Fatal(err)
		}
		if d := inc.Diff(); len(d.Changes) == 0 {
			b.Fatal("no changes")
		}
	}
}

func BenchmarkRankHeuristics(b *testing.B) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 2000, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d := Compare(base, exp)
	for _, h := range AllHeuristics() {
		h := h
		b.Run(h.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Rank(h, d)
			}
		})
	}
}
