package health

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/tracing"
)

// mkTrace builds a valid trace: a root span on rootSvc@rootVer calling
// each of the listed (service, version, endpoint) callees. Spans are
// stamped with the current time — the monitor discards traces that
// predate a run's registration.
func mkTrace(id uint64, rootSvc, rootVer, rootEp string, callees ...[3]string) tracing.Trace {
	start := time.Now()
	spans := []tracing.Span{{
		TraceID: tracing.TraceID(id), SpanID: 1,
		Service: rootSvc, Version: rootVer, Endpoint: rootEp,
		Start: start, Duration: 10 * time.Millisecond,
	}}
	for i, c := range callees {
		spans = append(spans, tracing.Span{
			TraceID: tracing.TraceID(id), SpanID: tracing.SpanID(i + 2), ParentID: 1,
			Service: c[0], Version: c[1], Endpoint: c[2],
			Start: start.Add(time.Duration(i+1) * time.Millisecond), Duration: 2 * time.Millisecond,
		})
	}
	return tracing.Trace{ID: tracing.TraceID(id), Spans: spans}
}

func feed(c *tracing.LiveCollector, traces ...tracing.Trace) {
	for _, tr := range traces {
		for _, s := range tr.Spans {
			c.Record(s)
		}
	}
}

func TestMonitorFoldsTracesByVariant(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1) // harvest immediately
	m.Register("run", "rec", "v1", "v2")

	feed(c,
		// Baseline user: frontend -> rec@v1.
		mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}),
		mkTrace(2, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}),
		// Experimental user: frontend -> rec@v2 -> users (new dependency).
		mkTrace(3, "frontend", "v1", "GET /", [3]string{"rec", "v2", "GET /r"}, [3]string{"users", "v1", "GET /h"}),
		// No signal for this run: never touches rec.
		mkTrace(4, "frontend", "v1", "GET /", [3]string{"catalog", "v1", "GET /p"}),
	)

	v, err := m.Verdict("run", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.BaselineTraces != 2 || v.CandidateTraces != 1 || v.SkippedTraces != 1 {
		t.Fatalf("trace counts = %d/%d/%d, want 2/1/1",
			v.BaselineTraces, v.CandidateTraces, v.SkippedTraces)
	}
	// The candidate introduces a call to an endpoint the baseline
	// topology never exercised.
	found := false
	for _, ch := range v.Changes {
		if ch.Class == "call-new-endpoint" && strings.Contains(ch.Edge, "users@v1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a call-new-endpoint change toward users, got %+v", v.Changes)
	}
}

func TestMonitorVerdictErrors(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	if _, err := m.Verdict("missing", ""); err == nil {
		t.Error("expected error for unregistered run")
	}
	m.Register("run", "svc", "v1", "v2")
	if _, err := m.Verdict("run", "no-such-heuristic"); err == nil {
		t.Error("expected error for unknown heuristic")
	}
	for _, name := range HeuristicNames() {
		if _, err := m.Verdict("run", name); err != nil {
			t.Errorf("heuristic %q: %v", name, err)
		}
	}
}

func TestMonitorFreezeStopsFolding(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	m.Register("run", "rec", "v1", "v2")

	feed(c, mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}))
	if v, _ := m.Verdict("run", ""); v.BaselineTraces != 1 {
		t.Fatalf("BaselineTraces = %d, want 1", v.BaselineTraces)
	}
	m.Freeze("run")
	feed(c, mkTrace(2, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}))
	if v, _ := m.Verdict("run", ""); v.BaselineTraces != 1 {
		t.Fatalf("BaselineTraces after freeze = %d, want 1", v.BaselineTraces)
	}
}

// TestMonitorIgnoresPreRegistrationTraffic pins the isolation property:
// a new run's graphs must not be seeded by traffic that predates it —
// neither traces already settled in the collector at registration nor
// stragglers that arrive later with old timestamps.
func TestMonitorIgnoresPreRegistrationTraffic(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)

	// Settled before the run existed: drained at registration.
	feed(c, mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v2", "GET /r"}))
	m.Register("run", "rec", "v1", "v2")
	v, err := m.Verdict("run", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.CandidateTraces != 0 || v.BaselineTraces != 0 {
		t.Fatalf("pre-registration traffic leaked into the run: %+v", v)
	}

	// Straggler with pre-registration timestamps arriving afterwards.
	old := mkTrace(2, "frontend", "v1", "GET /", [3]string{"rec", "v2", "GET /r"})
	for i := range old.Spans {
		old.Spans[i].Start = time.Now().Add(-time.Hour)
	}
	feed(c, old)
	// Fresh traffic folds normally.
	feed(c, mkTrace(3, "frontend", "v1", "GET /", [3]string{"rec", "v2", "GET /r"}))
	v, err = m.Verdict("run", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.CandidateTraces != 1 {
		t.Fatalf("CandidateTraces = %d, want 1 (only the fresh trace)", v.CandidateTraces)
	}
	if v.SkippedTraces != 1 {
		t.Fatalf("SkippedTraces = %d, want 1 (the stale straggler)", v.SkippedTraces)
	}
}

// TestMonitorFreezeFoldsSettledBacklog: traces already settled when the
// run finishes belong to its record; Freeze folds them before sealing.
func TestMonitorFreezeFoldsSettledBacklog(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	m.Register("run", "rec", "v1", "v2")
	feed(c, mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}))
	// No Verdict/View between the trace settling and the freeze: the
	// freeze itself must harvest.
	m.Freeze("run")
	v, err := m.Verdict("run", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.BaselineTraces != 1 {
		t.Fatalf("BaselineTraces = %d, want 1 (folded at freeze)", v.BaselineTraces)
	}
}

func TestMonitorBrokenTracesCounted(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	m.Register("run", "svc", "v1", "v2")
	// Orphan span: parent never recorded.
	c.Record(tracing.Span{TraceID: 9, SpanID: 2, ParentID: 1,
		Service: "svc", Version: "v1", Endpoint: "GET /x",
		Start: time.Now(), Duration: time.Millisecond})
	if _, err := m.Verdict("run", ""); err != nil {
		t.Fatal(err)
	}
	if got := m.BrokenTraces(); got != 1 {
		t.Fatalf("BrokenTraces = %d, want 1", got)
	}
	if got := m.FoldedTraces(); got != 0 {
		t.Fatalf("FoldedTraces = %d, want 0", got)
	}
}

func TestMonitorRegisterResetsOnReuse(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	m.Register("run", "rec", "v1", "v2")
	feed(c, mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}))
	if v, _ := m.Verdict("run", ""); v.BaselineTraces != 1 {
		t.Fatal("fold failed")
	}
	// Relaunch under the same name: the assessment starts over.
	m.Register("run", "rec", "v1", "v3")
	if v, _ := m.Verdict("run", ""); v.BaselineTraces != 0 {
		t.Fatalf("BaselineTraces after re-register = %d, want 0", v.BaselineTraces)
	}
}

func TestMonitorView(t *testing.T) {
	c := tracing.NewLiveCollector(0)
	m := NewMonitor(c, -1)
	m.Register("run", "rec", "v1", "v2")
	feed(c,
		mkTrace(1, "frontend", "v1", "GET /", [3]string{"rec", "v1", "GET /r"}),
		mkTrace(2, "frontend", "v1", "GET /", [3]string{"rec", "v2", "GET /r"}, [3]string{"users", "v1", "GET /h"}),
	)
	view, err := m.View("run")
	if err != nil {
		t.Fatal(err)
	}
	if view.Service != "rec" || view.Baseline != "v1" || view.Candidate != "v2" {
		t.Errorf("view identity = %+v", view)
	}
	if view.BaselineGraph.Nodes == 0 || view.CandidateGraph.Nodes == 0 {
		t.Errorf("graph summaries empty: %+v", view)
	}
	if len(view.Changes) == 0 || view.ChangesByClass["call-new-endpoint"] == 0 {
		t.Errorf("changes missing: %+v", view.Changes)
	}
	if len(view.Rankings) != len(AllHeuristics()) {
		t.Errorf("rankings cover %d heuristics, want %d", len(view.Rankings), len(AllHeuristics()))
	}
	if !strings.Contains(view.Report, "topological difference") {
		t.Errorf("report not rendered:\n%s", view.Report)
	}
}

func TestParseChangeTypeRoundTrip(t *testing.T) {
	for _, name := range ChangeClassNames() {
		ct, err := ParseChangeType(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ct.String() != name {
			t.Errorf("round trip %s -> %s", name, ct)
		}
	}
	if _, err := ParseChangeType("nonsense"); err == nil {
		t.Error("expected error for unknown class")
	}
}

func TestHeuristicByNameDefault(t *testing.T) {
	h, err := HeuristicByName("")
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "subtree-weighted" {
		t.Errorf("default heuristic = %s", h.Name())
	}
}

func TestRankScoredMatchesRank(t *testing.T) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 50, ChangeFraction: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(base, exp)
	for _, h := range AllHeuristics() {
		plain := Rank(h, d)
		scored := RankScored(h, d)
		if len(plain) != len(scored) {
			t.Fatalf("%s: length mismatch", h.Name())
		}
		for i := range plain {
			if plain[i].ID() != scored[i].ID() {
				t.Fatalf("%s: order diverges at %d", h.Name(), i)
			}
			if i > 0 && scored[i].Score > scored[i-1].Score {
				t.Fatalf("%s: scores not descending at %d", h.Name(), i)
			}
		}
	}
}
