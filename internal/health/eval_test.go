package health

import (
	"strings"
	"testing"
)

func TestEvalScenario1(t *testing.T) {
	for _, degraded := range []bool{false, true} {
		res, err := EvalScenario1(300, degraded, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Scores) != 6 {
			t.Fatalf("scores = %d", len(res.Scores))
		}
		if len(res.Diff.Changes) < 3 {
			t.Fatalf("degraded=%v: only %d changes: %v", degraded, len(res.Diff.Changes), res.Diff.Changes)
		}
		for _, s := range res.Scores {
			if s.NDCG5 < 0 || s.NDCG5 > 1 {
				t.Errorf("%s nDCG5 = %v outside [0,1]", s.Heuristic, s.NDCG5)
			}
		}
		// Expected change inventory: users history new call, rec version
		// update, rec caller update.
		byType := res.Diff.CountByType()
		if byType[ChangeCallNewEndpoint] == 0 {
			t.Error("scenario 1 should surface the new users/history call")
		}
		if byType[ChangeUpdatedCalleeVersion] == 0 {
			t.Error("scenario 1 should surface the rec version update")
		}
	}
}

func TestEvalScenario1DegradedRTQuality(t *testing.T) {
	// With degradation the response-time heuristics must do well: the
	// root cause is the slow rec v2 which the relevance labels rank top.
	res, err := EvalScenario1(300, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scores {
		if strings.HasPrefix(s.Heuristic, "rt-") && s.NDCG5 < 0.7 {
			t.Errorf("%s nDCG5 = %v, expected strong score under degradation", s.Heuristic, s.NDCG5)
		}
	}
}

func TestEvalScenario2(t *testing.T) {
	for _, degraded := range []bool{false, true} {
		res, err := EvalScenario2(300, degraded, 1)
		if err != nil {
			t.Fatal(err)
		}
		byType := res.Diff.CountByType()
		if byType[ChangeCallNewEndpoint] == 0 {
			t.Error("scenario 2 should surface the new pricing dependency")
		}
		if byType[ChangeRemoveCall] == 0 {
			t.Errorf("scenario 2 should surface the removed inventory call: %v", res.Diff.Changes)
		}
		if !strings.Contains(res.Render(), "nDCG5") {
			t.Error("render missing header")
		}
	}
}

func TestEvalFigure5_6And5_8(t *testing.T) {
	for _, f := range []func(int, int64) (*Figure5_6, error){EvalFigure5_6, EvalFigure5_8} {
		fig, err := f(200, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Results) != 2 {
			t.Fatalf("results = %d", len(fig.Results))
		}
		means := fig.MeanByHeuristic()
		if len(means) != 6 {
			t.Fatalf("means = %d heuristics", len(means))
		}
		for name, m := range means {
			if m < 0.3 {
				t.Errorf("%s mean nDCG5 = %v, implausibly low", name, m)
			}
		}
		if !strings.Contains(fig.Render(), "mean nDCG5") {
			t.Error("render missing mean section")
		}
	}
}

func TestHybridCompetitiveOverall(t *testing.T) {
	// The paper's headline: a hybrid heuristic scores best on average.
	// We require the best hybrid to be within a whisker of the best
	// overall score (shape, not exact ordering).
	fig1, err := EvalFigure5_6(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := EvalFigure5_8(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]float64)
	for _, fig := range []*Figure5_6{fig1, fig2} {
		for name, m := range fig.MeanByHeuristic() {
			sums[name] += m
		}
	}
	var bestAll, bestHybrid float64
	for name, s := range sums {
		if s > bestAll {
			bestAll = s
		}
		if strings.HasPrefix(name, "hybrid") && s > bestHybrid {
			bestHybrid = s
		}
	}
	if bestHybrid < bestAll-0.15 {
		t.Errorf("hybrid not competitive: best hybrid %v vs best overall %v (sums over 4 sub-scenarios)",
			bestHybrid, bestAll)
	}
}

func TestGenerateGraphPair(t *testing.T) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 500, ChangeFraction: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.NumNodes() < 450 || base.NumNodes() > 550 {
		t.Errorf("base nodes = %d", base.NumNodes())
	}
	if exp.NumNodes() < base.NumNodes() {
		t.Errorf("exp should have >= nodes (new services added): %d < %d", exp.NumNodes(), base.NumNodes())
	}
	d := Compare(base, exp)
	if len(d.Changes) == 0 {
		t.Fatal("generated pair produced no changes")
	}
	// Both version updates and structural changes should appear.
	byType := d.CountByType()
	if byType[ChangeCallNewEndpoint] == 0 {
		t.Error("no new-endpoint changes generated")
	}
	if byType[ChangeUpdatedCalleeVersion]+byType[ChangeUpdatedVersion]+byType[ChangeUpdatedCallerVersion] == 0 {
		t.Error("no version-update changes generated")
	}
	if byType[ChangeRemoveCall] == 0 {
		t.Error("no removed calls generated")
	}
	if _, _, err := GenerateGraphPair(GraphGenConfig{Endpoints: 0}); err == nil {
		t.Error("zero endpoints should fail")
	}
}

func TestEvalFigure5_9Small(t *testing.T) {
	fig, err := EvalFigure5_9([]int{200, 500}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	for _, p := range fig.Points {
		if p.Changes == 0 {
			t.Errorf("endpoints=%d: no changes", p.Endpoints)
		}
		if len(p.HeuristicTimes) != 6 {
			t.Errorf("endpoints=%d: %d heuristic timings", p.Endpoints, len(p.HeuristicTimes))
		}
	}
	if !strings.Contains(fig.Render(), "graph size") {
		t.Error("render missing title")
	}
}

func TestEvalFigure5_10Small(t *testing.T) {
	fig, err := EvalFigure5_10(500, []float64{0.05, 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// More changes at higher frequency.
	if fig.Points[1].Changes <= fig.Points[0].Changes {
		t.Errorf("change frequency not reflected: %d -> %d",
			fig.Points[0].Changes, fig.Points[1].Changes)
	}
	if !strings.Contains(fig.Render(), "change frequency") {
		t.Error("render missing title")
	}
}
