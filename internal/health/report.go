package health

import (
	"fmt"
	"strings"
)

// AssessmentReport is the developer-facing artifact of the analysis
// phase: the topological difference plus every heuristic's ranking —
// the textual form of the research prototype's UI (Fig 1.3), which
// lets developers "toggle between multiple selected heuristics" as the
// paper recommends.
type AssessmentReport struct {
	Diff *Diff
	// Rankings maps heuristic name to its ranked changes.
	Rankings map[string][]Change
	// Agreement is the fraction of heuristics that agree with the
	// majority top-ranked change; low agreement signals the ambiguous
	// cases where a human should look at all rankings.
	Agreement float64
	// TopChange is the majority top-ranked change (zero value when the
	// diff is empty).
	TopChange Change
}

// Assess runs every heuristic over the diff and assembles the report.
func Assess(d *Diff) *AssessmentReport {
	rep := &AssessmentReport{Diff: d, Rankings: make(map[string][]Change, 6)}
	votes := make(map[string]int)
	voteChange := make(map[string]Change)
	for _, h := range AllHeuristics() {
		ranked := Rank(h, d)
		rep.Rankings[h.Name()] = ranked
		if len(ranked) > 0 {
			id := ranked[0].ID()
			votes[id]++
			voteChange[id] = ranked[0]
		}
	}
	var best int
	for id, n := range votes {
		if n > best {
			best = n
			rep.TopChange = voteChange[id]
		}
	}
	if len(rep.Rankings) > 0 {
		rep.Agreement = float64(best) / float64(len(rep.Rankings))
	}
	return rep
}

// Render formats the assessment for humans.
func (rep *AssessmentReport) Render() string {
	var b strings.Builder
	b.WriteString("experiment health assessment\n")
	b.WriteString(rep.Diff.Render())
	if len(rep.Diff.Changes) == 0 {
		b.WriteString("no topological changes; nothing to rank\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\nheuristic consensus: %.0f%% agree the top concern is\n  %s\n\n",
		rep.Agreement*100, rep.TopChange)
	names := make([]string, 0, len(rep.Rankings))
	for _, h := range AllHeuristics() {
		names = append(names, h.Name())
	}
	for _, name := range names {
		ranked := rep.Rankings[name]
		fmt.Fprintf(&b, "%-18s", name)
		limit := 3
		if len(ranked) < limit {
			limit = len(ranked)
		}
		for i := 0; i < limit; i++ {
			if i > 0 {
				b.WriteString(" > ")
			} else {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s(%s)", ranked[i].Type, ranked[i].Subject.Service)
		}
		b.WriteString("\n")
	}
	return b.String()
}
