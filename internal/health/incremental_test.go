package health

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// chainTrace builds a valid trace calling through the given node keys
// in order: nodes[0] is the root, each subsequent node a child of the
// previous, producing the edges nodes[i]→nodes[i+1].
func chainTrace(id tracing.TraceID, nodes ...tracing.NodeKey) tracing.Trace {
	start := time.Unix(int64(id), 0)
	spans := make([]tracing.Span, len(nodes))
	for i, nk := range nodes {
		spans[i] = tracing.Span{
			TraceID: id, SpanID: tracing.SpanID(i + 1),
			Service: nk.Service, Version: nk.Version, Endpoint: nk.Endpoint,
			Start: start.Add(time.Duration(i) * time.Millisecond), Duration: time.Millisecond,
		}
		if i > 0 {
			spans[i].ParentID = tracing.SpanID(i)
		}
	}
	return tracing.Trace{ID: id, Spans: spans}
}

// requireSameDiff asserts the incremental diff equals the reference
// Compare output field for field, including ordering and nil-ness.
func requireSameDiff(t *testing.T, step string, base, exp *topology.Graph, inc *IncrementalDiff) {
	t.Helper()
	got := inc.Diff()
	want := Compare(base, exp)
	if !reflect.DeepEqual(got.Changes, want.Changes) {
		t.Fatalf("%s: Changes mismatch\n got: %v\nwant: %v", step, got.Changes, want.Changes)
	}
	if !reflect.DeepEqual(got.AddedNodes, want.AddedNodes) {
		t.Fatalf("%s: AddedNodes mismatch\n got: %v\nwant: %v", step, got.AddedNodes, want.AddedNodes)
	}
	if !reflect.DeepEqual(got.RemovedNodes, want.RemovedNodes) {
		t.Fatalf("%s: RemovedNodes mismatch\n got: %v\nwant: %v", step, got.RemovedNodes, want.RemovedNodes)
	}
	if !reflect.DeepEqual(got.UpdatedServices, want.UpdatedServices) {
		t.Fatalf("%s: UpdatedServices mismatch\n got: %v\nwant: %v", step, got.UpdatedServices, want.UpdatedServices)
	}
}

// TestIncrementalDiffMatchesCompare is the cross-check that keeps
// Compare as the reference implementation: fold randomized trace
// streams into both graphs and verify the incremental diff reproduces
// the full Compare byte for byte after every fold. Node keys are drawn
// from small pools so the streams hit every classification branch
// (exact-edge overlap, logical overlap with version skew, shared and
// disjoint endpoints, removals and their later suppression).
func TestIncrementalDiffMatchesCompare(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			randNode := func() tracing.NodeKey {
				return nk(
					fmt.Sprintf("s%d", rng.Intn(5)),
					fmt.Sprintf("v%d", 1+rng.Intn(3)),
					fmt.Sprintf("GET /e%d", rng.Intn(4)),
				)
			}
			base := topology.NewGraph(tracing.VariantBaseline)
			exp := topology.NewGraph(tracing.VariantExperiment)

			// Pre-populate the baseline before the tracker attaches:
			// NewIncrementalDiff must absorb existing contents.
			for i := 0; i < 5; i++ {
				tr := chainTrace(tracing.TraceID(1000+i), randNode(), randNode(), randNode())
				if err := base.AddTrace(&tr); err != nil {
					t.Fatal(err)
				}
			}
			inc := NewIncrementalDiff(base, exp)
			requireSameDiff(t, "initial", base, exp, inc)

			for i := 0; i < 120; i++ {
				depth := 1 + rng.Intn(4)
				nodes := make([]tracing.NodeKey, depth)
				for j := range nodes {
					nodes[j] = randNode()
				}
				tr := chainTrace(tracing.TraceID(i+1), nodes...)
				g := exp
				if rng.Intn(2) == 0 {
					g = base
				}
				if err := g.AddTrace(&tr); err != nil {
					t.Fatal(err)
				}
				// Check both every-fold freshness and batched folds.
				if i%3 == 0 {
					requireSameDiff(t, fmt.Sprintf("fold %d", i), base, exp, inc)
				}
			}
			requireSameDiff(t, "final", base, exp, inc)
		})
	}
}

// TestIncrementalDiffTransitions drives the specific reclassification
// flips the incremental maintenance must get right as graphs grow.
func TestIncrementalDiffTransitions(t *testing.T) {
	base := topology.NewGraph(tracing.VariantBaseline)
	exp := topology.NewGraph(tracing.VariantExperiment)
	inc := NewIncrementalDiff(base, exp)

	fold := func(g *topology.Graph, id int, nodes ...tracing.NodeKey) {
		t.Helper()
		tr := chainTrace(tracing.TraceID(id), nodes...)
		if err := g.AddTrace(&tr); err != nil {
			t.Fatal(err)
		}
	}
	wantTypes := func(step string, want ...ChangeType) {
		t.Helper()
		d := inc.Diff()
		var got []ChangeType
		for _, c := range d.Changes {
			got = append(got, c.Type)
		}
		if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: change types = %v, want %v", step, got, want)
		}
		requireSameDiff(t, step, base, exp, inc)
	}

	// Exp calls an endpoint the baseline has never seen.
	fold(exp, 1, nk("front", "v2", "GET /"), nk("api", "v1", "GET /new"))
	wantTypes("new endpoint", ChangeCallNewEndpoint)

	// Baseline gains the endpoint (other version): downgrade to
	// call-existing-endpoint.
	fold(base, 2, nk("api", "v1", "GET /new"))
	wantTypes("endpoint appears in base", ChangeCallExistingEndpoint)

	// Baseline gains the same logical interaction with an older caller
	// version: reclassifies as updated-caller-version.
	fold(base, 3, nk("front", "v1", "GET /"), nk("api", "v1", "GET /new"))
	wantTypes("logical interaction appears", ChangeUpdatedCallerVersion)

	// Baseline gains the exact edge: the change disappears entirely, but
	// base-only nodes now register as removals of their edges... none
	// here since every base edge's logical pairing exists in exp.
	fold(base, 4, nk("front", "v2", "GET /"), nk("api", "v1", "GET /new"))
	wantTypes("exact edge appears")

	// A base-only interaction surfaces as remove-call.
	fold(base, 5, nk("front", "v2", "GET /"), nk("cart", "v1", "POST /add"))
	wantTypes("base-only edge", ChangeRemoveCall)

	// Exp performing the same logical call (any versions) suppresses the
	// removal; the new exp edge itself is an update (new callee version).
	fold(exp, 6, nk("front", "v2", "GET /"), nk("cart", "v2", "POST /add"))
	wantTypes("removal suppressed", ChangeUpdatedCalleeVersion)

	d := inc.Diff()
	if !reflect.DeepEqual(d.UpdatedServices, []string{"cart"}) {
		t.Fatalf("UpdatedServices = %v, want [cart]", d.UpdatedServices)
	}
}

// TestIncrementalDiffCachesWhenClean verifies repeated Diff calls
// without intervening folds return the cached materialization.
func TestIncrementalDiffCachesWhenClean(t *testing.T) {
	base, exp, err := GenerateGraphPair(GraphGenConfig{Endpoints: 100, ChangeFraction: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncrementalDiff(base, exp)
	d1 := inc.Diff()
	d2 := inc.Diff()
	if d1 != d2 {
		t.Fatal("clean Diff() should return the cached *Diff")
	}
	requireSameDiff(t, "generated pair", base, exp, inc)
}
